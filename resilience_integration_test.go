// End-to-end resilience tests: a trace with malformed rows AND a
// truncated gzip tail flows through the lenient reader into the full
// analysis pipeline, exactly the path `reproduce -lenient` takes on a
// damaged real-world table.
package jobgraph_test

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"strings"
	"testing"

	"jobgraph/internal/core"
	"jobgraph/internal/faultinject"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

// dirtyTrace builds a gzip-compressed batch_task table with bad rows
// interleaved every `badEvery` lines, returning the compressed bytes
// and the number of injected bad rows.
func dirtyTrace(t *testing.T, nJobs int, seed int64, badEvery int) ([]byte, int) {
	t.Helper()
	records, err := tracegen.Generate(tracegen.DefaultConfig(nJobs, seed))
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := trace.WriteTasks(&plain, records); err != nil {
		t.Fatal(err)
	}
	var dirty bytes.Buffer
	bad := 0
	for i, line := range strings.SplitAfter(plain.String(), "\n") {
		if line == "" {
			continue
		}
		if badEvery > 0 && i%badEvery == badEvery-1 {
			switch bad % 3 {
			case 0:
				dirty.WriteString("corrupt,row\n")
			case 1:
				dirty.WriteString("task_bad,NOTANUM,j_x,1,Terminated,1,2,1,1\n")
			case 2:
				dirty.WriteString("task_nan,1,j_x,1,Terminated,1,2,NaN,0.5\n")
			}
			bad++
		}
		dirty.WriteString(line)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(dirty.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return gz.Bytes(), bad
}

// TestResilientPipelineSurvivesDamagedTrace is the acceptance path: a
// trace with malformed rows under budget AND a truncated gzip tail must
// still produce a non-empty Analysis, with Partial flagged and the
// degradations spelled out in Warnings.
func TestResilientPipelineSurvivesDamagedTrace(t *testing.T) {
	compressed, injected := dirtyTrace(t, 4000, 202, 400)
	if injected == 0 {
		t.Fatal("fixture injected no bad rows")
	}
	zr, err := gzip.NewReader(faultinject.CleanTruncateAt(
		bytes.NewReader(compressed), int64(len(compressed)*4/5)))
	if err != nil {
		t.Fatal(err)
	}
	var quarantine bytes.Buffer
	jobs, stats, err := trace.ReadJobsOpts(zr, trace.ReadOptions{
		Mode:        trace.Lenient,
		MaxBadRatio: 0.05,
		Quarantine:  &quarantine,
	})
	if err != nil {
		t.Fatalf("lenient read of damaged trace failed: %v", err)
	}
	if !stats.Partial {
		t.Fatalf("truncation not flagged: %s", stats.Summary())
	}
	if stats.BadRows == 0 || stats.Quarantined != stats.BadRows {
		t.Fatalf("bad rows not tallied/quarantined: %s", stats.Summary())
	}
	if !strings.Contains(quarantine.String(), "corrupt,row") {
		t.Fatal("quarantine sidecar missing verbatim bad row")
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs recovered from damaged trace")
	}

	cfg := core.DefaultConfig(benchWindow, 202)
	cfg.SampleSize = 50
	cfg.Ingest = &stats
	an, err := core.Run(jobs, cfg)
	if err != nil {
		t.Fatalf("pipeline failed on recovered jobs: %v", err)
	}
	if len(an.Sample) == 0 || len(an.Groups) == 0 || len(an.Labels) == 0 {
		t.Fatalf("empty analysis: sample=%d groups=%d", len(an.Sample), len(an.Groups))
	}
	if !an.Partial {
		t.Fatal("analysis not marked Partial despite truncated ingest")
	}
	var sawTrunc, sawBad bool
	for _, w := range an.Warnings {
		if strings.Contains(w, "truncated") {
			sawTrunc = true
		}
		if strings.Contains(w, "malformed rows skipped") {
			sawBad = true
		}
	}
	if !sawTrunc || !sawBad {
		t.Fatalf("ingest degradations not surfaced: %v", an.Warnings)
	}
}

// TestResilientPipelineAbortsOverBudget proves the flip side: when the
// damage exceeds the configured budget the read aborts with a
// BudgetError instead of silently analyzing a gutted trace.
func TestResilientPipelineAbortsOverBudget(t *testing.T) {
	compressed, injected := dirtyTrace(t, 2000, 303, 50)
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(injected / 2)
	_, stats, err := trace.ReadJobsOpts(zr, trace.ReadOptions{
		Mode:       trace.Lenient,
		MaxBadRows: budget,
	})
	var be *trace.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if stats.BadRows != budget+1 {
		t.Fatalf("aborted after %d bad rows, budget %d", stats.BadRows, budget)
	}
}

// TestStrictModeUnchangedOnDamage re-checks the seed contract: strict
// mode still fails fast on the same damaged input.
func TestStrictModeUnchangedOnDamage(t *testing.T) {
	compressed, _ := dirtyTrace(t, 500, 404, 100)
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = trace.ReadJobsOpts(zr, trace.ReadOptions{})
	var re *trace.RowError
	if !errors.As(err, &re) {
		t.Fatalf("strict read of damaged trace: err = %v, want RowError", err)
	}
}

// TestLenientCleanTraceByteIdentical asserts the other acceptance
// clause: on a clean trace, Strict and Lenient deliver byte-identical
// record streams and Lenient reports a spotless bill of health.
func TestLenientCleanTraceByteIdentical(t *testing.T) {
	records, err := tracegen.Generate(tracegen.DefaultConfig(1500, 505))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteTasks(&buf, records); err != nil {
		t.Fatal(err)
	}
	clean := buf.String()

	render := func(mode trace.Mode) (string, trace.ReadStats) {
		var out bytes.Buffer
		stats, err := trace.ReadTasksOpts(strings.NewReader(clean), trace.ReadOptions{Mode: mode},
			func(r trace.TaskRecord) error {
				fmt.Fprintf(&out, "%+v\n", r)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), stats
	}
	strictOut, _ := render(trace.Strict)
	lenientOut, stats := render(trace.Lenient)
	if strictOut != lenientOut {
		t.Fatal("clean trace renders differently between modes")
	}
	if stats.BadRows != 0 || stats.Partial || stats.ZeroedFields != 0 {
		t.Fatalf("clean trace reported damage: %s", stats.Summary())
	}
}
