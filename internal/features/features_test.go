package features

import (
	"math"
	"testing"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

func paperJob(t testing.TB) *dag.Graph {
	t.Helper()
	res, err := dag.FromTasks("1001388", []dag.TaskSpec{
		{Name: "M1", Duration: 10, Instances: 4, PlanCPU: 100, PlanMem: 0.5},
		{Name: "M3", Duration: 20, Instances: 2, PlanCPU: 100, PlanMem: 0.5},
		{Name: "R2_1", Duration: 5, Instances: 1, PlanCPU: 50, PlanMem: 0.25},
		{Name: "R4_3", Duration: 8, Instances: 1, PlanCPU: 50, PlanMem: 0.25},
		{Name: "R5_4_3_2_1", Duration: 3, Instances: 1, PlanCPU: 50, PlanMem: 0.25},
	}, dag.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestExtract(t *testing.T) {
	f, err := Extract(paperJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 5 || f.Edges != 6 || f.Depth != 3 || f.MaxWidth != 2 {
		t.Fatalf("structure: %+v", f)
	}
	if f.MapTasks != 2 || f.ReduceTasks != 3 || f.JoinTasks != 0 {
		t.Fatalf("types: %+v", f)
	}
	if f.TotalInstances != 9 {
		t.Fatalf("instances = %d", f.TotalInstances)
	}
	if f.TotalDuration != 46 {
		t.Fatalf("duration = %g", f.TotalDuration)
	}
	if f.CriticalPath != 31 { // M3(20)->R4(8)->R5(3)
		t.Fatalf("critical path = %g", f.CriticalPath)
	}
	if f.PlanCPU != 350 || f.PlanMem != 1.75 {
		t.Fatalf("resources: %+v", f)
	}
}

func TestVectorDim(t *testing.T) {
	f, err := Extract(paperJob(t))
	if err != nil {
		t.Fatal(err)
	}
	v := f.Vector()
	if len(v) != VectorDim {
		t.Fatalf("vector dim = %d, want %d", len(v), VectorDim)
	}
	if v[0] != 5 || v[2] != 3 {
		t.Fatalf("vector layout: %v", v)
	}
}

func TestMatrix(t *testing.T) {
	g := paperJob(t)
	m, err := Matrix([]*dag.Graph{g, g})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || len(m[0]) != VectorDim {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
}

func TestExtractEmptyGraph(t *testing.T) {
	f, err := Extract(dag.New("e"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 0 || f.Depth != 0 {
		t.Fatalf("empty features: %+v", f)
	}
}

func TestStandardize(t *testing.T) {
	pts := [][]float64{{1, 100, 5}, {3, 100, 15}, {5, 100, 25}}
	means, stds, err := Standardize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if means[0] != 3 || means[1] != 100 || means[2] != 15 {
		t.Fatalf("means = %v", means)
	}
	// Constant column becomes zeros.
	for i := range pts {
		if pts[i][1] != 0 {
			t.Fatalf("constant column not zeroed: %v", pts[i])
		}
	}
	// Standardized columns: mean 0, unit population variance.
	for col := 0; col < 3; col++ {
		if col == 1 {
			continue
		}
		var mean, ss float64
		for i := range pts {
			mean += pts[i][col]
		}
		mean /= 3
		for i := range pts {
			d := pts[i][col] - mean
			ss += d * d
		}
		if math.Abs(mean) > 1e-12 || math.Abs(ss/3-1) > 1e-12 {
			t.Fatalf("col %d not standardized: mean=%g var=%g", col, mean, ss/3)
		}
	}
	if stds[1] != 0 {
		t.Fatalf("constant column std = %g", stds[1])
	}
}

func TestStandardizeValidation(t *testing.T) {
	if _, _, err := Standardize(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := Standardize([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestExtractJoinCounts(t *testing.T) {
	g := dag.New("j")
	for i, typ := range []taskname.Type{taskname.TypeMap, taskname.TypeMap, taskname.TypeJoin, taskname.TypeReduce} {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]dag.NodeID{{1, 3}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if f.JoinTasks != 1 || f.MaxIn != 2 {
		t.Fatalf("join features: %+v", f)
	}
}
