// Package features extracts per-job statistical feature vectors — the
// representation used by the prior-work baseline the paper contrasts
// with graph learning: clustering jobs by scalar properties (size,
// depth, parallelism, resource demand, duration) instead of topology.
package features

import (
	"fmt"
	"math"

	"jobgraph/internal/dag"
)

// JobFeatures is the scalar profile of one job DAG.
type JobFeatures struct {
	Size     int // number of tasks
	Edges    int
	Depth    int // critical path in tasks
	MaxWidth int // maximum parallelism
	MaxIn    int
	MaxOut   int

	MapTasks    int
	ReduceTasks int
	JoinTasks   int

	TotalInstances int
	TotalDuration  float64 // sum of task durations
	CriticalPath   float64 // duration along the critical path
	PlanCPU        float64 // summed CPU request
	PlanMem        float64 // summed memory request
}

// Extract computes the features of g.
func Extract(g *dag.Graph) (JobFeatures, error) {
	var f JobFeatures
	depth, err := g.Depth()
	if err != nil {
		return f, fmt.Errorf("features: %w", err)
	}
	width, err := g.MaxWidth()
	if err != nil {
		return f, fmt.Errorf("features: %w", err)
	}
	cpd, err := g.CriticalPathDuration()
	if err != nil {
		return f, fmt.Errorf("features: %w", err)
	}
	deg := g.Degrees()
	f.Size = g.Size()
	f.Edges = g.NumEdges()
	f.Depth = depth
	f.MaxWidth = width
	f.MaxIn = deg.MaxIn
	f.MaxOut = deg.MaxOut
	f.CriticalPath = cpd
	types := g.TypeCounts()
	f.MapTasks = types["M"]
	f.ReduceTasks = types["R"]
	f.JoinTasks = types["J"]
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		f.TotalInstances += n.Instances
		f.TotalDuration += n.Duration
		f.PlanCPU += n.PlanCPU
		f.PlanMem += n.PlanMem
	}
	return f, nil
}

// Vector flattens the features into the fixed order used by the
// baseline k-means clustering.
func (f JobFeatures) Vector() []float64 {
	return []float64{
		float64(f.Size),
		float64(f.Edges),
		float64(f.Depth),
		float64(f.MaxWidth),
		float64(f.MaxIn),
		float64(f.MaxOut),
		float64(f.MapTasks),
		float64(f.ReduceTasks),
		float64(f.JoinTasks),
		float64(f.TotalInstances),
		f.TotalDuration,
		f.CriticalPath,
		f.PlanCPU,
		f.PlanMem,
	}
}

// VectorDim is the length of Vector().
const VectorDim = 14

// Matrix extracts and flattens features for a set of graphs.
func Matrix(graphs []*dag.Graph) ([][]float64, error) {
	out := make([][]float64, len(graphs))
	for i, g := range graphs {
		f, err := Extract(g)
		if err != nil {
			return nil, fmt.Errorf("features: graph %d (%s): %w", i, g.JobID, err)
		}
		out[i] = f.Vector()
	}
	return out, nil
}

// Standardize z-scores each column in place (zero mean, unit variance;
// constant columns become all zeros) so k-means is not dominated by
// large-magnitude features like durations. Returns the per-column means
// and standard deviations for applying the same transform to new data.
func Standardize(points [][]float64) (means, stds []float64, err error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("features: standardize over zero points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, nil, fmt.Errorf("features: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	means = make([]float64, d)
	stds = make([]float64, d)
	n := float64(len(points))
	for _, p := range points {
		for j, v := range p {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= n
	}
	for _, p := range points {
		for j, v := range p {
			dv := v - means[j]
			stds[j] += dv * dv
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / n)
	}
	for _, p := range points {
		for j := range p {
			if stds[j] > 0 {
				p[j] = (p[j] - means[j]) / stds[j]
			} else {
				p[j] = 0
			}
		}
	}
	return means, stds, nil
}
