package sampling

import (
	"reflect"
	"testing"

	"jobgraph/internal/tracegen"
)

func TestFilterParallelEquivalence(t *testing.T) {
	jobs := genJobs(t, 3000, 11)
	c := PaperCriteria(window())
	want, wantStats, err := FilterParallel(jobs, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 9} {
		got, gotStats, err := FilterParallel(jobs, c, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", w, gotStats, wantStats)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d candidates, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i].Job.Name != want[i].Job.Name {
				t.Fatalf("workers=%d: candidate %d is %s, want %s",
					w, i, got[i].Job.Name, want[i].Job.Name)
			}
			if !reflect.DeepEqual(got[i].Graph.NodeIDs(), want[i].Graph.NodeIDs()) {
				t.Fatalf("workers=%d: candidate %d graph differs", w, i)
			}
		}
	}
}

// BenchmarkParallelDAGBuild measures the per-job DAG construction fan-
// out (the §IV-B filter, whose cost is dominated by dag.FromTasks) on
// a 3k-job synthetic trace; cmd/benchdiff tracks it across runs.
func BenchmarkParallelDAGBuild(b *testing.B) {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(3000, 1))
	if err != nil {
		b.Fatal(err)
	}
	c := PaperCriteria(window())
	for _, w := range []int{1, 2, 4} {
		b.Run(benchName(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cands, _, err := FilterParallel(jobs, c, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(cands) == 0 {
					b.Fatal("no candidates survived")
				}
			}
		})
	}
}

func benchName(w int) string {
	return map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[w]
}
