package sampling

import (
	"testing"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func genJobs(t testing.TB, n int, seed int64) []trace.Job {
	t.Helper()
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func window() int64 { return 8 * 24 * 3600 * 2 } // generous: arrival + runtime

func TestFilterKeepsOnlyTerminatedDAGs(t *testing.T) {
	jobs := genJobs(t, 2000, 1)
	cands, st, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Input != 2000 {
		t.Fatalf("input = %d", st.Input)
	}
	if st.Kept == 0 || st.Kept != len(cands) {
		t.Fatalf("kept = %d, len = %d", st.Kept, len(cands))
	}
	for _, c := range cands {
		if !c.Job.AllTerminated() {
			t.Fatalf("non-terminated job %s kept", c.Job.Name)
		}
		if c.Graph.Size() < 2 || c.Graph.Size() > 31 {
			t.Fatalf("size %d outside bounds", c.Graph.Size())
		}
	}
	// The generator injects ~12% non-terminated jobs; some must have
	// been rejected for integrity.
	if st.NotTerminated == 0 {
		t.Fatal("no integrity rejections on a trace with failures")
	}
	// ~50% of jobs are flat; they are counted as NonDAG or NoWindow.
	if st.NonDAG == 0 {
		t.Fatal("no non-DAG jobs seen")
	}
	// Accounting must add up.
	total := st.Kept + st.NotTerminated + st.OutsideWindow + st.NoWindow +
		st.NonDAG + st.SizeRejected + st.BuildErrors
	if total != st.Input {
		t.Fatalf("stats don't add up: %+v", st)
	}
}

func TestFilterAvailabilityWindow(t *testing.T) {
	jobs := genJobs(t, 500, 2)
	// A window that excludes everything.
	crit := PaperCriteria(window())
	crit.WindowStart = 1 << 60
	crit.WindowEnd = 1<<60 + 1000
	cands, st, err := Filter(jobs, crit)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("kept %d jobs outside window", len(cands))
	}
	if st.OutsideWindow == 0 {
		t.Fatal("no availability rejections recorded")
	}
}

func TestFilterSizeBounds(t *testing.T) {
	jobs := genJobs(t, 1000, 3)
	crit := PaperCriteria(window())
	crit.MinSize = 10
	crit.MaxSize = 31
	cands, st, err := Filter(jobs, crit)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Graph.Size() < 10 {
			t.Fatalf("size %d below bound", c.Graph.Size())
		}
	}
	if st.SizeRejected == 0 {
		t.Fatal("no size rejections with MinSize=10")
	}
}

func TestFilterValidation(t *testing.T) {
	if _, _, err := Filter(nil, Criteria{WindowStart: 5, WindowEnd: 5}); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := Filter(nil, Criteria{WindowEnd: 10, MinSize: 5, MaxSize: 2}); err == nil {
		t.Fatal("inverted size bounds accepted")
	}
}

func TestSampleDiverseCoversSizesFirst(t *testing.T) {
	jobs := genJobs(t, 5000, 4)
	cands, _, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	poolSizes := make(map[int]bool)
	for _, c := range cands {
		poolSizes[c.Graph.Size()] = true
	}
	n := len(poolSizes) // exactly one per size
	sample := SampleDiverse(cands, n, 7)
	if len(sample) != n {
		t.Fatalf("sample = %d, want %d", len(sample), n)
	}
	seen := make(map[int]bool)
	for _, c := range sample {
		if seen[c.Graph.Size()] {
			t.Fatalf("size %d repeated before covering all sizes", c.Graph.Size())
		}
		seen[c.Graph.Size()] = true
	}
}

func TestSampleDiversePaperScale(t *testing.T) {
	// 100 jobs sampled as in the paper: expect many distinct sizes.
	jobs := genJobs(t, 20000, 5)
	cands, _, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	sample := SampleDiverse(cands, 100, 11)
	if len(sample) != 100 {
		t.Fatalf("sample = %d", len(sample))
	}
	sizes := make(map[int]bool)
	for _, c := range sample {
		sizes[c.Graph.Size()] = true
	}
	if len(sizes) < 15 {
		t.Fatalf("distinct sizes in sample = %d, want >= 15", len(sizes))
	}
}

func TestSampleDiverseEdgeCases(t *testing.T) {
	jobs := genJobs(t, 200, 6)
	cands, _, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	if got := SampleDiverse(cands, 0, 1); got != nil {
		t.Fatal("n=0 should return nil")
	}
	all := SampleDiverse(cands, len(cands)+10, 1)
	if len(all) != len(cands) {
		t.Fatalf("oversample = %d, want %d", len(all), len(cands))
	}
}

func TestSampleDiverseDeterministic(t *testing.T) {
	jobs := genJobs(t, 1000, 7)
	cands, _, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	a := SampleDiverse(cands, 50, 3)
	b := SampleDiverse(cands, 50, 3)
	for i := range a {
		if a[i].Job.Name != b[i].Job.Name {
			t.Fatal("same seed, different samples")
		}
	}
}

func TestGraphs(t *testing.T) {
	jobs := genJobs(t, 300, 8)
	cands, _, err := Filter(jobs, PaperCriteria(window()))
	if err != nil {
		t.Fatal(err)
	}
	gs := Graphs(cands)
	if len(gs) != len(cands) {
		t.Fatal("length mismatch")
	}
	for i := range gs {
		if gs[i] != cands[i].Graph {
			t.Fatal("order not preserved")
		}
	}
}
