// Package sampling implements the paper's job selection criteria
// (§IV-B): Integrity (only fully terminated jobs), Availability (the
// job's execution window lies entirely inside the observed trace
// interval, so durations are trustworthy) and Variability (the sample
// spans many distinct topologies and sizes).
package sampling

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
)

// Filter outcome tallies, keyed by rejection reason — the counter form
// of FilterStats, accumulated across every Filter call in the process
// so metrics.json shows the §IV-B selection funnel.
var (
	obsFilterInput    = obs.Default().Counter("sampling.filter.input")
	obsFilterKept     = obs.Default().Counter("sampling.filter.kept")
	obsRejTerminated  = obs.Default().Counter("sampling.filter.rejected.not_terminated")
	obsRejWindow      = obs.Default().Counter("sampling.filter.rejected.outside_window")
	obsRejNoWindow    = obs.Default().Counter("sampling.filter.rejected.no_window")
	obsRejNonDAG      = obs.Default().Counter("sampling.filter.rejected.non_dag")
	obsRejSize        = obs.Default().Counter("sampling.filter.rejected.size")
	obsRejBuildErrors = obs.Default().Counter("sampling.filter.rejected.build_error")
	obsSampledJobs    = obs.Default().Counter("sampling.sampled_jobs")
)

// record mirrors one Filter outcome into the process-wide counters.
func (st FilterStats) record() {
	obsFilterInput.Add(int64(st.Input))
	obsFilterKept.Add(int64(st.Kept))
	obsRejTerminated.Add(int64(st.NotTerminated))
	obsRejWindow.Add(int64(st.OutsideWindow))
	obsRejNoWindow.Add(int64(st.NoWindow))
	obsRejNonDAG.Add(int64(st.NonDAG))
	obsRejSize.Add(int64(st.SizeRejected))
	obsRejBuildErrors.Add(int64(st.BuildErrors))
}

// Criteria configures eligibility filtering.
type Criteria struct {
	// WindowStart/WindowEnd delimit the observed trace interval;
	// Availability requires every job's [start, end] to fall strictly
	// inside (jobs touching the boundary may be truncated records).
	WindowStart, WindowEnd int64

	// RequireTerminated enforces Integrity.
	RequireTerminated bool

	// MinSize/MaxSize bound the DAG size (tasks after name decoding);
	// the paper studies jobs of 2–31 tasks.
	MinSize, MaxSize int
}

// PaperCriteria returns the selection used in the paper-scale
// experiments for a trace covering [0, window].
func PaperCriteria(window int64) Criteria {
	return Criteria{
		WindowStart:       0,
		WindowEnd:         window,
		RequireTerminated: true,
		MinSize:           2,
		MaxSize:           31,
	}
}

func (c Criteria) validate() error {
	if c.WindowEnd <= c.WindowStart {
		return fmt.Errorf("sampling: empty window [%d,%d]", c.WindowStart, c.WindowEnd)
	}
	if c.MinSize < 0 || (c.MaxSize > 0 && c.MaxSize < c.MinSize) {
		return fmt.Errorf("sampling: bad size bounds [%d,%d]", c.MinSize, c.MaxSize)
	}
	return nil
}

// Candidate pairs a trace job with its decoded DAG.
type Candidate struct {
	Job   trace.Job
	Graph *dag.Graph
}

// FilterStats reports why jobs were rejected.
type FilterStats struct {
	Input         int
	Kept          int
	NotTerminated int // integrity failures
	OutsideWindow int // availability failures
	NoWindow      int // no valid execution interval at all
	NonDAG        int // no decodable dependency structure
	SizeRejected  int
	BuildErrors   int
}

// FilterOptions carries the execution knobs of a filter run — unlike
// Criteria they never change which jobs survive, so they stay out of
// cache fingerprints.
type FilterOptions struct {
	// Workers bounds the filter goroutines (<=0: all CPUs).
	Workers int
	// Arena, when non-nil, resolves the task records' interned name
	// symbols to cached parses during DAG construction (the records must
	// have been read with the same arena on trace.ReadOptions.Arena;
	// stale or zero symbols safely fall back to parsing the name).
	Arena *taskname.Arena
}

// Filter applies Integrity and Availability, building a DAG for every
// surviving job. Jobs whose names fail to decode into any DAG vertices
// are counted as NonDAG and dropped (they are the ~50% independent
// workload, not an error).
func Filter(jobs []trace.Job, c Criteria) ([]Candidate, FilterStats, error) {
	return FilterOpts(jobs, c, FilterOptions{Workers: 1})
}

// FilterParallel is Filter across `workers` goroutines; see FilterOpts.
func FilterParallel(jobs []trace.Job, c Criteria, workers int) ([]Candidate, FilterStats, error) {
	return FilterOpts(jobs, c, FilterOptions{Workers: workers})
}

// FilterOpts is Filter under explicit execution options: the job list
// is cut into contiguous shards filtered independently — per-job DAG
// construction dominates the cost and is embarrassingly parallel — and
// the surviving candidates are merged in shard order, so the output is
// identical at every worker count.
func FilterOpts(jobs []trace.Job, c Criteria, opt FilterOptions) ([]Candidate, FilterStats, error) {
	workers := opt.Workers
	if err := c.validate(); err != nil {
		return nil, FilterStats{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var out []Candidate
	st := FilterStats{Input: len(jobs)}
	if workers > 1 {
		outs := make([][]Candidate, workers)
		stats := make([]FilterStats, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := len(jobs) * w / workers
			hi := len(jobs) * (w + 1) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				outs[w], stats[w] = filterRange(jobs[lo:hi], c, opt.Arena)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			out = append(out, outs[w]...)
			st.NotTerminated += stats[w].NotTerminated
			st.OutsideWindow += stats[w].OutsideWindow
			st.NoWindow += stats[w].NoWindow
			st.NonDAG += stats[w].NonDAG
			st.SizeRejected += stats[w].SizeRejected
			st.BuildErrors += stats[w].BuildErrors
		}
	} else {
		out, st = filterRange(jobs, c, opt.Arena)
		st.Input = len(jobs)
	}
	st.Kept = len(out)
	st.record()
	return out, st, nil
}

// filterRange applies the selection criteria to one contiguous job
// shard; Input/Kept and the obs mirroring are the caller's job.
func filterRange(jobs []trace.Job, c Criteria, arena *taskname.Arena) ([]Candidate, FilterStats) {
	var st FilterStats
	var out []Candidate
	for _, j := range jobs {
		if c.RequireTerminated && !j.AllTerminated() {
			st.NotTerminated++
			continue
		}
		start, end, ok := j.Window()
		if !ok {
			st.NoWindow++
			continue
		}
		if start <= c.WindowStart || end >= c.WindowEnd {
			st.OutsideWindow++
			continue
		}
		specs := make([]dag.TaskSpec, 0, len(j.Tasks))
		for _, t := range j.Tasks {
			specs = append(specs, dag.TaskSpec{
				Name:      t.TaskName,
				Sym:       t.TaskSym,
				Duration:  t.Duration(),
				Instances: t.InstanceNum,
				PlanCPU:   t.PlanCPU,
				PlanMem:   t.PlanMem,
			})
		}
		res, err := dag.FromTasks(j.Name, specs, dag.BuildOptions{SkipMissingDeps: true, Arena: arena})
		if err != nil {
			st.BuildErrors++
			continue
		}
		size := res.Graph.Size()
		if size == 0 {
			st.NonDAG++
			continue
		}
		if size < c.MinSize || (c.MaxSize > 0 && size > c.MaxSize) {
			st.SizeRejected++
			continue
		}
		out = append(out, Candidate{Job: j, Graph: res.Graph})
	}
	return out, st
}

// SampleDiverse draws n candidates preserving Variability without
// destroying the workload's natural size skew: a first pass picks one
// random job per distinct size so every size present in the pool is
// represented (the paper's "17 different size types"), and the
// remainder is filled by uniform random sampling from the rest of the
// pool, which keeps small jobs as dominant in the sample as they are in
// the trace. When n exceeds the pool, the whole pool is returned.
func SampleDiverse(pool []Candidate, n int, seed int64) []Candidate {
	if n <= 0 {
		return nil
	}
	if n >= len(pool) {
		out := append([]Candidate(nil), pool...)
		obsSampledJobs.Add(int64(len(out)))
		return out
	}
	rng := rand.New(rand.NewSource(seed))

	bySize := make(map[int][]Candidate)
	for _, c := range pool {
		bySize[c.Graph.Size()] = append(bySize[c.Graph.Size()], c)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	out := make([]Candidate, 0, n)
	var rest []Candidate
	// Coverage pass, in deterministic (sorted-size) order so the sample
	// is reproducible for a given seed.
	for _, s := range sizes {
		group := bySize[s]
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		if len(out) < n {
			out = append(out, group[0])
			rest = append(rest, group[1:]...)
		} else {
			rest = append(rest, group...)
		}
	}
	// Natural-skew fill.
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for _, c := range rest {
		if len(out) == n {
			break
		}
		out = append(out, c)
	}
	obsSampledJobs.Add(int64(len(out)))
	return out
}

// Graphs extracts the DAGs of a candidate list, in order.
func Graphs(cands []Candidate) []*dag.Graph {
	gs := make([]*dag.Graph, len(cands))
	for i, c := range cands {
		gs[i] = c.Graph
	}
	return gs
}
