// Package ledger persists one JSONL line per instrumented run — the
// obs metrics snapshot keyed by run ID, git SHA, config hash and host
// info — and diffs two snapshots for the perf-regression gate
// (cmd/benchdiff). Where metrics.json is the latest run's state, the
// ledger is the append-only history that makes runs comparable across
// commits and configurations.
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jobgraph/internal/obs"
)

// Schema identifies the ledger line layout; bump on breaking changes.
const Schema = "jobgraph-ledger/v1"

// Host describes the machine a run executed on — enough to know when
// two wall-time measurements are not comparable.
type Host struct {
	Hostname  string `json:"hostname,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Entry is one run's ledger line.
type Entry struct {
	Schema     string       `json:"schema"`
	RunID      string       `json:"run_id"`
	Command    string       `json:"command"`
	StartedAt  time.Time    `json:"started_at"`
	WallMs     float64      `json:"wall_ms"`
	GitSHA     string       `json:"git_sha,omitempty"`
	ConfigHash string       `json:"config_hash"`
	Host       Host         `json:"host"`
	Metrics    obs.Snapshot `json:"metrics"`
	// Warnings records the run's non-fatal degradations (partial
	// ingest, clustering fallbacks, solver retries) so the history
	// distinguishes clean runs from degraded ones.
	Warnings []string `json:"warnings,omitempty"`
	// FlightDump is the path of the flight-recorder dump captured when
	// the run's stall watchdog tripped. Empty on healthy runs; a
	// non-empty value also means the entry's timings describe a stalled
	// run and are not comparable baselines.
	FlightDump string `json:"flight_dump,omitempty"`
}

// Append writes e as one JSON line at the end of the ledger file,
// creating the file and its directory as needed. Each entry is a
// single O_APPEND write fsync'd before Close, so runs from different
// processes land as whole lines and a crash right after a run ends
// cannot lose the entry that run already reported as written.
func Append(path string, e Entry) error {
	if e.Schema == "" {
		e.Schema = Schema
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: marshal entry: %w", err)
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("ledger: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: fsync: %w", err)
	}
	return f.Close()
}

// Read loads every entry in the ledger, oldest first. A damaged FINAL
// line — the torn tail a crash mid-append leaves behind — is skipped
// with the preceding history intact, because losing one interrupted
// run's entry must not make the whole history unreadable. Damage
// anywhere but the tail still fails loudly: that is corruption, not a
// crash artifact.
func Read(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	var badLine int
	var badErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(text, &e); err != nil {
			if badErr != nil {
				// Two bad lines: the first was not a torn tail.
				return nil, fmt.Errorf("ledger: %s:%d: %w", path, badLine, badErr)
			}
			badLine, badErr = line, err
			continue
		}
		if badErr != nil {
			// A good entry after a bad line: mid-file corruption.
			return nil, fmt.Errorf("ledger: %s:%d: %w", path, badLine, badErr)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: scan %s: %w", path, err)
	}
	return out, nil
}

// Find returns the entry with the given run ID.
func Find(entries []Entry, runID string) (Entry, bool) {
	for _, e := range entries {
		if e.RunID == runID {
			return e, true
		}
	}
	return Entry{}, false
}
