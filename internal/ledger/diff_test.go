package ledger

import (
	"strings"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

func TestDiffFlagsTimeRegression(t *testing.T) {
	base := snapshotWith(map[string]float64{"wl.matrix": 40, "cluster.spectral": 20})
	cur := snapshotWith(map[string]float64{"wl.matrix": 80, "cluster.spectral": 21})
	rep := Diff(base, cur, Options{TimePct: 0.25, MinMs: 5})

	if len(rep.Regressions) != 1 || rep.Regressions[0] != "pipeline/wl.matrix" {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
	var found bool
	for _, d := range rep.Stages {
		if d.Path == "pipeline/wl.matrix" {
			found = true
			if !d.Regression || d.TimeDelta < 0.99 || d.TimeDelta > 1.01 {
				t.Fatalf("delta = %+v", d)
			}
		}
		if d.Path == "pipeline/cluster.spectral" && d.Regression {
			t.Fatalf("5%% drift flagged: %+v", d)
		}
	}
	if !found {
		t.Fatal("wl.matrix missing from report")
	}
	if !strings.Contains(rep.String(), "1 stage(s) regressed") {
		t.Fatalf("report text: %s", rep.String())
	}
}

func TestDiffMinMsSuppressesNoise(t *testing.T) {
	base := snapshotWith(map[string]float64{"conflate": 0.5})
	cur := snapshotWith(map[string]float64{"conflate": 2.0}) // 4x slower but tiny
	rep := Diff(base, cur, Options{TimePct: 0.25, MinMs: 5})
	if len(rep.Regressions) != 0 {
		t.Fatalf("sub-threshold stage flagged: %v", rep.Regressions)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	mk := func(allocs uint64) obs.Snapshot {
		r := obs.NewRegistry()
		r.RecordSpan([]string{"pipeline"}, 100*time.Millisecond, allocs)
		return r.Snapshot()
	}
	rep := Diff(mk(1<<20), mk(1<<22), Options{AllocPct: 0.5, MinMs: 5})
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "pipeline" {
		t.Fatalf("alloc regression missed: %v", rep.Regressions)
	}
	rep = Diff(mk(1<<20), mk(1<<20+1<<18), Options{AllocPct: 0.5, MinMs: 5})
	if len(rep.Regressions) != 0 {
		t.Fatalf("25%% alloc growth flagged at 50%% threshold: %v", rep.Regressions)
	}
}

func TestDiffImprovementIsNotRegression(t *testing.T) {
	base := snapshotWith(map[string]float64{"wl.matrix": 80})
	cur := snapshotWith(map[string]float64{"wl.matrix": 40})
	rep := Diff(base, cur, DefaultOptions())
	if len(rep.Regressions) != 0 {
		t.Fatalf("speedup flagged as regression: %v", rep.Regressions)
	}
}

func TestDiffDisjointStages(t *testing.T) {
	base := snapshotWith(map[string]float64{"old.stage": 50})
	cur := snapshotWith(map[string]float64{"new.stage": 50})
	rep := Diff(base, cur, DefaultOptions())
	if len(rep.BaseOnly) != 1 || rep.BaseOnly[0] != "pipeline/old.stage" {
		t.Fatalf("BaseOnly = %v", rep.BaseOnly)
	}
	if len(rep.CurOnly) != 1 || rep.CurOnly[0] != "pipeline/new.stage" {
		t.Fatalf("CurOnly = %v", rep.CurOnly)
	}
	// Disjoint stages never fail the gate.
	if len(rep.Regressions) != 0 {
		t.Fatalf("disjoint stages regressed: %v", rep.Regressions)
	}
}

func TestDiffCountMismatchNoted(t *testing.T) {
	base := snapshotWith(map[string]float64{"wl.matrix": 40})
	cur := snapshotWith(map[string]float64{"wl.matrix": 40})
	// Record the stage a second time in cur.
	r := obs.NewRegistry()
	r.RecordSpan([]string{"pipeline"}, 100*time.Millisecond, 1<<20)
	r.RecordSpan([]string{"pipeline", "wl.matrix"}, 40*time.Millisecond, 1<<10)
	r.RecordSpan([]string{"pipeline", "wl.matrix"}, 40*time.Millisecond, 1<<10)
	cur = r.Snapshot()
	_ = base

	rep := Diff(base, cur, DefaultOptions())
	for _, d := range rep.Stages {
		if d.Path == "pipeline/wl.matrix" {
			if !strings.Contains(d.Note, "count 1 -> 2") {
				t.Fatalf("count mismatch not noted: %+v", d)
			}
			return
		}
	}
	t.Fatal("stage missing")
}
