package ledger

import (
	"fmt"
	"sort"
	"strings"

	"jobgraph/internal/obs"
)

// Options tunes the regression gate.
type Options struct {
	// TimePct is the wall-time regression threshold as a fraction:
	// 0.25 flags stages at least 25% slower than the baseline.
	TimePct float64
	// AllocPct is the allocation regression threshold (0 disables the
	// alloc gate).
	AllocPct float64
	// MinMs ignores stages whose wall time is below this in both runs —
	// sub-millisecond spans are scheduler noise, not regressions.
	MinMs float64
}

// DefaultOptions is the gate used by `make benchdiff` and CI: 25%
// slower or 50% more allocation on a stage that takes at least 5ms.
func DefaultOptions() Options {
	return Options{TimePct: 0.25, AllocPct: 0.50, MinMs: 5}
}

// StageDelta compares one span-tree path across two snapshots.
type StageDelta struct {
	Path       string
	BaseCount  int64
	CurCount   int64
	BaseMs     float64
	CurMs      float64
	TimeDelta  float64 // fractional: (cur-base)/base; +Inf when base is 0
	BaseAllocs uint64
	CurAllocs  uint64
	AllocDelta float64
	Regression bool
	Note       string
}

// Report is the outcome of diffing two snapshots.
type Report struct {
	Stages []StageDelta
	// BaseOnly and CurOnly are span paths present in exactly one run —
	// usually a config difference, reported but never failed on.
	BaseOnly []string
	CurOnly  []string
	// Regressions lists the paths whose delta exceeded a threshold.
	Regressions []string
}

// Diff flattens both snapshots' span trees to slash-joined paths and
// compares per-stage wall time and allocation.
func Diff(base, cur obs.Snapshot, opt Options) Report {
	bm := flatten(base.Spans)
	cm := flatten(cur.Spans)
	var rep Report
	paths := make([]string, 0, len(bm))
	for p := range bm {
		if _, ok := cm[p]; ok {
			paths = append(paths, p)
		} else {
			rep.BaseOnly = append(rep.BaseOnly, p)
		}
	}
	for p := range cm {
		if _, ok := bm[p]; !ok {
			rep.CurOnly = append(rep.CurOnly, p)
		}
	}
	sort.Strings(paths)
	sort.Strings(rep.BaseOnly)
	sort.Strings(rep.CurOnly)

	for _, p := range paths {
		b, c := bm[p], cm[p]
		d := StageDelta{
			Path:       p,
			BaseCount:  b.Count,
			CurCount:   c.Count,
			BaseMs:     b.TotalMs,
			CurMs:      c.TotalMs,
			BaseAllocs: b.AllocBytes,
			CurAllocs:  c.AllocBytes,
			TimeDelta:  frac(b.TotalMs, c.TotalMs),
			AllocDelta: frac(float64(b.AllocBytes), float64(c.AllocBytes)),
		}
		var notes []string
		if b.Count != c.Count {
			notes = append(notes, fmt.Sprintf("count %d -> %d", b.Count, c.Count))
		}
		if b.TotalMs >= opt.MinMs || c.TotalMs >= opt.MinMs {
			if opt.TimePct > 0 && d.TimeDelta > opt.TimePct {
				d.Regression = true
				notes = append(notes, fmt.Sprintf("time +%.0f%% > %.0f%%", 100*d.TimeDelta, 100*opt.TimePct))
			}
			if opt.AllocPct > 0 && d.AllocDelta > opt.AllocPct {
				d.Regression = true
				notes = append(notes, fmt.Sprintf("allocs +%.0f%% > %.0f%%", 100*d.AllocDelta, 100*opt.AllocPct))
			}
		}
		d.Note = strings.Join(notes, ", ")
		if d.Regression {
			rep.Regressions = append(rep.Regressions, p)
		}
		rep.Stages = append(rep.Stages, d)
	}
	return rep
}

// frac returns (cur-base)/base, saturating when the baseline is zero.
func frac(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1e9 // effectively infinite regression vs a zero baseline
	}
	return (cur - base) / base
}

// String renders the report as the table benchdiff prints.
func (rep Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %12s %12s %8s %8s  %s\n",
		"stage", "base ms", "cur ms", "time", "allocs", "note")
	for _, d := range rep.Stages {
		marker := " "
		if d.Regression {
			marker = "!"
		}
		fmt.Fprintf(&sb, "%s%-39s %12.2f %12.2f %+7.1f%% %+7.1f%%  %s\n",
			marker, d.Path, d.BaseMs, d.CurMs, 100*d.TimeDelta, 100*d.AllocDelta, d.Note)
	}
	for _, p := range rep.BaseOnly {
		fmt.Fprintf(&sb, " %-39s only in baseline\n", p)
	}
	for _, p := range rep.CurOnly {
		fmt.Fprintf(&sb, " %-39s only in current\n", p)
	}
	if len(rep.Regressions) == 0 {
		sb.WriteString("no regressions above threshold\n")
	} else {
		fmt.Fprintf(&sb, "%d stage(s) regressed: %s\n",
			len(rep.Regressions), strings.Join(rep.Regressions, ", "))
	}
	return sb.String()
}

// flatten indexes a span forest by slash-joined path.
func flatten(spans []obs.SpanSnapshot) map[string]obs.SpanSnapshot {
	out := make(map[string]obs.SpanSnapshot)
	var walk func(prefix string, s obs.SpanSnapshot)
	walk = func(prefix string, s obs.SpanSnapshot) {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		flat := s
		flat.Children = nil
		out[path] = flat
		for _, c := range s.Children {
			walk(path, c)
		}
	}
	for _, s := range spans {
		walk("", s)
	}
	return out
}
