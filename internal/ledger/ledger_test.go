package ledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

// snapshotWith builds a deterministic snapshot whose pipeline/<stage>
// spans have the given total durations (ms).
func snapshotWith(stages map[string]float64) obs.Snapshot {
	r := obs.NewRegistry()
	r.RecordSpan([]string{"pipeline"}, 100*time.Millisecond, 1<<20)
	for name, ms := range stages {
		r.RecordSpan([]string{"pipeline", name}, time.Duration(ms*float64(time.Millisecond)), 1<<10)
	}
	return r.Snapshot()
}

func testEntry(runID string, stages map[string]float64) Entry {
	return Entry{
		RunID:      runID,
		Command:    "reproduce",
		StartedAt:  time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		WallMs:     1234.5,
		GitSHA:     "abc123",
		ConfigHash: "f00dfeed",
		Host:       Host{OS: "linux", Arch: "amd64", NumCPU: 8, GoVersion: "go1.22"},
		Metrics:    snapshotWith(stages),
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs", "ledger.jsonl")
	a := testEntry("run-a", map[string]float64{"wl.matrix": 50})
	b := testEntry("run-b", map[string]float64{"wl.matrix": 60})
	if err := Append(path, a); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, b); err != nil {
		t.Fatal(err)
	}

	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].RunID != "run-a" || entries[1].RunID != "run-b" {
		t.Fatalf("order: %s, %s", entries[0].RunID, entries[1].RunID)
	}
	// Schema is stamped on append when absent.
	if entries[0].Schema != Schema {
		t.Fatalf("schema = %q", entries[0].Schema)
	}
	if entries[0].Metrics.Schema != obs.SnapshotSchema {
		t.Fatalf("nested snapshot schema = %q", entries[0].Metrics.Schema)
	}
	if entries[1].Host.NumCPU != 8 || entries[1].ConfigHash != "f00dfeed" {
		t.Fatalf("entry fields lost: %+v", entries[1])
	}

	got, ok := Find(entries, "run-b")
	if !ok || got.RunID != "run-b" {
		t.Fatal("Find missed run-b")
	}
	if _, ok := Find(entries, "nope"); ok {
		t.Fatal("Find invented an entry")
	}
}

func TestAppendIsOneLinePerEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, testEntry("r1", nil)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Count(s, "\n") != 1 || !strings.HasSuffix(s, "\n") {
		t.Fatalf("entry is not exactly one newline-terminated line: %q", s)
	}
}

func TestReadRejectsMidFileCorruption(t *testing.T) {
	// A malformed line with more history AFTER it is corruption, not a
	// torn tail: Read must fail loudly rather than drop entries.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	body := "{\"schema\":\"jobgraph-ledger/v1\",\"run_id\":\"r1\"}\n" +
		"not json\n" +
		"{\"schema\":\"jobgraph-ledger/v1\",\"run_id\":\"r2\"}\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}

	// Two consecutive bad lines are also not a single torn tail.
	body = "{\"schema\":\"jobgraph-ledger/v1\",\"run_id\":\"r1\"}\nnot json\nalso not json\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("two malformed lines accepted")
	}
}

func TestReadSkipsTornFinalLine(t *testing.T) {
	// A crash mid-append leaves a partial last line. Read keeps the
	// preceding history instead of making the whole ledger unreadable.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, testEntry("run-a", nil)); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testEntry("run-b", nil)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final entry at a few depths: just its opening brace, the
	// middle of the JSON, and all-but-the-last-byte.
	secondStart := len(full) / 2
	for i := secondStart; i < len(full); i++ {
		if full[i-1] == '\n' {
			secondStart = i
			break
		}
	}
	for _, cut := range []int{secondStart + 1, secondStart + (len(full)-secondStart)/2, len(full) - 2} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		entries, err := Read(path)
		if err != nil {
			t.Fatalf("cut %d: torn tail made ledger unreadable: %v", cut, err)
		}
		if len(entries) != 1 || entries[0].RunID != "run-a" {
			t.Fatalf("cut %d: entries = %+v, want just run-a", cut, entries)
		}
		// The ledger stays appendable after a torn tail... though the torn
		// line remains (Append is O_APPEND-only); history before it is
		// what Read preserves.
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing ledger accepted")
	}
}
