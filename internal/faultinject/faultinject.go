// Package faultinject wraps io.Reader with deterministic, seedable
// fault injectors — truncation, bit flips, short reads, and
// error-at-offset — used by tests and fuzz targets to prove the trace
// readers' lenient and partial-read paths end-to-end without needing a
// corrupt multi-gigabyte fixture on disk.
//
// All injectors are pure stream transforms keyed by absolute byte
// offset, so the same wrapper over the same input always produces the
// same fault — a failing test case replays exactly.
package faultinject

import (
	"io"
	"math/rand"
	"sync"
)

// TruncateAt returns a reader that delivers the first n bytes of r and
// then fails with io.ErrUnexpectedEOF — a file whose tail was lost in
// transfer. The error surfaces on the read that would cross offset n.
func TruncateAt(r io.Reader, n int64) io.Reader {
	return ErrAt(r, n, io.ErrUnexpectedEOF)
}

// CleanTruncateAt returns a reader that delivers the first n bytes of
// r and then reports a normal io.EOF — a file cut exactly at n with no
// trace of the missing tail (what a partial download looks like).
func CleanTruncateAt(r io.Reader, n int64) io.Reader {
	return ErrAt(r, n, io.EOF)
}

// ErrAt returns a reader that delivers the first n bytes of r and then
// fails every subsequent Read with err.
func ErrAt(r io.Reader, n int64, err error) io.Reader {
	return &errAtReader{r: r, remain: n, err: err}
}

type errAtReader struct {
	r      io.Reader
	remain int64
	err    error
}

func (e *errAtReader) Read(p []byte) (int, error) {
	if e.remain <= 0 {
		return 0, e.err
	}
	if int64(len(p)) > e.remain {
		p = p[:e.remain]
	}
	// The fault is deferred to the call after the last good byte, so
	// the caller consumes the full prefix first as a real short file
	// would deliver it.
	n, err := e.r.Read(p)
	e.remain -= int64(n)
	return n, err
}

// FlipBit returns a reader that passes r through unchanged except for
// XOR-ing bit (0–7) of the byte at absolute offset off — single-bit
// rot in the middle of a stream, the classic way a compressed file
// goes bad without changing size.
func FlipBit(r io.Reader, off int64, bit uint) io.Reader {
	return &flipReader{r: r, target: off, mask: 1 << (bit & 7)}
}

type flipReader struct {
	r      io.Reader
	off    int64
	target int64
	mask   byte
}

func (f *flipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.target >= f.off && f.target < f.off+int64(n) {
		p[f.target-f.off] ^= f.mask
	}
	f.off += int64(n)
	return n, err
}

// StallAt returns a reader that delivers the first n bytes of r and
// then blocks every Read until Release is called, after which it
// passes through unchanged — a hung NFS mount or a stuck upstream
// pipe, the failure mode wall-time budgets can't tell apart from slow
// work but a stall watchdog must. Release is idempotent and safe to
// call concurrently with Read.
func StallAt(r io.Reader, n int64) *Stall {
	return &Stall{r: r, remain: n, gate: make(chan struct{})}
}

// Stall is the stalled-reader injector returned by StallAt.
type Stall struct {
	r       io.Reader
	remain  int64
	gate    chan struct{}
	release sync.Once
}

// Release unblocks every pending and future Read.
func (s *Stall) Release() {
	s.release.Do(func() { close(s.gate) })
}

// Stalled reports whether the reader has consumed its pre-stall budget
// and has not been released: the next Read would block.
func (s *Stall) Stalled() bool {
	if s.remain > 0 {
		return false
	}
	select {
	case <-s.gate:
		return false
	default:
		return true
	}
}

func (s *Stall) Read(p []byte) (int, error) {
	if s.remain <= 0 {
		// Budget exhausted: block here until released, exactly like a
		// read on a dead transport that never errors out.
		<-s.gate
		return s.r.Read(p)
	}
	if int64(len(p)) > s.remain {
		p = p[:s.remain]
	}
	n, err := s.r.Read(p)
	s.remain -= int64(n)
	return n, err
}

// ShortReads returns a reader that delivers r's bytes unchanged but in
// deterministic pseudo-random chunks of 1..maxChunk bytes, regardless
// of the buffer offered — the adversarial schedule for code that
// wrongly assumes one Read fills its buffer.
func ShortReads(r io.Reader, maxChunk int, seed int64) io.Reader {
	if maxChunk < 1 {
		maxChunk = 1
	}
	return &shortReader{r: r, max: maxChunk, rng: rand.New(rand.NewSource(seed))}
}

type shortReader struct {
	r   io.Reader
	max int
	rng *rand.Rand
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.r.Read(p)
	}
	k := 1 + s.rng.Intn(s.max)
	if k > len(p) {
		k = len(p)
	}
	return s.r.Read(p[:k])
}
