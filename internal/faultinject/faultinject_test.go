package faultinject

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/trace"
)

func TestTruncateAt(t *testing.T) {
	src := strings.Repeat("x", 100)
	r := TruncateAt(strings.NewReader(src), 40)
	data, err := io.ReadAll(r)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(data) != 40 {
		t.Fatalf("read %d bytes, want 40", len(data))
	}
}

func TestCleanTruncateAt(t *testing.T) {
	r := CleanTruncateAt(strings.NewReader("hello world"), 5)
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("data = %q", data)
	}
}

func TestErrAtCustomError(t *testing.T) {
	boom := errors.New("disk on fire")
	r := ErrAt(strings.NewReader("abcdef"), 3, boom)
	data, err := io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if string(data) != "abc" {
		t.Fatalf("data = %q", data)
	}
}

func TestFlipBit(t *testing.T) {
	src := []byte{0x00, 0x00, 0x00, 0x00}
	r := FlipBit(bytes.NewReader(src), 2, 3)
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x00, 0x08, 0x00}
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %v, want %v", data, want)
	}
}

func TestFlipBitAcrossShortReads(t *testing.T) {
	// The flip must land on the absolute offset even when reads are
	// fragmented arbitrarily around it.
	src := make([]byte, 64)
	r := FlipBit(ShortReads(bytes.NewReader(src), 3, 42), 33, 0)
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		want := byte(0)
		if i == 33 {
			want = 1
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestShortReadsDeterministic(t *testing.T) {
	src := strings.Repeat("abc", 100)
	read := func() []int {
		r := ShortReads(strings.NewReader(src), 7, 99)
		var sizes []int
		buf := make([]byte, 32)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				sizes = append(sizes, n)
			}
			if err != nil {
				break
			}
		}
		return sizes
	}
	a, b := read(), read()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d: %d vs %d", i, a[i], b[i])
		}
	}
	for _, n := range a {
		if n < 1 || n > 7 {
			t.Fatalf("chunk size %d out of [1,7]", n)
		}
	}
}

// TestBitFlipCorruptsGzip proves the injector produces the error shapes
// trace.IsTruncated classifies: a bit flip in the deflate stream
// surfaces as corrupt/truncated input when decompressed.
func TestBitFlipCorruptsGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(strings.Repeat("the quick brown fox\n", 200))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	compressed := buf.Bytes()
	// Flip a bit well inside the deflate payload (past the ~18-byte
	// header, before the 8-byte trailer).
	zr, err := gzip.NewReader(FlipBit(bytes.NewReader(compressed), int64(len(compressed)/2), 1))
	if err != nil {
		t.Fatalf("header should be intact: %v", err)
	}
	_, err = io.ReadAll(zr)
	if err == nil {
		t.Fatal("corrupted stream decompressed cleanly")
	}
	if !trace.IsTruncated(err) {
		t.Fatalf("err %v (%T) not classified as truncated/corrupt", err, err)
	}
}

// TestTruncatedGzip proves truncation of a gzip stream surfaces as
// io.ErrUnexpectedEOF, the signal the partial-read path keys on.
func TestTruncatedGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(strings.Repeat("row,row,row\n", 500))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(CleanTruncateAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()/2)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(zr)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestStallAt proves the stalled reader delivers its prefix, blocks
// pending reads until Release, and passes through afterward.
func TestStallAt(t *testing.T) {
	src := []byte("0123456789abcdef")
	s := StallAt(bytes.NewReader(src), 8)

	prefix := make([]byte, 8)
	if _, err := io.ReadFull(s, prefix); err != nil {
		t.Fatalf("prefix read: %v", err)
	}
	if string(prefix) != "01234567" {
		t.Fatalf("prefix = %q", prefix)
	}
	if !s.Stalled() {
		t.Fatal("reader not stalled after its budget")
	}

	// The next read must block until Release.
	got := make(chan []byte, 1)
	go func() {
		rest, err := io.ReadAll(s)
		if err != nil {
			t.Errorf("post-release read: %v", err)
		}
		got <- rest
	}()
	select {
	case rest := <-got:
		t.Fatalf("read returned %q before Release", rest)
	case <-time.After(20 * time.Millisecond):
	}

	s.Release()
	s.Release() // idempotent
	select {
	case rest := <-got:
		if string(rest) != "89abcdef" {
			t.Fatalf("tail = %q, want %q", rest, "89abcdef")
		}
	case <-time.After(time.Second):
		t.Fatal("read still blocked after Release")
	}
	if s.Stalled() {
		t.Fatal("reader still reports stalled after Release")
	}
}
