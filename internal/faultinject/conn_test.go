package faultinject

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeListen starts a TCP listener on loopback wrapped with faults,
// returning it plus a dial helper.
func pipeListen(t *testing.T, f ListenerFaults) (net.Listener, func() net.Conn) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := f.Wrap(raw)
	t.Cleanup(func() { ln.Close() })
	dial := func() net.Conn {
		c, err := net.Dial("tcp", raw.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return ln, dial
}

func TestWrapInactiveIsIdentity(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if ln := (ListenerFaults{}).Wrap(raw); ln != raw {
		t.Fatal("zero-value faults wrapped the listener")
	}
	if !(ListenerFaults{AcceptStall: time.Second}).Active() {
		t.Fatal("AcceptStall not active")
	}
}

func TestAcceptStallDelaysFirstConns(t *testing.T) {
	ln, dial := pipeListen(t, ListenerFaults{
		AcceptStall:      80 * time.Millisecond,
		AcceptStallConns: 1,
	})

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	start := time.Now()
	dial()
	c1 := <-accepted
	defer c1.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("first accept returned in %v, want >= 80ms stall", d)
	}

	// The second connection is past the stall budget: fast.
	start = time.Now()
	dial()
	c2 := <-accepted
	defer c2.Close()
	if d := time.Since(start); d > 60*time.Millisecond {
		t.Fatalf("second accept took %v; stall leaked past AcceptStallConns", d)
	}
}

func TestReadStallAfterWedgesMidBody(t *testing.T) {
	ln, dial := pipeListen(t, ListenerFaults{ReadStallAfter: 4, ReadStallConns: 1})

	serverSide := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		serverSide <- c
	}()
	client := dial()
	srv := <-serverSide
	defer srv.Close()

	if _, err := client.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}

	// First 4 bytes arrive; the read crossing the boundary blocks.
	buf := make([]byte, 8)
	n, err := io.ReadFull(srv, buf[:4])
	if err != nil || n != 4 {
		t.Fatalf("pre-stall read: %d %v", n, err)
	}

	type res struct {
		n   int
		err error
	}
	got := make(chan res, 1)
	go func() {
		n, err := srv.Read(buf[4:])
		got <- res{n, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("read past the stall returned (%d, %v); should block", r.n, r.err)
	case <-time.After(100 * time.Millisecond):
	}
	// Close unblocks the wedged read instead of leaking its goroutine.
	srv.Close()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the stalled read")
	}
}

func TestSlowReadTrickles(t *testing.T) {
	ln, dial := pipeListen(t, ListenerFaults{
		SlowReadChunk: 2,
		SlowReadDelay: 10 * time.Millisecond,
	})

	serverSide := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		serverSide <- c
	}()
	client := dial()
	srv := <-serverSide
	defer srv.Close()

	msg := []byte("0123456789")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		client.Write(msg)
	}()

	start := time.Now()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// 10 bytes at <=2 per read with 10ms between reads: at least 5 reads
	// and ~50ms of injected delay.
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("10 bytes trickled in %v; slow-read fault not applied", d)
	}
	if string(buf) != string(msg) {
		t.Fatalf("payload corrupted: %q", buf)
	}
}
