// Connection-level fault injectors: deterministic wrappers over
// net.Listener and net.Conn that reproduce the transport failures a
// serving daemon must survive — a stalled accept loop, a client that
// opens a connection and then goes silent mid-body, and a trickling
// sender. Faults are keyed by accepted-connection ordinal and absolute
// byte offset, so the same flag set always wedges the same connection
// at the same byte.
package faultinject

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ListenerFaults describes the connection-level faults to inject. The
// zero value injects nothing.
type ListenerFaults struct {
	// AcceptStall delays Accept by this much for the first
	// AcceptStallConns accepted connections — a listener wedged behind a
	// slow accept queue. Zero AcceptStallConns with a nonzero stall means
	// every connection.
	AcceptStall      time.Duration
	AcceptStallConns int

	// ReadStallAfter, when > 0, makes reads on matching connections
	// block forever after that many bytes — a client that dies mid-body
	// without closing. ReadStallConns bounds how many connections (in
	// accept order) get the fault; 0 means every connection.
	ReadStallAfter int64
	ReadStallConns int

	// SlowReadChunk/SlowReadDelay, when both set, cap each matching
	// connection's reads at SlowReadChunk bytes with SlowReadDelay
	// between them — a trickling sender that keeps a request alive far
	// longer than its size warrants.
	SlowReadChunk int
	SlowReadDelay time.Duration
}

// Active reports whether any fault is configured.
func (f ListenerFaults) Active() bool {
	return f.AcceptStall > 0 || f.ReadStallAfter > 0 ||
		(f.SlowReadChunk > 0 && f.SlowReadDelay > 0)
}

// Wrap returns ln with the configured faults injected. A zero-value
// fault set returns ln unchanged.
func (f ListenerFaults) Wrap(ln net.Listener) net.Listener {
	if !f.Active() {
		return ln
	}
	return &faultListener{Listener: ln, faults: f}
}

type faultListener struct {
	net.Listener
	faults   ListenerFaults
	accepted atomic.Int64 // accepted-connection ordinal, 0-based
}

func (l *faultListener) Accept() (net.Conn, error) {
	ordinal := l.accepted.Add(1) - 1
	if d := l.faults.AcceptStall; d > 0 {
		if n := l.faults.AcceptStallConns; n <= 0 || ordinal < int64(n) {
			time.Sleep(d)
		}
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	f := l.faults
	stallThis := f.ReadStallAfter > 0 &&
		(f.ReadStallConns <= 0 || ordinal < int64(f.ReadStallConns))
	slowThis := f.SlowReadChunk > 0 && f.SlowReadDelay > 0
	if !stallThis && !slowThis {
		return c, nil
	}
	fc := &faultConn{Conn: c}
	if stallThis {
		fc.stallAfter = f.ReadStallAfter
		fc.gate = make(chan struct{})
	}
	if slowThis {
		fc.chunk = f.SlowReadChunk
		fc.delay = f.SlowReadDelay
	}
	return fc, nil
}

// faultConn injects read-side faults on one accepted connection.
type faultConn struct {
	net.Conn
	stallAfter int64 // bytes before the permanent read stall (0: off)
	read       int64
	gate       chan struct{}
	gateOnce   sync.Once

	chunk int // max bytes per read (0: unlimited)
	delay time.Duration
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.stallAfter > 0 && c.read >= c.stallAfter {
		// The mid-body stall: never return, never error — exactly what a
		// silent peer looks like until a deadline fires. Close unblocks
		// it so shutdown does not leak the goroutine.
		<-c.gate
		return 0, net.ErrClosed
	}
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if c.chunk > 0 && len(p) > c.chunk {
		p = p[:c.chunk]
	}
	if c.stallAfter > 0 && int64(len(p)) > c.stallAfter-c.read {
		p = p[:c.stallAfter-c.read]
	}
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *faultConn) Close() error {
	if c.gate != nil {
		c.gateOnce.Do(func() { close(c.gate) })
	}
	return c.Conn.Close()
}
