package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"strings"
	"testing"

	"jobgraph/internal/faultinject"
)

// goodRow is a well-formed batch_task line usable as filler.
const goodRow = "M1,1,j_1,1,Terminated,100,200,50,0.5\n"

func readLenient(t *testing.T, in string, opt ReadOptions) ([]TaskRecord, ReadStats, error) {
	t.Helper()
	opt.Mode = Lenient
	var recs []TaskRecord
	stats, err := ReadTasksOpts(strings.NewReader(in), opt, func(r TaskRecord) error {
		recs = append(recs, r)
		return nil
	})
	return recs, stats, err
}

func TestLenientSkipsMalformedRows(t *testing.T) {
	in := goodRow +
		"M2,xx,j_1,1,Terminated,1,2,1,1\n" + // numeric_parse
		"short,row\n" + // column_count
		goodRow +
		"M3,1,,1,Terminated,1,2,1,1\n" + // validation: empty job
		goodRow
	recs, stats, err := readLenient(t, in, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || stats.Rows != 3 {
		t.Fatalf("rows = %d (stats %d), want 3", len(recs), stats.Rows)
	}
	if stats.BadRows != 3 {
		t.Fatalf("bad rows = %d, want 3: %s", stats.BadRows, stats.Summary())
	}
	want := map[ErrClass]int64{ErrClassNumeric: 1, ErrClassColumns: 1, ErrClassValidation: 1}
	for c, n := range want {
		if stats.ByClass[c] != n {
			t.Errorf("class %s = %d, want %d", c, stats.ByClass[c], n)
		}
	}
}

func TestLenientAbsoluteBudget(t *testing.T) {
	in := strings.Repeat("bad,row\n", 5) + goodRow
	_, stats, err := readLenient(t, in, ReadOptions{MaxBadRows: 3})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if be.Table != "batch_task" || stats.BadRows != 4 {
		t.Fatalf("budget error %+v, stats %s", be, stats.Summary())
	}
	if be.Last == nil || be.Last.Class != ErrClassColumns {
		t.Fatalf("last row error = %+v", be.Last)
	}
}

func TestLenientRatioBudgetAtEOF(t *testing.T) {
	// 2 bad of 12 total = 16.7% > 10%: the end-of-stream check must
	// catch it even though the file is far below ratioMinRows.
	in := strings.Repeat(goodRow, 10) + "bad,row\n" + "worse,row\n"
	_, _, err := readLenient(t, in, ReadOptions{MaxBadRatio: 0.10})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	// 2 bad of 22 total = 9.1% <= 10% passes.
	_, stats, err := readLenient(t, strings.Repeat(goodRow, 20)+"bad,row\n"+"worse,row\n",
		ReadOptions{MaxBadRatio: 0.10})
	if err != nil {
		t.Fatalf("under-ratio read failed: %v (%s)", err, stats.Summary())
	}
}

func TestLenientRatioBudgetMidStream(t *testing.T) {
	// All-bad input must abort once ratioMinRows records have been
	// seen, not stream millions of rejects to the end.
	in := strings.Repeat("bad,row\n", 5000)
	_, stats, err := readLenient(t, in, ReadOptions{MaxBadRatio: 0.01})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if stats.BadRows > ratioMinRows {
		t.Fatalf("read %d bad rows before aborting, want <= %d", stats.BadRows, ratioMinRows)
	}
}

func TestNonFiniteStrictRejected(t *testing.T) {
	for _, in := range []string{
		"M1,1,j_1,1,Terminated,1,2,NaN,0\n",
		"M1,1,j_1,1,Terminated,1,2,0,+Inf\n",
		"M1,1,j_1,1,Terminated,1,2,-Inf,0\n",
	} {
		err := ReadTasks(strings.NewReader(in), func(TaskRecord) error { return nil })
		var re *RowError
		if !errors.As(err, &re) || re.Class != ErrClassNonFinite {
			t.Errorf("%q: err = %v, want non_finite RowError", in, err)
		}
	}
}

func TestNonFiniteLenientZeroedAndKept(t *testing.T) {
	in := "M1,1,j_1,1,Terminated,1,2,NaN,Inf\n" + goodRow
	recs, stats, err := readLenient(t, in, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The poisoned row is kept with its non-finite fields zeroed.
	if len(recs) != 2 || stats.BadRows != 0 {
		t.Fatalf("rows=%d bad=%d, want 2/0", len(recs), stats.BadRows)
	}
	if recs[0].PlanCPU != 0 || recs[0].PlanMem != 0 {
		t.Fatalf("non-finite fields not zeroed: %+v", recs[0])
	}
	if stats.ZeroedFields != 2 {
		t.Fatalf("zeroed fields = %d, want 2", stats.ZeroedFields)
	}
}

func TestValidationKinds(t *testing.T) {
	for _, tc := range []struct {
		rec  TaskRecord
		kind string
	}{
		{TaskRecord{TaskName: "M1"}, "empty_job_name"},
		{TaskRecord{JobName: "j"}, "empty_task_name"},
		{TaskRecord{TaskName: "M1", JobName: "j", InstanceNum: -1}, "negative_instances"},
		{TaskRecord{TaskName: "M1", JobName: "j", EndTime: -1}, "negative_timestamp"},
	} {
		var ve *ValidationError
		if err := tc.rec.Validate(); !errors.As(err, &ve) || ve.Kind != tc.kind {
			t.Errorf("%+v: got %v, want kind %s", tc.rec, err, tc.kind)
		}
	}
	var ve *ValidationError
	if err := (InstanceRecord{InstanceName: "i"}).Validate(); !errors.As(err, &ve) || ve.Kind != "missing_names" {
		t.Errorf("instance: %v", ve)
	}
	if err := (MachineRecord{}).Validate(); !errors.As(err, &ve) || ve.Kind != "missing_id" {
		t.Errorf("machine: %v", ve)
	}
}

// TestStrictErrorLineNumbers is the regression test for the historical
// off-by-one: the old hand-kept row counter disagreed with the file's
// line numbers as soon as a quoted record spanned multiple lines. The
// reported position must be the line the bad record starts on.
func TestStrictErrorLineNumbers(t *testing.T) {
	// Record 1 spans lines 1-2 (quoted embedded newline); record 2
	// starts on line 3 and is malformed.
	in := "\"M\n1\",1,j_1,1,Terminated,1,2,1,1\nM2,xx,j_1,1,Terminated,1,2,1,1\n"
	err := ReadTasks(strings.NewReader(in), func(TaskRecord) error { return nil })
	var re *RowError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RowError", err)
	}
	if re.Line != 3 {
		t.Fatalf("reported line %d, want 3 (error: %v)", re.Line, re)
	}
	if re.Class != ErrClassNumeric {
		t.Fatalf("class = %s, want numeric_parse", re.Class)
	}
	wantOffset := int64(len("\"M\n1\",1,j_1,1,Terminated,1,2,1,1\n"))
	if re.Offset != wantOffset {
		t.Fatalf("offset = %d, want %d", re.Offset, wantOffset)
	}
}

func TestQuarantineSidecar(t *testing.T) {
	badA := "M2,xx,j_1,1,Terminated,1,2,1,1\n"
	badB := "onlythree,fields,here\n"
	in := goodRow + badA + goodRow + badB
	var q bytes.Buffer
	recs, stats, err := readLenient(t, in, ReadOptions{Quarantine: &q})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.Quarantined != 2 {
		t.Fatalf("rows=%d quarantined=%d, want 2/2", len(recs), stats.Quarantined)
	}
	out := q.String()
	// Verbatim row bytes, each preceded by a provenance comment.
	if !strings.Contains(out, badA) || !strings.Contains(out, badB) {
		t.Fatalf("quarantine missing verbatim rows:\n%s", out)
	}
	if !strings.Contains(out, "# table=batch_task line=2 offset=37 class=numeric_parse") {
		t.Fatalf("quarantine missing provenance:\n%s", out)
	}
	if !strings.Contains(out, "line=4") {
		t.Fatalf("second provenance line wrong:\n%s", out)
	}
}

func gzipTasks(t *testing.T, n int) []byte {
	t.Helper()
	recs := make([]TaskRecord, n)
	for i := range recs {
		recs[i] = TaskRecord{TaskName: fmt.Sprintf("M%d", i+1), InstanceNum: 1,
			JobName: fmt.Sprintf("j_%d", i/3), TaskType: "1", Status: StatusTerminated,
			StartTime: int64(i), EndTime: int64(i + 10), PlanCPU: 50, PlanMem: 0.5}
	}
	var plain bytes.Buffer
	if err := WriteTasks(&plain, recs); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return gz.Bytes()
}

func TestPartialReadTruncatedGzip(t *testing.T) {
	compressed := gzipTasks(t, 2000)
	open := func() *gzip.Reader {
		zr, err := gzip.NewReader(faultinject.CleanTruncateAt(bytes.NewReader(compressed), int64(len(compressed)*3/4)))
		if err != nil {
			t.Fatal(err)
		}
		return zr
	}

	// Strict: the truncation is fatal, as before.
	err := ReadTasks(open(), func(TaskRecord) error { return nil })
	if err == nil || !IsTruncated(errors.Unwrap(err)) && !IsTruncated(err) {
		t.Fatalf("strict err = %v, want truncation", err)
	}

	// Lenient: the rows before the cut survive, flagged Partial.
	var recs []TaskRecord
	stats, err := ReadTasksOpts(open(), ReadOptions{Mode: Lenient}, func(r TaskRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial || stats.PartialCause == nil {
		t.Fatalf("partial not flagged: %s", stats.Summary())
	}
	if len(recs) == 0 || len(recs) >= 2000 {
		t.Fatalf("recovered %d rows, want (0, 2000)", len(recs))
	}
	// Every recovered row is intact.
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("recovered corrupt row: %v", err)
		}
	}
}

func TestPartialReadBitFlippedGzip(t *testing.T) {
	compressed := gzipTasks(t, 2000)
	zr, err := gzip.NewReader(faultinject.FlipBit(bytes.NewReader(compressed), int64(len(compressed)/2), 2))
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	stats, err := ReadTasksOpts(zr, ReadOptions{Mode: Lenient}, func(TaskRecord) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("lenient read of corrupt stream failed: %v", err)
	}
	if !stats.Partial {
		t.Fatalf("corruption not flagged partial: %s", stats.Summary())
	}
	if rows == 0 {
		t.Fatal("no rows recovered before the corruption point")
	}
}

func TestReadJobsOptsPartial(t *testing.T) {
	compressed := gzipTasks(t, 900)
	zr, err := gzip.NewReader(faultinject.CleanTruncateAt(bytes.NewReader(compressed), int64(len(compressed)/2)))
	if err != nil {
		t.Fatal(err)
	}
	jobs, stats, err := ReadJobsOpts(zr, ReadOptions{Mode: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial || len(jobs) == 0 {
		t.Fatalf("jobs=%d partial=%v", len(jobs), stats.Partial)
	}
}

func TestStrictOptsMatchesReadTasks(t *testing.T) {
	// The Opts plumbing must not change what Strict mode accepts.
	var buf bytes.Buffer
	if err := WriteTasks(&buf, sampleTasks()); err != nil {
		t.Fatal(err)
	}
	in := buf.String()
	var a, b []TaskRecord
	if err := ReadTasks(strings.NewReader(in), func(r TaskRecord) error { a = append(a, r); return nil }); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadTasksOpts(strings.NewReader(in), ReadOptions{}, func(r TaskRecord) error { b = append(b, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || stats.Rows != int64(len(a)) || stats.BadRows != 0 {
		t.Fatalf("strict mismatch: %d vs %d (%s)", len(a), len(b), stats.Summary())
	}
}

func TestLenientShortReads(t *testing.T) {
	// The reader stack must be agnostic to read fragmentation.
	in := strings.Repeat(goodRow, 50) + "bad,row\n" + strings.Repeat(goodRow, 50)
	var rows int
	stats, err := ReadTasksOpts(faultinject.ShortReads(strings.NewReader(in), 3, 7),
		ReadOptions{Mode: Lenient}, func(TaskRecord) error { rows++; return nil })
	if err != nil || rows != 100 || stats.BadRows != 1 {
		t.Fatalf("rows=%d err=%v stats=%s", rows, err, stats.Summary())
	}
}

func TestLenientInstancesAndMachines(t *testing.T) {
	instIn := "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,90,0.2,0.4\n" +
		"i_2,M1,j_1,1,Terminated,10,20,m_1,9,4,50,90,0.2,0.4\n" + // bad sequence
		"i_3,M1,j_1,1,Terminated,10,20,m_1,1,4,NaN,90,0.2,0.4\n" // NaN zeroed, kept
	var inst []InstanceRecord
	stats, err := ReadInstancesOpts(strings.NewReader(instIn), ReadOptions{Mode: Lenient},
		func(r InstanceRecord) error { inst = append(inst, r); return nil })
	if err != nil || len(inst) != 2 {
		t.Fatalf("instances=%d err=%v", len(inst), err)
	}
	if stats.ByClass[ErrClassValidation] != 1 || stats.ZeroedFields != 1 {
		t.Fatalf("instance stats: %s", stats.Summary())
	}
	if inst[1].CPUAvg != 0 {
		t.Fatalf("NaN cpu_avg not zeroed: %+v", inst[1])
	}

	machIn := "m_1,0,fd_1,rack_1,96,1,USING\n" +
		"m_2,0,fd_1,rack_1,-2,1,USING\n" + // negative capacity
		"m_3,zz,fd_1,rack_1,96,1,USING\n" // bad timestamp
	var mach []MachineRecord
	mstats, err := ReadMachinesOpts(strings.NewReader(machIn), ReadOptions{Mode: Lenient},
		func(m MachineRecord) error { mach = append(mach, m); return nil })
	if err != nil || len(mach) != 1 {
		t.Fatalf("machines=%d err=%v", len(mach), err)
	}
	if mstats.BadRows != 2 {
		t.Fatalf("machine stats: %s", mstats.Summary())
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	_, _, err := readLenient(t, strings.Repeat("bad,row\n", 3), ReadOptions{MaxBadRows: 1})
	if err == nil || !strings.Contains(err.Error(), "error budget exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadStatsSummary(t *testing.T) {
	s := ReadStats{Rows: 10, BadRows: 2,
		ByClass: map[ErrClass]int64{ErrClassNumeric: 2}, Quarantined: 2, Partial: true,
		PartialCause: errors.New("unexpected EOF")}
	got := s.Summary()
	for _, want := range []string{"rows=10", "bad=2", "numeric_parse=2", "quarantined=2", "partial=true"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
}
