package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"jobgraph/internal/obs"
)

// Column counts of the two header-less tables.
const (
	taskColumns     = 9
	instanceColumns = 14
)

// Parse volume and failure tallies; millions of rows stream through
// here on a real trace, so these are the first numbers to look at when
// a load is slow or lossy.
var (
	obsTaskRows    = obs.Default().Counter("trace.task_rows_parsed")
	obsTaskRowErrs = obs.Default().Counter("trace.task_row_errors")
	obsInstRows    = obs.Default().Counter("trace.instance_rows_parsed")
	obsInstRowErrs = obs.Default().Counter("trace.instance_row_errors")
)

// ReadTasks streams batch_task rows from r in Strict mode, invoking fn
// for each record. fn returning an error aborts the scan with that
// error. Empty numeric fields (common in the raw trace) parse as zero.
func ReadTasks(r io.Reader, fn func(TaskRecord) error) error {
	_, err := ReadTasksOpts(r, ReadOptions{}, fn)
	return err
}

// ReadTasksOpts streams batch_task rows from r under opt. In Lenient
// mode malformed rows are skipped, classified and tallied on the
// returned stats (and quarantined when configured) until the error
// budget is exceeded, and a truncated input stream ends the read with
// stats.Partial set instead of an error.
//
// With opt.Arena set, each accepted record is interned before delivery:
// TaskSym/JobSym carry the symbols, TaskName/JobName point at the
// arena's canonical strings, Status and TaskType are canonicalized —
// so records retain nothing of the per-row CSV buffers. Interning runs
// at the serialized delivery point of both decoders, so symbol values
// are identical at every Workers setting.
func ReadTasksOpts(r io.Reader, opt ReadOptions, fn func(TaskRecord) error) (ReadStats, error) {
	deliver := fn
	if a := opt.Arena; a != nil {
		deliver = func(rec TaskRecord) error {
			rec.TaskSym, rec.TaskName = a.Intern(rec.TaskName)
			rec.JobSym, rec.JobName = a.Intern(rec.JobName)
			_, rec.TaskType = a.Intern(rec.TaskType)
			rec.Status = rec.Status.canonical()
			if !rec.Status.Known() {
				// Unknown states are rare; intern them too so no code
				// path retains the CSV record buffer.
				_, s := a.Intern(string(rec.Status))
				rec.Status = Status(s)
			}
			return fn(rec)
		}
	}
	return readTable(r, tableSpec[TaskRecord]{
		name:    "batch_task",
		columns: taskColumns,
		parse:   parseTask,
		rowsOK:  obsTaskRows,
		rowsBad: obsTaskRowErrs,
	}, opt, deliver)
}

// parseTask decodes one batch_task row:
// task_name,instance_num,job_name,task_type,status,start_time,end_time,plan_cpu,plan_mem
func parseTask(row []string, ctx *rowCtx) (TaskRecord, error) {
	var rec TaskRecord
	rec.TaskName = row[0]
	n, err := atoiEmpty(row[1], "instance_num")
	if err != nil {
		return rec, err
	}
	rec.InstanceNum = n
	rec.JobName = row[2]
	rec.TaskType = row[3]
	rec.Status = Status(row[4])
	if rec.StartTime, err = atoi64Empty(row[5], "start_time"); err != nil {
		return rec, err
	}
	if rec.EndTime, err = atoi64Empty(row[6], "end_time"); err != nil {
		return rec, err
	}
	if rec.PlanCPU, err = ctx.float(row[7], "plan_cpu"); err != nil {
		return rec, err
	}
	if rec.PlanMem, err = ctx.float(row[8], "plan_mem"); err != nil {
		return rec, err
	}
	return rec, rec.Validate()
}

// WriteTasks encodes records to w in trace column order.
func WriteTasks(w io.Writer, records []TaskRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, taskColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.TaskName
		row[1] = strconv.Itoa(rec.InstanceNum)
		row[2] = rec.JobName
		row[3] = rec.TaskType
		row[4] = string(rec.Status)
		row[5] = strconv.FormatInt(rec.StartTime, 10)
		row[6] = strconv.FormatInt(rec.EndTime, 10)
		row[7] = formatFloat(rec.PlanCPU)
		row[8] = formatFloat(rec.PlanMem)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInstances streams batch_instance rows from r in Strict mode.
func ReadInstances(r io.Reader, fn func(InstanceRecord) error) error {
	_, err := ReadInstancesOpts(r, ReadOptions{}, fn)
	return err
}

// ReadInstancesOpts streams batch_instance rows from r under opt; see
// ReadTasksOpts for the Lenient-mode contract.
func ReadInstancesOpts(r io.Reader, opt ReadOptions, fn func(InstanceRecord) error) (ReadStats, error) {
	return readTable(r, tableSpec[InstanceRecord]{
		name:    "batch_instance",
		columns: instanceColumns,
		parse:   parseInstance,
		rowsOK:  obsInstRows,
		rowsBad: obsInstRowErrs,
	}, opt, fn)
}

// parseInstance decodes one batch_instance row:
// instance_name,task_name,job_name,task_type,status,start_time,end_time,
// machine_id,seq_no,total_seq_no,cpu_avg,cpu_max,mem_avg,mem_max
func parseInstance(row []string, ctx *rowCtx) (InstanceRecord, error) {
	var rec InstanceRecord
	var err error
	rec.InstanceName = row[0]
	rec.TaskName = row[1]
	rec.JobName = row[2]
	rec.TaskType = row[3]
	rec.Status = Status(row[4])
	if rec.StartTime, err = atoi64Empty(row[5], "start_time"); err != nil {
		return rec, err
	}
	if rec.EndTime, err = atoi64Empty(row[6], "end_time"); err != nil {
		return rec, err
	}
	rec.MachineID = row[7]
	if rec.SeqNo, err = atoiEmpty(row[8], "seq_no"); err != nil {
		return rec, err
	}
	if rec.TotalSeqNo, err = atoiEmpty(row[9], "total_seq_no"); err != nil {
		return rec, err
	}
	if rec.CPUAvg, err = ctx.float(row[10], "cpu_avg"); err != nil {
		return rec, err
	}
	if rec.CPUMax, err = ctx.float(row[11], "cpu_max"); err != nil {
		return rec, err
	}
	if rec.MemAvg, err = ctx.float(row[12], "mem_avg"); err != nil {
		return rec, err
	}
	if rec.MemMax, err = ctx.float(row[13], "mem_max"); err != nil {
		return rec, err
	}
	return rec, rec.Validate()
}

// WriteInstances encodes records to w in trace column order.
func WriteInstances(w io.Writer, records []InstanceRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, instanceColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.InstanceName
		row[1] = rec.TaskName
		row[2] = rec.JobName
		row[3] = rec.TaskType
		row[4] = string(rec.Status)
		row[5] = strconv.FormatInt(rec.StartTime, 10)
		row[6] = strconv.FormatInt(rec.EndTime, 10)
		row[7] = rec.MachineID
		row[8] = strconv.Itoa(rec.SeqNo)
		row[9] = strconv.Itoa(rec.TotalSeqNo)
		row[10] = formatFloat(rec.CPUAvg)
		row[11] = formatFloat(rec.CPUMax)
		row[12] = formatFloat(rec.MemAvg)
		row[13] = formatFloat(rec.MemMax)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func atoiEmpty(s, field string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, &fieldError{field: field, class: ErrClassNumeric, err: err}
	}
	return n, nil
}

func atoi64Empty(s, field string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, &fieldError{field: field, class: ErrClassNumeric, err: err}
	}
	return n, nil
}

// float parses a trace float field. Empty parses as zero (the raw
// trace leaves many resource fields blank). NaN and ±Inf — which
// strconv.ParseFloat happily accepts — are rejected in Strict mode and
// zeroed-plus-tallied in Lenient mode so a poisoned plan_cpu can never
// propagate into resource statistics.
func (c *rowCtx) float(s, field string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, &fieldError{field: field, class: ErrClassNumeric, err: err}
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		if c.lenient {
			c.nonFinite++
			return 0, nil
		}
		return 0, &fieldError{field: field, class: ErrClassNonFinite,
			err: fmt.Errorf("non-finite value %q", s)}
	}
	return f, nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
