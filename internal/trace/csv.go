package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"jobgraph/internal/obs"
)

// Column counts of the two header-less tables.
const (
	taskColumns     = 9
	instanceColumns = 14
)

// Parse volume and failure tallies; millions of rows stream through
// here on a real trace, so these are the first numbers to look at when
// a load is slow or lossy.
var (
	obsTaskRows    = obs.Default().Counter("trace.task_rows_parsed")
	obsTaskRowErrs = obs.Default().Counter("trace.task_row_errors")
	obsInstRows    = obs.Default().Counter("trace.instance_rows_parsed")
	obsInstRowErrs = obs.Default().Counter("trace.instance_row_errors")
)

// ReadTasks streams batch_task rows from r, invoking fn for each record.
// fn returning an error aborts the scan with that error. Empty numeric
// fields (common in the raw trace) parse as zero.
func ReadTasks(r io.Reader, fn func(TaskRecord) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = taskColumns
	cr.ReuseRecord = true
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			obsTaskRowErrs.Add(1)
			return fmt.Errorf("trace: batch_task row %d: %w", line+1, err)
		}
		line++
		rec, err := parseTask(row)
		if err != nil {
			obsTaskRowErrs.Add(1)
			return fmt.Errorf("trace: batch_task row %d: %w", line, err)
		}
		obsTaskRows.Add(1)
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// parseTask decodes one batch_task row:
// task_name,instance_num,job_name,task_type,status,start_time,end_time,plan_cpu,plan_mem
func parseTask(row []string) (TaskRecord, error) {
	var rec TaskRecord
	rec.TaskName = row[0]
	n, err := atoiEmpty(row[1])
	if err != nil {
		return rec, fmt.Errorf("instance_num: %w", err)
	}
	rec.InstanceNum = n
	rec.JobName = row[2]
	rec.TaskType = row[3]
	rec.Status = Status(row[4])
	if rec.StartTime, err = atoi64Empty(row[5]); err != nil {
		return rec, fmt.Errorf("start_time: %w", err)
	}
	if rec.EndTime, err = atoi64Empty(row[6]); err != nil {
		return rec, fmt.Errorf("end_time: %w", err)
	}
	if rec.PlanCPU, err = atofEmpty(row[7]); err != nil {
		return rec, fmt.Errorf("plan_cpu: %w", err)
	}
	if rec.PlanMem, err = atofEmpty(row[8]); err != nil {
		return rec, fmt.Errorf("plan_mem: %w", err)
	}
	return rec, rec.Validate()
}

// WriteTasks encodes records to w in trace column order.
func WriteTasks(w io.Writer, records []TaskRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, taskColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.TaskName
		row[1] = strconv.Itoa(rec.InstanceNum)
		row[2] = rec.JobName
		row[3] = rec.TaskType
		row[4] = string(rec.Status)
		row[5] = strconv.FormatInt(rec.StartTime, 10)
		row[6] = strconv.FormatInt(rec.EndTime, 10)
		row[7] = formatFloat(rec.PlanCPU)
		row[8] = formatFloat(rec.PlanMem)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInstances streams batch_instance rows from r.
func ReadInstances(r io.Reader, fn func(InstanceRecord) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = instanceColumns
	cr.ReuseRecord = true
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			obsInstRowErrs.Add(1)
			return fmt.Errorf("trace: batch_instance row %d: %w", line+1, err)
		}
		line++
		rec, err := parseInstance(row)
		if err != nil {
			obsInstRowErrs.Add(1)
			return fmt.Errorf("trace: batch_instance row %d: %w", line, err)
		}
		obsInstRows.Add(1)
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// parseInstance decodes one batch_instance row:
// instance_name,task_name,job_name,task_type,status,start_time,end_time,
// machine_id,seq_no,total_seq_no,cpu_avg,cpu_max,mem_avg,mem_max
func parseInstance(row []string) (InstanceRecord, error) {
	var rec InstanceRecord
	var err error
	rec.InstanceName = row[0]
	rec.TaskName = row[1]
	rec.JobName = row[2]
	rec.TaskType = row[3]
	rec.Status = Status(row[4])
	if rec.StartTime, err = atoi64Empty(row[5]); err != nil {
		return rec, fmt.Errorf("start_time: %w", err)
	}
	if rec.EndTime, err = atoi64Empty(row[6]); err != nil {
		return rec, fmt.Errorf("end_time: %w", err)
	}
	rec.MachineID = row[7]
	if rec.SeqNo, err = atoiEmpty(row[8]); err != nil {
		return rec, fmt.Errorf("seq_no: %w", err)
	}
	if rec.TotalSeqNo, err = atoiEmpty(row[9]); err != nil {
		return rec, fmt.Errorf("total_seq_no: %w", err)
	}
	if rec.CPUAvg, err = atofEmpty(row[10]); err != nil {
		return rec, fmt.Errorf("cpu_avg: %w", err)
	}
	if rec.CPUMax, err = atofEmpty(row[11]); err != nil {
		return rec, fmt.Errorf("cpu_max: %w", err)
	}
	if rec.MemAvg, err = atofEmpty(row[12]); err != nil {
		return rec, fmt.Errorf("mem_avg: %w", err)
	}
	if rec.MemMax, err = atofEmpty(row[13]); err != nil {
		return rec, fmt.Errorf("mem_max: %w", err)
	}
	return rec, rec.Validate()
}

// WriteInstances encodes records to w in trace column order.
func WriteInstances(w io.Writer, records []InstanceRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, instanceColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.InstanceName
		row[1] = rec.TaskName
		row[2] = rec.JobName
		row[3] = rec.TaskType
		row[4] = string(rec.Status)
		row[5] = strconv.FormatInt(rec.StartTime, 10)
		row[6] = strconv.FormatInt(rec.EndTime, 10)
		row[7] = rec.MachineID
		row[8] = strconv.Itoa(rec.SeqNo)
		row[9] = strconv.Itoa(rec.TotalSeqNo)
		row[10] = formatFloat(rec.CPUAvg)
		row[11] = formatFloat(rec.CPUMax)
		row[12] = formatFloat(rec.MemAvg)
		row[13] = formatFloat(rec.MemMax)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func atoiEmpty(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func atoi64Empty(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func atofEmpty(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
