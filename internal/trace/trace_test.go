package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTasks() []TaskRecord {
	return []TaskRecord{
		{TaskName: "M1", InstanceNum: 4, JobName: "j_1", TaskType: "1",
			Status: StatusTerminated, StartTime: 100, EndTime: 160, PlanCPU: 100, PlanMem: 0.5},
		{TaskName: "R2_1", InstanceNum: 1, JobName: "j_1", TaskType: "1",
			Status: StatusTerminated, StartTime: 160, EndTime: 200, PlanCPU: 50, PlanMem: 0.3},
		{TaskName: "task_xyz", InstanceNum: 1, JobName: "j_2", TaskType: "2",
			Status: StatusRunning, StartTime: 90, EndTime: 0, PlanCPU: 0, PlanMem: 0},
	}
}

func TestTaskRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleTasks()
	if err := WriteTasks(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got []TaskRecord
	if err := ReadTasks(&buf, func(r TaskRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestTaskRoundTripProperty(t *testing.T) {
	statuses := []Status{StatusTerminated, StatusFailed, StatusRunning, StatusWaiting}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		recs := make([]TaskRecord, n)
		for i := range recs {
			recs[i] = TaskRecord{
				TaskName:    "M" + string(rune('1'+rng.Intn(9))),
				InstanceNum: rng.Intn(100),
				JobName:     "j_x",
				TaskType:    "1",
				Status:      statuses[rng.Intn(len(statuses))],
				StartTime:   int64(rng.Intn(1_000_000)),
				EndTime:     int64(rng.Intn(1_000_000)),
				PlanCPU:     float64(rng.Intn(1000)) / 2,
				PlanMem:     rng.Float64(),
			}
		}
		var buf bytes.Buffer
		if err := WriteTasks(&buf, recs); err != nil {
			return false
		}
		var got []TaskRecord
		if err := ReadTasks(&buf, func(r TaskRecord) error {
			got = append(got, r)
			return nil
		}); err != nil {
			return false
		}
		return reflect.DeepEqual(got, recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTasksEmptyNumericFields(t *testing.T) {
	// The raw trace frequently leaves plan_cpu/plan_mem empty.
	in := "M1,1,j_1,1,Terminated,100,200,,\n"
	var got []TaskRecord
	if err := ReadTasks(strings.NewReader(in), func(r TaskRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PlanCPU != 0 || got[0].PlanMem != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadTasksMalformed(t *testing.T) {
	cases := map[string]string{
		"bad column count": "M1,1,j_1\n",
		"bad int":          "M1,xx,j_1,1,Terminated,100,200,1,1\n",
		"bad float":        "M1,1,j_1,1,Terminated,100,200,zz,1\n",
		"empty job":        "M1,1,,1,Terminated,100,200,1,1\n",
		"negative time":    "M1,1,j_1,1,Terminated,-5,200,1,1\n",
	}
	for name, in := range cases {
		if err := ReadTasks(strings.NewReader(in), func(TaskRecord) error { return nil }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadTasksCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTasks(&buf, sampleTasks()); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	count := 0
	err := ReadTasks(&buf, func(TaskRecord) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || count != 2 {
		t.Fatalf("err=%v count=%d", err, count)
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	want := []InstanceRecord{
		{InstanceName: "i_1", TaskName: "M1", JobName: "j_1", TaskType: "1",
			Status: StatusTerminated, StartTime: 10, EndTime: 20, MachineID: "m_42",
			SeqNo: 1, TotalSeqNo: 4, CPUAvg: 50, CPUMax: 90, MemAvg: 0.2, MemMax: 0.4},
		{InstanceName: "i_2", TaskName: "M1", JobName: "j_1", TaskType: "1",
			Status: StatusFailed, StartTime: 10, EndTime: 0, MachineID: "m_7",
			SeqNo: 2, TotalSeqNo: 4},
	}
	var buf bytes.Buffer
	if err := WriteInstances(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got []InstanceRecord
	if err := ReadInstances(&buf, func(r InstanceRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestInstanceValidate(t *testing.T) {
	bad := InstanceRecord{InstanceName: "i", TaskName: "M1", JobName: "j", SeqNo: 5, TotalSeqNo: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("seq_no > total accepted")
	}
	if err := (InstanceRecord{InstanceName: "i"}).Validate(); err == nil {
		t.Fatal("missing names accepted")
	}
}

func TestDurations(t *testing.T) {
	tr := TaskRecord{StartTime: 100, EndTime: 160}
	if tr.Duration() != 60 {
		t.Fatalf("duration = %g", tr.Duration())
	}
	if (TaskRecord{StartTime: 100, EndTime: 0}).Duration() != 0 {
		t.Fatal("unfinished duration should be 0")
	}
	ir := InstanceRecord{StartTime: 5, EndTime: 9}
	if ir.Duration() != 4 {
		t.Fatalf("instance duration = %g", ir.Duration())
	}
}

func TestStatusKnown(t *testing.T) {
	for _, s := range []Status{StatusWaiting, StatusReady, StatusRunning,
		StatusTerminated, StatusFailed, StatusCancelled, StatusInterrupted} {
		if !s.Known() {
			t.Errorf("%s not known", s)
		}
	}
	if Status("Banana").Known() {
		t.Fatal("unknown status accepted")
	}
}

func TestGroupTasks(t *testing.T) {
	jobs := GroupTasks(sampleTasks())
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	if jobs[0].Name != "j_1" || len(jobs[0].Tasks) != 2 {
		t.Fatalf("job[0] = %+v", jobs[0])
	}
	if jobs[0].Tasks[0].TaskName != "M1" {
		t.Fatal("tasks not sorted")
	}
	if jobs[1].Name != "j_2" {
		t.Fatal("jobs not sorted")
	}
}

func TestJobWindow(t *testing.T) {
	jobs := GroupTasks(sampleTasks())
	start, end, ok := jobs[0].Window()
	if !ok || start != 100 || end != 200 {
		t.Fatalf("window = %d..%d ok=%v", start, end, ok)
	}
	// j_2's only task is unfinished.
	if _, _, ok := jobs[1].Window(); ok {
		t.Fatal("unfinished job reported a window")
	}
}

func TestJobAllTerminated(t *testing.T) {
	jobs := GroupTasks(sampleTasks())
	if !jobs[0].AllTerminated() {
		t.Fatal("j_1 should be terminated")
	}
	if jobs[1].AllTerminated() {
		t.Fatal("j_2 has a running task")
	}
	if (Job{}).AllTerminated() {
		t.Fatal("empty job cannot be terminated")
	}
}

func TestReadJobs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTasks(&buf, sampleTasks()); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}

func TestWriteTasksRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTasks(&buf, []TaskRecord{{TaskName: "M1"}}) // no job name
	if err == nil {
		t.Fatal("invalid record written")
	}
}

func TestReadInstancesMalformed(t *testing.T) {
	base := "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,90,0.2,0.4\n"
	if err := ReadInstances(strings.NewReader(base), func(InstanceRecord) error { return nil }); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	cases := map[string]string{
		"bad start":    "i_1,M1,j_1,1,Terminated,xx,20,m_1,1,4,50,90,0.2,0.4\n",
		"bad end":      "i_1,M1,j_1,1,Terminated,10,xx,m_1,1,4,50,90,0.2,0.4\n",
		"bad seq":      "i_1,M1,j_1,1,Terminated,10,20,m_1,xx,4,50,90,0.2,0.4\n",
		"bad total":    "i_1,M1,j_1,1,Terminated,10,20,m_1,1,xx,50,90,0.2,0.4\n",
		"bad cpu_avg":  "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,xx,90,0.2,0.4\n",
		"bad cpu_max":  "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,xx,0.2,0.4\n",
		"bad mem_avg":  "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,90,xx,0.4\n",
		"bad mem_max":  "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,90,0.2,xx\n",
		"seq > total":  "i_1,M1,j_1,1,Terminated,10,20,m_1,9,4,50,90,0.2,0.4\n",
		"column count": "i_1,M1,j_1\n",
	}
	for name, in := range cases {
		if err := ReadInstances(strings.NewReader(in), func(InstanceRecord) error { return nil }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadInstancesCallbackError(t *testing.T) {
	in := "i_1,M1,j_1,1,Terminated,10,20,m_1,1,4,50,90,0.2,0.4\n"
	sentinel := errors.New("stop")
	err := ReadInstances(strings.NewReader(in), func(InstanceRecord) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMachinesMalformed(t *testing.T) {
	good := "m_1,0,fd_1,rack_1,96,1,USING\n"
	if err := ReadMachines(strings.NewReader(good), func(MachineRecord) error { return nil }); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	cases := map[string]string{
		"bad ts":       "m_1,xx,fd_1,rack_1,96,1,USING\n",
		"bad cpu":      "m_1,0,fd_1,rack_1,xx,1,USING\n",
		"bad mem":      "m_1,0,fd_1,rack_1,96,xx,USING\n",
		"neg cpu":      "m_1,0,fd_1,rack_1,-2,1,USING\n",
		"empty id":     ",0,fd_1,rack_1,96,1,USING\n",
		"column count": "m_1,0\n",
	}
	for name, in := range cases {
		if err := ReadMachines(strings.NewReader(in), func(MachineRecord) error { return nil }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	sentinel := errors.New("halt")
	if err := ReadMachines(strings.NewReader(good), func(MachineRecord) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("callback error not propagated")
	}
}

func TestTaskValidateBranches(t *testing.T) {
	bads := []TaskRecord{
		{JobName: "j"},   // empty task name
		{TaskName: "M1"}, // empty job
		{TaskName: "M1", JobName: "j", InstanceNum: -1}, // negative instances
		{TaskName: "M1", JobName: "j", EndTime: -5},     // negative time
	}
	for i, r := range bads {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}
