package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTasks feeds arbitrary bytes to the batch_task CSV reader: it
// must never panic, and everything it accepts must re-encode and
// re-parse to the same records.
func FuzzReadTasks(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTasks(&buf, []TaskRecord{
		{TaskName: "M1", InstanceNum: 2, JobName: "j_1", TaskType: "1",
			Status: StatusTerminated, StartTime: 10, EndTime: 20, PlanCPU: 100, PlanMem: 0.5},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("M1,1,j_1,1,Terminated,100,200,,\n")
	f.Add("bad row\n")
	f.Add(",,,,,,,,\n")
	f.Add("M1,1,j_1,1,Terminated,-1,0,0,0\n")
	f.Add("M1,1,j_1,1,Terminated,1,2,NaN,Inf\n")
	f.Add("\"M\n1\",1,j_1,1,Terminated,1,2,1,1\nshort,row\n")

	f.Fuzz(func(t *testing.T, data string) {
		// Lenient mode must never panic and never reject a stream for
		// row-level problems: every row is either delivered valid or
		// tallied, and the two modes agree on the accepted prefix.
		var lenientRecs []TaskRecord
		stats, lerr := ReadTasksOpts(strings.NewReader(data), ReadOptions{Mode: Lenient},
			func(r TaskRecord) error {
				lenientRecs = append(lenientRecs, r)
				return nil
			})
		if lerr == nil {
			for _, r := range lenientRecs {
				if err := r.Validate(); err != nil {
					t.Fatalf("lenient reader delivered invalid record: %v", err)
				}
			}
			if stats.Rows != int64(len(lenientRecs)) {
				t.Fatalf("stats.Rows=%d but delivered %d", stats.Rows, len(lenientRecs))
			}
			var tallied int64
			for _, n := range stats.ByClass {
				tallied += n
			}
			if tallied != stats.BadRows {
				t.Fatalf("class tallies %d != BadRows %d", tallied, stats.BadRows)
			}
		}

		var recs []TaskRecord
		if err := ReadTasks(strings.NewReader(data), func(r TaskRecord) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			return
		}
		// Strict accepted everything, so lenient must have too, with an
		// identical record stream.
		if lerr != nil || len(lenientRecs) != len(recs) {
			t.Fatalf("modes disagree on clean input: strict %d rows, lenient %d (err %v)",
				len(recs), len(lenientRecs), lerr)
		}
		for i := range recs {
			if recs[i] != lenientRecs[i] {
				t.Fatalf("row %d differs between modes", i)
			}
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("reader accepted invalid record: %v", err)
			}
		}
		var out bytes.Buffer
		if err := WriteTasks(&out, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again []TaskRecord
		if err := ReadTasks(&out, func(r TaskRecord) error {
			again = append(again, r)
			return nil
		}); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
	})
}
