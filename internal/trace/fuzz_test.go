package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTasks feeds arbitrary bytes to the batch_task CSV reader: it
// must never panic, and everything it accepts must re-encode and
// re-parse to the same records.
func FuzzReadTasks(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTasks(&buf, []TaskRecord{
		{TaskName: "M1", InstanceNum: 2, JobName: "j_1", TaskType: "1",
			Status: StatusTerminated, StartTime: 10, EndTime: 20, PlanCPU: 100, PlanMem: 0.5},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("M1,1,j_1,1,Terminated,100,200,,\n")
	f.Add("bad row\n")
	f.Add(",,,,,,,,\n")
	f.Add("M1,1,j_1,1,Terminated,-1,0,0,0\n")
	f.Add("M1,1,j_1,1,Terminated,1,2,NaN,Inf\n")
	f.Add("\"M\n1\",1,j_1,1,Terminated,1,2,1,1\nshort,row\n")

	f.Fuzz(func(t *testing.T, data string) {
		// Lenient mode must never panic and never reject a stream for
		// row-level problems: every row is either delivered valid or
		// tallied, and the two modes agree on the accepted prefix.
		var lenientRecs []TaskRecord
		stats, lerr := ReadTasksOpts(strings.NewReader(data), ReadOptions{Mode: Lenient},
			func(r TaskRecord) error {
				lenientRecs = append(lenientRecs, r)
				return nil
			})
		if lerr == nil {
			for _, r := range lenientRecs {
				if err := r.Validate(); err != nil {
					t.Fatalf("lenient reader delivered invalid record: %v", err)
				}
			}
			if stats.Rows != int64(len(lenientRecs)) {
				t.Fatalf("stats.Rows=%d but delivered %d", stats.Rows, len(lenientRecs))
			}
			var tallied int64
			for _, n := range stats.ByClass {
				tallied += n
			}
			if tallied != stats.BadRows {
				t.Fatalf("class tallies %d != BadRows %d", tallied, stats.BadRows)
			}
		}

		// The sharded parallel decoder must agree with the sequential
		// one: always in Strict mode (it aborts on the first error, and
		// everything before the first error splits exactly), and in
		// Lenient mode whenever the input's quoting is well-formed (no
		// csv_syntax rejections — see splitShards).
		old := shardTargetBytes
		shardTargetBytes = 64
		t.Cleanup(func() { shardTargetBytes = old })
		var seqStrict []TaskRecord
		_, seqStrictErr := ReadTasksOpts(strings.NewReader(data), ReadOptions{Workers: 1},
			func(r TaskRecord) error {
				seqStrict = append(seqStrict, r)
				return nil
			})
		var parStrict []TaskRecord
		_, parStrictErr := ReadTasksOpts(strings.NewReader(data), ReadOptions{Workers: 4},
			func(r TaskRecord) error {
				parStrict = append(parStrict, r)
				return nil
			})
		if (seqStrictErr == nil) != (parStrictErr == nil) {
			t.Fatalf("strict accept/reject differs: seq=%v par=%v", seqStrictErr, parStrictErr)
		}
		if seqStrictErr != nil && seqStrictErr.Error() != parStrictErr.Error() {
			t.Fatalf("strict errors differ:\nseq: %v\npar: %v", seqStrictErr, parStrictErr)
		}
		if len(seqStrict) != len(parStrict) {
			t.Fatalf("strict rows differ: seq=%d par=%d", len(seqStrict), len(parStrict))
		}
		for i := range seqStrict {
			if seqStrict[i] != parStrict[i] {
				t.Fatalf("strict row %d differs between worker counts", i)
			}
		}
		if lerr == nil && stats.ByClass[ErrClassCSV] == 0 {
			var parLenient []TaskRecord
			pstats, perr := ReadTasksOpts(strings.NewReader(data), ReadOptions{Mode: Lenient, Workers: 4},
				func(r TaskRecord) error {
					parLenient = append(parLenient, r)
					return nil
				})
			if perr != nil {
				t.Fatalf("parallel lenient failed where sequential succeeded: %v", perr)
			}
			if len(parLenient) != len(lenientRecs) || pstats.BadRows != stats.BadRows {
				t.Fatalf("parallel lenient diverged: %d/%d rows, %d/%d bad",
					len(parLenient), len(lenientRecs), pstats.BadRows, stats.BadRows)
			}
			for i := range lenientRecs {
				if lenientRecs[i] != parLenient[i] {
					t.Fatalf("lenient row %d differs between worker counts", i)
				}
			}
		}

		var recs []TaskRecord
		if err := ReadTasks(strings.NewReader(data), func(r TaskRecord) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			return
		}
		// Strict accepted everything, so lenient must have too, with an
		// identical record stream.
		if lerr != nil || len(lenientRecs) != len(recs) {
			t.Fatalf("modes disagree on clean input: strict %d rows, lenient %d (err %v)",
				len(recs), len(lenientRecs), lerr)
		}
		for i := range recs {
			if recs[i] != lenientRecs[i] {
				t.Fatalf("row %d differs between modes", i)
			}
		}
		for _, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("reader accepted invalid record: %v", err)
			}
		}
		var out bytes.Buffer
		if err := WriteTasks(&out, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again []TaskRecord
		if err := ReadTasks(&out, func(r TaskRecord) error {
			again = append(again, r)
			return nil
		}); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
	})
}
