package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// MachineRecord is one row of machine_meta: the static description of a
// server in the cluster.
type MachineRecord struct {
	MachineID      string
	TimeStamp      int64
	FailureDomain1 string
	FailureDomain2 string
	CPUNum         int     // cores
	MemSize        float64 // normalized memory capacity
	Status         string  // e.g. "USING"
}

// Validate checks internal consistency of the record.
func (m MachineRecord) Validate() error {
	if m.MachineID == "" {
		return fmt.Errorf("trace: machine record missing id")
	}
	if m.CPUNum < 0 || m.MemSize < 0 {
		return fmt.Errorf("trace: machine %s has negative capacity", m.MachineID)
	}
	return nil
}

const machineColumns = 7

// ReadMachines streams machine_meta rows from r.
func ReadMachines(r io.Reader, fn func(MachineRecord) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = machineColumns
	cr.ReuseRecord = true
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: machine_meta row %d: %w", line+1, err)
		}
		line++
		var rec MachineRecord
		rec.MachineID = row[0]
		if rec.TimeStamp, err = atoi64Empty(row[1]); err != nil {
			return fmt.Errorf("trace: machine_meta row %d: timestamp: %w", line, err)
		}
		rec.FailureDomain1 = row[2]
		rec.FailureDomain2 = row[3]
		if rec.CPUNum, err = atoiEmpty(row[4]); err != nil {
			return fmt.Errorf("trace: machine_meta row %d: cpu_num: %w", line, err)
		}
		if rec.MemSize, err = atofEmpty(row[5]); err != nil {
			return fmt.Errorf("trace: machine_meta row %d: mem_size: %w", line, err)
		}
		rec.Status = row[6]
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("trace: machine_meta row %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// WriteMachines encodes records to w in trace column order.
func WriteMachines(w io.Writer, records []MachineRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, machineColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.MachineID
		row[1] = strconv.FormatInt(rec.TimeStamp, 10)
		row[2] = rec.FailureDomain1
		row[3] = rec.FailureDomain2
		row[4] = strconv.Itoa(rec.CPUNum)
		row[5] = formatFloat(rec.MemSize)
		row[6] = rec.Status
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
