package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"jobgraph/internal/obs"
)

// MachineRecord is one row of machine_meta: the static description of a
// server in the cluster.
type MachineRecord struct {
	MachineID      string
	TimeStamp      int64
	FailureDomain1 string
	FailureDomain2 string
	CPUNum         int     // cores
	MemSize        float64 // normalized memory capacity
	Status         string  // e.g. "USING"
}

// Validate checks internal consistency of the record.
func (m MachineRecord) Validate() error {
	if m.MachineID == "" {
		return validationError("missing_id", "trace: machine record missing id")
	}
	if m.CPUNum < 0 || m.MemSize < 0 {
		return validationError("negative_capacity", "trace: machine %s has negative capacity", m.MachineID)
	}
	return nil
}

const machineColumns = 7

var (
	obsMachineRows    = obs.Default().Counter("trace.machine_rows_parsed")
	obsMachineRowErrs = obs.Default().Counter("trace.machine_row_errors")
)

// ReadMachines streams machine_meta rows from r in Strict mode.
func ReadMachines(r io.Reader, fn func(MachineRecord) error) error {
	_, err := ReadMachinesOpts(r, ReadOptions{}, fn)
	return err
}

// ReadMachinesOpts streams machine_meta rows from r under opt; see
// ReadTasksOpts for the Lenient-mode contract.
func ReadMachinesOpts(r io.Reader, opt ReadOptions, fn func(MachineRecord) error) (ReadStats, error) {
	return readTable(r, tableSpec[MachineRecord]{
		name:    "machine_meta",
		columns: machineColumns,
		parse:   parseMachine,
		rowsOK:  obsMachineRows,
		rowsBad: obsMachineRowErrs,
	}, opt, fn)
}

// parseMachine decodes one machine_meta row:
// machine_id,time_stamp,failure_domain_1,failure_domain_2,cpu_num,mem_size,status
func parseMachine(row []string, ctx *rowCtx) (MachineRecord, error) {
	var rec MachineRecord
	var err error
	rec.MachineID = row[0]
	if rec.TimeStamp, err = atoi64Empty(row[1], "time_stamp"); err != nil {
		return rec, err
	}
	rec.FailureDomain1 = row[2]
	rec.FailureDomain2 = row[3]
	if rec.CPUNum, err = atoiEmpty(row[4], "cpu_num"); err != nil {
		return rec, err
	}
	if rec.MemSize, err = ctx.float(row[5], "mem_size"); err != nil {
		return rec, err
	}
	rec.Status = row[6]
	return rec, rec.Validate()
}

// WriteMachines encodes records to w in trace column order.
func WriteMachines(w io.Writer, records []MachineRecord) error {
	cw := csv.NewWriter(w)
	row := make([]string, machineColumns)
	for _, rec := range records {
		if err := rec.Validate(); err != nil {
			return err
		}
		row[0] = rec.MachineID
		row[1] = strconv.FormatInt(rec.TimeStamp, 10)
		row[2] = rec.FailureDomain1
		row[3] = rec.FailureDomain2
		row[4] = strconv.Itoa(rec.CPUNum)
		row[5] = formatFloat(rec.MemSize)
		row[6] = rec.Status
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
