package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"jobgraph/internal/taskname"
)

// TestReadTasksWarmArenaAllocs pins the cost of the reused-row-buffer
// decode path: with Workers=1 (ReuseRecord CSV fields) and a warm
// interning arena (every name already has a canonical copy), decoding a
// row costs O(1) small allocations — the csv package's one backing
// string per record plus parse scratch — independent of how many
// records the caller retains. Before the arena, every retained record
// pinned fresh copies of its task name, job name, type and status.
func TestReadTasksWarmArenaAllocs(t *testing.T) {
	const rows = 400
	recs := make([]TaskRecord, 0, rows)
	for i := 0; i < rows; i++ {
		job := fmt.Sprintf("j_%d", i%20)
		name := fmt.Sprintf("M%d_%d", i%7+1, i%7)
		recs = append(recs, TaskRecord{
			TaskName: name, InstanceNum: 1 + i%5, JobName: job, TaskType: "1",
			Status: StatusTerminated, StartTime: int64(100 + i), EndTime: int64(200 + i),
			PlanCPU: 100, PlanMem: 0.5,
		})
	}
	var buf bytes.Buffer
	if err := WriteTasks(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.String()

	arena := taskname.NewArena()
	opt := ReadOptions{Workers: 1, Arena: arena}
	read := func() int {
		n := 0
		if _, err := ReadTasksOpts(strings.NewReader(data), opt, func(r TaskRecord) error {
			if r.TaskSym == 0 || r.JobSym == 0 {
				t.Fatal("arena read delivered record without symbols")
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := read(); got != rows { // warm the arena
		t.Fatalf("read %d rows, want %d", got, rows)
	}

	allocs := testing.AllocsPerRun(10, func() { read() })
	perRow := (allocs - 64) / rows // generous fixed budget for reader setup
	if perRow > 3 {
		t.Fatalf("warm arena decode allocates %.2f objects/row (%.0f total for %d rows), want <= 3",
			perRow, allocs, rows)
	}
}
