package trace

import (
	"io"
	"sort"
)

// GroupTasks collects task rows into per-job bundles. Jobs are returned
// sorted by name; each job's tasks are sorted by task name for
// deterministic downstream processing.
func GroupTasks(records []TaskRecord) []Job {
	byJob := make(map[string][]TaskRecord)
	for _, r := range records {
		byJob[r.JobName] = append(byJob[r.JobName], r)
	}
	jobs := make([]Job, 0, len(byJob))
	for name, tasks := range byJob {
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].TaskName < tasks[j].TaskName })
		jobs = append(jobs, Job{Name: name, Tasks: tasks})
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
	return jobs
}

// ReadJobs streams batch_task rows from r and returns them grouped by
// job. It buffers the whole table: callers working with the full-scale
// trace should use ReadTasks and their own windowed accumulation; for
// the paper-scale samples this convenience is the right tool.
func ReadJobs(r io.Reader) ([]Job, error) {
	jobs, _, err := ReadJobsOpts(r, ReadOptions{})
	return jobs, err
}

// ReadJobsOpts is ReadJobs under explicit ReadOptions, returning the
// ingest-health stats alongside the grouped jobs. In Lenient mode a
// truncated table yields the jobs parsed before the cut with
// stats.Partial set (the last job may be incomplete — availability
// filtering downstream decides whether it is usable).
func ReadJobsOpts(r io.Reader, opt ReadOptions) ([]Job, ReadStats, error) {
	var records []TaskRecord
	stats, err := ReadTasksOpts(r, opt, func(rec TaskRecord) error {
		records = append(records, rec)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return GroupTasks(records), stats, nil
}
