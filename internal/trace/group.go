package trace

import (
	"container/list"
	"io"
	"sort"
	"sync"

	"jobgraph/internal/obs"
)

// GroupTasks collects task rows into per-job bundles. Jobs are returned
// sorted by name; each job's tasks are sorted by task name for
// deterministic downstream processing.
func GroupTasks(records []TaskRecord) []Job {
	return GroupTasksN(records, 1)
}

// GroupTasksN is GroupTasks across `workers` goroutines (<=0 uses all
// CPUs): the record slice is cut into contiguous shards, each worker
// builds a per-shard job map, and the maps are merged in shard order so
// every job's task list preserves exact input order before the final
// per-job sort. The output is identical at every worker count.
func GroupTasksN(records []TaskRecord, workers int) []Job {
	workers = resolveWorkers(workers)
	if workers > len(records) {
		workers = len(records)
	}
	byJob := make(map[string][]TaskRecord)
	if workers > 1 {
		shards := make([]map[string][]TaskRecord, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := len(records) * w / workers
			hi := len(records) * (w + 1) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				m := make(map[string][]TaskRecord)
				for _, r := range records[lo:hi] {
					m[r.JobName] = append(m[r.JobName], r)
				}
				shards[w] = m
			}(w, lo, hi)
		}
		wg.Wait()
		for _, m := range shards {
			for name, tasks := range m {
				byJob[name] = append(byJob[name], tasks...)
			}
		}
	} else {
		for _, r := range records {
			byJob[r.JobName] = append(byJob[r.JobName], r)
		}
	}
	jobs := make([]Job, 0, len(byJob))
	for name, tasks := range byJob {
		jobs = append(jobs, Job{Name: name, Tasks: tasks})
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
	parallelEach(len(jobs), workers, func(i int) {
		tasks := jobs[i].Tasks
		sort.Slice(tasks, func(a, b int) bool { return tasks[a].TaskName < tasks[b].TaskName })
	})
	return jobs
}

// parallelEach runs fn(i) for i in [0,n) across up to `workers`
// goroutines, partitioned contiguously. workers<=1 runs inline.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ReadJobs streams batch_task rows from r and returns them grouped by
// job. It buffers the whole table: callers working with the full-scale
// trace should use ForEachJob, which emits each job as soon as its rows
// are complete; for the paper-scale samples this convenience is the
// right tool.
func ReadJobs(r io.Reader) ([]Job, error) {
	jobs, _, err := ReadJobsOpts(r, ReadOptions{})
	return jobs, err
}

// ReadJobsOpts is ReadJobs under explicit ReadOptions, returning the
// ingest-health stats alongside the grouped jobs. In Lenient mode a
// truncated table yields the jobs parsed before the cut with
// stats.Partial set (the last job may be incomplete — availability
// filtering downstream decides whether it is usable).
func ReadJobsOpts(r io.Reader, opt ReadOptions) ([]Job, ReadStats, error) {
	var records []TaskRecord
	stats, err := ReadTasksOpts(r, opt, func(rec TaskRecord) error {
		records = append(records, rec)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return GroupTasksN(records, opt.Workers), stats, nil
}

// DefaultMaxOpenJobs is the ForEachJob job-window size: the number of
// distinct in-flight jobs held before the least-recently-touched one is
// flushed to the callback. The Alibaba trace is approximately grouped
// by job, so a few thousand open jobs comfortably covers the
// interleaving seen in practice.
const DefaultMaxOpenJobs = 4096

// openJob is one in-flight job in the ForEachJob window.
type openJob struct {
	name  string
	tasks []TaskRecord
	elem  *list.Element // position in the recency list (front = hottest)
}

// ForEachJob streams batch_task rows from r and invokes fn once per
// job, emitting each job as soon as its rows stop arriving — memory is
// bounded by the job window (DefaultMaxOpenJobs distinct in-flight
// jobs), not by the table size. Within a job, tasks are sorted by task
// name exactly as GroupTasks produces them; jobs are emitted in
// trace order (first-row order), not sorted by name.
//
// If a job's rows reappear after its window entry was already flushed
// (heavily out-of-order traces), the job is emitted again with the
// later rows only, and stats.ReopenedJobs counts the reopening — at the
// default window size this does not happen on trace-order inputs.
// A non-nil error from fn aborts the read.
func ForEachJob(r io.Reader, opt ReadOptions, fn func(Job) error) (ReadStats, error) {
	return forEachJobWindow(r, opt, DefaultMaxOpenJobs, fn)
}

func forEachJobWindow(r io.Reader, opt ReadOptions, maxOpen int, fn func(Job) error) (ReadStats, error) {
	open := make(map[string]*openJob)
	recency := list.New() // of *openJob; front = most recently touched
	emitted := make(map[string]bool)
	var reopened int64

	emit := func(oj *openJob) error {
		tasks := oj.tasks
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].TaskName < tasks[j].TaskName })
		if emitted[oj.name] {
			reopened++
			obs.Default().Counter("trace.jobs_reopened").Add(1)
		}
		emitted[oj.name] = true
		return fn(Job{Name: oj.name, Tasks: tasks})
	}

	stats, err := ReadTasksOpts(r, opt, func(rec TaskRecord) error {
		oj := open[rec.JobName]
		if oj == nil {
			if len(open) >= maxOpen {
				coldest := recency.Remove(recency.Back()).(*openJob)
				delete(open, coldest.name)
				if err := emit(coldest); err != nil {
					return err
				}
			}
			oj = &openJob{name: rec.JobName}
			oj.elem = recency.PushFront(oj)
			open[rec.JobName] = oj
		} else {
			recency.MoveToFront(oj.elem)
		}
		oj.tasks = append(oj.tasks, rec)
		return nil
	})
	stats.ReopenedJobs = reopened
	if err != nil {
		return stats, err
	}
	// Flush the window coldest-first for a deterministic tail that
	// matches the eviction order rows would have forced.
	for recency.Len() > 0 {
		coldest := recency.Remove(recency.Back()).(*openJob)
		if err := emit(coldest); err != nil {
			stats.ReopenedJobs = reopened
			return stats, err
		}
	}
	stats.ReopenedJobs = reopened
	return stats, nil
}
