package trace

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenCreateTablePlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch_task.csv")
	w, err := CreateTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTasks(w, sampleTasks()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	count := 0
	if err := ReadTasks(r, func(TaskRecord) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(sampleTasks()) {
		t.Fatalf("rows = %d", count)
	}
}

func TestOpenCreateTableGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch_task.csv.gz")
	w, err := CreateTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTasks(w, sampleTasks()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The file on disk must actually be gzip (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip-compressed")
	}
	r, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("no decompressed content")
	}
}

func TestOpenTableErrors(t *testing.T) {
	if _, err := OpenTable("/nonexistent/x.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
	// A .gz file that is not gzip.
	path := filepath.Join(t.TempDir(), "bad.csv.gz")
	if err := os.WriteFile(path, []byte("plain text"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(path); err == nil {
		t.Fatal("invalid gzip accepted")
	}
}

func TestMachineRoundTrip(t *testing.T) {
	want := []MachineRecord{
		{MachineID: "m_1", TimeStamp: 10, FailureDomain1: "fd_1",
			FailureDomain2: "rack_9", CPUNum: 96, MemSize: 1, Status: "USING"},
		{MachineID: "m_2", CPUNum: 64, MemSize: 0.5, Status: "USING"},
	}
	path := filepath.Join(t.TempDir(), "machine_meta.csv")
	w, err := CreateTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMachines(w, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []MachineRecord
	if err := ReadMachines(r, func(m MachineRecord) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestMachineValidate(t *testing.T) {
	if err := (MachineRecord{}).Validate(); err == nil {
		t.Fatal("missing id accepted")
	}
	if err := (MachineRecord{MachineID: "m", CPUNum: -1}).Validate(); err == nil {
		t.Fatal("negative cpu accepted")
	}
}
