package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// withShardTarget shrinks the parallel decoder's shard size so small
// test inputs split into many shards. Trace tests never run in
// parallel, so mutating the package global is safe.
func withShardTarget(t *testing.T, n int) {
	t.Helper()
	old := shardTargetBytes
	shardTargetBytes = n
	t.Cleanup(func() { shardTargetBytes = old })
}

// syntheticTasks renders n well-formed batch_task rows spanning
// n/tasksPerJob jobs.
func syntheticTasks(n, tasksPerJob int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		job := i / tasksPerJob
		fmt.Fprintf(&b, "M%d,%d,j_%d,1,Terminated,%d,%d,%d,0.5\n",
			i%tasksPerJob+1, i%7+1, job, 100+i, 200+i, 50+i%10)
	}
	return b.String()
}

// readWorkers reads in with the given options, collecting the record
// stream.
func readWorkers(t *testing.T, in string, opt ReadOptions) ([]TaskRecord, ReadStats, error) {
	t.Helper()
	var recs []TaskRecord
	stats, err := ReadTasksOpts(strings.NewReader(in), opt, func(r TaskRecord) error {
		recs = append(recs, r)
		return nil
	})
	return recs, stats, err
}

// statsEqual compares every ReadStats field except PartialCause (an
// error value compared by message).
func statsEqual(t *testing.T, name string, a, b ReadStats) {
	t.Helper()
	fmtCause := func(e error) string {
		if e == nil {
			return ""
		}
		return e.Error()
	}
	ac, bc := a.PartialCause, b.PartialCause
	a.PartialCause, b.PartialCause = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats differ:\n  seq: %+v\n  par: %+v", name, a, b)
	}
	if fmtCause(ac) != fmtCause(bc) {
		t.Errorf("%s: partial cause differs: %q vs %q", name, fmtCause(ac), fmtCause(bc))
	}
}

func TestParallelStrictEquivalence(t *testing.T) {
	withShardTarget(t, 256)
	in := syntheticTasks(2000, 4)
	seqRecs, seqStats, seqErr := readWorkers(t, in, ReadOptions{Workers: 1})
	if seqErr != nil {
		t.Fatal(seqErr)
	}
	for _, w := range []int{2, 3, 8} {
		parRecs, parStats, parErr := readWorkers(t, in, ReadOptions{Workers: w})
		if parErr != nil {
			t.Fatalf("workers=%d: %v", w, parErr)
		}
		if !reflect.DeepEqual(seqRecs, parRecs) {
			t.Fatalf("workers=%d: record streams differ (%d vs %d rows)", w, len(seqRecs), len(parRecs))
		}
		statsEqual(t, fmt.Sprintf("workers=%d", w), seqStats, parStats)
	}
}

func TestParallelLenientEquivalence(t *testing.T) {
	withShardTarget(t, 200)
	// Every rejection class plus zeroed non-finite fields, interleaved
	// with filler so bad rows land in different shards.
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString(syntheticTasks(10, 2))
		switch i % 4 {
		case 0:
			b.WriteString("short,row\n") // column_count
		case 1:
			b.WriteString("M2,xx,j_bad,1,Terminated,1,2,1,1\n") // numeric_parse
		case 2:
			b.WriteString("M3,1,,1,Terminated,1,2,1,1\n") // validation
		case 3:
			b.WriteString("M4,1,j_nan,1,Terminated,1,2,NaN,Inf\n") // zeroed fields
		}
	}
	in := b.String()

	var seqQ, parQ bytes.Buffer
	seqRecs, seqStats, err := readWorkers(t, in, ReadOptions{Mode: Lenient, Workers: 1, Quarantine: &seqQ})
	if err != nil {
		t.Fatal(err)
	}
	parRecs, parStats, err := readWorkers(t, in, ReadOptions{Mode: Lenient, Workers: 8, Quarantine: &parQ})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("record streams differ (%d vs %d rows)", len(seqRecs), len(parRecs))
	}
	statsEqual(t, "lenient", seqStats, parStats)
	if !bytes.Equal(seqQ.Bytes(), parQ.Bytes()) {
		t.Fatalf("quarantine sidecars differ:\nseq:\n%s\npar:\n%s", seqQ.String(), parQ.String())
	}
}

func TestParallelStrictFirstErrorIdentical(t *testing.T) {
	withShardTarget(t, 128)
	in := syntheticTasks(300, 3) + "broken,row\n" + syntheticTasks(300, 3)
	seqRecs, seqStats, seqErr := readWorkers(t, in, ReadOptions{Workers: 1})
	parRecs, parStats, parErr := readWorkers(t, in, ReadOptions{Workers: 8})
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected both reads to fail: seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error values differ:\nseq: %v\npar: %v", seqErr, parErr)
	}
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("pre-error record streams differ (%d vs %d rows)", len(seqRecs), len(parRecs))
	}
	statsEqual(t, "strict-error", seqStats, parStats)
}

func TestParallelBudgetAbortIdentical(t *testing.T) {
	withShardTarget(t, 128)
	in := syntheticTasks(100, 2) + strings.Repeat("bad,row\n", 10) + syntheticTasks(100, 2)
	opt := ReadOptions{Mode: Lenient, MaxBadRows: 3}
	optSeq, optPar := opt, opt
	optSeq.Workers, optPar.Workers = 1, 8
	_, seqStats, seqErr := readWorkers(t, in, optSeq)
	_, parStats, parErr := readWorkers(t, in, optPar)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected budget aborts: seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("budget errors differ:\nseq: %v\npar: %v", seqErr, parErr)
	}
	statsEqual(t, "budget", seqStats, parStats)
}

func TestParallelQuotedFieldsAcrossShards(t *testing.T) {
	withShardTarget(t, 64)
	// Quoted task names with embedded newlines and escaped quotes force
	// records to span would-be shard boundaries; the quote-parity
	// splitter must not cut inside them.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "\"M\n%d\",1,j_%d,1,Terminated,%d,%d,1,1\n", i, i/2, 100+i, 200+i)
		fmt.Fprintf(&b, "\"R\"\"%d\",1,j_%d,1,Terminated,%d,%d,1,1\n", i, i/2, 100+i, 200+i)
	}
	in := b.String()
	seqRecs, seqStats, err := readWorkers(t, in, ReadOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parRecs, parStats, err := readWorkers(t, in, ReadOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("record streams differ (%d vs %d rows)", len(seqRecs), len(parRecs))
	}
	statsEqual(t, "quoted", seqStats, parStats)
}

func TestParallelTruncatedGzip(t *testing.T) {
	withShardTarget(t, 256)
	var plain bytes.Buffer
	plain.WriteString(syntheticTasks(1500, 3))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	cut := gz.Bytes()[:gz.Len()*3/4]

	read := func(workers int, mode Mode) ([]TaskRecord, ReadStats, error) {
		zr, err := gzip.NewReader(bytes.NewReader(cut))
		if err != nil {
			t.Fatal(err)
		}
		var recs []TaskRecord
		stats, rerr := ReadTasksOpts(zr, ReadOptions{Mode: mode, Workers: workers}, func(r TaskRecord) error {
			recs = append(recs, r)
			return nil
		})
		return recs, stats, rerr
	}

	// Lenient: both worker counts keep the same partial prefix.
	seqRecs, seqStats, err := read(1, Lenient)
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Partial {
		t.Fatal("sequential lenient read of truncated gzip not marked partial")
	}
	parRecs, parStats, err := read(8, Lenient)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("partial record streams differ (%d vs %d rows)", len(seqRecs), len(parRecs))
	}
	statsEqual(t, "truncated-lenient", seqStats, parStats)

	// Strict: identical failure, including the reported byte offset.
	_, _, seqErr := read(1, Strict)
	_, _, parErr := read(8, Strict)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected strict failures: seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("strict truncation errors differ:\nseq: %v\npar: %v", seqErr, parErr)
	}
}

func TestGroupTasksNEquivalence(t *testing.T) {
	var records []TaskRecord
	if err := ReadTasks(strings.NewReader(syntheticTasks(3000, 5)), func(r TaskRecord) error {
		records = append(records, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := GroupTasksN(records, 1)
	for _, w := range []int{2, 4, 9} {
		got := GroupTasksN(records, w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: grouped jobs differ", w)
		}
	}
	if got := GroupTasks(records); !reflect.DeepEqual(want, got) {
		t.Fatal("GroupTasks differs from GroupTasksN(.., 1)")
	}
}

func TestForEachJobMatchesGroupTasks(t *testing.T) {
	in := syntheticTasks(600, 4)
	jobs, _, err := ReadJobsOpts(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Job, len(jobs))
	for _, j := range jobs {
		byName[j.Name] = j
	}

	var streamed []Job
	stats, err := ForEachJob(strings.NewReader(in), ReadOptions{}, func(j Job) error {
		streamed = append(streamed, j)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReopenedJobs != 0 {
		t.Fatalf("reopened %d jobs on a trace-order input", stats.ReopenedJobs)
	}
	if len(streamed) != len(jobs) {
		t.Fatalf("streamed %d jobs, grouped %d", len(streamed), len(jobs))
	}
	for _, j := range streamed {
		if !reflect.DeepEqual(byName[j.Name], j) {
			t.Fatalf("job %s differs between ForEachJob and GroupTasks", j.Name)
		}
	}
}

func TestForEachJobWindowEvictionAndReopen(t *testing.T) {
	// 6 jobs interleaved so that job j_0's rows resurface after enough
	// distinct jobs have pushed it out of a 3-job window.
	in := "M1,1,j_0,1,Terminated,1,2,1,1\n" +
		"M1,1,j_1,1,Terminated,1,2,1,1\n" +
		"M1,1,j_2,1,Terminated,1,2,1,1\n" +
		"M1,1,j_3,1,Terminated,1,2,1,1\n" + // evicts j_0
		"M1,1,j_4,1,Terminated,1,2,1,1\n" + // evicts j_1
		"M2,1,j_0,1,Terminated,3,4,1,1\n" + // reopens j_0, evicts j_2
		"M1,1,j_5,1,Terminated,1,2,1,1\n"
	var emitted []string
	counts := make(map[string]int)
	stats, err := forEachJobWindow(strings.NewReader(in), ReadOptions{}, 3, func(j Job) error {
		emitted = append(emitted, j.Name)
		counts[j.Name] += len(j.Tasks)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReopenedJobs != 1 {
		t.Fatalf("ReopenedJobs = %d, want 1 (emissions: %v)", stats.ReopenedJobs, emitted)
	}
	// Every task row must be delivered exactly once across emissions.
	want := map[string]int{"j_0": 2, "j_1": 1, "j_2": 1, "j_3": 1, "j_4": 1, "j_5": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("per-job task counts = %v, want %v", counts, want)
	}
}

func TestReadJobsOptsParallelDeterminism(t *testing.T) {
	withShardTarget(t, 512)
	in := syntheticTasks(2000, 3)
	want, _, err := ReadJobsOpts(strings.NewReader(in), ReadOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadJobsOpts(strings.NewReader(in), ReadOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ReadJobsOpts output differs between Workers=1 and Workers=8")
	}
}
