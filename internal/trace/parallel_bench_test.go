package trace

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// BenchmarkParallelIngest measures the sharded CSV decoder against the
// sequential one on a synthetic batch_task table; cmd/benchdiff tracks
// the per-worker results across runs.
func BenchmarkParallelIngest(b *testing.B) {
	in := syntheticTasks(200_000, 5)
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		workerCounts = append(workerCounts, g)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				_, err := ReadTasksOpts(strings.NewReader(in), ReadOptions{Workers: w},
					func(TaskRecord) error { rows++; return nil })
				if err != nil {
					b.Fatal(err)
				}
				if rows != 200_000 {
					b.Fatalf("parsed %d rows", rows)
				}
			}
		})
	}
}
