package trace

import (
	"compress/flate"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// IsTruncated reports whether err indicates an input stream that died
// mid-file — a truncated plain file or a truncated/corrupt gzip member
// — meaning the bytes delivered before the error are intact and worth
// keeping. The lenient readers use this to return the rows parsed so
// far with a Partial marker instead of discarding them.
func IsTruncated(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, gzip.ErrChecksum) ||
		errors.Is(err, gzip.ErrHeader) {
		return true
	}
	var ce flate.CorruptInputError
	return errors.As(err, &ce)
}

// OpenTable opens a trace table file for reading, transparently
// decompressing when the path ends in ".gz" — the real Alibaba tables
// ship gzip-compressed. The returned ReadCloser closes both the gzip
// layer and the file.
func OpenTable(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// CreateTable creates a trace table file for writing, gzip-compressing
// when the path ends in ".gz". Close the returned WriteCloser to flush.
func CreateTable(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
