package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// OpenTable opens a trace table file for reading, transparently
// decompressing when the path ends in ".gz" — the real Alibaba tables
// ship gzip-compressed. The returned ReadCloser closes both the gzip
// layer and the file.
func OpenTable(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// CreateTable creates a trace table file for writing, gzip-compressing
// when the path ends in ".gz". Close the returned WriteCloser to flush.
func CreateTable(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
