// Package trace models the Alibaba cluster-trace-v2018 batch tables the
// paper analyzes: batch_task (one row per task, dependency encoded in
// task_name) and batch_instance (one row per instance execution).
//
// The package provides the record types, their CSV encoding (the trace
// ships as header-less CSV), streaming readers that scale to multi-
// gigabyte files, and grouping of task rows into per-job slices ready
// for DAG construction.
package trace

import (
	"fmt"

	"jobgraph/internal/taskname"
)

// ValidationError is a semantic (not syntactic) record defect. Kind is
// a stable identifier — e.g. "empty_job_name", "bad_sequence" — used
// as the obs counter suffix trace.validation.<kind> by the lenient
// ingest path.
type ValidationError struct {
	Kind string
	msg  string
}

func (e *ValidationError) Error() string { return e.msg }

func validationError(kind, format string, args ...interface{}) *ValidationError {
	return &ValidationError{Kind: kind, msg: fmt.Sprintf(format, args...)}
}

// Status is a task or instance lifecycle state as recorded in the trace.
type Status string

// Status values observed in the v2018 trace.
const (
	StatusWaiting     Status = "Waiting"
	StatusReady       Status = "Ready"
	StatusRunning     Status = "Running"
	StatusTerminated  Status = "Terminated" // completed successfully
	StatusFailed      Status = "Failed"
	StatusCancelled   Status = "Cancelled"
	StatusInterrupted Status = "Interrupted"
)

// canonical returns the package constant equal to s when s is a known
// state, detaching the value from whatever buffer backed it (the CSV
// record string, on the ingest path); unknown states come back as-is.
func (s Status) canonical() Status {
	switch s {
	case StatusWaiting:
		return StatusWaiting
	case StatusReady:
		return StatusReady
	case StatusRunning:
		return StatusRunning
	case StatusTerminated:
		return StatusTerminated
	case StatusFailed:
		return StatusFailed
	case StatusCancelled:
		return StatusCancelled
	case StatusInterrupted:
		return StatusInterrupted
	}
	return s
}

// Known reports whether s is one of the trace's documented states.
func (s Status) Known() bool {
	switch s {
	case StatusWaiting, StatusReady, StatusRunning, StatusTerminated,
		StatusFailed, StatusCancelled, StatusInterrupted:
		return true
	}
	return false
}

// TaskRecord is one row of batch_task.
type TaskRecord struct {
	TaskName    string // dependency-encoded name, e.g. "R5_4_3_2_1"
	InstanceNum int    // number of instances of this task
	JobName     string // parent job id, e.g. "j_1001388"
	TaskType    string // opaque numeric type tag in the raw trace
	Status      Status
	StartTime   int64   // seconds since trace start
	EndTime     int64   // seconds since trace start; 0 when unfinished
	PlanCPU     float64 // requested CPU in units of 100 = 1 core
	PlanMem     float64 // requested memory, normalized percentage

	// TaskSym/JobSym are the interned symbols for TaskName/JobName,
	// assigned in delivery order when the read runs with
	// ReadOptions.Arena; zero when the record never passed through an
	// arena. Symbols are a cache key into the arena that interned them —
	// consumers holding records from elsewhere (a cached artifact, a
	// different process) must validate them against the name before use
	// (taskname.Arena.ParseNamed does) and fall back to the string.
	// They carry no information beyond the name and are excluded from
	// content digests.
	TaskSym taskname.Symbol
	JobSym  taskname.Symbol
}

// Duration returns the task's wall-clock run time in seconds, 0 when
// the record lacks a valid interval.
func (t TaskRecord) Duration() float64 {
	if t.EndTime <= t.StartTime {
		return 0
	}
	return float64(t.EndTime - t.StartTime)
}

// Validate checks internal consistency of the record. Failures are
// *ValidationError values whose Kind names the defect, so the lenient
// ingest path can tally each failure kind separately.
func (t TaskRecord) Validate() error {
	if t.JobName == "" {
		return validationError("empty_job_name", "trace: task %q has empty job name", t.TaskName)
	}
	if t.TaskName == "" {
		return validationError("empty_task_name", "trace: job %s has a task with empty name", t.JobName)
	}
	if t.InstanceNum < 0 {
		return validationError("negative_instances", "trace: task %s/%s has negative instance count %d",
			t.JobName, t.TaskName, t.InstanceNum)
	}
	if t.StartTime < 0 || t.EndTime < 0 {
		return validationError("negative_timestamp", "trace: task %s/%s has negative timestamp", t.JobName, t.TaskName)
	}
	return nil
}

// InstanceRecord is one row of batch_instance.
type InstanceRecord struct {
	InstanceName string
	TaskName     string
	JobName      string
	TaskType     string
	Status       Status
	StartTime    int64
	EndTime      int64
	MachineID    string
	SeqNo        int
	TotalSeqNo   int
	CPUAvg       float64
	CPUMax       float64
	MemAvg       float64
	MemMax       float64
}

// Duration returns the instance run time in seconds (0 if unfinished).
func (r InstanceRecord) Duration() float64 {
	if r.EndTime <= r.StartTime {
		return 0
	}
	return float64(r.EndTime - r.StartTime)
}

// Validate checks internal consistency of the record; failures are
// kind-tagged *ValidationError values (see TaskRecord.Validate).
func (r InstanceRecord) Validate() error {
	if r.JobName == "" || r.TaskName == "" {
		return validationError("missing_names", "trace: instance %q missing job/task name", r.InstanceName)
	}
	if r.SeqNo < 0 || r.TotalSeqNo < 0 || (r.TotalSeqNo > 0 && r.SeqNo > r.TotalSeqNo) {
		return validationError("bad_sequence", "trace: instance %s has bad sequence %d/%d",
			r.InstanceName, r.SeqNo, r.TotalSeqNo)
	}
	return nil
}

// Job bundles all task rows of one job, the unit handed to the DAG
// builder.
type Job struct {
	Name  string
	Tasks []TaskRecord
}

// Window returns the job's earliest start and latest end across its
// tasks. ok is false when no task carries a valid interval.
func (j Job) Window() (start, end int64, ok bool) {
	for _, t := range j.Tasks {
		if t.EndTime <= t.StartTime {
			continue
		}
		if !ok || t.StartTime < start {
			start = t.StartTime
		}
		if t.EndTime > end {
			end = t.EndTime
		}
		ok = true
	}
	return start, end, ok
}

// AllTerminated reports whether every task of the job completed — the
// paper's "integrity" criterion.
func (j Job) AllTerminated() bool {
	if len(j.Tasks) == 0 {
		return false
	}
	for _, t := range j.Tasks {
		if t.Status != StatusTerminated {
			return false
		}
	}
	return true
}
