package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"jobgraph/internal/obs"
)

// resolveWorkers maps the ReadOptions.Workers convention onto a
// concrete goroutine count: <=0 means one per CPU.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// shardTargetBytes is the decompressed size a shard grows to before it
// is handed to a parser. It is a variable so tests can shrink it and
// force many shards on small inputs.
var shardTargetBytes = 1 << 20

// shard is one contiguous slice of the decompressed table, always cut
// at a record boundary. baseLine/baseOff locate its first byte in the
// whole stream so per-row provenance stays exact.
type shard struct {
	idx      int
	data     []byte
	baseLine int   // 1-based line number of the shard's first line
	baseOff  int64 // absolute byte offset of data[0]
}

// rowEvent is one parsed record or one classified rejection, in shard
// order. raw carries the record's verbatim bytes only when a
// quarantine sidecar is configured.
type rowEvent[T any] struct {
	rec    T
	rerr   *RowError
	raw    []byte
	zeroed int
}

// shardOut is one worker's fully parsed shard, keyed for reordering.
type shardOut[T any] struct {
	idx    int
	events []rowEvent[T]
	ioErr  error // non-CSV reader failure inside the shard (unexpected)
}

// chunkEnd is the splitter's terminal state: the stream error (nil on
// clean EOF), whether it was a truncation, and the absolute offset of
// the first byte that was NOT emitted as part of a shard — exactly the
// offset the sequential reader would report for the failure.
type chunkEnd struct {
	err       error
	truncated bool
	tailOff   int64
}

// splitShards reads the decompressed stream and cuts it into shards at
// safe record boundaries. A '\n' is a safe boundary iff the cumulative
// count of '"' bytes before it is even: in well-formed RFC 4180 input
// every quote — opener, closer, and each half of a "" escape — flips
// the parity, so odd parity means "inside a quoted field" and even
// parity means "between records" (or inside an unquoted field, where
// '\n' terminates the record anyway).
//
// Guarantees. For input whose quoting is well-formed — including input
// with wrong column counts, bad numerics, or a truncated tail, the
// realistic corruption in cloud traces, whose tables carry no quoted
// fields at all — every boundary is a true record boundary and the
// parallel read is byte-identical to the sequential one. For input
// with malformed quoting (bare or unterminated quotes), everything up
// to the FIRST such defect still splits exactly, so Strict mode — which
// aborts on the first error — is byte-identical on every input; only a
// Lenient read that continues past a quoting defect may classify the
// rows after it differently from the sequential reader until quoting
// resynchronizes.
func splitShards(r io.Reader, target int, shards chan<- shard, stop <-chan struct{}) chunkEnd {
	var (
		buf      []byte
		scanned  int  // bytes of buf already examined
		parity   int  // cumulative '"' count parity in buf[:scanned]
		nl       int  // '\n' count in buf[:scanned]
		content  bool // current line has bytes beyond '\r'
		lastSafe int  // index just past the last safe '\n'
		nlAtSafe int  // '\n' count in buf[:lastSafe]
		baseOff  int64
		baseLine = 1 // 1-based line number of buf[0]'s line
		idx      int
	)
	reg := obs.Default()
	shardCount := reg.Counter("trace.parallel.shards")
	shardBytes := reg.Counter("trace.parallel.shard_bytes")

	emit := func(end, endNL int) bool {
		if end == 0 {
			return true
		}
		sh := shard{idx: idx, data: buf[:end:end], baseLine: baseLine, baseOff: baseOff}
		select {
		case shards <- sh:
		case <-stop:
			return false
		}
		idx++
		shardCount.Add(1)
		shardBytes.Add(int64(end))
		// The carry (an incomplete record tail) gets fresh backing so
		// the emitted shard's bytes are never shared with it.
		carry := append([]byte(nil), buf[end:]...)
		buf = carry
		baseOff += int64(end)
		baseLine += endNL
		scanned -= end
		lastSafe = 0
		nl -= endNL
		nlAtSafe = 0
		return true
	}

	chunk := make([]byte, 64*1024)
	for {
		n, err := r.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for ; scanned < len(buf); scanned++ {
				switch buf[scanned] {
				case '"':
					parity ^= 1
					content = true
				case '\n':
					nl++
					// A newline ending an empty line is not a boundary:
					// csv.Reader skips blank lines but reports the NEXT
					// record's start offset as before them, so a blank
					// run must stay glued to the record that follows.
					if parity == 0 && content {
						lastSafe = scanned + 1
						nlAtSafe = nl
					}
					content = false
				case '\r':
				default:
					content = true
				}
			}
			if len(buf) >= target && lastSafe > 0 {
				if !emit(lastSafe, nlAtSafe) {
					return chunkEnd{}
				}
			}
		}
		if err == nil {
			continue
		}
		if err == io.EOF {
			// The final record may lack a trailing newline;
			// encoding/csv parses it at EOF, so ship everything.
			emit(len(buf), nl)
			return chunkEnd{}
		}
		if IsTruncated(err) {
			// Emit only the complete records; the partial tail starts
			// at baseOff+lastSafe, matching the sequential reader's
			// failure offset.
			tail := baseOff + int64(lastSafe)
			emit(lastSafe, nlAtSafe)
			return chunkEnd{err: err, truncated: true, tailOff: tail}
		}
		tail := baseOff + int64(lastSafe)
		emit(lastSafe, nlAtSafe)
		return chunkEnd{err: err, tailOff: tail}
	}
}

// parseShard decodes one shard into an ordered event list, adjusting
// line numbers and byte offsets to whole-stream coordinates. wantRaw
// keeps the verbatim bytes of rejected records for quarantine.
func parseShard[T any](sh shard, spec tableSpec[T], lenient, wantRaw bool) shardOut[T] {
	// Pre-size the event list from a conservative bytes-per-row guess
	// so appending doesn't repeatedly re-grow multi-megabyte slices.
	out := shardOut[T]{idx: sh.idx, events: make([]rowEvent[T], 0, len(sh.data)/32+4)}
	cr := csv.NewReader(bytes.NewReader(sh.data))
	cr.FieldsPerRecord = spec.columns
	cr.ReuseRecord = true
	ctx := &rowCtx{lenient: lenient}
	for {
		start := cr.InputOffset()
		ctx.nonFinite = 0
		row, err := cr.Read()
		if err == io.EOF {
			return out
		}
		var ev rowEvent[T]
		if err != nil {
			var pe *csv.ParseError
			if !errors.As(err, &pe) {
				out.ioErr = err
				return out
			}
			class := ErrClassCSV
			if errors.Is(err, csv.ErrFieldCount) {
				class = ErrClassColumns
			}
			ev.rerr = &RowError{
				Table:  spec.name,
				Line:   sh.baseLine + pe.StartLine - 1,
				Offset: sh.baseOff + start,
				Class:  class,
				Err:    pe.Err,
			}
		} else {
			rec, perr := spec.parse(row, ctx)
			ev.zeroed = ctx.nonFinite
			if perr == nil {
				ev.rec = rec
			} else {
				line, _ := cr.FieldPos(0)
				ev.rerr = &RowError{
					Table:  spec.name,
					Line:   sh.baseLine + line - 1,
					Offset: sh.baseOff + start,
					Class:  classify(perr),
					Err:    perr,
				}
			}
		}
		if ev.rerr != nil && wantRaw {
			ev.raw = append([]byte(nil), sh.data[start:cr.InputOffset()]...)
		}
		out.events = append(out.events, ev)
	}
}

// readTableParallel is the sharded decoder: a splitter cuts the stream
// at record boundaries, `workers` goroutines parse shards into event
// lists, and a single merger replays events in input order through the
// same rowSink bookkeeping the sequential path uses — so every
// observable output (record stream, stats, quarantine bytes, error
// values, log lines) is identical at any worker count.
func readTableParallel[T any](r io.Reader, spec tableSpec[T], opt ReadOptions, workers int, fn func(T) error) (ReadStats, error) {
	sink := newRowSink(spec.name, opt, spec.rowsOK, spec.rowsBad)
	defer sink.done()
	wantRaw := sink.lenient && opt.Quarantine != nil

	reg := obs.Default()
	reg.Counter("trace.parallel.reads").Add(1)

	shards := make(chan shard, workers)
	results := make(chan shardOut[T], workers)
	endc := make(chan chunkEnd, 1)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	go func() {
		end := splitShards(r, shardTargetBytes, shards, stop)
		close(shards)
		endc <- end
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := reg.Counter(fmt.Sprintf("trace.parallel.worker%02d.rows", w))
			for sh := range shards {
				out := parseShard(sh, spec, sink.lenient, wantRaw)
				rows.Add(int64(len(out.events)))
				select {
				case results <- out:
				case <-stop:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merge: replay shard event lists in input order. pending parks
	// shards that finished ahead of their turn.
	pending := make(map[int][]rowEvent[T])
	next := 0
	replay := func(events []rowEvent[T]) error {
		for i := range events {
			ev := &events[i]
			sink.zeroed(ev.zeroed)
			if ev.rerr == nil {
				sink.accept()
				if err := fn(ev.rec); err != nil {
					return err
				}
				continue
			}
			if err := sink.reject(ev.rerr, ev.raw); err != nil {
				return err
			}
		}
		return nil
	}
	for out := range results {
		if out.ioErr != nil {
			halt()
			return sink.stats, fmt.Errorf("trace: %s: %w", spec.name, out.ioErr)
		}
		if out.idx != next {
			pending[out.idx] = out.events
			continue
		}
		if err := replay(out.events); err != nil {
			halt()
			return sink.stats, err
		}
		next++
		for {
			events, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := replay(events); err != nil {
				halt()
				return sink.stats, err
			}
			next++
		}
	}
	// Workers are done; drain any shards parked out of order (none
	// should remain unless a worker exited on stop, which only happens
	// after an early return above).
	for {
		events, ok := pending[next]
		if !ok {
			break
		}
		delete(pending, next)
		if err := replay(events); err != nil {
			return sink.stats, err
		}
		next++
	}

	end := <-endc
	if end.err != nil {
		if !end.truncated {
			return sink.stats, fmt.Errorf("trace: %s: %w", spec.name, end.err)
		}
		if terr := sink.truncated(end.err, end.tailOff); terr != nil {
			return sink.stats, terr
		}
	}
	if err := checkBudget(spec.name, opt, &sink.stats, nil, true); err != nil {
		return sink.stats, err
	}
	return sink.stats, nil
}
