package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"time"

	"jobgraph/internal/obs"
	"jobgraph/internal/taskname"
)

// Mode selects how the streaming readers treat malformed rows.
type Mode int

const (
	// Strict aborts the read on the first malformed row — the zero
	// value, preserving the historical fail-fast behaviour.
	Strict Mode = iota
	// Lenient skips malformed rows (tallying them by ErrClass and
	// optionally quarantining the raw bytes) until the error budget is
	// exhausted, and recovers the rows already parsed when the input
	// stream is truncated mid-file.
	Lenient
)

func (m Mode) String() string {
	if m == Lenient {
		return "lenient"
	}
	return "strict"
}

// ErrClass classifies why a row was rejected. The classes drive the
// per-class obs counters (trace.bad_rows.<table>.<class>) and the
// ingest-health report of cmd/tracecheck.
type ErrClass string

const (
	// ErrClassCSV is a structural CSV defect: bare quote, unterminated
	// quoted field, and similar syntax errors.
	ErrClassCSV ErrClass = "csv_syntax"
	// ErrClassColumns is a row with the wrong number of fields.
	ErrClassColumns ErrClass = "column_count"
	// ErrClassNumeric is a numeric field that fails to parse.
	ErrClassNumeric ErrClass = "numeric_parse"
	// ErrClassNonFinite is a numeric field carrying NaN or ±Inf —
	// strconv.ParseFloat accepts them, resource statistics do not.
	ErrClassNonFinite ErrClass = "non_finite"
	// ErrClassValidation is a row that parses but fails the record's
	// Validate semantic checks.
	ErrClassValidation ErrClass = "validation"
)

// ReadOptions configures one streaming read. The zero value is Strict
// with no budget and no quarantine — the historical behaviour, decoded
// across all CPUs (see Workers).
type ReadOptions struct {
	Mode Mode

	// MaxBadRows is the absolute error budget in Lenient mode: the
	// read aborts with a *BudgetError as soon as more than this many
	// rows have been rejected. 0 means unlimited.
	MaxBadRows int64

	// MaxBadRatio bounds rejected/(parsed+rejected) in Lenient mode;
	// 0 disables the check. The ratio is enforced at end of stream,
	// and mid-stream once ratioMinRows records have been seen so a
	// hopeless file aborts early instead of after millions of rows.
	MaxBadRatio float64

	// Quarantine, when non-nil in Lenient mode, receives every
	// rejected row: one '#' provenance comment (table, line, byte
	// offset, class, error) followed by the record's verbatim bytes.
	// Re-read a quarantine file by setting csv.Reader.Comment = '#'.
	Quarantine io.Writer

	// Workers bounds the parallel shard decoders: <=0 uses GOMAXPROCS,
	// 1 forces the single-threaded decoder, and larger values fan the
	// table out across that many parsers. Every observable output —
	// record stream, stats, quarantine sidecar, error values — is
	// identical at every worker count; Workers=1 is bit-for-bit the
	// historical sequential read.
	Workers int

	// WrapReader, when non-nil, wraps the decompressed byte stream
	// before decoding — the hook fault injectors (internal/faultinject)
	// use to exercise truncation, corruption and stall paths against
	// the full reader stack without fixtures on disk.
	WrapReader func(io.Reader) io.Reader

	// Arena, when non-nil, interns task and job names of accepted
	// records into symbols (TaskRecord.TaskSym/JobSym), replaces the
	// retained strings with the arena's canonical copies, and
	// canonicalizes Status to the package constants — so accepted
	// records stop pinning the per-record CSV backing strings. Interning
	// happens at the serialized delivery point shared by the sequential
	// and parallel decoders, so symbol numbering is identical at every
	// worker count.
	Arena *taskname.Arena
}

// ratioMinRows is the minimum number of records before MaxBadRatio is
// enforced mid-stream; below it one early bad row would dominate the
// ratio.
const ratioMinRows = 1000

// maxLoggedBadRows bounds the per-read slog noise: the first few
// rejects are logged individually, the rest only appear in the tallies.
const maxLoggedBadRows = 10

// ReadStats describes the health of one streaming read.
type ReadStats struct {
	// Rows is the number of records delivered to the callback.
	Rows int64
	// BadRows is the number of records rejected (Lenient) or the
	// single record that aborted the read (Strict).
	BadRows int64
	// ByClass tallies rejected rows by error class.
	ByClass map[ErrClass]int64
	// ZeroedFields counts non-finite numeric fields that were zeroed
	// in Lenient mode; the owning rows were kept.
	ZeroedFields int64
	// Quarantined counts rows written to the quarantine sidecar.
	Quarantined int64
	// ReopenedJobs counts jobs a ForEachJob stream emitted more than
	// once because their rows reappeared after the bounded job window
	// had already flushed them (out-of-order traces only).
	ReopenedJobs int64
	// Partial reports that the input ended early — truncated or
	// corrupt gzip tail — and the rows read up to that point were
	// delivered anyway (Lenient mode only).
	Partial bool
	// PartialCause is the stream error behind Partial.
	PartialCause error
}

// Classes returns the tallied error classes in sorted order.
func (s *ReadStats) Classes() []ErrClass {
	out := make([]ErrClass, 0, len(s.ByClass))
	for c := range s.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary renders the stats as one log-friendly line.
func (s *ReadStats) Summary() string {
	msg := fmt.Sprintf("rows=%d bad=%d", s.Rows, s.BadRows)
	for _, c := range s.Classes() {
		msg += fmt.Sprintf(" %s=%d", c, s.ByClass[c])
	}
	if s.ZeroedFields > 0 {
		msg += fmt.Sprintf(" zeroed_fields=%d", s.ZeroedFields)
	}
	if s.Quarantined > 0 {
		msg += fmt.Sprintf(" quarantined=%d", s.Quarantined)
	}
	if s.ReopenedJobs > 0 {
		msg += fmt.Sprintf(" reopened_jobs=%d", s.ReopenedJobs)
	}
	if s.Partial {
		msg += fmt.Sprintf(" partial=true (%v)", s.PartialCause)
	}
	return msg
}

// RowError is a classified per-row failure with accurate provenance:
// Line is the 1-based input line the record starts on (multi-line
// quoted records included), Offset the byte offset of the record start
// in the decompressed stream.
type RowError struct {
	Table  string
	Line   int
	Offset int64
	Class  ErrClass
	Err    error
}

func (e *RowError) Error() string {
	return fmt.Sprintf("trace: %s line %d (byte %d): %s: %v",
		e.Table, e.Line, e.Offset, e.Class, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// BudgetError reports a Lenient read aborted because rejected rows
// exceeded the configured budget. Stats covers everything read up to
// the abort; Last is the rejection that tipped the budget.
type BudgetError struct {
	Table string
	Stats ReadStats
	Last  *RowError
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("trace: %s: error budget exceeded (%s); last: %v",
		e.Table, e.Stats.Summary(), e.Last)
}

func (e *BudgetError) Unwrap() error { return e.Last }

// fieldError is a classified single-field parse failure.
type fieldError struct {
	field string
	class ErrClass
	err   error
}

func (e *fieldError) Error() string { return e.field + ": " + e.err.Error() }
func (e *fieldError) Unwrap() error { return e.err }

// rowCtx threads the leniency mode through the per-row parse
// functions and collects field-level recoveries.
type rowCtx struct {
	lenient   bool
	nonFinite int // non-finite fields zeroed on the current row
}

// classify maps a parse-function error to its ErrClass.
func classify(err error) ErrClass {
	var fe *fieldError
	if errors.As(err, &fe) {
		return fe.class
	}
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ErrClassValidation
	}
	return ErrClassValidation
}

// tableSpec binds one trace table's schema to its parse function and
// volume counters.
type tableSpec[T any] struct {
	name    string
	columns int
	parse   func([]string, *rowCtx) (T, error)
	rowsOK  *obs.Counter
	rowsBad *obs.Counter
}

// rowSink is the per-row bookkeeping shared by the sequential and
// parallel read paths: stats tallies, per-class obs counters, bounded
// logging, quarantine writes and budget enforcement. Keeping it in one
// place guarantees the two decoders cannot drift semantically.
type rowSink struct {
	table         string
	opt           ReadOptions
	lenient       bool
	lg            *slog.Logger
	stats         ReadStats
	rowsOK        *obs.Counter
	rowsBad       *obs.Counter
	rowRate       *obs.RateCounter
	hb            *obs.Heartbeat
	classCounters map[ErrClass]*obs.Counter
	logged        int
}

func newRowSink(table string, opt ReadOptions, rowsOK, rowsBad *obs.Counter) *rowSink {
	s := &rowSink{
		table:   table,
		opt:     opt,
		lenient: opt.Mode == Lenient,
		lg:      obs.Default().Logger(),
		stats:   ReadStats{ByClass: make(map[ErrClass]int64)},
		rowsOK:  rowsOK,
		rowsBad: rowsBad,
		// Windowed rows/s per table: the "is ingest still moving, and how
		// fast right now" signal on /metrics during a multi-minute load.
		rowRate: obs.Default().RateCounter("trace."+table+".rows", obs.DefaultWindow),
		// Per-table ingest liveness for the stall watchdog: beats on
		// every accepted or rejected row, so a reader blocked on a dead
		// transport shows up as an active-but-silent heartbeat.
		hb:            obs.Default().Heartbeat("trace.ingest." + table),
		classCounters: make(map[ErrClass]*obs.Counter),
	}
	// An initial beat arms the heartbeat before the first row, so a
	// stream that stalls before delivering anything is still caught.
	s.hb.Beat()
	return s
}

// done disarms the liveness heartbeat; both decoders call it when the
// read ends, however it ends.
func (s *rowSink) done() { s.hb.Done() }

// zeroed tallies non-finite numeric fields zeroed on the current row.
func (s *rowSink) zeroed(n int) {
	if n <= 0 {
		return
	}
	s.stats.ZeroedFields += int64(n)
	obs.Default().Counter("trace.fields_zeroed_nonfinite").Add(int64(n))
}

// accept books one delivered record; the caller invokes its callback
// immediately after. Keeping the callback out of this method avoids a
// per-row closure allocation on the ingest hot path.
func (s *rowSink) accept() {
	s.stats.Rows++
	s.rowsOK.Add(1)
	s.rowRate.Add(1)
	s.hb.Beat()
}

// reject books one rejected row: tallies, counters, bounded logging,
// quarantine (raw is the record's verbatim bytes, nil when no sidecar
// is configured) and budget enforcement. A non-nil return aborts the
// read: the row error itself in Strict mode, a quarantine I/O failure,
// or a *BudgetError.
func (s *rowSink) reject(rerr *RowError, raw []byte) error {
	s.stats.BadRows++
	s.stats.ByClass[rerr.Class]++
	s.rowsBad.Add(1)
	s.hb.Beat()
	c := s.classCounters[rerr.Class]
	if c == nil {
		c = obs.Default().Counter("trace.bad_rows." + s.table + "." + string(rerr.Class))
		s.classCounters[rerr.Class] = c
	}
	c.Add(1)
	var ve *ValidationError
	if errors.As(rerr.Err, &ve) {
		obs.Default().Counter("trace.validation." + ve.Kind).Add(1)
	}
	if !s.lenient {
		return rerr
	}
	if s.logged < maxLoggedBadRows {
		s.logged++
		s.lg.Warn("malformed row skipped", "table", s.table, "line", rerr.Line,
			"offset", rerr.Offset, "class", rerr.Class, "err", rerr.Err)
		if s.logged == maxLoggedBadRows {
			s.lg.Warn("further malformed rows logged only in tallies", "table", s.table)
		}
	}
	if s.opt.Quarantine != nil {
		if err := writeQuarantine(s.opt.Quarantine, rerr, raw); err != nil {
			return fmt.Errorf("trace: quarantine: %w", err)
		}
		s.stats.Quarantined++
	}
	return checkBudget(s.table, s.opt, &s.stats, rerr, false)
}

// truncated books a mid-file stream death: Lenient keeps the rows read
// so far with a Partial marker, Strict discards them with an error.
func (s *rowSink) truncated(err error, offset int64) error {
	if !s.lenient {
		return fmt.Errorf("trace: %s: truncated input at byte %d: %w", s.table, offset, err)
	}
	s.stats.Partial = true
	s.stats.PartialCause = err
	s.lg.Warn("truncated input, keeping rows read so far",
		"table", s.table, "rows", s.stats.Rows, "offset", offset, "err", err)
	return nil
}

// Whole-read ingest throughput, published per completed read: rows/sec
// over accepted+rejected records and MB/sec over the decompressed bytes
// the decoder consumed. Gauges land in metrics.json and the run ledger
// automatically and are rendered by cmd/runreport.
var (
	obsIngestRowsPerSec = obs.Default().Gauge("trace.ingest.rows_per_sec")
	obsIngestMBPerSec   = obs.Default().Gauge("trace.ingest.mb_per_sec")
)

// countingReader counts the bytes the decoder pulled off the stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readTable is the entry point behind ReadTasks, ReadInstances and
// ReadMachines: it dispatches between the single-threaded decoder and
// the sharded parallel one (see parallel.go) on opt.Workers, and
// publishes whole-read throughput gauges when the read ends.
func readTable[T any](r io.Reader, spec tableSpec[T], opt ReadOptions, fn func(T) error) (ReadStats, error) {
	if opt.WrapReader != nil {
		r = opt.WrapReader(r)
	}
	cnt := &countingReader{r: r}
	start := time.Now()
	var stats ReadStats
	var err error
	if w := resolveWorkers(opt.Workers); w > 1 {
		stats, err = readTableParallel(cnt, spec, opt, w, fn)
	} else {
		stats, err = readTableSeq(cnt, spec, opt, fn)
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		obsIngestRowsPerSec.Set(int64(float64(stats.Rows+stats.BadRows) / sec))
		obsIngestMBPerSec.Set(int64(float64(cnt.n) / (1 << 20) / sec))
	}
	return stats, err
}

// readTableSeq is the single-threaded streaming loop: CSV decode,
// classified error handling, budget accounting, quarantine, and
// partial-read recovery.
func readTableSeq[T any](r io.Reader, spec tableSpec[T], opt ReadOptions, fn func(T) error) (ReadStats, error) {
	sink := newRowSink(spec.name, opt, spec.rowsOK, spec.rowsBad)
	defer sink.done()
	var capt *captureReader
	src := r
	if sink.lenient && opt.Quarantine != nil {
		capt = &captureReader{r: r}
		src = capt
	}
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = spec.columns
	cr.ReuseRecord = true
	ctx := &rowCtx{lenient: sink.lenient}

	for {
		start := cr.InputOffset()
		if capt != nil {
			capt.discard(start)
		}
		ctx.nonFinite = 0
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		var rerr *RowError
		if err != nil {
			if IsTruncated(err) {
				// The stream died mid-file; everything parsed so far
				// is intact. Lenient mode keeps it, Strict discards.
				if terr := sink.truncated(err, start); terr != nil {
					return sink.stats, terr
				}
				break
			}
			var pe *csv.ParseError
			if !errors.As(err, &pe) {
				// Non-CSV reader failure (I/O): always fatal — there is
				// no way to resynchronize on the record stream.
				return sink.stats, fmt.Errorf("trace: %s: %w", spec.name, err)
			}
			class := ErrClassCSV
			if errors.Is(err, csv.ErrFieldCount) {
				class = ErrClassColumns
			}
			rerr = &RowError{Table: spec.name, Line: pe.StartLine, Offset: start, Class: class, Err: pe.Err}
		} else {
			rec, perr := spec.parse(row, ctx)
			sink.zeroed(ctx.nonFinite)
			if perr == nil {
				sink.accept()
				if err := fn(rec); err != nil {
					return sink.stats, err
				}
				continue
			}
			line, _ := cr.FieldPos(0)
			rerr = &RowError{Table: spec.name, Line: line, Offset: start, Class: classify(perr), Err: perr}
		}

		var raw []byte
		if capt != nil {
			raw = capt.slice(start, cr.InputOffset())
		}
		if err := sink.reject(rerr, raw); err != nil {
			return sink.stats, err
		}
	}
	if err := checkBudget(spec.name, opt, &sink.stats, nil, true); err != nil {
		return sink.stats, err
	}
	return sink.stats, nil
}

// checkBudget enforces the Lenient error budget; final selects the
// end-of-stream ratio check that also covers short files.
func checkBudget(table string, opt ReadOptions, s *ReadStats, last *RowError, final bool) error {
	if opt.Mode != Lenient || s.BadRows == 0 {
		return nil
	}
	if opt.MaxBadRows > 0 && s.BadRows > opt.MaxBadRows {
		return &BudgetError{Table: table, Stats: *s, Last: last}
	}
	if opt.MaxBadRatio > 0 {
		total := s.Rows + s.BadRows
		if (final || total >= ratioMinRows) &&
			float64(s.BadRows) > opt.MaxBadRatio*float64(total) {
			return &BudgetError{Table: table, Stats: *s, Last: last}
		}
	}
	return nil
}

// writeQuarantine appends one rejected record to the sidecar: a '#'
// provenance comment, then the verbatim row bytes.
func writeQuarantine(w io.Writer, rerr *RowError, raw []byte) error {
	if _, err := fmt.Fprintf(w, "# table=%s line=%d offset=%d class=%s err=%q\n",
		rerr.Table, rerr.Line, rerr.Offset, rerr.Class, rerr.Err.Error()); err != nil {
		return err
	}
	if len(raw) == 0 {
		return nil
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	if raw[len(raw)-1] != '\n' {
		_, err := io.WriteString(w, "\n")
		return err
	}
	return nil
}

// captureReader tees the byte stream into a sliding window addressed
// by absolute offset, so the verbatim bytes of a record csv.Reader has
// already consumed can be recovered for quarantine. discard bounds the
// window to the current record plus csv's read-ahead buffer.
type captureReader struct {
	r    io.Reader
	buf  []byte
	base int64 // absolute offset of buf[0]
}

func (c *captureReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.buf = append(c.buf, p[:n]...)
	}
	return n, err
}

// discard drops captured bytes before the absolute offset upTo.
func (c *captureReader) discard(upTo int64) {
	n := upTo - c.base
	if n <= 0 {
		return
	}
	if n >= int64(len(c.buf)) {
		c.base += int64(len(c.buf))
		c.buf = c.buf[:0]
		return
	}
	c.buf = append(c.buf[:0], c.buf[n:]...)
	c.base = upTo
}

// slice copies the captured bytes in [start, end).
func (c *captureReader) slice(start, end int64) []byte {
	lo, hi := start-c.base, end-c.base
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(c.buf)) {
		hi = int64(len(c.buf))
	}
	if lo >= hi {
		return nil
	}
	out := make([]byte, hi-lo)
	copy(out, c.buf[lo:hi])
	return out
}
