package trace

import (
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"jobgraph/internal/faultinject"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/flight"
)

// TestWatchdogCatchesStalledReader is the end-to-end stall scenario
// from the acceptance criteria: a reader that hangs mid-table (the
// faultinject stall injector under ReadOptions.WrapReader) must trip
// the running watchdog within its configured deadline, producing a
// goroutine profile and a flight dump that round-trips through the
// parser; releasing the stall must let the read finish normally. Runs
// under -race in CI.
func TestWatchdogCatchesStalledReader(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	// A multi-row task table; stall after 256 bytes so the decoder has
	// delivered some rows before the transport goes dead.
	input := strings.Repeat(goodRow, 200)

	rec := flight.NewRecorder(reg, 256)
	rec.SetRunInfo("stalltest", "trace_test")
	reg.SetObserver(rec)

	dir := t.TempDir()
	tripped := make(chan flight.TripInfo, 1)
	w := flight.NewWatchdog(flight.Config{
		Registry:         reg,
		Recorder:         rec,
		HeartbeatTimeout: 100 * time.Millisecond,
		Tick:             10 * time.Millisecond,
		FlightDir:        dir,
		RunID:            "stalltest",
		OnTrip:           func(ti flight.TripInfo) { tripped <- ti },
	})
	w.Start()
	defer w.Stop()

	var (
		wg       sync.WaitGroup
		rows     int
		readErr  error
		readDone = make(chan struct{})
		stallCh  = make(chan *faultinject.Stall, 1)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(readDone)
		opt := ReadOptions{
			Workers: 1,
			WrapReader: func(r io.Reader) io.Reader {
				s := faultinject.StallAt(r, 256)
				stallCh <- s
				return s
			},
		}
		_, readErr = ReadTasksOpts(strings.NewReader(input), opt, func(TaskRecord) error {
			rows++
			return nil
		})
	}()
	stall := <-stallCh

	// The watchdog must trip within its deadline (plus scheduling
	// slack) while the reader is still blocked.
	var trip flight.TripInfo
	select {
	case trip = <-tripped:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not trip on the stalled reader")
	}
	select {
	case <-readDone:
		t.Fatal("read finished before the stall was released")
	default:
	}

	if trip.Reason != "heartbeat-stall" || trip.Name != "trace.ingest.batch_task" {
		t.Fatalf("unexpected trip: %+v", trip)
	}
	d, err := flight.ReadFile(trip.DumpPath)
	if err != nil {
		t.Fatalf("flight dump does not round-trip: %v", err)
	}
	if d.RunID != "stalltest" || d.Reason != "watchdog" {
		t.Fatalf("dump identity wrong: run=%q reason=%q", d.RunID, d.Reason)
	}
	found := false
	for _, hb := range d.Heartbeats {
		if hb.Name == "trace.ingest.batch_task" && hb.Active {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump does not show the stalled heartbeat: %+v", d.Heartbeats)
	}
	gp, err := os.ReadFile(trip.GoroutineProfile)
	if err != nil {
		t.Fatalf("goroutine profile: %v", err)
	}
	if !strings.Contains(string(gp), "faultinject") {
		t.Fatalf("goroutine profile does not show the blocked reader stack")
	}

	// Releasing the stall lets the read complete normally.
	stall.Release()
	wg.Wait()
	if readErr != nil {
		t.Fatalf("read failed after release: %v", readErr)
	}
	if rows != 200 {
		t.Fatalf("read %d rows, want 200", rows)
	}
}

// TestWrapReaderAppliesToParallelDecoder proves the fault-injection
// hook wraps the stream for the sharded decoder too, and that the
// ingest heartbeat disarms once a read completes at any worker count.
func TestWrapReaderAppliesToParallelDecoder(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()

	input := strings.Repeat(goodRow, 500)
	for _, workers := range []int{1, 4} {
		wrapped := false
		opt := ReadOptions{
			Workers: workers,
			WrapReader: func(r io.Reader) io.Reader {
				wrapped = true
				return r
			},
		}
		var rows int
		if _, err := ReadTasksOpts(strings.NewReader(input), opt, func(TaskRecord) error {
			rows++
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !wrapped {
			t.Fatalf("workers=%d: WrapReader not applied", workers)
		}
		if rows != 500 {
			t.Fatalf("workers=%d: rows=%d, want 500", workers, rows)
		}
	}
	for _, hb := range reg.HeartbeatStates() {
		if hb.Name == "trace.ingest.batch_task" {
			if hb.Active {
				t.Fatal("ingest heartbeat still active after the read finished")
			}
			if hb.Beats == 0 {
				t.Fatal("ingest heartbeat never beat")
			}
		}
	}
}
