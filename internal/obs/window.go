package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Windowed instruments: where Counter and Histogram aggregate over the
// whole process lifetime (the right shape for a batch run that ends
// with one metrics.json), a long-lived process needs "what happened in
// the last minute". RateCounter and WindowHistogram answer that with
// bounded memory, read the registry clock (so tests drive them with an
// injected deterministic clock), and surface in Snapshot alongside the
// all-time instruments.

// DefaultWindow is the rolling window the pipeline's windowed
// instruments use: long enough to smooth scheduler noise, short enough
// that a stalled ingest shows up on the next scrape.
const DefaultWindow = 60 * time.Second

// rateBuckets is the ring resolution of a RateCounter: the window is
// divided into this many buckets, so a 60s window advances in 1s steps.
const rateBuckets = 60

// RateCounter counts events into a ring of time buckets covering a
// rolling window, so Rate reports recent throughput (rows/s, jobs/s)
// instead of a lifetime average. Add is lock-free on the fast path (one
// clock read plus two atomic adds) and safe for concurrent use; bucket
// rotation takes a mutex. Counts that land exactly while the ring
// rotates may be attributed to a neighboring bucket — an accepted
// imprecision for telemetry, never for correctness-bearing counts (use
// Counter for those).
type RateCounter struct {
	reg     *Registry
	window  time.Duration
	bucketD time.Duration

	total atomic.Int64
	epoch atomic.Int64 // absolute index of the newest accounted bucket

	mu      sync.Mutex // serializes ring rotation
	buckets [rateBuckets]atomic.Int64
}

func newRateCounter(r *Registry, window time.Duration) *RateCounter {
	if window <= 0 {
		window = DefaultWindow
	}
	c := &RateCounter{reg: r, window: window, bucketD: window / rateBuckets}
	c.epoch.Store(c.absIndex(r.now()))
	return c
}

// absIndex is the absolute bucket index of t.
func (c *RateCounter) absIndex(t time.Time) int64 {
	return t.UnixNano() / int64(c.bucketD)
}

// Add counts n events at the current registry clock (no-op while the
// registry is disabled).
func (c *RateCounter) Add(n int64) {
	if !c.reg.enabled.Load() {
		return
	}
	c.total.Add(n)
	abs := c.absIndex(c.reg.now())
	c.advance(abs)
	c.buckets[bucketSlot(abs)].Add(n)
}

// bucketSlot maps an absolute index onto the ring.
func bucketSlot(abs int64) int {
	s := int(abs % rateBuckets)
	if s < 0 {
		s += rateBuckets
	}
	return s
}

// advance zeroes every bucket between the last accounted index and abs,
// so stale counts from a previous lap never leak into the window.
func (c *RateCounter) advance(abs int64) {
	if abs <= c.epoch.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.epoch.Load()
	if abs <= cur {
		return
	}
	steps := abs - cur
	if steps > rateBuckets {
		steps = rateBuckets
	}
	for i := int64(1); i <= steps; i++ {
		c.buckets[bucketSlot(cur+i)].Store(0)
	}
	c.epoch.Store(abs)
}

// Total returns the all-time event count.
func (c *RateCounter) Total() int64 { return c.total.Load() }

// WindowCount returns the events counted inside the rolling window
// ending now.
func (c *RateCounter) WindowCount() int64 {
	c.advance(c.absIndex(c.reg.now()))
	var sum int64
	for i := range c.buckets {
		sum += c.buckets[i].Load()
	}
	return sum
}

// Rate returns the windowed event rate in events per second. During the
// first window after startup it under-reports (the divisor is always
// the full window), which reads as a ramp-up — preferable to a spike.
func (c *RateCounter) Rate() float64 {
	return float64(c.WindowCount()) / c.window.Seconds()
}

// RateSnapshot is the exported summary of a RateCounter.
type RateSnapshot struct {
	Total       int64   `json:"total"`
	WindowCount int64   `json:"window_count"`
	WindowSec   float64 `json:"window_sec"`
	PerSec      float64 `json:"per_sec"`
}

func (c *RateCounter) snapshot() RateSnapshot {
	wc := c.WindowCount()
	return RateSnapshot{
		Total:       c.Total(),
		WindowCount: wc,
		WindowSec:   c.window.Seconds(),
		PerSec:      float64(wc) / c.window.Seconds(),
	}
}

// windowHistogramCap bounds a WindowHistogram's retained samples. At 16
// bytes per sample this caps memory at 64 KiB per instrument; when a
// window sees more observations than this, the oldest are evicted early
// and the snapshot notes the shortened effective window via Evicted.
const windowHistogramCap = 4096

type windowSample struct {
	at time.Time
	v  float64
}

// WindowHistogram summarizes the observations of a rolling window with
// exact quantiles: a bounded ring of timestamped samples, expired by
// the registry clock. Unlike Histogram (P² over the whole run), its
// quantiles are computed over at most windowHistogramCap retained
// samples, so they track recent behavior and recover after a slow
// phase ends. Observe takes a mutex — use it for per-stage or per-job
// observations, not per-row inner loops.
type WindowHistogram struct {
	reg    *Registry
	window time.Duration

	mu      sync.Mutex
	buf     []windowSample // ring of len windowHistogramCap
	head, n int
	total   int64 // all-time observations
	evicted int64 // in-window samples dropped to capacity
}

func newWindowHistogram(r *Registry, window time.Duration) *WindowHistogram {
	if window <= 0 {
		window = DefaultWindow
	}
	return &WindowHistogram{reg: r, window: window}
}

// Observe folds one observation in at the current registry clock
// (no-op while the registry is disabled).
func (h *WindowHistogram) Observe(v float64) {
	if !h.reg.enabled.Load() {
		return
	}
	now := h.reg.now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buf == nil {
		h.buf = make([]windowSample, windowHistogramCap)
	}
	h.expire(now)
	if h.n == len(h.buf) {
		h.head = (h.head + 1) % len(h.buf)
		h.n--
		h.evicted++
	}
	h.buf[(h.head+h.n)%len(h.buf)] = windowSample{at: now, v: v}
	h.n++
	h.total++
}

// expire drops samples older than the window. Callers hold h.mu.
func (h *WindowHistogram) expire(now time.Time) {
	for h.n > 0 && now.Sub(h.buf[h.head].at) > h.window {
		h.head = (h.head + 1) % len(h.buf)
		h.n--
	}
}

// Count returns the number of in-window samples retained right now.
func (h *WindowHistogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expire(h.reg.now())
	return h.n
}

// WindowHistogramSnapshot is the exported summary of a rolling-window
// histogram: exact order statistics over the retained in-window
// samples.
type WindowHistogramSnapshot struct {
	WindowSec float64 `json:"window_sec"`
	Count     int64   `json:"count"` // in-window samples summarized
	Total     int64   `json:"total"` // all-time observations
	Evicted   int64   `json:"evicted,omitempty"`
	Mean      float64 `json:"mean"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	P50       float64 `json:"p50"`
	P90       float64 `json:"p90"`
	P99       float64 `json:"p99"`
}

// Snapshot summarizes the current window.
func (h *WindowHistogram) Snapshot() WindowHistogramSnapshot {
	now := h.reg.now()
	h.mu.Lock()
	h.expire(now)
	vals := make([]float64, h.n)
	for i := 0; i < h.n; i++ {
		vals[i] = h.buf[(h.head+i)%len(h.buf)].v
	}
	snap := WindowHistogramSnapshot{
		WindowSec: h.window.Seconds(),
		Count:     int64(h.n),
		Total:     h.total,
		Evicted:   h.evicted,
	}
	h.mu.Unlock()
	if len(vals) == 0 {
		return snap
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	snap.Mean = sum / float64(len(vals))
	snap.Min = vals[0]
	snap.Max = vals[len(vals)-1]
	snap.P50 = quantSorted(vals, 0.50)
	snap.P90 = quantSorted(vals, 0.90)
	snap.P99 = quantSorted(vals, 0.99)
	return snap
}

// quantSorted is the nearest-rank quantile (ceil(q*n)-th order
// statistic) over a sorted slice.
func quantSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func (h *WindowHistogram) reset() {
	h.mu.Lock()
	h.head, h.n, h.total, h.evicted = 0, 0, 0, 0
	h.mu.Unlock()
}

func (c *RateCounter) reset() {
	c.mu.Lock()
	for i := range c.buckets {
		c.buckets[i].Store(0)
	}
	c.total.Store(0)
	c.epoch.Store(c.absIndex(c.reg.now()))
	c.mu.Unlock()
}

// RateCounter interns and returns the named rolling-rate counter. The
// window is fixed on first use; later calls with a different window
// return the existing instrument unchanged.
func (r *Registry) RateCounter(name string, window time.Duration) *RateCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.rates[name]
	if !ok {
		c = newRateCounter(r, window)
		r.rates[name] = c
	}
	return c
}

// WindowHistogram interns and returns the named sliding-window
// histogram. The window is fixed on first use; later calls with a
// different window return the existing instrument unchanged.
func (r *Registry) WindowHistogram(name string, window time.Duration) *WindowHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.windows[name]
	if !ok {
		h = newWindowHistogram(r, window)
		r.windows[name] = h
	}
	return h
}
