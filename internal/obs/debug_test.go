package obs

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startDebug binds a debug server on a kernel-assigned port and fails
// the test if the goroutine count has not returned to baseline shortly
// after Close — the leak guard for the serve goroutine.
func startDebug(t *testing.T, extra ...Endpoint) *DebugServer {
	t.Helper()
	before := runtime.NumGoroutine()
	r := NewRegistry()
	ds, err := r.ServeDebug("127.0.0.1:0", extra...)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	t.Cleanup(func() {
		if err := ds.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		// The serve goroutine must be gone once Close returns; idle
		// keep-alive conns may take a beat to unwind.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			t.Errorf("goroutines after Close: %d, was %d before ServeDebug", n, before)
		}
	})
	return ds
}

func TestDebugServerResolvedAddr(t *testing.T) {
	ds := startDebug(t)
	if strings.HasSuffix(ds.Addr, ":0") {
		t.Fatalf("Addr = %q, want the kernel-resolved port, not :0", ds.Addr)
	}
	if !strings.HasPrefix(ds.Addr, "127.0.0.1:") {
		t.Fatalf("Addr = %q, want 127.0.0.1:<port>", ds.Addr)
	}
}

func TestDebugServerCloseIdempotent(t *testing.T) {
	r := NewRegistry()
	ds, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	first := ds.Close()
	second := ds.Close()
	if first != second {
		t.Errorf("second Close = %v, want first result %v", second, first)
	}
	var nilDS *DebugServer
	if err := nilDS.Close(); err != nil {
		t.Errorf("nil Close = %v, want nil", err)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	extra := Endpoint{
		Pattern: "/extra",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "extra ok")
		}),
	}
	ds := startDebug(t, extra)

	get := func(path string) (int, string) {
		t.Helper()
		res, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		return res.StatusCode, string(body)
	}

	if code, body := get("/"); code != http.StatusOK ||
		!strings.Contains(body, "/progress") || !strings.Contains(body, "/extra") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	if code, body := get("/progress"); code != http.StatusOK || !strings.Contains(body, ProgressSchema) {
		t.Errorf("/progress: code=%d body=%q", code, body)
	}
	if code, body := get("/extra"); code != http.StatusOK || body != "extra ok" {
		t.Errorf("/extra: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code=%d, want 404", code)
	}
}
