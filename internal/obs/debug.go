package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the live debug endpoint behind the commands'
// -debug-addr flag: /debug/vars (expvar, including the registry
// snapshot) and /debug/pprof/ (profiles) on a dedicated mux, so
// long-running analyses can be inspected without instrumented binaries
// touching http.DefaultServeMux.
type DebugServer struct {
	Addr string // bound address, e.g. "127.0.0.1:6060"
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug publishes the registry over expvar under "jobgraph" and
// starts the debug HTTP server on addr (e.g. "localhost:6060"; a :0
// port picks a free one). The server runs until Close.
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	r.PublishExpvar("jobgraph")

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "jobgraph debug endpoint\n\n/debug/vars\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// debug endpoint died mid-run, which is worth a progress line but
		// must not take the analysis down.
		if err := ds.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			r.Logf("debug server: %v", err)
		}
	}()
	return ds, nil
}

// Close shuts the debug server down.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	return ds.srv.Close()
}
