package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Endpoint mounts an extra handler on the debug server's mux — the
// mechanism by which layers obs cannot import (the Prometheus
// exposition writer in obs/promexport) still land on the same server.
type Endpoint struct {
	Pattern string
	Handler http.Handler
}

// DebugServer is the live debug endpoint behind the commands'
// -debug-addr flag: /debug/vars (expvar, including the registry
// snapshot), /debug/pprof/ (profiles) and /progress (live per-stage
// pipeline state) on a dedicated mux, so long-running analyses can be
// inspected without instrumented binaries touching
// http.DefaultServeMux. The commands additionally mount /metrics
// (Prometheus text exposition) via the Endpoint parameter.
type DebugServer struct {
	Addr string // resolved bound address, e.g. "127.0.0.1:6060"
	ln   net.Listener
	srv  *http.Server

	closeOnce sync.Once
	closeErr  error
	done      chan struct{} // closed when the serve goroutine exits
}

// ServeDebug publishes the registry over expvar under "jobgraph" and
// starts the debug HTTP server on addr (e.g. "localhost:6060"; a :0
// port picks a free one — read the resolved port off DebugServer.Addr).
// extra endpoints are mounted on the same mux. The server runs until
// Close.
func (r *Registry) ServeDebug(addr string, extra ...Endpoint) (*DebugServer, error) {
	r.PublishExpvar("jobgraph")

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/progress", r.ProgressHandler())
	index := []string{"/debug/vars", "/debug/pprof/", "/progress"}
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
		index = append(index, e.Pattern)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "jobgraph debug endpoint\n\n")
		for _, p := range index {
			fmt.Fprintln(w, p)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		// Serve returns ErrServerClosed on Close; anything else means the
		// debug endpoint died mid-run, which is worth a progress line but
		// must not take the analysis down.
		if err := ds.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			r.Logf("debug server: %v", err)
		}
	}()
	return ds, nil
}

// Close shuts the debug server down and waits for its serve goroutine
// to exit, so a test (or a command's deferred cleanup) that returns
// after Close leaves no goroutine behind. Idempotent: every call after
// the first returns the first call's result.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	ds.closeOnce.Do(func() {
		ds.closeErr = ds.srv.Close()
		<-ds.done
	})
	return ds.closeErr
}
