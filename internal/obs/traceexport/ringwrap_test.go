package traceexport

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

// wrapRegistry drives more spans through a capacity-4 event ring than
// it can hold, on a deterministic clock: seven sequential spans
// wrap01..wrap07, each open for exactly one 250µs clock tick. The ring
// must keep the newest four and count the three oldest as dropped.
func wrapRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	var mu sync.Mutex
	t := time.Unix(1700000000, 0).UTC()
	r.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(250 * time.Microsecond)
		return t
	})
	r.SetEventCapacity(4)
	for _, name := range []string{"wrap01", "wrap02", "wrap03", "wrap04", "wrap05", "wrap06", "wrap07"} {
		r.StartSpan(name).End()
	}
	return r
}

// TestEventRingWrapSurvivors pins which spans survive a full ring
// rotation and that each survivor keeps its exact begin/end pair: the
// retained interval must still be [Start, Start+Dur] of the original
// span, not an artifact of the overwrite position.
func TestEventRingWrapSurvivors(t *testing.T) {
	r := wrapRegistry()
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if d := r.EventsDropped(); d != 3 {
		t.Fatalf("EventsDropped = %d, want 3", d)
	}
	// Survivors are the newest four, returned oldest-first; span N
	// begins at tick 2N-1 and ends one tick later (SetClock advances
	// 250µs per read, and each span reads the clock twice).
	base := time.Unix(1700000000, 0).UTC()
	for i, want := range []string{"wrap04", "wrap05", "wrap06", "wrap07"} {
		ev := evs[i]
		if ev.Path != want {
			t.Fatalf("survivor[%d] = %q, want %q", i, ev.Path, want)
		}
		tick := time.Duration(2*(4+i)-1) * 250 * time.Microsecond
		if wantStart := base.Add(tick); !ev.Start.Equal(wantStart) {
			t.Fatalf("%s begin = %v, want %v", ev.Path, ev.Start, wantStart)
		}
		if ev.Dur != 250*time.Microsecond {
			t.Fatalf("%s dur = %v, want 250µs (begin/end pairing broken)", ev.Path, ev.Dur)
		}
	}
}

// TestEventRingWrapGolden pins the exported Perfetto document for the
// wrapped ring byte-for-byte: the overwritten spans must not appear,
// the survivors must render as complete ("X") events whose ts/dur are
// the original begin/end pairs, relative to the oldest survivor.
func TestEventRingWrapGolden(t *testing.T) {
	var buf bytes.Buffer
	meta := Meta{Process: "ringwrap", Labels: map[string]string{"run_id": "ringwrap00000000"}}
	if err := Write(&buf, wrapRegistry().Events(), meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "ringwrap_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs/traceexport/ -run RingWrapGolden -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("ring-wrap trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	if bytes.Contains(want, []byte("wrap01")) || bytes.Contains(want, []byte("wrap03")) {
		t.Fatal("golden still contains overwritten spans")
	}
}
