// Package traceexport serializes the obs registry's retained trace
// events as Chrome trace_event JSON (the "JSON Object Format" with a
// traceEvents array), which loads directly in ui.perfetto.dev and
// chrome://tracing.
//
// Spans become "X" (complete) events with microsecond timestamps
// relative to the earliest retained event. Overlapping intervals that
// do not nest — concurrent spans from worker goroutines — are assigned
// to separate lanes (trace "threads") so every event renders without
// truncation; lane 0 carries the main pipeline nesting.
//
// The commands expose this behind -trace-out:
//
//	reproduce -gen 20000 -trace-out trace.json
//	# then open trace.json at https://ui.perfetto.dev
package traceexport

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"jobgraph/internal/obs"
)

// Event is one Chrome trace_event entry. Only the fields the viewers
// consume are emitted; Args carries the full span path plus any
// run-level labels on metadata events.
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Document is the top-level trace file: the event array plus run
// metadata that Perfetto surfaces in its info panel.
type Document struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// Meta labels the exported process.
type Meta struct {
	// Process names the trace process row (usually the command name).
	Process string
	// Labels are run-level key/values (run ID, config hash, git SHA)
	// recorded in otherData.
	Labels map[string]string
}

const pid = 1

// Build converts retained span events into a trace document. Events
// are laid out deterministically: sorted by begin time (enclosing spans
// first), timestamps relative to the earliest event, lanes assigned
// greedily so partially overlapping spans never share one.
func Build(events []obs.TraceEvent, meta Meta) Document {
	doc := Document{DisplayTimeUnit: "ms"}
	if len(meta.Labels) > 0 {
		doc.OtherData = make(map[string]string, len(meta.Labels))
		for k, v := range meta.Labels {
			doc.OtherData[k] = v
		}
	}
	process := meta.Process
	if process == "" {
		process = "jobgraph"
	}
	doc.TraceEvents = append(doc.TraceEvents, Event{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]string{"name": process},
	})
	if len(events) == 0 {
		return doc
	}

	evs := append([]obs.TraceEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if !evs[i].Start.Equal(evs[j].Start) {
			return evs[i].Start.Before(evs[j].Start)
		}
		if evs[i].Dur != evs[j].Dur {
			return evs[i].Dur > evs[j].Dur
		}
		return evs[i].Path < evs[j].Path
	})

	base := evs[0].Start
	// laneEnd[i] is the covering end (µs) of the interval currently
	// open on lane i: a new event fits if it starts at or after that
	// end (sibling) or finishes within it (nested child).
	var laneEnd []float64
	lanes := 1
	out := make([]Event, 0, len(evs))
	for _, ev := range evs {
		ts := float64(ev.Start.Sub(base).Nanoseconds()) / 1e3
		dur := float64(ev.Dur.Nanoseconds()) / 1e3
		end := ts + dur
		lane := -1
		for i, le := range laneEnd {
			if ts >= le {
				laneEnd[i] = end
				lane = i
				break
			}
			if end <= le {
				lane = i
				break
			}
		}
		if lane == -1 {
			laneEnd = append(laneEnd, end)
			lane = len(laneEnd) - 1
		}
		if lane+1 > lanes {
			lanes = lane + 1
		}
		out = append(out, Event{
			Name: leaf(ev.Path),
			Cat:  root(ev.Path),
			Ph:   "X",
			TS:   ts,
			Dur:  dur,
			PID:  pid,
			TID:  lane,
			Args: map[string]string{"path": ev.Path},
		})
	}
	for i := 0; i < lanes; i++ {
		doc.TraceEvents = append(doc.TraceEvents, Event{
			Name: "thread_name", Ph: "M", PID: pid, TID: i,
			Args: map[string]string{"name": fmt.Sprintf("lane %d", i)},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, out...)
	return doc
}

// Write serializes the events as an indented trace document.
func Write(w io.Writer, events []obs.TraceEvent, meta Meta) error {
	data, err := json.MarshalIndent(Build(events, meta), "", "  ")
	if err != nil {
		return fmt.Errorf("traceexport: marshal: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("traceexport: write: %w", err)
	}
	return nil
}

// WriteFile writes the trace document to path.
func WriteFile(path string, events []obs.TraceEvent, meta Meta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceexport: %w", err)
	}
	if err := Write(f, events, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// leaf returns the last segment of a slash-joined span path.
func leaf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// root returns the first segment of a slash-joined span path.
func root(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}
