package traceexport

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents drives real spans through a registry on a deterministic
// injected clock — the same recording path the commands use — and
// returns the retained events.
func goldenEvents() []obs.TraceEvent {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	var mu sync.Mutex
	t := time.Unix(1700000000, 0).UTC()
	r.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(250 * time.Microsecond)
		return t
	})
	r.SetEventCapacity(64)

	root := r.StartSpan("pipeline")
	filter := root.Child("sampling.filter")
	filter.End()
	kernel := root.Child("wl.matrix")
	kernel.End()
	root.End()
	// A second root span after the pipeline, as reproduce's extra
	// experiment passes produce.
	r.StartSpan("trace.generate").End()
	return r.Events()
}

// TestTraceGolden pins the exported Perfetto JSON byte-for-byte: any
// layout change must be deliberate (-update) and re-validated against
// ui.perfetto.dev.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	meta := Meta{
		Process: "reproduce",
		Labels:  map[string]string{"run_id": "cafe0123deadbeef", "config_hash": "0123456789abcdef"},
	}
	if err := Write(&buf, goldenEvents(), meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs/traceexport/ -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTraceDocumentShape checks the structural invariants the viewers
// rely on: complete events with µs timestamps, nesting on one lane,
// metadata rows present.
func TestTraceDocumentShape(t *testing.T) {
	doc := Build(goldenEvents(), Meta{Process: "reproduce"})

	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
			if ev.TS < 0 {
				t.Fatalf("event %q has negative ts", ev.Name)
			}
			if ev.Args["path"] == "" {
				t.Fatalf("event %q lacks path arg", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Fatalf("metadata events = %d", meta)
	}
	// Everything nests within the pipeline, so one lane suffices.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.TID != 0 {
			t.Fatalf("nested event %q escaped to lane %d", ev.Name, ev.TID)
		}
	}

	// The document round-trips as JSON (what the viewers parse).
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.TraceEvents) != len(doc.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.TraceEvents), len(doc.TraceEvents))
	}
}

// TestLaneAssignmentSeparatesOverlap gives the exporter two partially
// overlapping spans (concurrent workers): they must land on different
// lanes, while a nested child shares its parent's.
func TestLaneAssignmentSeparatesOverlap(t *testing.T) {
	base := time.Unix(1700000000, 0).UTC()
	events := []obs.TraceEvent{
		{Path: "a", Start: base, Dur: 10 * time.Millisecond},
		{Path: "a/child", Start: base.Add(2 * time.Millisecond), Dur: 3 * time.Millisecond},
		{Path: "b", Start: base.Add(8 * time.Millisecond), Dur: 10 * time.Millisecond},
		{Path: "c", Start: base.Add(20 * time.Millisecond), Dur: time.Millisecond},
	}
	doc := Build(events, Meta{})
	lanes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.Args["path"]] = ev.TID
		}
	}
	if lanes["a"] != 0 || lanes["a/child"] != 0 {
		t.Fatalf("nesting split lanes: %v", lanes)
	}
	if lanes["b"] == lanes["a"] {
		t.Fatalf("overlapping spans share lane: %v", lanes)
	}
	if lanes["c"] != 0 {
		t.Fatalf("disjoint span should reuse lane 0: %v", lanes)
	}
}

func TestWriteFileEmptyEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, nil, Meta{Process: "empty"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("empty trace events: %+v", doc.TraceEvents)
	}
}
