package obs

import (
	"sync"
	"testing"
	"time"
)

// manualClock is a registry clock tests advance by hand.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1700000000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func clockedRegistry() (*Registry, *manualClock) {
	r := NewRegistry()
	clk := newManualClock()
	r.SetClock(clk.Now)
	return r, clk
}

func TestRateCounterWindow(t *testing.T) {
	r, clk := clockedRegistry()
	rc := r.RateCounter("rows", 60*time.Second)

	rc.Add(100)
	if got := rc.WindowCount(); got != 100 {
		t.Fatalf("WindowCount after first add = %d, want 100", got)
	}

	// 30s later the first batch is still inside the 60s window.
	clk.Advance(30 * time.Second)
	rc.Add(50)
	if got := rc.WindowCount(); got != 150 {
		t.Fatalf("WindowCount mid-window = %d, want 150", got)
	}

	// 31 more seconds: the first batch (61s old) rotates out, the second
	// (31s old) stays.
	clk.Advance(31 * time.Second)
	if got := rc.WindowCount(); got != 50 {
		t.Fatalf("WindowCount after first expiry = %d, want 50", got)
	}
	if got := rc.Total(); got != 150 {
		t.Fatalf("Total = %d, want 150 (all-time count never expires)", got)
	}
	if got, want := rc.Rate(), 50.0/60.0; got != want {
		t.Fatalf("Rate = %v, want %v", got, want)
	}

	// Far beyond the window everything expires, including after a full
	// ring lap.
	clk.Advance(10 * time.Minute)
	if got := rc.WindowCount(); got != 0 {
		t.Fatalf("WindowCount after long idle = %d, want 0", got)
	}
}

func TestRateCounterSnapshotAndReset(t *testing.T) {
	r, clk := clockedRegistry()
	rc := r.RateCounter("rows", 10*time.Second)
	rc.Add(20)
	clk.Advance(2 * time.Second)

	snap := r.Snapshot()
	rs, ok := snap.Rates["rows"]
	if !ok {
		t.Fatal("snapshot is missing the rate counter")
	}
	if rs.Total != 20 || rs.WindowCount != 20 || rs.WindowSec != 10 || rs.PerSec != 2 {
		t.Fatalf("RateSnapshot = %+v", rs)
	}

	r.Reset()
	if rc.Total() != 0 || rc.WindowCount() != 0 {
		t.Fatalf("after Reset: total=%d window=%d, want 0/0", rc.Total(), rc.WindowCount())
	}
}

func TestRateCounterDisabledRegistry(t *testing.T) {
	r, _ := clockedRegistry()
	rc := r.RateCounter("rows", time.Minute)
	r.SetEnabled(false)
	rc.Add(5)
	if got := rc.Total(); got != 0 {
		t.Fatalf("disabled registry counted %d events", got)
	}
}

func TestRateCounterInterning(t *testing.T) {
	r, _ := clockedRegistry()
	a := r.RateCounter("x", time.Minute)
	b := r.RateCounter("x", 5*time.Second) // window fixed on first use
	if a != b {
		t.Fatal("same name returned distinct RateCounters")
	}
}

func TestWindowHistogramExpiry(t *testing.T) {
	r, clk := clockedRegistry()
	wh := r.WindowHistogram("lat", 60*time.Second)

	wh.Observe(100)
	clk.Advance(30 * time.Second)
	wh.Observe(10)
	wh.Observe(20)

	snap := wh.Snapshot()
	if snap.Count != 3 || snap.Total != 3 {
		t.Fatalf("Count/Total = %d/%d, want 3/3", snap.Count, snap.Total)
	}
	if snap.Min != 10 || snap.Max != 100 {
		t.Fatalf("Min/Max = %v/%v, want 10/100", snap.Min, snap.Max)
	}

	// The first observation (100) ages out; quantiles follow the window.
	clk.Advance(31 * time.Second)
	snap = wh.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("Count after expiry = %d, want 2", snap.Count)
	}
	if snap.Max != 20 || snap.Mean != 15 {
		t.Fatalf("Max/Mean after expiry = %v/%v, want 20/15", snap.Max, snap.Mean)
	}
	if snap.Total != 3 {
		t.Fatalf("Total after expiry = %d, want 3 (all-time)", snap.Total)
	}

	clk.Advance(time.Hour)
	snap = wh.Snapshot()
	if snap.Count != 0 || snap.Mean != 0 {
		t.Fatalf("empty-window snapshot = %+v, want zeroed stats", snap)
	}
}

func TestWindowHistogramQuantiles(t *testing.T) {
	r, _ := clockedRegistry()
	wh := r.WindowHistogram("lat", time.Minute)
	for i := 1; i <= 100; i++ {
		wh.Observe(float64(i))
	}
	snap := wh.Snapshot()
	if snap.P50 != 50 {
		t.Errorf("P50 = %v, want 50", snap.P50)
	}
	if snap.P90 != 90 {
		t.Errorf("P90 = %v, want 90", snap.P90)
	}
	if snap.P99 != 99 {
		t.Errorf("P99 = %v, want 99", snap.P99)
	}
}

func TestWindowHistogramCapacityEviction(t *testing.T) {
	r, _ := clockedRegistry()
	wh := r.WindowHistogram("lat", time.Hour)
	for i := 0; i < windowHistogramCap+10; i++ {
		wh.Observe(float64(i))
	}
	snap := wh.Snapshot()
	if snap.Count != windowHistogramCap {
		t.Fatalf("Count = %d, want cap %d", snap.Count, windowHistogramCap)
	}
	if snap.Evicted != 10 {
		t.Fatalf("Evicted = %d, want 10", snap.Evicted)
	}
	// Oldest evicted first: the minimum retained sample is 10.
	if snap.Min != 10 {
		t.Fatalf("Min = %v, want 10", snap.Min)
	}
	if snap.Total != windowHistogramCap+10 {
		t.Fatalf("Total = %d, want %d", snap.Total, windowHistogramCap+10)
	}
}

func TestWindowHistogramReset(t *testing.T) {
	r, _ := clockedRegistry()
	wh := r.WindowHistogram("lat", time.Minute)
	wh.Observe(1)
	r.Reset()
	snap := wh.Snapshot()
	if snap.Count != 0 || snap.Total != 0 {
		t.Fatalf("after Reset: %+v", snap)
	}
}

func TestRateCounterConcurrentAdd(t *testing.T) {
	r, clk := clockedRegistry()
	rc := r.RateCounter("rows", time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rc.Add(1)
				if i%100 == 0 {
					clk.Advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	if got := rc.Total(); got != 8000 {
		t.Fatalf("Total = %d, want 8000", got)
	}
	if got := rc.WindowCount(); got != 8000 {
		t.Fatalf("WindowCount = %d, want 8000 (all adds within window)", got)
	}
}
