package promexport

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one instrument of every kind
// under an injected clock, so its exposition output is byte-stable.
func goldenRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	now := time.Unix(1700000000, 0)
	r.SetClock(func() time.Time { return now })

	r.Counter("trace.task_rows_parsed").Add(1234)
	r.Counter("engine.cache.hits").Add(3)
	r.Gauge("runtime.goroutines").Set(17)
	r.Gauge("trace.workers").Set(8)

	h := r.Histogram("dag.edges_per_job")
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100} {
		h.Observe(v)
	}

	rc := r.RateCounter("trace.task_rows", obs.DefaultWindow)
	rc.Add(50)
	now = now.Add(10 * time.Second)
	rc.Add(10)

	wh := r.WindowHistogram("engine.stage_ms", obs.DefaultWindow)
	for _, v := range []float64{10, 20, 30, 40} {
		wh.Observe(v)
	}

	r.RecordSpan([]string{"pipeline"}, 1500*time.Millisecond, 4096)
	r.RecordSpan([]string{"pipeline", "dag.jobs"}, 500*time.Millisecond, 1024)
	r.RecordSpan([]string{"pipeline", "wl.features"}, 250*time.Millisecond, 512)
	return r
}

// TestWriteGolden pins the exposition output byte-for-byte. Regenerate
// with: go test ./internal/obs/promexport -run Golden -update
func TestWriteGolden(t *testing.T) {
	r := goldenRegistry(t)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("exposition output differs from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteLints runs the in-repo format validator over the golden
// output: what we serve must be what a Prometheus server accepts.
func TestWriteLints(t *testing.T) {
	r := goldenRegistry(t)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("golden output fails lint:\n%v", err)
	}
}

func TestHandler(t *testing.T) {
	r := goldenRegistry(t)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if err := Check(res.Body); err != nil {
		t.Errorf("served output fails lint:\n%v", err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"trace.task_rows": "trace_task_rows",
		"core.pool.w-1":   "core_pool_w_1",
		"a:b":             "a:b",
		"9lives":          "_9lives",
		"ok_name":         "ok_name",
		"sp ace/slash":    "sp_ace_slash",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabel(in); got != want {
		t.Errorf("escapeLabel = %q, want %q", got, want)
	}
}

func TestLintCatchesBadInput(t *testing.T) {
	cases := map[string]string{
		"bad name":           "9bad_name 1\n",
		"bad value":          "metric_a abc\n",
		"unknown type":       "# TYPE metric_a widget\nmetric_a 1\n",
		"duplicate type":     "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate sample":   "m 1\nm 2\n",
		"interleaved family": "a 1\nb 2\na{x=\"1\"} 3\n",
		"unterminated label": "m{x=\"1 2\n",
		"bad escape":         "m{x=\"a\\t\"} 1\n",
		"missing value":      "metric_only\n",
	}
	for name, in := range cases {
		if probs := Lint(strings.NewReader(in)); len(probs) == 0 {
			t.Errorf("%s: Lint accepted %q", name, in)
		}
	}
}

func TestLintAcceptsEdgeCases(t *testing.T) {
	in := strings.Join([]string{
		`# HELP free text with "anything" at all`,
		`# TYPE m summary`,
		`m{quantile="0.5"} 1.5`,
		`m_sum 10`,
		`m_count 4`,
		`# TYPE inf_gauge gauge`,
		`inf_gauge +Inf`,
		`# random comment`,
		`untyped_metric{a="x",b="esc\"aped\n"} -2.5e-3 1700000000`,
		``,
	}, "\n")
	if probs := Lint(strings.NewReader(in)); len(probs) != 0 {
		t.Errorf("Lint rejected valid input: %v", probs)
	}
}
