// Package promexport renders an obs registry snapshot in the
// Prometheus text exposition format (version 0.0.4), stdlib-only.
// Mounted at /metrics on the debug server, it is what turns the
// repository's batch-era metrics.json into something a scraper can
// poll, window and alert on while a run (or the future jobgraphd
// daemon) is alive:
//
//   - counters export as <prefix>_<name>_total counters
//   - gauges export as <prefix>_<name> gauges
//   - histograms and sliding-window histograms export as summaries
//     (quantile-labeled samples plus _sum and _count), with min/max as
//     companion gauges
//   - rolling rate counters export their windowed per-second rate as a
//     gauge plus the all-time total as a counter
//   - the aggregated span tree exports per-stage wall-seconds, run
//     counts and allocated bytes, labeled by slash-joined stage path
//
// Metric names are sanitized into the Prometheus alphabet
// ([a-zA-Z0-9_:]) and the output is sorted, so a given snapshot always
// renders the same bytes — the property the golden test pins.
package promexport

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"jobgraph/internal/obs"
)

// Prefix namespaces every exported metric.
const Prefix = "jobgraph"

// ContentType is the HTTP content type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry's live snapshot as /metrics.
func Handler(r *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// A failed write is a dropped client connection; the next scrape
		// starts fresh.
		_ = Write(w, r.Snapshot())
	})
}

// Write renders the snapshot in text exposition format.
func Write(w io.Writer, snap obs.Snapshot) error {
	b := &strings.Builder{}

	writeCounters(b, snap.Counters)
	writeGauges(b, snap.Gauges)
	writeHistograms(b, snap.Histograms)
	writeRates(b, snap.Rates)
	writeWindows(b, snap.Windows)
	writeSpans(b, snap.Spans)

	_, err := io.WriteString(w, b.String())
	return err
}

func writeCounters(b *strings.Builder, counters map[string]int64) {
	for _, name := range sortedKeys(counters) {
		m := Prefix + "_" + sanitize(name) + "_total"
		head(b, m, "counter", "obs counter "+name)
		sample(b, m, "", float64(counters[name]))
	}
}

func writeGauges(b *strings.Builder, gauges map[string]int64) {
	for _, name := range sortedKeys(gauges) {
		m := Prefix + "_" + sanitize(name)
		head(b, m, "gauge", "obs gauge "+name)
		sample(b, m, "", float64(gauges[name]))
	}
}

func writeHistograms(b *strings.Builder, hists map[string]obs.HistogramSnapshot) {
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		m := Prefix + "_" + sanitize(name)
		writeSummary(b, m, "obs histogram "+name, h.Count, h.Mean, h.Min, h.Max, h.P50, h.P90, h.P99)
	}
}

func writeRates(b *strings.Builder, rates map[string]obs.RateSnapshot) {
	for _, name := range sortedKeys(rates) {
		r := rates[name]
		m := Prefix + "_" + sanitize(name)
		head(b, m+"_per_sec", "gauge",
			fmt.Sprintf("obs rate %s over a %gs rolling window", name, r.WindowSec))
		sample(b, m+"_per_sec", "", r.PerSec)
		head(b, m+"_total", "counter", "obs rate "+name+" all-time event count")
		sample(b, m+"_total", "", float64(r.Total))
	}
}

func writeWindows(b *strings.Builder, windows map[string]obs.WindowHistogramSnapshot) {
	for _, name := range sortedKeys(windows) {
		h := windows[name]
		m := Prefix + "_" + sanitize(name)
		writeSummary(b, m,
			fmt.Sprintf("obs sliding-window histogram %s over a %gs window", name, h.WindowSec),
			h.Count, h.Mean, h.Min, h.Max, h.P50, h.P90, h.P99)
	}
}

// writeSummary renders one quantile summary plus min/max companion
// gauges.
func writeSummary(b *strings.Builder, m, help string, count int64, mean, min, max, p50, p90, p99 float64) {
	head(b, m, "summary", help)
	sample(b, m, `quantile="0.5"`, p50)
	sample(b, m, `quantile="0.9"`, p90)
	sample(b, m, `quantile="0.99"`, p99)
	sample(b, m+"_sum", "", mean*float64(count))
	sample(b, m+"_count", "", float64(count))
	head(b, m+"_min", "gauge", help+" minimum")
	sample(b, m+"_min", "", min)
	head(b, m+"_max", "gauge", help+" maximum")
	sample(b, m+"_max", "", max)
}

func writeSpans(b *strings.Builder, spans []obs.SpanSnapshot) {
	type flatSpan struct {
		path string
		s    obs.SpanSnapshot
	}
	var flat []flatSpan
	var walk func(prefix string, s obs.SpanSnapshot)
	walk = func(prefix string, s obs.SpanSnapshot) {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		flat = append(flat, flatSpan{path: path, s: s})
		for _, c := range s.Children {
			walk(path, c)
		}
	}
	for _, s := range spans {
		walk("", s)
	}
	if len(flat) == 0 {
		return
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].path < flat[j].path })

	// All samples of one metric must be consecutive, so each family is
	// emitted in its own pass over the sorted stages.
	sec := Prefix + "_stage_duration_seconds_total"
	head(b, sec, "counter", "aggregated span wall time per stage path")
	for _, f := range flat {
		sample(b, sec, stageLabel(f.path), f.s.TotalMs/1000)
	}
	runs := Prefix + "_stage_runs_total"
	head(b, runs, "counter", "completed span count per stage path")
	for _, f := range flat {
		sample(b, runs, stageLabel(f.path), float64(f.s.Count))
	}
	alloc := Prefix + "_stage_alloc_bytes_total"
	head(b, alloc, "counter", "heap bytes allocated during spans per stage path")
	for _, f := range flat {
		sample(b, alloc, stageLabel(f.path), float64(f.s.AllocBytes))
	}
}

func stageLabel(path string) string {
	return `stage="` + escapeLabel(path) + `"`
}

// head emits the HELP and TYPE comment lines for one metric.
func head(b *strings.Builder, name, typ, help string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// sample emits one sample line; labels is the pre-rendered inner label
// list (empty for none).
func sample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitize maps an obs metric name ("trace.task_rows_parsed") into the
// Prometheus name alphabet: every rune outside [a-zA-Z0-9_:] becomes
// '_'. A leading digit is prefixed — impossible after Prefix, but kept
// so the function is safe standalone.
func sanitize(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
