package promexport

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lint is an in-repo validator for the text exposition format (version
// 0.0.4): CI scrapes /metrics mid-run and refuses output a Prometheus
// server would reject, without adding a dependency on one. It checks
// line grammar (comments, samples, labels, values, timestamps), name
// and label-name alphabets, TYPE declarations (known type, at most one
// per metric, declared before the metric's samples), metric-family
// grouping (all samples of one family consecutive), and duplicate
// sample lines.

// Problem is one lint finding.
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

// validTypes are the metric types the format defines.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true,
}

// Lint scans the exposition text and returns every problem found (nil
// when the input is clean).
func Lint(r io.Reader) []Problem {
	var probs []Problem
	addf := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	types := map[string]string{}     // family -> declared type
	sealed := map[string]bool{}      // family -> a later family started, no more samples allowed
	seenSamples := map[string]bool{} // name{labels} -> dup detection
	family := ""                     // family of the previous sample line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, typ, ok := parseTypeLine(line)
			if !ok {
				continue // HELP and free comments are unconstrained
			}
			if !validName(name) {
				addf(n, "TYPE for invalid metric name %q", name)
			}
			if !validTypes[typ] {
				addf(n, "unknown metric type %q for %s", typ, name)
			}
			if _, dup := types[name]; dup {
				addf(n, "duplicate TYPE declaration for %s", name)
			}
			if sealed[name] {
				addf(n, "TYPE for %s after its samples ended", name)
			}
			types[name] = typ
			continue
		}

		name, labels, err := parseSample(line)
		if err != nil {
			addf(n, "%v", err)
			continue
		}
		fam := familyOf(name, types)
		if fam != family {
			if family != "" {
				sealed[family] = true
			}
			if sealed[fam] {
				addf(n, "samples of %s are not consecutive", fam)
			}
			family = fam
		}
		if t, declared := types[fam]; declared {
			if err := checkFamilyMember(name, fam, t); err != nil {
				addf(n, "%v", err)
			}
		}
		key := name + "{" + labels + "}"
		if seenSamples[key] {
			addf(n, "duplicate sample %s", key)
		}
		seenSamples[key] = true
	}
	if err := sc.Err(); err != nil {
		addf(n+1, "read: %v", err)
	}
	return probs
}

// Check is Lint folded into a single error, convenient for tests.
func Check(r io.Reader) error {
	probs := Lint(r)
	if len(probs) == 0 {
		return nil
	}
	msgs := make([]string, len(probs))
	for i, p := range probs {
		msgs[i] = p.String()
	}
	return fmt.Errorf("promexport: %d problem(s):\n%s", len(probs), strings.Join(msgs, "\n"))
}

// parseTypeLine recognizes "# TYPE <name> <type>".
func parseTypeLine(line string) (name, typ string, ok bool) {
	rest, found := strings.CutPrefix(line, "# TYPE ")
	if !found {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return rest, "", true // malformed TYPE: surfaces as invalid name/type
	}
	return fields[0], fields[1], true
}

// familyOf maps a sample name to its metric family: summary samples
// <f>_sum/<f>_count (and histogram <f>_bucket) belong to family <f>
// when <f> has a TYPE declaration.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, found := strings.CutSuffix(name, suffix); found {
			if t, ok := types[base]; ok && (t == "summary" || t == "histogram") {
				if suffix == "_bucket" && t != "histogram" {
					continue
				}
				return base
			}
		}
	}
	return name
}

// checkFamilyMember validates that a sample name is legal for its
// declared family type.
func checkFamilyMember(name, fam, typ string) error {
	if name == fam {
		return nil
	}
	switch typ {
	case "summary":
		if name == fam+"_sum" || name == fam+"_count" {
			return nil
		}
	case "histogram":
		if name == fam+"_sum" || name == fam+"_count" || name == fam+"_bucket" {
			return nil
		}
	}
	return fmt.Errorf("sample %s does not belong to %s family %s", name, typ, fam)
}

// parseSample validates one sample line:
//
//	name[{label="value",...}] value [timestamp]
//
// returning the metric name and the raw label text for duplicate
// detection.
func parseSample(line string) (name, labels string, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample line without value: %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, lerr := parseLabels(rest)
		if lerr != nil {
			return "", "", fmt.Errorf("metric %s: %v", name, lerr)
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("metric %s: want value [timestamp], got %q", name, strings.TrimSpace(rest))
	}
	if _, perr := parseValue(fields[0]); perr != nil {
		return "", "", fmt.Errorf("metric %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
			return "", "", fmt.Errorf("metric %s: bad timestamp %q", name, fields[1])
		}
	}
	return name, labels, nil
}

// parseLabels scans a {label="value",...} block starting at s[0]=='{'
// and returns the index just past the closing '}'.
func parseLabels(s string) (end int, err error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		j := i
		for j < len(s) && isLabelNameRune(s[j], j > i) {
			j++
		}
		if j == i {
			return 0, fmt.Errorf("empty label name at offset %d", i)
		}
		if j >= len(s) || s[j] != '=' {
			return 0, fmt.Errorf("label %q not followed by '='", s[i:j])
		}
		j++
		if j >= len(s) || s[j] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		j++
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
				if j >= len(s) {
					return 0, fmt.Errorf("unterminated escape in label value")
				}
				if c := s[j]; c != '\\' && c != '"' && c != 'n' {
					return 0, fmt.Errorf("invalid escape \\%c in label value", c)
				}
			}
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		j++ // past closing quote
		if j < len(s) && s[j] == ',' {
			j++
		}
		i = j
	}
}

// parseValue accepts Go float syntax plus the format's special values.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN", "Nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName checks the metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isLabelNameRune checks the label-name alphabet [a-zA-Z_][a-zA-Z0-9_]*.
func isLabelNameRune(c byte, notFirst bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return notFirst
	default:
		return false
	}
}
