package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic registry clock advancing a fixed step
// per reading.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func TestEventRetentionDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	r.StartSpan("a").End()
	if evs := r.Events(); len(evs) != 0 {
		t.Fatalf("events retained without capacity: %v", evs)
	}
	if r.EventCapacity() != 0 {
		t.Fatalf("capacity = %d, want 0", r.EventCapacity())
	}
}

func TestEventRetentionRecordsBeginEnd(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	base := time.Unix(1700000000, 0)
	r.SetClock(fakeClock(base, time.Millisecond))
	r.SetEventCapacity(16)

	root := r.StartSpan("pipeline") // clock reads: start = base+1ms
	child := root.Child("wl.matrix")
	child.End()
	root.End()

	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// Sorted chronologically, parent (earlier start) first.
	if evs[0].Path != "pipeline" || evs[1].Path != "pipeline/wl.matrix" {
		t.Fatalf("paths = %q, %q", evs[0].Path, evs[1].Path)
	}
	if !evs[0].Start.Equal(base.Add(time.Millisecond)) {
		t.Fatalf("start = %v", evs[0].Start)
	}
	// Root saw clock reads 1 and 4 → 3ms; child reads 2 and 3 → 1ms.
	if evs[0].Dur != 3*time.Millisecond || evs[1].Dur != time.Millisecond {
		t.Fatalf("durs = %v, %v", evs[0].Dur, evs[1].Dur)
	}
	if d := r.EventsDropped(); d != 0 {
		t.Fatalf("dropped = %d", d)
	}
}

func TestEventRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	base := time.Unix(1700000000, 0)
	r.SetClock(fakeClock(base, time.Second))
	r.SetEventCapacity(4)

	for i := 0; i < 10; i++ {
		r.StartSpan("s").End()
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	if d := r.EventsDropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	// The newest events survive: the last span started at clock read 19.
	last := evs[len(evs)-1]
	if want := base.Add(19 * time.Second); !last.Start.Equal(want) {
		t.Fatalf("newest start = %v, want %v", last.Start, want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start.Before(evs[i-1].Start) {
			t.Fatalf("events out of order: %v after %v", evs[i].Start, evs[i-1].Start)
		}
	}
}

// TestEventRecordingConcurrent exercises concurrent span completion
// with retention enabled; run under -race (CI does) to verify the ring
// is safe.
func TestEventRecordingConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	const ringCap = 64
	r.SetEventCapacity(ringCap)

	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := r.StartSpan("worker")
				sp.Child("unit").End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	if got := len(r.Events()); got != ringCap {
		t.Fatalf("retained = %d, want %d", got, ringCap)
	}
	if d := r.EventsDropped(); d != workers*per*2-ringCap {
		t.Fatalf("dropped = %d, want %d", d, workers*per*2-ringCap)
	}
}

func TestSetEventCapacityResizeClears(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	r.SetEventCapacity(8)
	r.StartSpan("a").End()
	r.SetEventCapacity(16)
	if got := len(r.Events()); got != 0 {
		t.Fatalf("resize kept %d events", got)
	}
	r.StartSpan("b").End()
	r.SetEventCapacity(0)
	if got := len(r.Events()); got != 0 {
		t.Fatalf("disable kept %d events", got)
	}
	r.StartSpan("c").End()
	if got := len(r.Events()); got != 0 {
		t.Fatalf("disabled ring recorded %d events", got)
	}
}

func TestResetClearsEvents(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	r.SetEventCapacity(8)
	r.StartSpan("a").End()
	r.Reset()
	if got := len(r.Events()); got != 0 {
		t.Fatalf("Reset kept %d events", got)
	}
	// Capacity survives Reset: the ring stays enabled for the next run.
	r.StartSpan("b").End()
	if got := len(r.Events()); got != 1 {
		t.Fatalf("post-Reset recording broken: %d events", got)
	}
}
