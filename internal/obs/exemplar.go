package obs

import "sort"

// Exemplar is one retained slowest-item sample: aggregate histograms
// say how slow the tail is, exemplars say which items are in it. The
// dag.jobs stage records the top-k slowest jobs here with their graph
// shape and assigned group.
type Exemplar struct {
	ID         string  `json:"id"`
	DurationMs float64 `json:"duration_ms"`
	Nodes      int     `json:"nodes,omitempty"`
	Edges      int     `json:"edges,omitempty"`
	Group      string  `json:"group,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// exemplarStore keeps the k largest-duration exemplars for one name.
type exemplarStore struct {
	k     int
	items []Exemplar
}

// RecordExemplar offers one exemplar to the named top-k store. Only
// the k largest durations are retained; ties break toward the smaller
// ID so the retained set is deterministic regardless of offer order.
// No-op while the registry is disabled or k <= 0.
func (r *Registry) RecordExemplar(name string, k int, e Exemplar) {
	if !r.enabled.Load() || k <= 0 {
		return
	}
	r.exMu.Lock()
	defer r.exMu.Unlock()
	if r.exemplars == nil {
		r.exemplars = make(map[string]*exemplarStore)
	}
	st, ok := r.exemplars[name]
	if !ok {
		st = &exemplarStore{k: k}
		r.exemplars[name] = st
	}
	st.k = k
	st.items = append(st.items, e)
	sortExemplars(st.items)
	if len(st.items) > st.k {
		st.items = st.items[:st.k]
	}
}

func sortExemplars(items []Exemplar) {
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].DurationMs != items[j].DurationMs {
			return items[i].DurationMs > items[j].DurationMs
		}
		return items[i].ID < items[j].ID
	})
}

// Exemplars returns a copy of every exemplar store, keyed by name,
// each sorted slowest-first. Nil when nothing was recorded.
func (r *Registry) Exemplars() map[string][]Exemplar {
	r.exMu.Lock()
	defer r.exMu.Unlock()
	if len(r.exemplars) == 0 {
		return nil
	}
	out := make(map[string][]Exemplar, len(r.exemplars))
	for name, st := range r.exemplars {
		out[name] = append([]Exemplar(nil), st.items...)
	}
	return out
}

// resetExemplars drops every retained exemplar.
func (r *Registry) resetExemplars() {
	r.exMu.Lock()
	defer r.exMu.Unlock()
	r.exemplars = nil
}
