package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestProgressLifecycle(t *testing.T) {
	r, clk := clockedRegistry()
	p := r.Progress()

	p.StageStarted("sampling.filter")
	clk.Advance(100 * time.Millisecond)

	// A running stage reports elapsed time so far.
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d stages, want 1", len(snap))
	}
	if snap[0].State != StageRunning || snap[0].DurationMs != 100 {
		t.Fatalf("running stage = %+v, want running/100ms", snap[0])
	}

	p.StageFinished("sampling.filter", StageDone, 150*time.Millisecond)
	p.StageFinished("dag.jobs", StageCached, 0) // cache hit: never started

	snap = p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d stages, want 2", len(snap))
	}
	if snap[0].Name != "sampling.filter" || snap[0].State != StageDone || snap[0].DurationMs != 150 {
		t.Fatalf("finished stage = %+v", snap[0])
	}
	if snap[1].Name != "dag.jobs" || snap[1].State != StageCached {
		t.Fatalf("cached stage = %+v", snap[1])
	}

	// Restarting a stage (a second Execute in-process) resets its entry.
	clk.Advance(time.Second)
	p.StageStarted("sampling.filter")
	snap = p.Snapshot()
	if snap[0].State != StageRunning || snap[0].DurationMs != 0 {
		t.Fatalf("restarted stage = %+v, want running/0ms", snap[0])
	}
}

func TestProgressReset(t *testing.T) {
	r, _ := clockedRegistry()
	p := r.Progress()
	p.StageStarted("a")
	r.Reset()
	if snap := p.Snapshot(); len(snap) != 0 {
		t.Fatalf("after registry Reset: %d stages, want 0", len(snap))
	}
}

func TestProgressDisabledRegistry(t *testing.T) {
	r, _ := clockedRegistry()
	r.SetEnabled(false)
	p := r.Progress()
	p.StageStarted("a")
	p.StageFinished("b", StageDone, time.Second)
	if snap := p.Snapshot(); len(snap) != 0 {
		t.Fatalf("disabled registry recorded %d stages", len(snap))
	}
}

func TestProgressHandler(t *testing.T) {
	r, _ := clockedRegistry()
	r.Progress().StageFinished("wl.features", StageDone, 42*time.Millisecond)

	rec := httptest.NewRecorder()
	r.ProgressHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))

	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var rep ProgressReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode /progress: %v", err)
	}
	if rep.Schema != ProgressSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ProgressSchema)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "wl.features" || rep.Stages[0].DurationMs != 42 {
		t.Errorf("stages = %+v", rep.Stages)
	}
}
