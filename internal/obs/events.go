package obs

import (
	"sort"
	"strings"
	"time"
)

// TraceEvent is one completed span interval retained for timeline
// export: the full begin/end information of a single Span (begin time
// plus duration), unlike the SpanStats tree which only aggregates.
// The traceexport package turns a slice of these into Chrome
// trace_event / Perfetto JSON.
type TraceEvent struct {
	// Path is the span's slash-joined tree path, e.g.
	// "pipeline/wl.matrix".
	Path string
	// Start is the span's begin time on the registry clock.
	Start time.Time
	// Dur is the span's wall time; Start.Add(Dur) is the end event.
	Dur time.Duration
}

// SetEventCapacity sizes the trace-event ring buffer and enables
// per-span event retention. Zero or negative disables retention (the
// default): Span.End then pays only one atomic load for the feature.
// Once more than n spans complete, the oldest events are overwritten —
// the buffer keeps the most recent n, and EventsDropped counts the
// loss. Resizing clears previously retained events.
func (r *Registry) SetEventCapacity(n int) {
	r.eventMu.Lock()
	defer r.eventMu.Unlock()
	if n <= 0 {
		r.eventCap.Store(0)
		r.eventBuf = nil
	} else {
		r.eventCap.Store(int64(n))
		r.eventBuf = make([]TraceEvent, 0, n)
	}
	r.eventNext = 0
	r.eventTotal = 0
}

// EventCapacity returns the configured ring size (0: retention off).
func (r *Registry) EventCapacity() int { return int(r.eventCap.Load()) }

// recordEvent appends one completed span to the ring. Span.End calls it
// after folding the span into the aggregate tree.
func (r *Registry) recordEvent(path []string, start time.Time, dur time.Duration) {
	if r.eventCap.Load() == 0 {
		return
	}
	ev := TraceEvent{Path: strings.Join(path, "/"), Start: start, Dur: dur}
	r.eventMu.Lock()
	defer r.eventMu.Unlock()
	capNow := int(r.eventCap.Load())
	if capNow == 0 {
		return
	}
	r.eventTotal++
	if len(r.eventBuf) < capNow {
		r.eventBuf = append(r.eventBuf, ev)
		return
	}
	r.eventBuf[r.eventNext] = ev
	r.eventNext = (r.eventNext + 1) % capNow
}

// Events returns the retained trace events sorted by start time (ties
// broken by longer duration first, so enclosing spans precede the spans
// they contain).
func (r *Registry) Events() []TraceEvent {
	r.eventMu.Lock()
	out := make([]TraceEvent, 0, len(r.eventBuf))
	out = append(out, r.eventBuf[r.eventNext:]...)
	out = append(out, r.eventBuf[:r.eventNext]...)
	r.eventMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// EventsDropped reports how many completed spans were overwritten
// because the ring was full.
func (r *Registry) EventsDropped() int64 {
	r.eventMu.Lock()
	defer r.eventMu.Unlock()
	d := r.eventTotal - int64(len(r.eventBuf))
	if d < 0 {
		return 0
	}
	return d
}
