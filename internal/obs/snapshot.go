package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SnapshotSchema identifies the metrics.json layout; bump on breaking
// changes so downstream tooling can dispatch.
const SnapshotSchema = "jobgraph-metrics/v1"

// Snapshot is a point-in-time export of a registry, the document
// written to results/metrics.json and served over expvar.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Rates and Windows are the rolling-window instruments (window.go).
	// Omitted when a run registered none, which keeps pre-existing
	// snapshots and their consumers unchanged.
	Rates   map[string]RateSnapshot            `json:"rates,omitempty"`
	Windows map[string]WindowHistogramSnapshot `json:"windows,omitempty"`
	// Exemplars are the retained slowest items per stage (exemplar.go),
	// e.g. the top-k slowest jobs of dag.jobs. Omitted when empty.
	Exemplars map[string][]Exemplar `json:"exemplars,omitempty"`
	Spans     []SpanSnapshot        `json:"spans"`
}

// SpanSnapshot is the exported form of one aggregated stage-tree node.
// Durations are milliseconds: JSON-friendly and directly comparable
// across runs.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Count      int64          `json:"count"`
	TotalMs    float64        `json:"total_ms"`
	MinMs      float64        `json:"min_ms"`
	MaxMs      float64        `json:"max_ms"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func spanSnapshot(st *SpanStats) SpanSnapshot {
	out := SpanSnapshot{
		Name:       st.Name,
		Count:      st.Count,
		TotalMs:    ms(st.Total),
		MinMs:      ms(st.Min),
		MaxMs:      ms(st.Max),
		AllocBytes: st.AllocBytes,
	}
	for _, name := range sortedKeys(st.Children) {
		out.Children = append(out.Children, spanSnapshot(st.Children[name]))
	}
	return out
}

// Snapshot exports the registry's current state. Maps are keyed by
// metric name; encoding/json sorts keys, and span children are sorted
// here, so the serialized form is deterministic for a given state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	rates := make(map[string]*RateCounter, len(r.rates))
	for name, c := range r.rates {
		rates[name] = c
	}
	windows := make(map[string]*WindowHistogram, len(r.windows))
	for name, h := range r.windows {
		windows[name] = h
	}
	r.mu.Unlock()
	// Histogram snapshots take each histogram's own lock; do it outside
	// the registry lock to keep Observe callers unblocked.
	for name, h := range hists {
		snap.Histograms[name] = h.snapshot()
	}
	if len(rates) > 0 {
		snap.Rates = make(map[string]RateSnapshot, len(rates))
		for name, c := range rates {
			snap.Rates[name] = c.snapshot()
		}
	}
	if len(windows) > 0 {
		snap.Windows = make(map[string]WindowHistogramSnapshot, len(windows))
		for name, h := range windows {
			snap.Windows[name] = h.Snapshot()
		}
	}
	snap.Exemplars = r.Exemplars()
	for _, st := range r.SpanTree() {
		snap.Spans = append(snap.Spans, spanSnapshot(st))
	}
	return snap
}

// WriteSnapshot serializes the registry as indented JSON (the
// metrics.json format).
func (r *Registry) WriteSnapshot(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}

// WriteSnapshotFile writes the metrics.json document at path.
func (r *Registry) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// expvar.Publish panics on duplicate names, so each name is published
// once behind an indirection that always reads the most recently
// published registry.
var (
	expvarMu   sync.Mutex
	expvarRegs = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exports the registry's live snapshot under the given
// expvar name (shown at /debug/vars). Publishing the same name again
// rebinds it to the newest registry — expvar's namespace is global and
// process-wide, and the registry serving traffic is the one that
// matters (tests spin up many registries in one process).
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	holder, ok := expvarRegs[name]
	if !ok {
		holder = &atomic.Pointer[Registry]{}
		expvarRegs[name] = holder
		expvar.Publish(name, expvar.Func(func() any { return holder.Load().Snapshot() }))
	}
	holder.Store(r)
}
