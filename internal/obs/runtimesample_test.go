package obs

import (
	"math"
	"runtime/metrics"
	"testing"
	"time"
)

func TestRuntimeSamplerSample(t *testing.T) {
	r := NewRegistry()
	s := r.NewRuntimeSampler()
	s.Sample()

	snap := r.Snapshot()
	if g, ok := snap.Gauges["runtime.goroutines"]; !ok || g < 1 {
		t.Errorf("runtime.goroutines = %d (present=%v), want >= 1", g, ok)
	}
	if g, ok := snap.Gauges["runtime.memory_total_bytes"]; !ok || g <= 0 {
		t.Errorf("runtime.memory_total_bytes = %d (present=%v), want > 0", g, ok)
	}
	if _, ok := snap.Gauges["runtime.heap_objects_bytes"]; !ok {
		t.Error("runtime.heap_objects_bytes missing")
	}
}

func TestRuntimeSamplerRunWithInjectedTicks(t *testing.T) {
	r := NewRegistry()
	s := r.NewRuntimeSampler()
	ticks := make(chan time.Time)
	go s.Run(ticks)

	// Each tick takes one full sample; the gauges must be populated
	// after the tick is consumed.
	ticks <- time.Now()
	s.Stop() // waits for the loop, then takes a final sample

	if g := r.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", g)
	}
}

func TestRuntimeSamplerStopIdempotent(t *testing.T) {
	r := NewRegistry()
	s := r.NewRuntimeSampler()
	s.Start(time.Hour) // interval never fires during the test
	s.Stop()
	s.Stop() // second Stop must not panic or deadlock
}

func TestRuntimeSamplerStopWithoutStart(t *testing.T) {
	r := NewRegistry()
	s := r.NewRuntimeSampler()
	done := make(chan struct{})
	go func() {
		s.Stop() // must not block waiting for a loop that never ran
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start blocked")
	}
}

func TestRuntimeSamplerDisabledRegistry(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	s := r.NewRuntimeSampler()
	s.Sample()
	r.SetEnabled(true)
	if len(r.Snapshot().Gauges) != 0 {
		t.Error("disabled registry gained runtime gauges")
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 10, 0},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if q := histQuantile(h, 0.0); q < 1 || q > 2 {
		t.Errorf("p0 = %v, want inside first non-empty bucket [1,2]", q)
	}
	if q := histQuantile(h, 0.99); q < 2 || q > 3 {
		t.Errorf("p99 = %v, want inside last non-empty bucket [2,3]", q)
	}

	// Unbounded edge buckets fall back to their finite boundary.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{5, 5},
		Buckets: []float64{math.Inf(-1), 1, math.Inf(1)},
	}
	if q := histQuantile(inf, 0.01); q != 1 {
		t.Errorf("quantile in -Inf bucket = %v, want 1", q)
	}
	if q := histQuantile(inf, 0.99); q != 1 {
		t.Errorf("quantile in +Inf bucket = %v, want 1", q)
	}

	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if q := histQuantile(empty, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}
