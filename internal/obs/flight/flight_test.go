package flight

import (
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

// testClock returns a registry clock advancing 1ms per read from a
// fixed epoch, so recorded timestamps are deterministic.
func testClock() func() time.Time {
	now := time.Unix(1700000000, 0).UTC()
	return func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
}

func newTestRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	r.SetClock(testClock())
	return r
}

func TestRecorderRingOverflow(t *testing.T) {
	r := newTestRegistry()
	rec := NewRecorder(r, 4)
	r.SetObserver(rec)

	for i := 0; i < 6; i++ {
		r.StartSpan("s").End() // two events each: begin + end
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if rec.Dropped() != 8 {
		t.Fatalf("Dropped = %d, want 8", rec.Dropped())
	}
	// Survivors are the most recent events, in strict sequence order.
	for i, ev := range evs {
		if want := int64(9 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	// The last two events must be the final span's begin/end pair.
	if evs[2].Kind != KindSpanBegin || evs[3].Kind != KindSpanEnd {
		t.Fatalf("tail events are %s/%s, want begin/end", evs[2].Kind, evs[3].Kind)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := newTestRegistry()
	rec := NewRecorder(r, 64)
	rec.SetRunInfo("cafef00d", "reproduce")
	r.SetObserver(rec)

	r.Counter("trace.rows").Add(41)
	r.Progress().StageStarted("ingest")
	r.StartSpan("pipeline").End()
	r.Heartbeat("pool").Beat()
	rec.Note("marker", "before dump")
	rec.CaptureMetrics()

	dir := t.TempDir()
	path, err := rec.DumpTo(dir, "watchdog", "stage ingest overran", "")
	if err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	if want := filepath.Join(dir, "cafef00d.flight.json"); path != want {
		t.Fatalf("dump path %q, want %q", path, want)
	}

	d, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if d.Schema != Schema || d.RunID != "cafef00d" || d.Command != "reproduce" {
		t.Fatalf("identity not round-tripped: %+v", d)
	}
	if d.Reason != "watchdog" || d.Detail != "stage ingest overran" {
		t.Fatalf("reason not round-tripped: %+v", d)
	}
	if d.EventsTotal != int64(len(d.Events)) || d.EventsDropped != 0 {
		t.Fatalf("event accounting wrong: total=%d dropped=%d len=%d",
			d.EventsTotal, d.EventsDropped, len(d.Events))
	}
	if d.Counters["trace.rows"] != 41 {
		t.Fatalf("counters not captured: %v", d.Counters)
	}
	if len(d.Stages) != 1 || d.Stages[0].Name != "ingest" || d.Stages[0].State != obs.StageRunning {
		t.Fatalf("stages not captured: %+v", d.Stages)
	}
	if len(d.Heartbeats) != 1 || d.Heartbeats[0].Name != "pool" || !d.Heartbeats[0].Active {
		t.Fatalf("heartbeats not captured: %+v", d.Heartbeats)
	}
	kinds := map[string]bool{}
	for _, ev := range d.Events {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{KindSpanBegin, KindSpanEnd, KindStage, KindNote, KindMetric} {
		if !kinds[k] {
			t.Fatalf("dump is missing a %s event; kinds seen: %v", k, kinds)
		}
	}

	// A second identical build must serialize identically modulo the
	// clock-driven CapturedAt (determinism of ordering and content).
	d2 := rec.BuildDump("watchdog", "stage ingest overran", "")
	if len(d2.Events) != len(d.Events) {
		t.Fatalf("rebuild changed event count: %d vs %d", len(d2.Events), len(d.Events))
	}
	for i := range d2.Events {
		if d2.Events[i].Seq != d.Events[i].Seq || d2.Events[i].Kind != d.Events[i].Kind {
			t.Fatalf("rebuild changed event %d: %+v vs %+v", i, d2.Events[i], d.Events[i])
		}
	}
}

func TestParseRejectsBadDumps(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatalf("Parse accepted malformed JSON")
	}
	if _, err := Parse([]byte(`{"schema":"wrong/v9","reason":"x"}`)); err == nil {
		t.Fatalf("Parse accepted a wrong schema")
	}
	if _, err := Parse([]byte(`{"schema":"` + Schema + `"}`)); err == nil {
		t.Fatalf("Parse accepted a dump without a reason")
	}
	bad := `{"schema":"` + Schema + `","reason":"x","events":[{"seq":2},{"seq":1}]}`
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatalf("Parse accepted out-of-sequence events")
	}
}

func TestTeeHandlerRecordsAndForwards(t *testing.T) {
	r := newTestRegistry()
	rec := NewRecorder(r, 16)

	var out strings.Builder
	// stderr handler filtered to Warn: Info must still reach the ring
	// but not the writer.
	next := slog.NewTextHandler(&out, &slog.HandlerOptions{Level: slog.LevelWarn})
	lg := slog.New(rec.TeeHandler(next)).With("run_id", "abc")

	lg.Info("stage complete", "stage", "ingest")
	lg.WithGroup("grp").Warn("trouble", "k", "v")
	lg.Debug("invisible")

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("ring has %d log events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Name != "stage complete" || !strings.Contains(evs[0].Detail, "run_id=abc") ||
		!strings.Contains(evs[0].Detail, "stage=ingest") {
		t.Fatalf("info record not captured with attrs: %+v", evs[0])
	}
	if evs[1].Name != "trouble" || !strings.Contains(evs[1].Detail, "grp.k=v") {
		t.Fatalf("grouped attrs not prefixed: %+v", evs[1])
	}
	if strings.Contains(out.String(), "stage complete") {
		t.Fatalf("tee leaked an Info record past the Warn-filtered next handler")
	}
	if !strings.Contains(out.String(), "trouble") {
		t.Fatalf("tee did not forward the Warn record")
	}
}

func TestWriteDumpAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.flight.json")
	if err := WriteDump(path, Dump{Schema: Schema, Reason: "test"}); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "x.flight.json" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}
