package flight

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

// manualClock is an injectable registry clock tests advance explicitly.
type manualClock struct{ now time.Time }

func (c *manualClock) read() time.Time         { return c.now }
func (c *manualClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newManualClock() *manualClock             { return &manualClock{now: time.Unix(1700000000, 0).UTC()} }
func installClock(r *obs.Registry) *manualClock {
	c := newManualClock()
	r.SetClock(c.read)
	return c
}

func TestWatchdogStageDeadline(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	clk := installClock(r)
	rec := NewRecorder(r, 32)
	rec.SetRunInfo("deadbeef", "test")
	r.SetObserver(rec)

	dir := t.TempDir()
	var tripped []TripInfo
	w := NewWatchdog(Config{
		Registry:     r,
		Recorder:     rec,
		StageBudget:  10 * time.Second,
		StageBudgets: map[string]time.Duration{"wl.matrix": 2 * time.Second},
		FlightDir:    dir,
		RunID:        "deadbeef",
		OnTrip:       func(ti TripInfo) { tripped = append(tripped, ti) },
	})

	r.Progress().StageStarted("wl.matrix")
	clk.advance(1 * time.Second)
	if tr := w.Poll(); tr != nil {
		t.Fatalf("tripped inside budget: %+v", tr)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("Err non-nil before trip: %v", err)
	}

	clk.advance(1500 * time.Millisecond) // 2.5s elapsed > 2s stage budget
	tr := w.Poll()
	if tr == nil {
		t.Fatalf("did not trip past the stage budget")
	}
	if tr.Reason != "stage-deadline" || tr.Name != "wl.matrix" {
		t.Fatalf("wrong trip: %+v", tr)
	}
	if tr.Budget != 2*time.Second || tr.Age != 2500*time.Millisecond {
		t.Fatalf("wrong timing in trip: %+v", tr)
	}
	if len(tripped) != 1 {
		t.Fatalf("OnTrip fired %d times, want 1", len(tripped))
	}

	// Capture artifacts: flight dump round-trips; goroutine profile has
	// stacks; heap profile exists.
	d, err := ReadFile(tr.DumpPath)
	if err != nil {
		t.Fatalf("dump unreadable: %v", err)
	}
	if d.Reason != "watchdog" || !strings.Contains(d.Detail, "wl.matrix") {
		t.Fatalf("dump misses trip context: reason=%q detail=%q", d.Reason, d.Detail)
	}
	gp, err := os.ReadFile(tr.GoroutineProfile)
	if err != nil {
		t.Fatalf("goroutine profile: %v", err)
	}
	if !strings.Contains(string(gp), "goroutine") {
		t.Fatalf("goroutine profile has no stacks")
	}
	if fi, err := os.Stat(tr.HeapProfile); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if r.Counter("flight.watchdog_trips").Value() != 1 {
		t.Fatalf("trip counter not bumped")
	}

	// A later Poll returns the same trip without re-capturing.
	clk.advance(time.Hour)
	if tr2 := w.Poll(); tr2 != tr {
		t.Fatalf("second Poll produced a new trip")
	}
	if len(tripped) != 1 {
		t.Fatalf("OnTrip re-fired")
	}
	if !errors.Is(w.Err(), ErrStalled) {
		t.Fatalf("Err does not wrap ErrStalled: %v", w.Err())
	}
}

func TestWatchdogHeartbeatStall(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	clk := installClock(r)
	rec := NewRecorder(r, 32)
	r.SetObserver(rec)

	w := NewWatchdog(Config{
		Registry:         r,
		Recorder:         rec,
		HeartbeatTimeout: time.Second,
		FlightDir:        t.TempDir(),
		RunID:            "hb",
	})

	hb := r.Heartbeat("trace.ingest")
	hb.Beat()
	clk.advance(900 * time.Millisecond)
	hb.Beat() // still alive
	clk.advance(900 * time.Millisecond)
	if tr := w.Poll(); tr != nil {
		t.Fatalf("tripped on a beating heartbeat: %+v", tr)
	}

	clk.advance(200 * time.Millisecond) // 1.1s of silence
	tr := w.Poll()
	if tr == nil {
		t.Fatalf("did not trip on heartbeat silence")
	}
	if tr.Reason != "heartbeat-stall" || tr.Name != "trace.ingest" {
		t.Fatalf("wrong trip: %+v", tr)
	}
	if tr.Age != 1100*time.Millisecond {
		t.Fatalf("wrong silence age: %v", tr.Age)
	}
}

func TestWatchdogIgnoresFinishedWork(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	clk := installClock(r)

	w := NewWatchdog(Config{
		Registry:         r,
		StageBudget:      time.Second,
		HeartbeatTimeout: time.Second,
		FlightDir:        t.TempDir(),
	})

	r.Progress().StageStarted("ingest")
	hb := r.Heartbeat("pool")
	hb.Beat()
	r.Progress().StageFinished("ingest", obs.StageDone, 10*time.Millisecond)
	hb.Done()

	clk.advance(time.Hour)
	if tr := w.Poll(); tr != nil {
		t.Fatalf("tripped on finished work: %+v", tr)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	w := NewWatchdog(Config{Registry: r, StageBudget: time.Hour, Tick: time.Millisecond, FlightDir: t.TempDir()})
	w.Start()
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent

	// Stop before Start is also safe.
	w2 := NewWatchdog(Config{Registry: r, StageBudget: time.Hour, FlightDir: t.TempDir()})
	w2.Stop()
}

func TestDefaultTickClamp(t *testing.T) {
	w := NewWatchdog(Config{StageBudget: 8 * time.Second})
	if w.cfg.Tick != 2*time.Second {
		t.Fatalf("tick = %v, want 2s", w.cfg.Tick)
	}
	w = NewWatchdog(Config{HeartbeatTimeout: time.Millisecond})
	if w.cfg.Tick != 10*time.Millisecond {
		t.Fatalf("tick = %v, want 10ms floor", w.cfg.Tick)
	}
	w = NewWatchdog(Config{StageBudget: time.Hour})
	if w.cfg.Tick != 5*time.Second {
		t.Fatalf("tick = %v, want 5s ceiling", w.cfg.Tick)
	}
}

func TestWatchdogToleratesBackwardsClock(t *testing.T) {
	// NTP step-backs and VM suspend/resume can make the clock read
	// earlier than a stage start or a last beat. Negative ages must not
	// trip the watchdog, and recovery must re-arm the budgets cleanly.
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	clk := installClock(r)
	w := NewWatchdog(Config{
		Registry:         r,
		StageBudget:      time.Second,
		HeartbeatTimeout: time.Second,
		FlightDir:        t.TempDir(),
	})
	r.Progress().StageStarted("ingest")
	r.Heartbeat("pool").Beat()

	clk.advance(-time.Hour) // clock steps backwards past the start
	if tr := w.Poll(); tr != nil {
		t.Fatalf("tripped on a backwards clock: %+v", tr)
	}
	clk.advance(time.Hour + 500*time.Millisecond) // recovered, inside budget
	if tr := w.Poll(); tr != nil {
		t.Fatalf("tripped inside budget after clock recovery: %+v", tr)
	}
	clk.advance(time.Second) // genuinely over budget now
	if tr := w.Poll(); tr == nil {
		t.Fatal("did not trip once the recovered clock passed the budget")
	}
}

func TestWatchdogZeroBudgetsDisable(t *testing.T) {
	r := obs.NewRegistry()
	r.SetTrackAllocs(false)
	clk := installClock(r)

	// All budgets zero-valued: nothing trips, however long the silence.
	w := NewWatchdog(Config{Registry: r, FlightDir: t.TempDir()})
	r.Progress().StageStarted("ingest")
	r.Heartbeat("pool").Beat()
	clk.advance(240 * time.Hour)
	if tr := w.Poll(); tr != nil {
		t.Fatalf("zero-valued budgets tripped: %+v", tr)
	}

	// A zero per-stage override disables just that stage while the
	// default budget still guards every other one. The silent heartbeat
	// also stays exempt: HeartbeatTimeout is zero here too.
	w2 := NewWatchdog(Config{
		Registry:     r,
		StageBudget:  time.Second,
		StageBudgets: map[string]time.Duration{"ingest": 0},
		FlightDir:    t.TempDir(),
	})
	if tr := w2.Poll(); tr != nil {
		t.Fatalf("zero per-stage override tripped: %+v", tr)
	}
	r.Progress().StageStarted("cluster")
	clk.advance(2 * time.Second)
	tr := w2.Poll()
	if tr == nil || tr.Name != "cluster" || tr.Reason != "stage-deadline" {
		t.Fatalf("default budget did not guard the un-overridden stage: %+v", tr)
	}
}
