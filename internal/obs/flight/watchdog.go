package flight

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"jobgraph/internal/obs"
)

// ErrStalled is the sentinel a tripped watchdog reports through Err;
// pipeline cancellation hooks wrap it so callers can errors.Is it.
var ErrStalled = errors.New("watchdog: run stalled")

// Config parameterizes a Watchdog. Zero-valued budgets disable the
// corresponding check.
type Config struct {
	// Registry supplies stage progress, heartbeats and the clock.
	// Defaults to obs.Default().
	Registry *obs.Registry
	// Recorder receives trip notes and supplies the flight dump.
	// Optional; without it a trip captures profiles only.
	Recorder *Recorder
	// StageBudget is the default wall-time budget for any running
	// stage; StageBudgets overrides it per stage name.
	StageBudget  time.Duration
	StageBudgets map[string]time.Duration
	// HeartbeatTimeout trips when an active heartbeat has been silent
	// this long.
	HeartbeatTimeout time.Duration
	// Tick is the polling interval of the background loop (Start).
	// Defaults to a quarter of the smallest enabled budget, clamped to
	// [10ms, 5s].
	Tick time.Duration
	// FlightDir is where the trip's flight dump and profiles land.
	// Empty means os.TempDir().
	FlightDir string
	// RunID names the dump and profile files.
	RunID string
	// OnTrip, when set, is called once (from the goroutine that
	// detected the trip) after capture completes.
	OnTrip func(TripInfo)
}

// TripInfo describes the first trip a watchdog detected.
type TripInfo struct {
	// Reason is "stage-deadline" or "heartbeat-stall".
	Reason string
	// Name is the offending stage or heartbeat.
	Name string
	// Age is how long the stage had been running, or the heartbeat
	// silent, at detection time.
	Age time.Duration
	// Budget is the limit that was exceeded.
	Budget time.Duration
	// DumpPath, GoroutineProfile and HeapProfile are the capture
	// artifacts (empty on write failure — the trip still stands).
	DumpPath         string
	GoroutineProfile string
	HeapProfile      string
}

func (t TripInfo) String() string {
	return fmt.Sprintf("%s: %s ran %v against a %v budget", t.Reason, t.Name, t.Age.Round(time.Millisecond), t.Budget)
}

// Watchdog polls a registry's stage progress and heartbeats against
// configured budgets. The first violation trips it exactly once:
// goroutine and heap profiles plus a flight dump are captured, a trip
// counter is bumped, and OnTrip fires. Poll is exported and
// deterministic under an injected registry clock; Start runs Poll on a
// real ticker for production use.
type Watchdog struct {
	cfg  Config
	trip atomic.Pointer[TripInfo]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWatchdog validates cfg and returns an unstarted watchdog.
func NewWatchdog(cfg Config) *Watchdog {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.FlightDir == "" {
		cfg.FlightDir = os.TempDir()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = defaultTick(cfg)
	}
	return &Watchdog{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

func defaultTick(cfg Config) time.Duration {
	min := time.Duration(0)
	consider := func(d time.Duration) {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	consider(cfg.StageBudget)
	consider(cfg.HeartbeatTimeout)
	for _, d := range cfg.StageBudgets {
		consider(d)
	}
	tick := min / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	return tick
}

// Tripped returns the trip info, or nil while the watchdog has not
// tripped.
func (w *Watchdog) Tripped() *TripInfo {
	return w.trip.Load()
}

// Err returns a wrapped ErrStalled after a trip, nil before. Pipeline
// cancellation hooks (OnJob/OnRow) call it per item to abort stalled
// runs cooperatively.
func (w *Watchdog) Err() error {
	if t := w.trip.Load(); t != nil {
		return fmt.Errorf("%w (%s)", ErrStalled, t)
	}
	return nil
}

// Poll checks every budget once against the registry clock and returns
// the trip, performing first-trip capture if a violation is found.
// Deterministic for tests: inject a clock, arrange state, call Poll.
func (w *Watchdog) Poll() *TripInfo {
	if t := w.trip.Load(); t != nil {
		return t
	}
	t := w.check()
	if t == nil {
		return nil
	}
	w.capture(t)
	// First writer wins; a concurrent Poll's capture of the same trip
	// is harmless (same files, same content modulo clock).
	if !w.trip.CompareAndSwap(nil, t) {
		return w.trip.Load()
	}
	reg := w.cfg.Registry
	reg.Counter("flight.watchdog_trips").Add(1)
	reg.Logger().Error("watchdog tripped",
		"reason", t.Reason, "name", t.Name,
		"age_ms", ms(t.Age), "budget_ms", ms(t.Budget),
		"dump", t.DumpPath)
	if w.cfg.OnTrip != nil {
		w.cfg.OnTrip(*t)
	}
	return t
}

// check scans stages and heartbeats for the first budget violation.
// Detection only; no capture, no side effects.
func (w *Watchdog) check() *TripInfo {
	now := w.cfg.Registry.Now()
	for _, sp := range w.cfg.Registry.Progress().Snapshot() {
		if sp.State != obs.StageRunning {
			continue
		}
		budget := w.cfg.StageBudget
		if b, ok := w.cfg.StageBudgets[sp.Name]; ok {
			budget = b
		}
		if budget <= 0 {
			continue
		}
		if age := now.Sub(sp.StartedAt); age > budget {
			return &TripInfo{Reason: "stage-deadline", Name: sp.Name, Age: age, Budget: budget}
		}
	}
	if w.cfg.HeartbeatTimeout > 0 {
		for _, hb := range w.cfg.Registry.HeartbeatStates() {
			if !hb.Active || hb.LastBeat.IsZero() {
				continue
			}
			if age := now.Sub(hb.LastBeat); age > w.cfg.HeartbeatTimeout {
				return &TripInfo{Reason: "heartbeat-stall", Name: hb.Name, Age: age, Budget: w.cfg.HeartbeatTimeout}
			}
		}
	}
	return nil
}

// capture grabs the goroutine and heap profiles and the flight dump.
// Failures leave the corresponding path empty; the trip still stands.
func (w *Watchdog) capture(t *TripInfo) {
	runID := w.cfg.RunID
	if runID == "" {
		runID = "run"
	}
	base := filepath.Join(w.cfg.FlightDir, runID)
	if err := os.MkdirAll(w.cfg.FlightDir, 0o755); err == nil {
		if err := writeProfile(base+".goroutines.txt", "goroutine", 2); err == nil {
			t.GoroutineProfile = base + ".goroutines.txt"
		}
		if err := writeProfile(base+".heap.pprof", "heap", 0); err == nil {
			t.HeapProfile = base + ".heap.pprof"
		}
	}
	if w.cfg.Recorder != nil {
		w.cfg.Recorder.Note("watchdog.trip", t.String())
		w.cfg.Recorder.CaptureMetrics()
		if path, err := w.cfg.Recorder.DumpTo(w.cfg.FlightDir, "watchdog", t.String(), ""); err == nil {
			t.DumpPath = path
		}
	}
}

// writeProfile dumps the named pprof profile at path. debug=2 renders
// goroutines as readable stack traces; debug=0 writes binary pprof.
func writeProfile(path, profile string, debug int) error {
	p := pprof.Lookup(profile)
	if p == nil {
		return fmt.Errorf("flight: no %s profile", profile)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, debug); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Start launches the background polling loop on a real ticker. Safe to
// call once; Stop terminates the loop and waits for it.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			tick := time.NewTicker(w.cfg.Tick)
			defer tick.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-tick.C:
					w.Poll()
				}
			}
		}()
	})
}

// Stop terminates the polling loop and waits for it to exit.
// Idempotent; a watchdog never started stops trivially.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: unblock the wait
	<-w.done
}
