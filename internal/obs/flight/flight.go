// Package flight is the pipeline's postmortem layer: a crash-safe
// flight recorder that keeps a bounded ring of the most recent
// structured events — log records, span begin/ends, stage transitions,
// metric deltas — and serializes it, together with the registry's live
// stage and heartbeat state, into a deterministic JSON dump when a run
// dies (panic), is interrogated (SIGQUIT) or is declared stuck (the
// stall watchdog, watchdog.go).
//
// The recorder implements obs.Observer, so installing it on a registry
// costs the instrumented path one atomic load plus a short mutexed
// ring append per event; nothing is allocated per event beyond the
// slot reuse of the ring. Dumps are written atomically
// (temp + rename) as <run_id>.flight.json with a versioned schema, and
// Parse/ReadFile round-trip them for tooling (cmd/flightcheck) and CI
// assertions.
package flight

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"jobgraph/internal/obs"
)

// Schema identifies the flight-dump JSON layout; bump on breaking
// changes so postmortem tooling can dispatch.
const Schema = "jobgraph-flight/v1"

// Event kinds recorded in the ring.
const (
	KindLog       = "log"        // a slog record at Info or above
	KindSpanBegin = "span_begin" // a span started
	KindSpanEnd   = "span_end"   // a span ended (DurMs set)
	KindStage     = "stage"      // a Progress state transition
	KindMetric    = "metric"     // a counter delta since the last capture
	KindNote      = "note"       // free-form marker (watchdog trips, signals)
)

// Event is one entry in the flight ring. Seq is a monotonically
// increasing sequence number assigned at record time; dumps list
// events in Seq order, oldest surviving entry first.
type Event struct {
	Seq    int64     `json:"seq"`
	T      time.Time `json:"t"`
	Kind   string    `json:"kind"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
	DurMs  float64   `json:"dur_ms,omitempty"`
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: enough for the recent history of a busy run
// at a few hundred kilobytes of dump.
const DefaultCapacity = 4096

// metricCaptureLimit bounds how many counter deltas one CaptureMetrics
// call records, so a metric-heavy run cannot flush the ring's log and
// span history with its own bookkeeping.
const metricCaptureLimit = 64

// Recorder is the bounded event ring. It is safe for concurrent use;
// install it with reg.SetObserver(rec) and as a slog tee via
// TeeHandler to populate it.
type Recorder struct {
	reg *obs.Registry

	mu           sync.Mutex
	buf          []Event
	next         int
	seq          int64
	runID        string
	command      string
	lastCounters map[string]int64
}

// NewRecorder returns a recorder ringed at capacity events (<= 0 uses
// DefaultCapacity), timestamping via the registry's clock.
func NewRecorder(reg *obs.Registry, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{reg: reg, buf: make([]Event, 0, capacity)}
}

// SetRunInfo stamps the run identity onto future dumps.
func (rec *Recorder) SetRunInfo(runID, command string) {
	rec.mu.Lock()
	rec.runID = runID
	rec.command = command
	rec.mu.Unlock()
}

// add appends one event to the ring, overwriting the oldest entry once
// full. The caller supplies everything but Seq.
func (rec *Recorder) add(ev Event) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.seq++
	ev.Seq = rec.seq
	if len(rec.buf) < cap(rec.buf) {
		rec.buf = append(rec.buf, ev)
		return
	}
	rec.buf[rec.next] = ev
	rec.next = (rec.next + 1) % cap(rec.buf)
}

// SpanStarted implements obs.Observer.
func (rec *Recorder) SpanStarted(path string, at time.Time) {
	rec.add(Event{T: at, Kind: KindSpanBegin, Name: path})
}

// SpanEnded implements obs.Observer.
func (rec *Recorder) SpanEnded(path string, at time.Time, dur time.Duration) {
	rec.add(Event{T: at, Kind: KindSpanEnd, Name: path, DurMs: ms(dur)})
}

// StageChanged implements obs.Observer.
func (rec *Recorder) StageChanged(name string, state obs.StageState, at time.Time) {
	rec.add(Event{T: at, Kind: KindStage, Name: name, Detail: string(state)})
}

// Note records a free-form marker (watchdog trip, signal receipt).
func (rec *Recorder) Note(name, detail string) {
	rec.add(Event{T: rec.reg.Now(), Kind: KindNote, Name: name, Detail: detail})
}

// CaptureMetrics records the counters that moved since the previous
// capture as metric events (at most metricCaptureLimit, the largest
// deltas first). Called right before a dump so the tail of the ring
// carries the run's most recent activity profile.
func (rec *Recorder) CaptureMetrics() {
	snap := rec.reg.Snapshot()
	now := rec.reg.Now()
	rec.mu.Lock()
	last := rec.lastCounters
	rec.lastCounters = snap.Counters
	rec.mu.Unlock()

	type delta struct {
		name string
		d    int64
	}
	var deltas []delta
	for name, v := range snap.Counters {
		if d := v - last[name]; d != 0 {
			deltas = append(deltas, delta{name, d})
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].d != deltas[j].d {
			return deltas[i].d > deltas[j].d
		}
		return deltas[i].name < deltas[j].name
	})
	if len(deltas) > metricCaptureLimit {
		deltas = deltas[:metricCaptureLimit]
	}
	for _, d := range deltas {
		rec.add(Event{T: now, Kind: KindMetric, Name: d.name, Detail: fmt.Sprintf("+%d", d.d)})
	}
}

// Events returns the ring's surviving events in sequence order.
func (rec *Recorder) Events() []Event {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Event, 0, len(rec.buf))
	out = append(out, rec.buf[rec.next:]...)
	out = append(out, rec.buf[:rec.next]...)
	return out
}

// Dropped reports how many events were overwritten because the ring
// was full.
func (rec *Recorder) Dropped() int64 {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.seq - int64(len(rec.buf))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Dump is the flight-dump JSON document.
type Dump struct {
	Schema  string `json:"schema"`
	RunID   string `json:"run_id,omitempty"`
	Command string `json:"command,omitempty"`
	// Reason is why the dump was taken: "panic", "sigquit", "watchdog"
	// or a caller-supplied marker.
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// Stack carries the panic stack trace when Reason is "panic".
	Stack         string               `json:"stack,omitempty"`
	CapturedAt    time.Time            `json:"captured_at"`
	EventsTotal   int64                `json:"events_total"`
	EventsDropped int64                `json:"events_dropped"`
	Events        []Event              `json:"events"`
	Stages        []obs.StageProgress  `json:"stages,omitempty"`
	Heartbeats    []obs.HeartbeatState `json:"heartbeats,omitempty"`
	Counters      map[string]int64     `json:"counters,omitempty"`
	Gauges        map[string]int64     `json:"gauges,omitempty"`
}

// BuildDump assembles the dump document: the surviving ring plus the
// registry's live stage, heartbeat, counter and gauge state.
func (rec *Recorder) BuildDump(reason, detail, stack string) Dump {
	snap := rec.reg.Snapshot()
	rec.mu.Lock()
	runID, command := rec.runID, rec.command
	seq := rec.seq
	rec.mu.Unlock()
	d := Dump{
		Schema:      Schema,
		RunID:       runID,
		Command:     command,
		Reason:      reason,
		Detail:      detail,
		Stack:       stack,
		CapturedAt:  rec.reg.Now(),
		EventsTotal: seq,
		Events:      rec.Events(),
		Stages:      rec.reg.Progress().Snapshot(),
		Heartbeats:  rec.reg.HeartbeatStates(),
		Counters:    snap.Counters,
		Gauges:      snap.Gauges,
	}
	d.EventsDropped = d.EventsTotal - int64(len(d.Events))
	return d
}

// DumpPath returns the dump filename for a run inside dir.
func DumpPath(dir, runID string) string {
	if runID == "" {
		runID = "run"
	}
	return filepath.Join(dir, runID+".flight.json")
}

// WriteDump serializes the dump as indented JSON at path, atomically:
// a same-directory temp file renamed into place, so a reader never
// observes a half-written postmortem.
func WriteDump(path string, d Dump) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("flight: marshal dump: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".flight-*")
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: write dump: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: %w", err)
	}
	return nil
}

// DumpTo builds the dump and writes it to DumpPath(dir, runID),
// returning the written path.
func (rec *Recorder) DumpTo(dir, reason, detail, stack string) (string, error) {
	rec.mu.Lock()
	runID := rec.runID
	rec.mu.Unlock()
	path := DumpPath(dir, runID)
	if err := WriteDump(path, rec.BuildDump(reason, detail, stack)); err != nil {
		return "", err
	}
	return path, nil
}

// Parse decodes and validates a flight dump.
func Parse(data []byte) (Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return Dump{}, fmt.Errorf("flight: parse dump: %w", err)
	}
	if d.Schema != Schema {
		return Dump{}, fmt.Errorf("flight: schema %q, want %q", d.Schema, Schema)
	}
	if d.Reason == "" {
		return Dump{}, fmt.Errorf("flight: dump has no reason")
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			return Dump{}, fmt.Errorf("flight: events out of sequence at index %d", i)
		}
	}
	return d, nil
}

// ReadFile loads and validates the flight dump at path.
func ReadFile(path string) (Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Dump{}, fmt.Errorf("flight: %w", err)
	}
	return Parse(data)
}

// TeeHandler returns a slog.Handler that records every Info-or-above
// record into the flight ring and forwards everything to next. The tee
// records even when next's own level filter would drop the record, so
// a quiet stderr still leaves a full in-memory history for postmortems.
func (rec *Recorder) TeeHandler(next slog.Handler) slog.Handler {
	return &teeHandler{rec: rec, next: next}
}

type teeHandler struct {
	rec    *Recorder
	next   slog.Handler
	attrs  []slog.Attr
	groups []string
}

func (h *teeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	// Info and above always reach the ring; below that, defer to next.
	return level >= slog.LevelInfo || h.next.Enabled(ctx, level)
}

func (h *teeHandler) Handle(ctx context.Context, recd slog.Record) error {
	if recd.Level >= slog.LevelInfo {
		var sb strings.Builder
		prefix := strings.Join(h.groups, ".")
		emit := func(a slog.Attr) {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			if prefix != "" {
				sb.WriteString(prefix)
				sb.WriteByte('.')
			}
			fmt.Fprintf(&sb, "%s=%v", a.Key, a.Value)
		}
		for _, a := range h.attrs {
			emit(a)
		}
		recd.Attrs(func(a slog.Attr) bool {
			emit(a)
			return true
		})
		h.rec.add(Event{
			T:      h.rec.reg.Now(),
			Kind:   KindLog,
			Name:   recd.Message,
			Detail: sb.String(),
		})
	}
	if h.next.Enabled(ctx, recd.Level) {
		return h.next.Handle(ctx, recd)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	na = append(na, attrs...)
	return &teeHandler{rec: h.rec, next: h.next.WithAttrs(attrs), attrs: na, groups: h.groups}
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	ng := make([]string, 0, len(h.groups)+1)
	ng = append(ng, h.groups...)
	ng = append(ng, name)
	return &teeHandler{rec: h.rec, next: h.next.WithGroup(name), attrs: h.attrs, groups: ng}
}
