package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fully deterministic registry: fixed counter
// and gauge values, a histogram over 1..100, and a span tree recorded
// with synthetic durations.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("trace.rows_parsed").Add(12345)
	r.Counter("sampling.filter.kept").Add(100)
	r.Gauge("wl.dict_labels").Set(4096)
	h := r.Histogram("wl.vector_size")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	r.RecordSpan([]string{"pipeline"}, 1500*time.Millisecond, 1<<20)
	r.RecordSpan([]string{"pipeline", "sampling.filter"}, 200*time.Millisecond, 1<<10)
	r.RecordSpan([]string{"pipeline", "wl.kernel"}, 800*time.Millisecond, 1<<19)
	r.RecordSpan([]string{"pipeline", "wl.kernel"}, 400*time.Millisecond, 1<<18)
	return r
}

// TestSnapshotGolden pins the metrics.json schema: any change to the
// serialized layout must be deliberate (run with -update) and noted in
// the README's Observability section.
func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs/ -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("snapshot differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestSnapshotRoundTripsAndIsStable(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same registry state serialized differently twice")
	}
	var snap Snapshot
	if err := json.Unmarshal(a.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema {
		t.Fatalf("schema %q", snap.Schema)
	}
	if snap.Counters["trace.rows_parsed"] != 12345 {
		t.Fatalf("counters %v", snap.Counters)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "pipeline" {
		t.Fatalf("spans %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "sampling.filter" || kids[1].Name != "wl.kernel" {
		t.Fatalf("children %+v", kids)
	}
	if kids[1].Count != 2 || kids[1].TotalMs != 1200 || kids[1].MinMs != 400 || kids[1].MaxMs != 800 {
		t.Fatalf("wl.kernel aggregate %+v", kids[1])
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := goldenRegistry().WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json not valid JSON: %v", err)
	}
}

// TestHistogramQuantilesMatchStats compares the streaming histogram's
// P² quantile estimates against the exact sort-based quantiles from
// internal/stats on the same sample.
func TestHistogramQuantilesMatchStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
		h.Observe(xs[i])
	}
	snap := h.snapshot()
	mean, _ := stats.Mean(xs)
	if math.Abs(snap.Mean-mean) > 1e-9*(1+math.Abs(mean)) {
		t.Fatalf("mean %g vs %g", snap.Mean, mean)
	}
	for _, q := range []struct {
		p    float64
		got  float64
		name string
	}{
		{0.5, snap.P50, "p50"}, {0.9, snap.P90, "p90"}, {0.99, snap.P99, "p99"},
	} {
		exact, err := stats.Quantile(xs, q.p)
		if err != nil {
			t.Fatal(err)
		}
		// 5% relative-to-spread tolerance, same contract as the stats
		// package's own P² test.
		lo, _ := stats.Min(xs)
		hi, _ := stats.Max(xs)
		if math.Abs(q.got-exact) > 0.05*(hi-lo) {
			t.Fatalf("%s: streaming %g vs exact %g", q.name, q.got, exact)
		}
	}
}

func TestDebugServerServesVarsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug.test_counter").Add(3)
	ds, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, "jobgraph") || !strings.Contains(vars, "debug.test_counter") {
		t.Fatalf("/debug/vars missing registry export: %.200s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.200s", idx)
	}
}
