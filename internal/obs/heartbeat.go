package obs

import (
	"sync/atomic"
	"time"
)

// Heartbeat is a liveness instrument for long-running loops: a worker
// pool or a streaming decoder calls Beat on every unit of progress and
// Done when it finishes. The stall watchdog reads the age of the last
// beat — an active heartbeat that stops beating means a loop is stuck
// (blocked read, deadlocked worker), which per-stage wall-time budgets
// alone cannot distinguish from legitimate slow work.
//
// Beat is one atomic store of the registry clock plus one atomic add;
// safe for concurrent use from many workers sharing one heartbeat.
type Heartbeat struct {
	reg    *Registry
	name   string
	active atomic.Bool
	last   atomic.Int64 // UnixNano of the most recent beat
	beats  atomic.Int64
}

// Beat records one unit of progress and (re)activates the heartbeat.
// No-op while the registry is disabled.
func (h *Heartbeat) Beat() {
	if !h.reg.enabled.Load() {
		return
	}
	h.last.Store(h.reg.now().UnixNano())
	h.active.Store(true)
	h.beats.Add(1)
}

// Done deactivates the heartbeat: the loop exited, silence is expected.
func (h *Heartbeat) Done() { h.active.Store(false) }

// Active reports whether the heartbeat expects further beats.
func (h *Heartbeat) Active() bool { return h.active.Load() }

// Beats returns the total number of beats recorded.
func (h *Heartbeat) Beats() int64 { return h.beats.Load() }

// HeartbeatState is one heartbeat's exported snapshot.
type HeartbeatState struct {
	Name   string `json:"name"`
	Active bool   `json:"active"`
	Beats  int64  `json:"beats"`
	// LastBeat is the registry-clock time of the most recent beat
	// (zero if the heartbeat never beat).
	LastBeat time.Time `json:"last_beat"`
	// AgeMs is the silence since the last beat at snapshot time.
	AgeMs float64 `json:"age_ms"`
}

// Heartbeat interns and returns the named heartbeat.
func (r *Registry) Heartbeat(name string) *Heartbeat {
	r.hbMu.Lock()
	defer r.hbMu.Unlock()
	if r.heartbeats == nil {
		r.heartbeats = make(map[string]*Heartbeat)
	}
	h, ok := r.heartbeats[name]
	if !ok {
		h = &Heartbeat{reg: r, name: name}
		r.heartbeats[name] = h
	}
	return h
}

// HeartbeatStates returns every interned heartbeat's state, sorted by
// name. Ages are measured against the registry clock.
func (r *Registry) HeartbeatStates() []HeartbeatState {
	now := r.now()
	r.hbMu.Lock()
	defer r.hbMu.Unlock()
	out := make([]HeartbeatState, 0, len(r.heartbeats))
	for _, name := range sortedKeys(r.heartbeats) {
		h := r.heartbeats[name]
		st := HeartbeatState{Name: name, Active: h.active.Load(), Beats: h.beats.Load()}
		if ns := h.last.Load(); ns != 0 {
			st.LastBeat = time.Unix(0, ns)
			st.AgeMs = float64(now.Sub(st.LastBeat)) / float64(time.Millisecond)
		}
		out = append(out, st)
	}
	return out
}

// resetHeartbeats zeroes every heartbeat in place (handles stay valid).
func (r *Registry) resetHeartbeats() {
	r.hbMu.Lock()
	defer r.hbMu.Unlock()
	for _, h := range r.heartbeats {
		h.active.Store(false)
		h.last.Store(0)
		h.beats.Store(0)
	}
}
