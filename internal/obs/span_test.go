package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAggregatesIntoTree(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)

	root := r.StartSpan("pipeline")
	for i := 0; i < 3; i++ {
		c := root.Child("wl.kernel")
		gc := c.Child("embed")
		gc.End()
		c.End()
	}
	root.End()

	tree := r.SpanTree()
	if len(tree) != 1 || tree[0].Name != "pipeline" {
		t.Fatalf("roots = %+v", tree)
	}
	p := tree[0]
	if p.Count != 1 {
		t.Fatalf("pipeline count = %d", p.Count)
	}
	k, ok := p.Children["wl.kernel"]
	if !ok {
		t.Fatalf("missing wl.kernel child; children %v", p.Children)
	}
	if k.Count != 3 {
		t.Fatalf("wl.kernel count = %d", k.Count)
	}
	e, ok := k.Children["embed"]
	if !ok || e.Count != 3 {
		t.Fatalf("embed stats = %+v", e)
	}
	if k.Min > k.Max || k.Total < k.Max {
		t.Fatalf("inconsistent aggregate: min %v max %v total %v", k.Min, k.Max, k.Total)
	}
}

// allocSink defeats dead-allocation elimination in the alloc-delta test.
var allocSink []byte

func TestSpanDurationAndAllocs(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("work")
	time.Sleep(5 * time.Millisecond)
	allocSink = make([]byte, 1<<20)
	allocSink[len(allocSink)-1] = 1
	d := sp.End()
	if d < 5*time.Millisecond {
		t.Fatalf("span duration %v < sleep", d)
	}
	st := r.SpanTree()[0]
	if st.Total < 5*time.Millisecond {
		t.Fatalf("recorded total %v", st.Total)
	}
	if st.AllocBytes < 1<<20 {
		t.Fatalf("alloc delta %d, want >= 1MiB", st.AllocBytes)
	}
}

func TestChildOfNilSpanFallsBackToDefault(t *testing.T) {
	var s *Span
	child := s.Child("orphan")
	if child == nil {
		t.Fatal("nil parent with enabled Default registry should still record")
	}
	if child.reg != Default() {
		t.Fatal("orphan child not on Default registry")
	}
	child.End()
}

func TestRecordSpanConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.RecordSpan([]string{"a", "b"}, time.Millisecond, 1)
			}
		}()
	}
	wg.Wait()
	a := r.SpanTree()[0]
	b := a.Children["b"]
	if b.Count != 1600 || b.AllocBytes != 1600 {
		t.Fatalf("b = %+v", b)
	}
}

func TestSpanEndDoesNotLog(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	var sb strings.Builder
	r.SetLogf(func(format string, args ...any) {
		sb.WriteString(format)
	})
	r.StartSpan("stage.x").End()
	if sb.Len() != 0 {
		t.Fatalf("End logged %q; progress lines are the pipeline's job", sb.String())
	}
}
