// Package obs is the pipeline's observability layer: a stdlib-only
// metrics registry (counters, gauges, streaming histograms), lightweight
// nested spans that aggregate into a per-stage tree, a JSON snapshot
// writer (results/metrics.json), and an optional localhost debug server
// exposing expvar and pprof.
//
// The package exists so every performance claim about the pipeline can
// be backed by numbers it emits: each substrate package increments its
// own counters through the shared Default registry, core.Run wraps the
// pipeline stages in spans, and the command-line tools snapshot the
// registry on exit.
//
// Instrumented code obtains handles once (typically in package vars):
//
//	var rowsParsed = obs.Default().Counter("trace.rows_parsed")
//
// and pays one atomic add per event. Disabling a registry
// (SetEnabled(false)) turns every handle into a near-zero-cost no-op,
// so library users who never look at metrics pay only a single atomic
// load per event.
package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds one coherent set of metrics. The Default registry is
// shared by the instrumented pipeline packages; independent registries
// are for tests and embedded use.
type Registry struct {
	enabled     atomic.Bool
	trackAllocs atomic.Bool
	logf        atomic.Pointer[func(format string, args ...any)]
	logger      atomic.Pointer[slog.Logger]
	clock       atomic.Pointer[func() time.Time]
	observer    atomic.Pointer[observerBox]

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rates    map[string]*RateCounter
	windows  map[string]*WindowHistogram

	// progress is the live per-stage execution state served at
	// /progress on the debug server (progress.go).
	progressOnce sync.Once
	progress     *Progress

	spanMu sync.Mutex
	root   *SpanStats // unnamed root of the aggregated span tree

	// Liveness heartbeats (heartbeat.go) and slowest-item exemplar
	// stores (exemplar.go), both interned by name.
	hbMu       sync.Mutex
	heartbeats map[string]*Heartbeat
	exMu       sync.Mutex
	exemplars  map[string]*exemplarStore

	// Bounded trace-event ring buffer for timeline export (events.go).
	// eventCap doubles as the enable flag: zero (the default) keeps
	// Span.End free of any event work beyond one atomic load.
	eventCap   atomic.Int64
	eventMu    sync.Mutex
	eventBuf   []TraceEvent
	eventNext  int
	eventTotal int64
}

// NewRegistry returns an enabled registry with allocation tracking on.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rates:    make(map[string]*RateCounter),
		windows:  make(map[string]*WindowHistogram),
		root:     newSpanStats(""),
	}
	r.enabled.Store(true)
	r.trackAllocs.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline packages
// report into.
func Default() *Registry { return defaultRegistry }

// SetEnabled toggles the registry. While disabled, counter, gauge,
// histogram and span operations are no-ops (handles stay valid).
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetTrackAllocs toggles per-span allocation deltas. Reading
// runtime.MemStats costs tens of microseconds, which is irrelevant for
// stage-level spans but worth switching off for span-per-call
// micro-benchmarks.
func (r *Registry) SetTrackAllocs(on bool) { r.trackAllocs.Store(on) }

// SetLogf installs a progress logger (nil to disable). Spans log one
// line on End; instrumented stages log key counts. The commands wire
// this to stderr behind -v.
func (r *Registry) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		r.logf.Store(nil)
		return
	}
	r.logf.Store(&f)
}

// Logf emits one progress line through the installed printf logger,
// falling back to the structured logger at Info level. Retained for
// call sites without meaningful attributes; new instrumentation should
// prefer Logger().
func (r *Registry) Logf(format string, args ...any) {
	if f := r.logf.Load(); f != nil {
		(*f)(format, args...)
		return
	}
	if l := r.logger.Load(); l != nil {
		l.Info(fmt.Sprintf(format, args...))
	}
}

// SetLogger installs a structured logger (nil to disable). The commands
// wire this to a text or JSON slog handler carrying the run ID and
// config hash; pipeline stages attach their own attributes.
func (r *Registry) SetLogger(l *slog.Logger) {
	r.logger.Store(l)
}

// discardLogger drops every record; Logger returns it so instrumented
// code never nil-checks.
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(_ context.Context, _ slog.Level) bool  { return false }
func (discardHandler) Handle(_ context.Context, _ slog.Record) error { return nil }
func (discardHandler) WithAttrs(_ []slog.Attr) slog.Handler          { return discardHandler{} }
func (discardHandler) WithGroup(_ string) slog.Handler               { return discardHandler{} }

// Logger returns the structured logger for this registry. Precedence:
// the SetLogger logger; else a shim over the legacy SetLogf printf
// channel (attrs rendered as trailing key=value pairs); else a no-op
// logger. The result is never nil.
func (r *Registry) Logger() *slog.Logger {
	if l := r.logger.Load(); l != nil {
		return l
	}
	if f := r.logf.Load(); f != nil {
		return slog.New(&logfHandler{logf: *f})
	}
	return discardLogger
}

// logfHandler adapts a printf-style progress logger to slog so code
// written against Logger() still reaches tests and tools that installed
// SetLogf.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var sb strings.Builder
	sb.WriteString(rec.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", sb.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	na = append(na, attrs...)
	return &logfHandler{logf: h.logf, attrs: na}
}

func (h *logfHandler) WithGroup(_ string) slog.Handler { return h }

// SetClock overrides the registry's time source (nil restores
// time.Now). Tests inject a deterministic clock so span durations and
// exported timelines are reproducible byte-for-byte.
func (r *Registry) SetClock(f func() time.Time) {
	if f == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&f)
}

// now reads the registry clock.
func (r *Registry) now() time.Time {
	if f := r.clock.Load(); f != nil {
		return (*f)()
	}
	return time.Now()
}

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// Add increments the counter by n (no-op while the registry is disabled).
func (c *Counter) Add(n int64) {
	if c.reg.enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric, safe for concurrent use.
type Gauge struct {
	reg *Registry
	v   atomic.Int64
}

// Set records the current value (no-op while the registry is disabled).
func (g *Gauge) Set(v int64) {
	if g.reg.enabled.Load() {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter interns and returns the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{reg: r}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{reg: r}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(r)
		r.hists[name] = h
	}
	return h
}

// Reset clears every metric and the span tree but keeps handles valid:
// counters and gauges are zeroed in place, histograms restarted. Used
// between runs that share the Default registry (tests, ablations).
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, rc := range r.rates {
		rc.reset()
	}
	for _, wh := range r.windows {
		wh.reset()
	}
	r.mu.Unlock()
	r.Progress().Reset()
	r.spanMu.Lock()
	r.root = newSpanStats("")
	r.spanMu.Unlock()
	r.eventMu.Lock()
	r.eventBuf = r.eventBuf[:0]
	r.eventNext = 0
	r.eventTotal = 0
	r.eventMu.Unlock()
	r.resetHeartbeats()
	r.resetExemplars()
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
