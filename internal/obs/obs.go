// Package obs is the pipeline's observability layer: a stdlib-only
// metrics registry (counters, gauges, streaming histograms), lightweight
// nested spans that aggregate into a per-stage tree, a JSON snapshot
// writer (results/metrics.json), and an optional localhost debug server
// exposing expvar and pprof.
//
// The package exists so every performance claim about the pipeline can
// be backed by numbers it emits: each substrate package increments its
// own counters through the shared Default registry, core.Run wraps the
// pipeline stages in spans, and the command-line tools snapshot the
// registry on exit.
//
// Instrumented code obtains handles once (typically in package vars):
//
//	var rowsParsed = obs.Default().Counter("trace.rows_parsed")
//
// and pays one atomic add per event. Disabling a registry
// (SetEnabled(false)) turns every handle into a near-zero-cost no-op,
// so library users who never look at metrics pay only a single atomic
// load per event.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds one coherent set of metrics. The Default registry is
// shared by the instrumented pipeline packages; independent registries
// are for tests and embedded use.
type Registry struct {
	enabled     atomic.Bool
	trackAllocs atomic.Bool
	logf        atomic.Pointer[func(format string, args ...any)]

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	root   *SpanStats // unnamed root of the aggregated span tree
}

// NewRegistry returns an enabled registry with allocation tracking on.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		root:     newSpanStats(""),
	}
	r.enabled.Store(true)
	r.trackAllocs.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline packages
// report into.
func Default() *Registry { return defaultRegistry }

// SetEnabled toggles the registry. While disabled, counter, gauge,
// histogram and span operations are no-ops (handles stay valid).
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetTrackAllocs toggles per-span allocation deltas. Reading
// runtime.MemStats costs tens of microseconds, which is irrelevant for
// stage-level spans but worth switching off for span-per-call
// micro-benchmarks.
func (r *Registry) SetTrackAllocs(on bool) { r.trackAllocs.Store(on) }

// SetLogf installs a progress logger (nil to disable). Spans log one
// line on End; instrumented stages log key counts. The commands wire
// this to stderr behind -v.
func (r *Registry) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		r.logf.Store(nil)
		return
	}
	r.logf.Store(&f)
}

// Logf emits one progress line through the installed logger, if any.
func (r *Registry) Logf(format string, args ...any) {
	if f := r.logf.Load(); f != nil {
		(*f)(format, args...)
	}
}

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// Add increments the counter by n (no-op while the registry is disabled).
func (c *Counter) Add(n int64) {
	if c.reg.enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric, safe for concurrent use.
type Gauge struct {
	reg *Registry
	v   atomic.Int64
}

// Set records the current value (no-op while the registry is disabled).
func (g *Gauge) Set(v int64) {
	if g.reg.enabled.Load() {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter interns and returns the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{reg: r}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{reg: r}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(r)
		r.hists[name] = h
	}
	return h
}

// Reset clears every metric and the span tree but keeps handles valid:
// counters and gauges are zeroed in place, histograms restarted. Used
// between runs that share the Default registry (tests, ablations).
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	r.root = newSpanStats("")
	r.spanMu.Unlock()
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
