package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestHeartbeatStates(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })

	hb := r.Heartbeat("pool.dag")
	if hb != r.Heartbeat("pool.dag") {
		t.Fatalf("Heartbeat did not intern by name")
	}
	hb.Beat()
	hb.Beat()
	now = now.Add(3 * time.Second)

	states := r.HeartbeatStates()
	if len(states) != 1 {
		t.Fatalf("got %d states, want 1", len(states))
	}
	st := states[0]
	if st.Name != "pool.dag" || !st.Active || st.Beats != 2 {
		t.Fatalf("unexpected state: %+v", st)
	}
	if st.AgeMs != 3000 {
		t.Fatalf("AgeMs = %v, want 3000", st.AgeMs)
	}

	hb.Done()
	if r.HeartbeatStates()[0].Active {
		t.Fatalf("heartbeat still active after Done")
	}

	r.Reset()
	st = r.HeartbeatStates()[0]
	if st.Beats != 0 || st.Active || !st.LastBeat.IsZero() {
		t.Fatalf("Reset did not zero heartbeat: %+v", st)
	}
	hb.Beat() // handle stays valid
	if r.HeartbeatStates()[0].Beats != 1 {
		t.Fatalf("handle dead after Reset")
	}
}

func TestHeartbeatDisabledRegistry(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	hb := r.Heartbeat("x")
	hb.Beat()
	if hb.Beats() != 0 || hb.Active() {
		t.Fatalf("disabled registry recorded a beat")
	}
}

func TestExemplarsTopK(t *testing.T) {
	r := NewRegistry()
	// Offer in an order that exercises both insertion directions and a
	// duration tie; only the top 3 must survive, slowest first, ties by ID.
	offers := []Exemplar{
		{ID: "j2", DurationMs: 20},
		{ID: "j5", DurationMs: 50},
		{ID: "j1", DurationMs: 10},
		{ID: "j4b", DurationMs: 40},
		{ID: "j4a", DurationMs: 40},
	}
	for _, e := range offers {
		r.RecordExemplar("dag.jobs", 3, e)
	}
	got := r.Exemplars()["dag.jobs"]
	want := []Exemplar{
		{ID: "j5", DurationMs: 50},
		{ID: "j4a", DurationMs: 40},
		{ID: "j4b", DurationMs: 40},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exemplars = %+v, want %+v", got, want)
	}

	snap := r.Snapshot()
	if !reflect.DeepEqual(snap.Exemplars["dag.jobs"], want) {
		t.Fatalf("snapshot exemplars = %+v", snap.Exemplars["dag.jobs"])
	}

	r.Reset()
	if r.Exemplars() != nil {
		t.Fatalf("Reset kept exemplars")
	}
}

type recordingObserver struct {
	events []string
}

func (o *recordingObserver) SpanStarted(path string, at time.Time) {
	o.events = append(o.events, "begin "+path)
}
func (o *recordingObserver) SpanEnded(path string, at time.Time, dur time.Duration) {
	o.events = append(o.events, "end "+path)
}
func (o *recordingObserver) StageChanged(name string, state StageState, at time.Time) {
	o.events = append(o.events, "stage "+name+" "+string(state))
}

func TestObserverNotifications(t *testing.T) {
	r := NewRegistry()
	r.SetTrackAllocs(false)
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { now = now.Add(time.Millisecond); return now })

	var rec recordingObserver
	r.SetObserver(&rec)

	sp := r.StartSpan("pipeline")
	child := sp.Child("ingest")
	child.End()
	sp.End()
	r.Progress().StageStarted("ingest")
	r.Progress().StageFinished("ingest", StageDone, time.Second)

	want := []string{
		"begin pipeline",
		"begin pipeline/ingest",
		"end pipeline/ingest",
		"end pipeline",
		"stage ingest running",
		"stage ingest done",
	}
	if !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("observer events = %q, want %q", rec.events, want)
	}

	// Removing the observer stops notifications.
	r.SetObserver(nil)
	r.StartSpan("quiet").End()
	if len(rec.events) != len(want) {
		t.Fatalf("observer still notified after removal")
	}
}

func TestHeartbeatStatesBackwardsClock(t *testing.T) {
	// A clock step-back between the last beat and the snapshot yields a
	// negative age rather than saturating; the stall watchdog reads
	// negative silence as "not stalled".
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	hb := r.Heartbeat("pool")
	hb.Beat()
	now = now.Add(-5 * time.Second)
	st := r.HeartbeatStates()[0]
	if st.AgeMs != -5000 {
		t.Fatalf("AgeMs = %v, want -5000", st.AgeMs)
	}
	if !st.LastBeat.Equal(time.Unix(1000, 0)) {
		t.Fatalf("LastBeat = %v, want the beat time", st.LastBeat)
	}
	// Beating on the stepped-back clock rewinds LastBeat with it; the
	// snapshot stays consistent with the registry clock.
	hb.Beat()
	st = r.HeartbeatStates()[0]
	if st.AgeMs != 0 || !st.LastBeat.Equal(now) {
		t.Fatalf("post-stepback beat not reflected: %+v", st)
	}
}
