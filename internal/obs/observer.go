package obs

import "time"

// Observer receives structured notifications as instrumentation events
// happen: span begin/end and stage state transitions. The flight
// recorder (internal/obs/flight) implements it to keep a crash-safe
// ring of recent events; other consumers could stream them.
//
// Callbacks run synchronously on the instrumented goroutine and must
// be cheap and non-blocking. They are invoked only while the registry
// is enabled; a disabled registry, or no observer installed, costs one
// atomic load per event.
type Observer interface {
	// SpanStarted fires when a span begins. Path is the slash-joined
	// tree path, e.g. "pipeline/wl.matrix".
	SpanStarted(path string, at time.Time)
	// SpanEnded fires when a span ends.
	SpanEnded(path string, at time.Time, dur time.Duration)
	// StageChanged fires on every Progress transition (running, done,
	// cached, failed).
	StageChanged(name string, state StageState, at time.Time)
}

// observerBox wraps the interface so it can live in an atomic.Pointer.
type observerBox struct{ o Observer }

// SetObserver installs the registry's event observer (nil to remove).
// At most one observer is active at a time; installing replaces the
// previous one.
func (r *Registry) SetObserver(o Observer) {
	if o == nil {
		r.observer.Store(nil)
		return
	}
	r.observer.Store(&observerBox{o: o})
}

// observerFor returns the installed observer, or nil. One atomic load.
func (r *Registry) observerFor() Observer {
	if b := r.observer.Load(); b != nil {
		return b.o
	}
	return nil
}

// Now reads the registry's clock (time.Now unless SetClock overrode
// it). Exported so companion packages — the watchdog, the flight
// recorder — share the registry's notion of time and stay
// deterministic under an injected clock.
func (r *Registry) Now() time.Time { return r.now() }
