package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.hits")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterGaugeHistogramInterned(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not interned")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram not interned")
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	r.SetEnabled(false)
	c.Add(5)
	g.Set(7)
	h.Observe(1)
	if sp := r.StartSpan("x"); sp != nil {
		t.Fatal("disabled registry returned live span")
	}
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}

	r.SetEnabled(true)
	c.Add(5)
	g.Set(7)
	h.Observe(1)
	if c.Value() != 5 || g.Value() != 7 || h.Count() != 1 {
		t.Fatalf("re-enabled registry lost updates: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(3)
	g.Set(9)
	h.Observe(2)
	r.RecordSpan([]string{"stage"}, 10, 0)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	if len(r.SpanTree()) != 0 {
		t.Fatal("reset left span tree")
	}
	c.Add(1)
	if r.Counter("c").Value() != 1 {
		t.Fatal("handle detached from registry after reset")
	}
}

func TestResetConcurrentWithWriters(t *testing.T) {
	// Reset must be safe against in-flight writes on every instrument
	// kind: handles stay attached, nothing panics, and the data race
	// detector stays quiet. Values mid-storm are unknowable; what is
	// checked is that the instruments are exact again once quiescent.
	r := NewRegistry()
	c := r.Counter("storm.c")
	g := r.Gauge("storm.g")
	h := r.Histogram("storm.h")
	rc := r.RateCounter("storm.rate", DefaultWindow)
	wh := r.WindowHistogram("storm.win", DefaultWindow)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(int64(i))
				h.Observe(float64(i % 100))
				rc.Add(1)
				wh.Observe(float64(i % 100))
				sp := r.StartSpan("storm.stage")
				sp.End()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Reset()
		r.Snapshot() // readers race the writers and the resets too
	}
	close(stop)
	wg.Wait()

	r.Reset()
	c.Add(5)
	h.Observe(1)
	rc.Add(2)
	wh.Observe(3)
	if c.Value() != 5 {
		t.Fatalf("counter after quiescent reset = %d, want 5", c.Value())
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count after reset = %d, want 1", h.Count())
	}
	if rc.Total() != 2 {
		t.Fatalf("rate total after reset = %d, want 2", rc.Total())
	}
	if got := wh.Snapshot().Count; got != 1 {
		t.Fatalf("window count after reset = %d, want 1", got)
	}
	if r.Counter("storm.c") != c {
		t.Fatal("handle detached by concurrent reset")
	}
}

func TestLogf(t *testing.T) {
	r := NewRegistry()
	var lines []string
	r.Logf("dropped %d", 1) // no logger installed: must not panic
	r.SetLogf(func(format string, args ...any) {
		lines = append(lines, format)
	})
	r.Logf("kept %d", 2)
	r.SetLogf(nil)
	r.Logf("dropped %d", 3)
	if len(lines) != 1 || lines[0] != "kept %d" {
		t.Fatalf("logged lines = %q", lines)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
}
