package obs

import (
	"runtime"
	"strings"
	"time"
)

// Span measures one stage of work: wall time, heap allocation delta
// (runtime.MemStats.TotalAlloc, when the registry tracks allocations)
// and its position in the stage tree. Spans nest through Child; ending
// a span folds it into the registry's aggregated per-stage tree.
//
// A nil *Span is a valid no-op (StartSpan returns nil on a disabled
// registry), so instrumented code never branches:
//
//	sp := reg.StartSpan("wl.kernel")
//	defer sp.End()
type Span struct {
	reg         *Registry
	path        []string
	start       time.Time
	startAllocs uint64
	allocs      bool
}

// StartSpan begins a root-level span. Returns nil (a no-op span) while
// the registry is disabled.
func (r *Registry) StartSpan(name string) *Span {
	if !r.enabled.Load() {
		return nil
	}
	return r.startSpan([]string{name})
}

// Child begins a nested span under s. On a nil/no-op span it returns a
// root-level span on the Default registry if that is enabled, else nil —
// instrumentation stays correct whether or not a parent was started.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return Default().StartSpan(name)
	}
	path := make([]string, 0, len(s.path)+1)
	path = append(path, s.path...)
	return s.reg.startSpan(append(path, name))
}

func (r *Registry) startSpan(path []string) *Span {
	s := &Span{reg: r, path: path, start: r.now()}
	if r.trackAllocs.Load() {
		s.allocs = true
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.startAllocs = ms.TotalAlloc
	}
	if o := r.observerFor(); o != nil {
		o.SpanStarted(strings.Join(path, "/"), s.start)
	}
	return s
}

// End stops the span, folds it into the registry's stage tree, retains
// a begin/end trace event when the event ring is enabled, and returns
// the duration. It does not log: progress lines are the caller's
// responsibility (core.Run emits exactly one per stage, with the
// stage's key counts).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	dur := s.reg.now().Sub(s.start)
	var allocs uint64
	if s.allocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		// TotalAlloc is monotone; guard anyway against a zero reading.
		if ms.TotalAlloc > s.startAllocs {
			allocs = ms.TotalAlloc - s.startAllocs
		}
	}
	s.reg.RecordSpan(s.path, dur, allocs)
	s.reg.recordEvent(s.path, s.start, dur)
	if o := s.reg.observerFor(); o != nil {
		o.SpanEnded(strings.Join(s.path, "/"), s.start.Add(dur), dur)
	}
	return dur
}

// SpanStats aggregates every completed span that shared one tree path.
type SpanStats struct {
	Name       string
	Count      int64
	Total      time.Duration
	Min, Max   time.Duration
	AllocBytes uint64
	Children   map[string]*SpanStats
}

func newSpanStats(name string) *SpanStats {
	return &SpanStats{Name: name, Children: make(map[string]*SpanStats)}
}

func (st *SpanStats) add(dur time.Duration, allocs uint64) {
	st.Count++
	st.Total += dur
	if st.Count == 1 || dur < st.Min {
		st.Min = dur
	}
	if dur > st.Max {
		st.Max = dur
	}
	st.AllocBytes += allocs
}

// RecordSpan folds one completed span directly into the stage tree.
// Span.End calls it; tests and replay tooling may call it with
// synthetic durations to build deterministic trees.
func (r *Registry) RecordSpan(path []string, dur time.Duration, allocBytes uint64) {
	if len(path) == 0 || !r.enabled.Load() {
		return
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	node := r.root
	for _, seg := range path {
		child, ok := node.Children[seg]
		if !ok {
			child = newSpanStats(seg)
			node.Children[seg] = child
		}
		node = child
	}
	node.add(dur, allocBytes)
}

// SpanTree returns a deep copy of the aggregated stage tree's roots,
// sorted by name.
func (r *Registry) SpanTree() []*SpanStats {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return copyChildren(r.root)
}

func copyChildren(st *SpanStats) []*SpanStats {
	out := make([]*SpanStats, 0, len(st.Children))
	for _, name := range sortedKeys(st.Children) {
		c := st.Children[name]
		cp := *c
		cp.Children = nil
		kids := copyChildren(c)
		if len(kids) > 0 {
			cp.Children = make(map[string]*SpanStats, len(kids))
			for _, k := range kids {
				cp.Children[k.Name] = k
			}
		}
		out = append(out, &cp)
	}
	return out
}
