package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// RuntimeSampler folds the Go runtime's own telemetry (runtime/metrics)
// into registry gauges on a ticker, so a scrape of /metrics — or the
// exit snapshot — answers "is this process healthy" without attaching a
// profiler: live goroutine count, heap footprint, GC cycle count, and
// streaming quantiles of GC pause and scheduler latency.
//
// The sampler is driven either by its own time.Ticker (Start) or by an
// injected tick channel (Run), which is how tests make it
// deterministic. Each tick costs one metrics.Read over a fixed sample
// set — a few microseconds, irrelevant at multi-second intervals.
type RuntimeSampler struct {
	reg      *Registry
	samples  []metrics.Sample
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	running  atomic.Bool
}

// DefaultRuntimeSampleInterval is the sampling period RunSession uses:
// frequent enough for a 60s-window scraper, cheap enough to be
// unconditional.
const DefaultRuntimeSampleInterval = 5 * time.Second

// runtimeSampleSet maps the runtime/metrics names the sampler reads to
// the registry gauge each feeds. Histogram-kind metrics fan out into
// p50/p99 gauges (microseconds) instead.
var runtimeSampleSet = []struct {
	metric string
	gauge  string // base gauge name; histogram kinds append _p50_us/_p99_us
}{
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_objects_bytes"},
	{"/memory/classes/total:bytes", "runtime.memory_total_bytes"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles"},
	{"/gc/pauses:seconds", "runtime.gc_pause"},
	{"/sched/latencies:seconds", "runtime.sched_latency"},
}

// NewRuntimeSampler returns a sampler feeding this registry. It reads
// nothing until Sample, Start or Run is called.
func (r *Registry) NewRuntimeSampler() *RuntimeSampler {
	s := &RuntimeSampler{
		reg:  r,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, m := range runtimeSampleSet {
		s.samples = append(s.samples, metrics.Sample{Name: m.metric})
	}
	return s
}

// Sample reads the runtime metric set once and stores the values on the
// registry's gauges (no-op while the registry is disabled).
func (s *RuntimeSampler) Sample() {
	if !s.reg.enabled.Load() {
		return
	}
	metrics.Read(s.samples)
	for i, m := range runtimeSampleSet {
		v := s.samples[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			u := v.Uint64()
			if u > math.MaxInt64 {
				u = math.MaxInt64
			}
			s.reg.Gauge(m.gauge).Set(int64(u))
		case metrics.KindFloat64:
			s.reg.Gauge(m.gauge).Set(int64(v.Float64()))
		case metrics.KindFloat64Histogram:
			h := v.Float64Histogram()
			s.reg.Gauge(m.gauge + "_p50_us").Set(int64(histQuantile(h, 0.50) * 1e6))
			s.reg.Gauge(m.gauge + "_p99_us").Set(int64(histQuantile(h, 0.99) * 1e6))
		default:
			// KindBad: the metric does not exist in this Go version.
			// Skipping keeps the sampler forward- and backward-portable.
		}
	}
}

// histQuantile estimates the q-quantile of a runtime cumulative bucket
// histogram, interpolating inside the selected bucket. Unbounded edge
// buckets fall back to their finite boundary.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum <= target {
			continue
		}
		// Bucket i spans Buckets[i] .. Buckets[i+1].
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			return hi
		}
		if math.IsInf(hi, +1) {
			return lo
		}
		// Linear interpolation by rank within the bucket.
		rankInBucket := float64(target-(cum-c)) + 0.5
		return lo + (hi-lo)*rankInBucket/float64(c)
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Start launches the sampler on its own ticker, taking one synchronous
// sample first so gauges are populated immediately. Call Stop to end
// it.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	s.Sample()
	tick := time.NewTicker(interval)
	// Marked before the goroutine launches so a Stop racing Start still
	// waits for the loop to exit.
	s.running.Store(true)
	go func() {
		defer tick.Stop()
		s.Run(tick.C)
	}()
}

// Run samples on every tick until Stop is called — the injectable-
// ticker loop Start wraps, and the entry point tests drive with a
// hand-fed channel. Run may be started at most once per sampler.
func (s *RuntimeSampler) Run(ticks <-chan time.Time) {
	s.running.Store(true)
	defer close(s.done)
	for {
		select {
		case <-ticks:
			s.Sample()
		case <-s.stop:
			return
		}
	}
}

// Stop ends the sampling loop (waiting for the loop goroutine to exit,
// so no goroutine leaks past it) and takes one final sample so short
// runs still export runtime gauges. Idempotent, and safe without a
// prior Start/Run — then it only samples.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.running.Load() {
		<-s.done
	}
	s.Sample()
}
