package obs

import (
	"sync"

	"jobgraph/internal/stats"
)

// Histogram summarizes a stream of observations in O(1) memory:
// count/mean/min/max via stats.Accumulator and streaming quantile
// estimates (p50/p90/p99) via the P² estimators in internal/stats.
// It is safe for concurrent use; Observe takes a mutex, so use
// histograms for per-stage or per-item observations, not per-element
// inner loops (use a Counter there).
type Histogram struct {
	reg *Registry
	mu  sync.Mutex
	acc stats.Accumulator
	p50 *stats.P2Quantile
	p90 *stats.P2Quantile
	p99 *stats.P2Quantile
}

func newHistogram(r *Registry) *Histogram {
	h := &Histogram{reg: r}
	h.reset()
	return h
}

func (h *Histogram) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.acc = stats.Accumulator{}
	// The probabilities are compile-time valid; errors are impossible.
	h.p50, _ = stats.NewP2Quantile(0.50)
	h.p90, _ = stats.NewP2Quantile(0.90)
	h.p99, _ = stats.NewP2Quantile(0.99)
}

// Observe folds one observation into the histogram (no-op while the
// registry is disabled).
func (h *Histogram) Observe(x float64) {
	if !h.reg.enabled.Load() {
		return
	}
	h.mu.Lock()
	h.acc.Add(x)
	h.p50.Add(x)
	h.p90.Add(x)
	h.p99.Add(x)
	h.mu.Unlock()
}

// HistogramSnapshot is the exported summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// snapshot captures the histogram's current summary.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: int64(h.acc.N()),
		Mean:  h.acc.Mean(),
		Min:   h.acc.Min(),
		Max:   h.acc.Max(),
		P50:   h.p50.Value(),
		P90:   h.p90.Value(),
		P99:   h.p99.Value(),
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(h.acc.N())
}

// Quantile returns the streaming estimate for p ∈ {0.5, 0.9, 0.99};
// other probabilities return the nearest tracked estimate's bound —
// callers needing arbitrary quantiles should buffer and use
// stats.Quantile instead.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case p <= 0.5:
		return h.p50.Value()
	case p <= 0.9:
		return h.p90.Value()
	default:
		return h.p99.Value()
	}
}
