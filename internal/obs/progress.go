package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// ProgressSchema identifies the /progress JSON layout; bump on breaking
// changes so scrapers can dispatch.
const ProgressSchema = "jobgraph-progress/v1"

// StageState is a pipeline stage's live execution state.
type StageState string

const (
	// StageRunning marks a stage currently executing.
	StageRunning StageState = "running"
	// StageDone marks a stage that completed by computing its artifact.
	StageDone StageState = "done"
	// StageCached marks a stage satisfied from the artifact cache.
	StageCached StageState = "cached"
	// StageFailed marks a stage that returned an error.
	StageFailed StageState = "failed"
)

// StageProgress is one stage's entry in the live progress report.
type StageProgress struct {
	Name      string     `json:"name"`
	State     StageState `json:"state"`
	StartedAt time.Time  `json:"started_at"`
	// DurationMs is the stage's wall time once finished; for a running
	// stage it is the time elapsed so far at snapshot time.
	DurationMs float64 `json:"duration_ms"`
}

// Progress tracks per-stage execution state for a live observer: the
// engine marks stages running/cached/done/failed as it executes a plan,
// and the debug server serves the current list as JSON at /progress —
// the "where is my 4M-job ingest" answer that metrics.json (written at
// exit) cannot give. Times are read from the registry clock, so tests
// drive it deterministically.
type Progress struct {
	reg *Registry

	mu     sync.Mutex
	order  []string
	stages map[string]*StageProgress
}

// Progress returns the registry's stage-progress tracker, creating it
// on first use.
func (r *Registry) Progress() *Progress {
	r.progressOnce.Do(func() {
		r.progress = &Progress{reg: r, stages: make(map[string]*StageProgress)}
	})
	return r.progress
}

// StageStarted marks a stage as running (no-op while the registry is
// disabled). Restarting a stage (a second plan execution in the same
// process) resets its entry.
func (p *Progress) StageStarted(name string) {
	if p == nil || !p.reg.enabled.Load() {
		return
	}
	now := p.reg.now()
	p.mu.Lock()
	sp, ok := p.stages[name]
	if !ok {
		sp = &StageProgress{Name: name}
		p.stages[name] = sp
		p.order = append(p.order, name)
	}
	sp.State = StageRunning
	sp.StartedAt = now
	sp.DurationMs = 0
	p.mu.Unlock()
	if o := p.reg.observerFor(); o != nil {
		o.StageChanged(name, StageRunning, now)
	}
}

// StageFinished records a stage's terminal state and wall time (no-op
// while the registry is disabled). A stage never marked started (e.g. a
// cache hit) gains an entry with StartedAt = now.
func (p *Progress) StageFinished(name string, state StageState, d time.Duration) {
	if p == nil || !p.reg.enabled.Load() {
		return
	}
	now := p.reg.now()
	p.mu.Lock()
	sp, ok := p.stages[name]
	if !ok {
		sp = &StageProgress{Name: name, StartedAt: now}
		p.stages[name] = sp
		p.order = append(p.order, name)
	}
	sp.State = state
	sp.DurationMs = float64(d) / float64(time.Millisecond)
	p.mu.Unlock()
	if o := p.reg.observerFor(); o != nil {
		o.StageChanged(name, state, now)
	}
}

// Reset clears every stage entry (a new run starts clean).
func (p *Progress) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.order = p.order[:0]
	p.stages = make(map[string]*StageProgress)
	p.mu.Unlock()
}

// Snapshot returns the stages in first-started order. Running stages
// report their elapsed time so far.
func (p *Progress) Snapshot() []StageProgress {
	if p == nil {
		return nil
	}
	now := p.reg.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageProgress, 0, len(p.order))
	for _, name := range p.order {
		sp := *p.stages[name]
		if sp.State == StageRunning {
			sp.DurationMs = float64(now.Sub(sp.StartedAt)) / float64(time.Millisecond)
		}
		out = append(out, sp)
	}
	return out
}

// ProgressReport is the JSON document served at /progress. Exemplars
// (the slowest items seen so far, keyed by stage) are additive and
// omitted when none were recorded, so v1 consumers are unaffected.
type ProgressReport struct {
	Schema    string                `json:"schema"`
	Stages    []StageProgress       `json:"stages"`
	Exemplars map[string][]Exemplar `json:"exemplars,omitempty"`
}

// ProgressHandler serves the registry's live stage progress as JSON —
// mounted at /progress on the debug server.
func (r *Registry) ProgressHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rep := ProgressReport{
			Schema:    ProgressSchema,
			Stages:    r.Progress().Snapshot(),
			Exemplars: r.Exemplars(),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encode errors here are broken client connections, not state
		// corruption; nothing useful to do with them.
		_ = enc.Encode(rep)
	})
}
