package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"jobgraph/internal/wl"
)

// testANNIndex builds a small index whose corpus is the training jobs'
// DAGs (embedded with the default hashed WL options).
func testANNIndex(t *testing.T) *wl.ANNIndex {
	t.Helper()
	_, jobs := testModel(t)
	ix, err := wl.NewANNIndex(wl.DefaultOptions(), wl.SketchOptions{Hashes: 32, Bands: 32, Buckets: 1 << 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		g, err := (&Server{}).buildGraph(job.Name, job.Tasks)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.AddGraph(g); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func getJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, data)
		}
	}
	return resp, data
}

func TestSimilarEndpoint(t *testing.T) {
	ix := testANNIndex(t)
	_, ts := newTestServer(t, func(c *Config) { c.ANN = ix })
	_, jobs := testModel(t)

	var out SimilarResponse
	resp, body := getJSON(t, ts.URL+"/v1/similar/"+jobs[0].Name+"?k=3", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Schema != SimilarSchema || out.Job != jobs[0].Name || out.K != 3 {
		t.Fatalf("payload %+v", out)
	}
	if len(out.Hits) > 3 {
		t.Fatalf("%d hits for k=3", len(out.Hits))
	}
	for _, h := range out.Hits {
		if h.Job == jobs[0].Name {
			t.Fatal("similar returned the query job")
		}
	}

	// Unknown job: 404. Bad k: 400.
	if resp, _ := getJSON(t, ts.URL+"/v1/similar/definitely-not-a-job", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/similar/"+jobs[0].Name+"?k=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k status %d", resp.StatusCode)
	}

	// Stats surfaces the corpus size.
	var st Stats
	if resp, body := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, body)
	}
	if st.IndexedJobs != ix.Len() {
		t.Fatalf("stats indexed_jobs %d, want %d", st.IndexedJobs, ix.Len())
	}
}

func TestSimilarUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := getJSON(t, ts.URL+"/v1/similar/anything", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
	var st Stats
	if _, err := http.Get(ts.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.IndexedJobs != 0 {
		t.Fatalf("indexed_jobs %d without an index", st.IndexedJobs)
	}
}

func TestSimilarHotSwap(t *testing.T) {
	ix := testANNIndex(t)
	s, ts := newTestServer(t, nil)
	_, jobs := testModel(t)

	// Starts unconfigured, becomes available after a swap — the reload
	// path's observable effect without retraining a model.
	if resp, _ := getJSON(t, ts.URL+"/v1/similar/"+jobs[0].Name, nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("pre-swap status %d, want 501", resp.StatusCode)
	}
	s.SwapANN(ix)
	var out SimilarResponse
	if resp, body := getJSON(t, ts.URL+"/v1/similar/"+jobs[0].Name, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap status %d: %s", resp.StatusCode, body)
	}
	if out.K != defaultSimilarK {
		t.Fatalf("default k = %d, want %d", out.K, defaultSimilarK)
	}
}
