// Package client is the retrying HTTP client for the jobgraphd serving
// API. The daemon sheds load honestly — 429 + Retry-After on a full
// admission queue, 503 while draining — and this client is the other
// half of that contract: jittered exponential backoff that honors
// Retry-After, retries transient transport failures, and gives up only
// when the caller's context does.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config parameterizes a Client. The zero value plus a Base URL works.
type Config struct {
	// Base is the daemon's root URL, e.g. "http://localhost:8847".
	Base string
	// HTTP is the underlying client (default: a 30s-timeout client).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, first attempt included
	// (default 8; the caller's context can cut retries short anytime).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); each retry
	// doubles it up to MaxDelay (default 5s). A server Retry-After
	// overrides the computed delay when longer.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the jitter deterministic for tests (0: seeded from the
	// clock).
	Seed int64
}

// Client issues requests against a jobgraphd with retry-on-backpressure
// semantics. Safe for concurrent use.
type Client struct {
	cfg  Config
	base string

	mu  sync.Mutex
	rng *rand.Rand
}

// StatusError is a terminal non-2xx response (one this client will not
// retry, or the last attempt's failure).
type StatusError struct {
	Status int
	Body   string

	// retryAfter carries the server's Retry-After through the retry
	// loop between attempts.
	retryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// New builds a Client for the daemon at cfg.Base.
func New(cfg Config) (*Client, error) {
	if cfg.Base == "" {
		return nil, fmt.Errorf("client: Base URL required")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(cfg.Base, "/"),
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// retryable reports whether a status code is worth another attempt:
// explicit backpressure (429), drain/overload (503), and transient
// gateway failures (502, 504).
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the sleep before attempt n (0-based): jittered
// exponential, floored by the server's Retry-After when present.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseDelay << attempt
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	// Full jitter in [d/2, d): desynchronizes a fleet of retriers so a
	// saturated queue is not immediately re-saturated in lockstep.
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// parseRetryAfter reads a Retry-After header (seconds form only — the
// daemon never sends HTTP dates).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do POSTs (or GETs, when body is nil and method says so) JSON to path,
// decodes a 2xx response into out (unless nil), and retries transport
// errors and retryable statuses with jittered exponential backoff until
// MaxAttempts or ctx expiry. The request body is re-marshaled cheaply
// per attempt from the already-encoded bytes.
func (c *Client) Do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			var ra time.Duration
			var se *StatusError
			if errors.As(lastErr, &se) {
				ra = se.retryAfter
			}
			select {
			case <-time.After(c.backoff(attempt-1, ra)):
			case <-ctx.Done():
				return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		var rdr io.Reader
		if payload != nil {
			rdr = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
		if err != nil {
			return fmt.Errorf("client: build request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			continue // transport errors are always retryable
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if readErr != nil {
				lastErr = fmt.Errorf("client: read response: %w", readErr)
				continue
			}
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decode response: %w", err)
			}
			return nil
		case retryable(resp.StatusCode):
			lastErr = &StatusError{
				Status:     resp.StatusCode,
				Body:       string(data),
				retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			}
			continue
		default:
			return &StatusError{Status: resp.StatusCode, Body: string(data)}
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// Post is Do with POST.
func (c *Client) Post(ctx context.Context, path string, body, out any) error {
	return c.Do(ctx, http.MethodPost, path, body, out)
}

// Get is Do with GET and no body.
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.Do(ctx, http.MethodGet, path, nil, out)
}
