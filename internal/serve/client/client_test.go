package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(t *testing.T, base string, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Base:        base,
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Seed:        42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A server that sheds the first N attempts with 429 must eventually see
// the request land, with every attempt carrying the same body.
func TestClientRetries429UntilSuccess(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.Post(context.Background(), "/v1/jobs", map[string]string{"name": "j"}, &out); err != nil {
		t.Fatalf("post: %v", err)
	}
	if !out.OK || attempts.Load() != 4 {
		t.Fatalf("ok=%v attempts=%d", out.OK, attempts.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var first atomic.Int64
	var second atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(0, time.Now().UnixNano()) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		second.Store(time.Now().UnixNano())
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	// BaseDelay 1ms, but Retry-After says 1s: the gap must be >= ~1s.
	c := fastClient(t, ts.URL, nil)
	if err := c.Post(context.Background(), "/x", struct{}{}, nil); err != nil {
		t.Fatalf("post: %v", err)
	}
	gap := time.Duration(second.Load() - first.Load())
	if gap < 900*time.Millisecond {
		t.Fatalf("retried after %v; Retry-After: 1 ignored", gap)
	}
}

func TestClientDoesNotRetryTerminalStatus(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "bad body", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	err := c.Post(context.Background(), "/x", struct{}{}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("400 retried %d times", attempts.Load())
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "always full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, func(c *Config) { c.MaxAttempts = 3 })
	err := c.Post(context.Background(), "/x", struct{}{}, nil)
	if err == nil {
		t.Fatal("expected give-up error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("give-up error should wrap the last StatusError: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", attempts.Load())
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// A listener that closed: every dial fails, and the context cuts the
	// retry loop short.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	base := ts.URL
	ts.Close()

	c := fastClient(t, base, func(c *Config) { c.MaxAttempts = 100; c.MaxDelay = 5 * time.Millisecond })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Post(ctx, "/x", struct{}{}, nil)
	if err == nil {
		t.Fatal("expected error against a dead server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop ignored the context for far too long")
	}
}

func TestClientBackoffGrowsAndJitters(t *testing.T) {
	c := fastClient(t, "http://x", func(c *Config) {
		c.BaseDelay = 10 * time.Millisecond
		c.MaxDelay = 80 * time.Millisecond
	})
	for attempt := 0; attempt < 6; attempt++ {
		d := c.backoff(attempt, 0)
		// Full jitter keeps every delay within [step/2, step], capped.
		step := c.cfg.BaseDelay << attempt
		if step > c.cfg.MaxDelay || step <= 0 {
			step = c.cfg.MaxDelay
		}
		if d < step/2 || d > step {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, step/2, step)
		}
	}
	// Retry-After longer than the computed delay wins.
	if d := c.backoff(0, time.Second); d != time.Second {
		t.Fatalf("Retry-After not honored: %v", d)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty base accepted")
	}
	c, err := New(Config{Base: "http://h/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://h" {
		t.Fatalf("base not trimmed: %q", c.base)
	}
}
