// Package serve is the streaming classification daemon behind
// cmd/jobgraphd: an HTTP/JSON API that accepts trace rows or whole
// jobs, assembles DAGs incrementally as tasks arrive, and classifies
// each completed job against a precomputed core.Model (WL dictionary +
// group centroids), hot-swappable via an atomic pointer.
//
// The serving plane is engineered failure-first:
//
//   - Admission is a bounded batcher (batcher.go): a full queue is an
//     immediate 429 + Retry-After, never unbounded growth.
//   - Every accepted mutation is journaled (journal.go) with one fsync
//     per batch before it is acknowledged; a crashed daemon replays the
//     journal at boot and classifies every accepted job exactly once.
//   - Per-request deadlines propagate through context into assembly
//     and classification.
//   - Drain stops admission, flushes in-flight batches, compacts the
//     journal to the still-pending rows, and exits cleanly.
//   - The batcher loop and classify pool carry obs heartbeats, so the
//     flight-recorder watchdog covers a wedged daemon.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jobgraph/internal/conflate"
	"jobgraph/internal/core"
	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/promexport"
	"jobgraph/internal/trace"
	"jobgraph/internal/wl"
)

// Config parameterizes a Server.
type Config struct {
	// Model is the initial classification model (required).
	Model *core.Model
	// Reload, when non-nil, builds a replacement model for POST
	// /model/reload. It runs outside the admission path; classification
	// continues against the old model until the swap.
	Reload func(ctx context.Context) (*core.Model, error)
	// ANN, when non-nil, serves GET /v1/similar/{job}: approximate
	// top-k similarity over the indexed corpus. Absent, the endpoint
	// answers 501.
	ANN *wl.ANNIndex
	// ReloadANN, when non-nil, builds a replacement ANN index during
	// POST /model/reload so the similarity corpus swaps atomically with
	// the model it was trained beside.
	ReloadANN func(ctx context.Context) (*wl.ANNIndex, error)
	// JournalPath enables the crash-safe admission journal. Empty runs
	// journal-less (accepted-but-unclassified work dies with the
	// process — tests and throwaway runs only).
	JournalPath string
	// RequestTimeout bounds each request's admission + classification
	// (0: no per-request deadline beyond the client's).
	RequestTimeout time.Duration
	// Workers bounds classification parallelism within a flushed batch
	// (<=0: GOMAXPROCS).
	Workers int
	// Batch configures the admission batcher.
	Batch BatcherConfig
	// Registry defaults to obs.Default(); Logger to the registry's.
	Registry *obs.Registry
	Logger   *slog.Logger
}

// pendingJob is a job mid-assembly: rows accepted, completion not yet
// requested. Touched only from the batcher's flush goroutine and boot
// replay — never concurrently.
type pendingJob struct {
	rows []trace.TaskRecord
}

// Result is one classification outcome.
type Result struct {
	Job   string  `json:"job"`
	Group string  `json:"group"`
	Score float64 `json:"score"`
	// Size is the classified DAG's node count.
	Size int `json:"size"`
	// Predicted demand from the group profile.
	MeanInstances float64 `json:"mean_instances"`
	MeanPlanCPU   float64 `json:"mean_plan_cpu"`
	MeanDuration  float64 `json:"mean_duration_s"`
	// Replayed marks results produced by journal replay after a crash.
	Replayed bool `json:"replayed,omitempty"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Schema          string `json:"schema"`
	Pending         int    `json:"pending_jobs"`
	Classified      int64  `json:"classified"`
	AcceptedRows    int64  `json:"accepted_rows"`
	RejectedFull    int64  `json:"rejected_queue_full"`
	ReplayedRecords int64  `json:"replayed_records"`
	ReplayClassify  int64  `json:"replay_classified"`
	ReplaySkipped   int64  `json:"replay_skipped"`
	JournalTruncate bool   `json:"journal_tail_truncated"`
	ModelGroups     int    `json:"model_groups"`
	ModelTrainedOn  int    `json:"model_trained_on"`
	ModelLoadedAt   string `json:"model_loaded_at"`
	// IndexedJobs is the ANN similarity corpus size (0: no index).
	IndexedJobs int `json:"indexed_jobs"`
}

// StatsSchema versions the /v1/stats payload.
const StatsSchema = "jobgraph-serve-stats/v1"

// Server is the daemon state. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	lg      *slog.Logger
	model   atomic.Pointer[core.Model]
	ann     atomic.Pointer[wl.ANNIndex] // nil-able: similarity unconfigured
	loaded  atomic.Int64                // unix nano of the last model swap
	batcher *Batcher
	journal *Journal // nil when journal-less

	// pending is owned by the flush goroutine after boot.
	pending map[string]*pendingJob
	// classified remembers journaled results so a crash-replay never
	// classifies a job twice. Bounded by journal compaction at drain.
	classified map[string]Result

	replayed        []Result
	replayedRecords int64
	journalTrunc    bool

	mu       sync.Mutex // guards reload (one at a time)
	draining atomic.Bool

	// Instruments.
	cAccepted   *obs.Counter
	cClassified *obs.Counter
	cRejected   *obs.Counter
	cReplayCls  *obs.Counter
	cReplaySkip *obs.Counter
	gPending    *obs.Gauge
	reqRate     *obs.RateCounter
	reqLatency  *obs.WindowHistogram
}

// Request bodies.
type rowsRequest struct {
	Rows []trace.TaskRecord `json:"rows"`
}
type completeRequest struct {
	Job string `json:"job"`
}
type jobRequest struct {
	Name  string             `json:"name"`
	Tasks []trace.TaskRecord `json:"tasks"`
}

// Batcher op payloads.
type rowsOp struct{ rows []trace.TaskRecord }
type completeOp struct{ job string }
type jobOp struct {
	name  string
	tasks []trace.TaskRecord
}

// rowsAccepted is the response to a rowsOp.
type rowsAccepted struct {
	Accepted int      `json:"accepted"`
	Jobs     []string `json:"jobs"`
}

// errNotFound marks a complete request for a job with no pending rows.
var errNotFound = errors.New("serve: no pending rows for job")

// New builds the server: opens and replays the journal, classifies
// every job the crash left accepted-but-unclassified (exactly once),
// and starts the admission batcher.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("serve: Config.Model is required")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Logger == nil {
		cfg.Logger = cfg.Registry.Logger()
	}
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		lg:         cfg.Logger,
		pending:    make(map[string]*pendingJob),
		classified: make(map[string]Result),

		cAccepted:   cfg.Registry.Counter("serve.rows_accepted"),
		cClassified: cfg.Registry.Counter("serve.jobs_classified"),
		cRejected:   cfg.Registry.Counter("serve.rejected_queue_full"),
		cReplayCls:  cfg.Registry.Counter("serve.replay.classified"),
		cReplaySkip: cfg.Registry.Counter("serve.replay.skipped"),
		gPending:    cfg.Registry.Gauge("serve.pending_jobs"),
		reqRate:     cfg.Registry.RateCounter("serve.requests", time.Minute),
		reqLatency:  cfg.Registry.WindowHistogram("serve.request_ms", time.Minute),
	}
	s.model.Store(cfg.Model)
	if cfg.ANN != nil {
		cfg.ANN.Build() // freeze LSH tables before concurrent queries
		s.ann.Store(cfg.ANN)
	}
	s.loaded.Store(time.Now().UnixNano())

	if cfg.JournalPath != "" {
		j, records, truncated, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.journalTrunc = truncated
		if truncated {
			s.lg.Warn("journal tail was damaged and truncated", "path", cfg.JournalPath)
		}
		if err := s.replay(records); err != nil {
			j.Close()
			return nil, err
		}
	}

	cfg.Batch.Registry = cfg.Registry
	s.batcher = newBatcher(cfg.Batch, s.flush)
	return s, nil
}

// replay rebuilds pending/classified state from journal records and
// closes the crash window: every job with an OpComplete but no OpResult
// is classified now, and the result journaled, so an acknowledged
// admission survives any number of kill -9s with exactly-once results.
func (s *Server) replay(records []Record) error {
	s.replayedRecords = int64(len(records))
	type openJob struct {
		rows     []trace.TaskRecord
		complete bool
	}
	jobs := make(map[string]*openJob)
	order := []string{}
	for _, rec := range records {
		switch rec.Op {
		case OpRow:
			if rec.Row == nil {
				continue
			}
			oj := jobs[rec.Job]
			if oj == nil {
				oj = &openJob{}
				jobs[rec.Job] = oj
				order = append(order, rec.Job)
			}
			oj.rows = append(oj.rows, *rec.Row)
		case OpComplete:
			if oj := jobs[rec.Job]; oj != nil {
				oj.complete = true
			}
		case OpResult:
			s.classified[rec.Job] = Result{Job: rec.Job, Group: rec.Group, Score: rec.Score}
			delete(jobs, rec.Job)
		}
	}
	for _, name := range order {
		oj, ok := jobs[name]
		if !ok { // resolved by a later OpResult
			s.cReplaySkip.Add(1)
			continue
		}
		if !oj.complete {
			s.pending[name] = &pendingJob{rows: oj.rows}
			continue
		}
		res, err := s.classify(context.Background(), name, oj.rows)
		if err != nil {
			// A job the old process accepted but this model cannot
			// classify must not wedge boot; surface and move on.
			s.lg.Warn("replay: classification failed", "job", name, "err", err)
			continue
		}
		res.Replayed = true
		if err := s.journalResult(res); err != nil {
			return err
		}
		s.classified[name] = res
		s.replayed = append(s.replayed, res)
		s.cReplayCls.Add(1)
		s.lg.Info("replay: classified in-flight job", "job", name, "group", res.Group)
	}
	s.gPending.Set(int64(len(s.pending)))
	return nil
}

// journalResult appends and syncs one result record (replay path).
func (s *Server) journalResult(res Result) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(Record{
		Op: OpResult, Seq: s.journal.NextSeq(), Job: res.Job,
		Group: res.Group, Score: res.Score,
	}); err != nil {
		return err
	}
	return s.journal.Sync()
}

// Replayed returns the results produced by boot-time journal replay.
func (s *Server) Replayed() []Result { return s.replayed }

// buildGraph assembles a job's accepted rows into the classification
// representation: a dependency DAG, node-conflated when the model was
// trained on conflated graphs.
func (s *Server) buildGraph(name string, rows []trace.TaskRecord) (*dag.Graph, error) {
	specs := make([]dag.TaskSpec, 0, len(rows))
	for _, t := range rows {
		specs = append(specs, dag.TaskSpec{
			Name:      t.TaskName,
			Duration:  t.Duration(),
			Instances: t.InstanceNum,
			PlanCPU:   t.PlanCPU,
			PlanMem:   t.PlanMem,
		})
	}
	built, err := dag.FromTasks(name, specs, dag.BuildOptions{SkipMissingDeps: true})
	if err != nil {
		return nil, fmt.Errorf("serve: building DAG for %s: %w", name, err)
	}
	g := built.Graph
	if m := s.model.Load(); m != nil && m.Conflate {
		return conflateGraph(g)
	}
	return g, nil
}

// classify assembles and scores one job against the current model.
// Safe from any goroutine: the model pointer is read once and the
// model itself is immutable.
func (s *Server) classify(ctx context.Context, name string, rows []trace.TaskRecord) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m := s.model.Load()
	g, err := s.buildGraph(name, rows)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	mg, score, err := m.Classify(g)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Job:           name,
		Group:         mg.Name,
		Score:         score,
		Size:          g.Size(),
		MeanInstances: mg.MeanInstances,
		MeanPlanCPU:   mg.MeanPlanCPU,
		MeanDuration:  mg.MeanDuration,
	}, nil
}

// flush processes one admission batch: journal every accepted mutation
// with a single group-commit fsync, assemble pending jobs, classify
// completed ones across the worker pool, journal the results (second
// group commit), and respond.
func (s *Server) flush(batch []*op) {
	hb := s.reg.Heartbeat("serve.workers")
	hb.Beat()
	// Active only while a flush runs: between batches the pool is
	// quiescent and silence must not look like a stall to the watchdog.
	defer hb.Done()

	type classifyItem struct {
		o    *op
		name string
		rows []trace.TaskRecord
		res  Result
		err  error
	}
	var classifies []*classifyItem
	var live []*op

	// Admission: reject dead requests, journal the rest.
	for _, o := range batch {
		if err := o.ctx.Err(); err != nil {
			o.respond(nil, err)
			continue
		}
		live = append(live, o)
	}
	if s.journal != nil {
		journalErr := func() error {
			for _, o := range live {
				switch req := o.req.(type) {
				case rowsOp:
					for i := range req.rows {
						r := req.rows[i]
						if err := s.journal.Append(Record{
							Op: OpRow, Seq: s.journal.NextSeq(),
							Job: r.JobName, Row: &r,
						}); err != nil {
							return err
						}
					}
				case jobOp:
					for i := range req.tasks {
						r := req.tasks[i]
						r.JobName = req.name
						if err := s.journal.Append(Record{
							Op: OpRow, Seq: s.journal.NextSeq(),
							Job: req.name, Row: &r,
						}); err != nil {
							return err
						}
					}
					if err := s.journal.Append(Record{
						Op: OpComplete, Seq: s.journal.NextSeq(), Job: req.name,
					}); err != nil {
						return err
					}
				case completeOp:
					if err := s.journal.Append(Record{
						Op: OpComplete, Seq: s.journal.NextSeq(), Job: req.job,
					}); err != nil {
						return err
					}
				}
			}
			return s.journal.Sync() // one fsync for the whole batch
		}()
		if journalErr != nil {
			s.lg.Error("journal append failed; rejecting batch", "err", journalErr)
			for _, o := range live {
				o.respond(nil, fmt.Errorf("serve: journal: %w", journalErr))
			}
			return
		}
	}

	// Assembly: mutate pending state serially (this goroutine owns it).
	for _, o := range live {
		switch req := o.req.(type) {
		case rowsOp:
			seen := map[string]bool{}
			var jobs []string
			for _, r := range req.rows {
				pj := s.pending[r.JobName]
				if pj == nil {
					pj = &pendingJob{}
					s.pending[r.JobName] = pj
				}
				pj.rows = append(pj.rows, r)
				if !seen[r.JobName] {
					seen[r.JobName] = true
					jobs = append(jobs, r.JobName)
				}
			}
			sort.Strings(jobs)
			s.cAccepted.Add(int64(len(req.rows)))
			o.respond(rowsAccepted{Accepted: len(req.rows), Jobs: jobs}, nil)
		case jobOp:
			rows := make([]trace.TaskRecord, 0, len(req.tasks))
			for _, t := range req.tasks {
				t.JobName = req.name
				rows = append(rows, t)
			}
			s.cAccepted.Add(int64(len(rows)))
			classifies = append(classifies, &classifyItem{o: o, name: req.name, rows: rows})
		case completeOp:
			if res, ok := s.classified[req.job]; ok {
				// Idempotent completion: already classified (possibly by
				// a pre-crash process) — return the recorded result.
				o.respond(res, nil)
				continue
			}
			pj := s.pending[req.job]
			if pj == nil {
				o.respond(nil, fmt.Errorf("%w: %s", errNotFound, req.job))
				continue
			}
			delete(s.pending, req.job)
			classifies = append(classifies, &classifyItem{o: o, name: req.job, rows: pj.rows})
		default:
			o.respond(nil, fmt.Errorf("serve: unknown op %T", o.req))
		}
	}
	s.gPending.Set(int64(len(s.pending)))

	// Classification: independent per job, fanned across the pool.
	if len(classifies) > 0 {
		workers := s.cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(classifies) {
			workers = len(classifies)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					it := classifies[i]
					it.res, it.err = s.classify(it.o.ctx, it.name, it.rows)
					hb.Beat()
				}
			}()
		}
		for i := range classifies {
			idx <- i
		}
		close(idx)
		wg.Wait()

		// Results journal + respond (second group commit).
		var syncErr error
		if s.journal != nil {
			for _, it := range classifies {
				if it.err != nil {
					continue
				}
				if err := s.journal.Append(Record{
					Op: OpResult, Seq: s.journal.NextSeq(), Job: it.name,
					Group: it.res.Group, Score: it.res.Score,
				}); err != nil {
					syncErr = err
					break
				}
			}
			if syncErr == nil {
				syncErr = s.journal.Sync()
			}
		}
		for _, it := range classifies {
			switch {
			case it.err != nil:
				it.o.respond(nil, it.err)
			case syncErr != nil:
				it.o.respond(nil, fmt.Errorf("serve: journal: %w", syncErr))
			default:
				s.classified[it.name] = it.res
				s.cClassified.Add(1)
				it.o.respond(it.res, nil)
			}
		}
	}
}

// conflateGraph mirrors the training pipeline's node conflation so a
// model trained on conflated graphs scores queries in the same
// representation.
func conflateGraph(g *dag.Graph) (*dag.Graph, error) {
	cg, _, err := conflate.Conflate(g)
	return cg, err
}

// Model returns the live model (for tests and introspection).
func (s *Server) Model() *core.Model { return s.model.Load() }

// SwapModel atomically replaces the model; in-flight classifications
// finish against whichever model they loaded.
func (s *Server) SwapModel(m *core.Model) {
	s.model.Store(m)
	s.loaded.Store(time.Now().UnixNano())
	s.reg.Counter("serve.model_reloads").Add(1)
}

// ANN returns the live similarity index (nil when unconfigured).
func (s *Server) ANN() *wl.ANNIndex { return s.ann.Load() }

// SwapANN atomically replaces the similarity index; in-flight queries
// finish against whichever index they loaded. The index is built before
// the swap so no query pays the table-freeze cost.
func (s *Server) SwapANN(ix *wl.ANNIndex) {
	if ix != nil {
		ix.Build()
	}
	s.ann.Store(ix)
	s.reg.Counter("serve.ann_reloads").Add(1)
}

// MarkDraining flips readiness (GET /readyz answers 503) ahead of the
// actual drain, so health checks divert traffic before the listener
// stops accepting.
func (s *Server) MarkDraining() { s.draining.Store(true) }

// Drain performs the graceful shutdown sequence after the HTTP listener
// has stopped accepting: flush the admission queue, compact the journal
// down to the still-pending rows, and close it. Safe to call once.
func (s *Server) Drain() error {
	s.draining.Store(true)
	s.batcher.Close()
	if s.journal == nil {
		return nil
	}
	// The flush goroutine has exited; pending is ours again.
	var recs []Record
	names := make([]string, 0, len(s.pending))
	for name := range s.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i := range s.pending[name].rows {
			r := s.pending[name].rows[i]
			recs = append(recs, Record{Op: OpRow, Seq: s.journal.NextSeq(), Job: name, Row: &r})
		}
	}
	recs = append(recs, Record{Op: OpDrain, Seq: s.journal.NextSeq()})
	if err := s.journal.Compact(recs); err != nil {
		s.journal.Close()
		return err
	}
	s.lg.Info("journal compacted at drain", "pending_jobs", len(names))
	return s.journal.Close()
}

// Stats snapshots the daemon state.
func (s *Server) Stats() Stats {
	m := s.model.Load()
	st := Stats{
		Schema:          StatsSchema,
		Pending:         int(s.gPending.Value()),
		Classified:      s.cClassified.Value(),
		AcceptedRows:    s.cAccepted.Value(),
		RejectedFull:    s.cRejected.Value(),
		ReplayedRecords: s.replayedRecords,
		ReplayClassify:  s.cReplayCls.Value(),
		ReplaySkipped:   s.cReplaySkip.Value(),
		JournalTruncate: s.journalTrunc,
		ModelGroups:     len(m.Groups),
		ModelTrainedOn:  m.TrainedOn,
		ModelLoadedAt:   time.Unix(0, s.loaded.Load()).UTC().Format(time.RFC3339),
	}
	if ix := s.ann.Load(); ix != nil {
		st.IndexedJobs = ix.Len()
	}
	return st
}

// Handler returns the daemon's HTTP mux: the v1 API plus the telemetry
// plane (/metrics Prometheus exposition, /progress, /healthz, /readyz).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rows", s.instrument(s.handleRows))
	mux.HandleFunc("POST /v1/jobs", s.instrument(s.handleJob))
	mux.HandleFunc("POST /v1/complete", s.instrument(s.handleComplete))
	mux.HandleFunc("POST /model/reload", s.instrument(s.handleReload))
	mux.HandleFunc("GET /v1/similar/{job}", s.instrument(s.handleSimilar))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", promexport.Handler(s.reg))
	mux.Handle("GET /progress", s.reg.ProgressHandler())
	return mux
}

// instrument wraps a handler with the request rate/latency instruments
// and the per-request deadline.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.reqRate.Add(1)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
		s.reqLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

// submit runs one op through the batcher and maps transport errors to
// HTTP statuses. Returns (nil, true) if it already wrote a response.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, req any) (any, bool) {
	v, err := s.batcher.Submit(r.Context(), req)
	switch {
	case err == nil:
		return v, false
	case errors.Is(err, ErrQueueFull):
		s.cRejected.Add(1)
		w.Header().Set("Retry-After", retryAfter(s.batcher.MaxWait()))
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, errNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	return nil, true
}

// retryAfter renders a Retry-After value (whole seconds, minimum 1) a
// client should back off by when the queue is full: one max-wait flush
// interval is when capacity reappears.
func retryAfter(maxWait time.Duration) string {
	secs := int64(math.Ceil(maxWait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	var body rowsRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Rows) == 0 {
		http.Error(w, "no rows", http.StatusBadRequest)
		return
	}
	for i, row := range body.Rows {
		if row.JobName == "" {
			http.Error(w, fmt.Sprintf("row %d: empty job name", i), http.StatusBadRequest)
			return
		}
	}
	v, done := s.submit(w, r, rowsOp{rows: body.Rows})
	if done {
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var body jobRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Name == "" || len(body.Tasks) == 0 {
		http.Error(w, "job name and tasks required", http.StatusBadRequest)
		return
	}
	v, done := s.submit(w, r, jobOp{name: body.Name, tasks: body.Tasks})
	if done {
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var body completeRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Job == "" {
		http.Error(w, "job required", http.StatusBadRequest)
		return
	}
	v, done := s.submit(w, r, completeOp{job: body.Job})
	if done {
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// SimilarSchema versions the /v1/similar payload.
const SimilarSchema = "jobgraph-similar/v1"

// SimilarHit is one approximate nearest neighbour.
type SimilarHit struct {
	Job        string  `json:"job"`
	Similarity float64 `json:"similarity"`
}

// SimilarResponse is the GET /v1/similar/{job} payload.
type SimilarResponse struct {
	Schema string       `json:"schema"`
	Job    string       `json:"job"`
	K      int          `json:"k"`
	Hits   []SimilarHit `json:"hits"`
}

// defaultSimilarK is the ?k= default for /v1/similar.
const defaultSimilarK = 10

// handleSimilar answers approximate top-k similarity against the
// hot-swapped ANN index. Reads only the atomic pointer — never the
// admission path — so similarity stays available while a batch drains.
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	ix := s.ann.Load()
	if ix == nil {
		http.Error(w, "no similarity index configured", http.StatusNotImplemented)
		return
	}
	job := r.PathValue("job")
	k := defaultSimilarK
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, fmt.Sprintf("bad k %q", raw), http.StatusBadRequest)
			return
		}
		k = v
	}
	hits, err := ix.QueryJob(job, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	resp := SimilarResponse{Schema: SimilarSchema, Job: job, K: k, Hits: make([]SimilarHit, len(hits))}
	for i, h := range hits {
		resp.Hits[i] = SimilarHit{Job: h.JobID, Similarity: h.Similarity}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Reload == nil {
		http.Error(w, "no reload source configured", http.StatusNotImplemented)
		return
	}
	// One reload at a time; concurrent requests queue here, not in the
	// model builder.
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.cfg.Reload(r.Context())
	if err != nil {
		http.Error(w, fmt.Sprintf("reload: %v", err), http.StatusInternalServerError)
		return
	}
	// Rebuild the similarity index before swapping anything so the
	// model and its corpus change together or not at all.
	var ix *wl.ANNIndex
	if s.cfg.ReloadANN != nil {
		ix, err = s.cfg.ReloadANN(r.Context())
		if err != nil {
			http.Error(w, fmt.Sprintf("reload ann: %v", err), http.StatusInternalServerError)
			return
		}
	}
	s.SwapModel(m)
	indexed := 0
	if ix != nil {
		s.SwapANN(ix)
		indexed = ix.Len()
	}
	s.lg.Info("model reloaded", "groups", len(m.Groups), "trained_on", m.TrainedOn, "indexed_jobs", indexed)
	writeJSON(w, http.StatusOK, map[string]any{
		"groups":       len(m.Groups),
		"trained_on":   m.TrainedOn,
		"built_at":     m.BuiltAt,
		"indexed_jobs": indexed,
	})
}

// maxBody bounds request bodies (a job of 100k tasks is ~20 MB; beyond
// that is abuse, not workload).
const maxBody = 32 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
