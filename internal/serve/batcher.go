// Bounded admission batching: every mutating request enters a fixed-
// depth queue and is flushed by one loop in groups, so the daemon gets
// group-committed journal writes and explicit backpressure instead of
// unbounded goroutine pileup. A full queue fails enqueue immediately
// (the HTTP layer turns that into 429 + Retry-After); nothing in the
// admission path ever grows without bound.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"jobgraph/internal/obs"
)

// Batcher errors, mapped onto HTTP status by the server.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity — the backpressure signal (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining is returned by Submit once shutdown has begun —
	// accepted work still flushes, new work is refused (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// BatcherConfig parameterizes the admission batcher.
type BatcherConfig struct {
	// BatchSize flushes a batch when this many operations are pending.
	BatchSize int
	// MaxWait flushes a non-empty batch this long after its first
	// operation arrived, bounding latency under light load.
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; an enqueue beyond it fails
	// with ErrQueueFull.
	QueueDepth int
	// Registry supplies the heartbeat and clock; defaults to
	// obs.Default().
	Registry *obs.Registry
}

func (c *BatcherConfig) defaults() {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 25 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
}

// op is one queued operation: a request plus the channel its response
// travels back on. done is buffered so a flush can respond after the
// submitter has abandoned the wait (deadline expiry) without leaking.
type op struct {
	ctx  context.Context
	req  any
	done chan opResult
}

type opResult struct {
	v   any
	err error
}

func (o *op) respond(v any, err error) {
	o.done <- opResult{v, err}
}

// Batcher runs the admission loop. Construct with newBatcher, which
// starts the loop; Close drains and stops it.
type Batcher struct {
	cfg   BatcherConfig
	flush func([]*op)

	queue     chan *op
	draining  chan struct{} // closed when Close begins: Submit refuses
	dead      chan struct{} // closed when the loop has fully exited
	stopped   chan struct{} // loop exit signal for Close to wait on
	closeOnce sync.Once
}

// newBatcher starts the admission loop around flush. flush is invoked
// from exactly one goroutine with batches of 1..BatchSize operations
// and must respond to every op it is handed.
func newBatcher(cfg BatcherConfig, flush func([]*op)) *Batcher {
	cfg.defaults()
	b := &Batcher{
		cfg:      cfg,
		flush:    flush,
		queue:    make(chan *op, cfg.QueueDepth),
		draining: make(chan struct{}),
		dead:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit enqueues req and waits for its response. It fails fast with
// ErrQueueFull when the queue is at capacity and ErrDraining during
// shutdown; it returns ctx's error if the deadline expires first (the
// operation may still be processed — journaled work is never undone).
func (b *Batcher) Submit(ctx context.Context, req any) (any, error) {
	select {
	case <-b.draining:
		return nil, ErrDraining
	default:
	}
	o := &op{ctx: ctx, req: req, done: make(chan opResult, 1)}
	select {
	case b.queue <- o:
	default:
		return nil, ErrQueueFull
	}
	select {
	case r := <-o.done:
		return r.v, r.err
	case <-b.dead:
		// The loop exited between our enqueue and its final sweep; the
		// sweep responds ErrDraining to every leftover, so one more
		// receive cannot block.
		select {
		case r := <-o.done:
			return r.v, r.err
		default:
			return nil, ErrDraining
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth reports the configured capacity (for Retry-After sizing).
func (b *Batcher) QueueDepth() int { return b.cfg.QueueDepth }

// MaxWait reports the configured flush latency bound.
func (b *Batcher) MaxWait() time.Duration { return b.cfg.MaxWait }

// run is the admission loop: collect until BatchSize or MaxWait, then
// flush. The loop's heartbeat beats on every arrival and on idle ticks,
// so the stall watchdog distinguishes "no traffic" from "wedged".
func (b *Batcher) run() {
	reg := b.cfg.Registry
	hb := reg.Heartbeat("serve.batcher")
	hb.Beat()
	defer hb.Done()
	defer close(b.stopped)

	idle := time.NewTicker(idleBeat(b.cfg.MaxWait))
	defer idle.Stop()

	var batch []*op
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	doFlush := func() {
		if timerLive {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerLive = false
		}
		if len(batch) > 0 {
			b.flush(batch)
			batch = nil
		}
	}

	for {
		select {
		case o := <-b.queue:
			hb.Beat()
			batch = append(batch, o)
			if len(batch) == 1 {
				timer.Reset(b.cfg.MaxWait)
				timerLive = true
			}
			if len(batch) >= b.cfg.BatchSize {
				doFlush()
			}
		case <-timer.C:
			timerLive = false
			hb.Beat()
			doFlush()
		case <-idle.C:
			hb.Beat()
		case <-b.draining:
			// Shutdown: sweep everything already enqueued into final
			// batches, then refuse the rest.
			doFlush()
			for {
				select {
				case o := <-b.queue:
					batch = append(batch, o)
					if len(batch) >= b.cfg.BatchSize {
						doFlush()
					}
				default:
					doFlush()
					close(b.dead)
					// Final sweep: anything that raced into the queue
					// after the drain loop saw it empty was never
					// journaled — refuse it so the client retries.
					for {
						select {
						case o := <-b.queue:
							o.respond(nil, ErrDraining)
						default:
							return
						}
					}
				}
			}
		}
	}
}

// idleBeat picks the idle heartbeat cadence: frequent enough that any
// plausible -watchdog budget sees a live loop, coarse enough to cost
// nothing.
func idleBeat(maxWait time.Duration) time.Duration {
	d := maxWait
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Close begins the drain: new Submits fail with ErrDraining, operations
// already accepted are flushed, and Close returns when the loop has
// exited. Idempotent and safe to call concurrently.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.draining) })
	<-b.stopped
}
