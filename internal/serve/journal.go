// Crash-safe admission journal: an append-only, length-prefixed,
// checksummed record log of everything the daemon accepted but has not
// yet proven classified. The contract mirrors the PR 3 gzip recovery:
// a power cut or kill -9 may sever the tail mid-record, and the journal
// must come back with every record before the cut and none of the
// garbage after it. Replay turns the surviving records back into the
// daemon's pending state, so an accepted job is classified exactly once
// across any number of crashes.
package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"jobgraph/internal/trace"
)

// JournalSchema is the file header line; bump on layout changes.
const JournalSchema = "jobgraph-journal/v1"

// journalHeader is the exact byte prefix of every journal file.
var journalHeader = []byte(JournalSchema + "\n")

// Journal record operations.
const (
	// OpRow is one accepted task row of a still-assembling job.
	OpRow = "row"
	// OpComplete marks a job's assembly finished: the daemon committed
	// to classifying it. A complete without a matching result is the
	// crash window replay must close.
	OpComplete = "complete"
	// OpResult records a finished classification; its presence makes
	// replay skip the job (exactly-once).
	OpResult = "result"
	// OpDrain marks a clean shutdown; purely informational.
	OpDrain = "drain"
)

// Record is one journal entry.
type Record struct {
	Op  string `json:"op"`
	Seq uint64 `json:"seq"`
	Job string `json:"job,omitempty"`
	// Row carries the accepted task row for OpRow.
	Row *trace.TaskRecord `json:"row,omitempty"`
	// Group/Score carry the classification outcome for OpResult.
	Group string  `json:"group,omitempty"`
	Score float64 `json:"score,omitempty"`
}

// Journal is the open, writable log. Append buffers records; Sync
// flushes and fsyncs — callers group-commit one Sync per admission
// batch rather than one per record. Safe for use from one goroutine
// (the batcher's flush loop) plus Close from the drain path.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bytes.Buffer // pending encoded records since the last Sync
	path string
	seq  uint64 // highest sequence number written or replayed
}

// recordFrame encodes one record as [len u32 LE][crc32 u32 LE][payload].
func recordFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal journal record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record, and truncates any damaged tail so appends
// continue from the last good byte. The returned records are in log
// order; truncated reports whether a damaged tail was cut off.
func OpenJournal(path string) (j *Journal, records []Record, truncated bool, err error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, false, fmt.Errorf("serve: journal dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("serve: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("serve: read journal: %w", err)
	}
	j = &Journal{f: f, w: &bytes.Buffer{}, path: path}

	good := int64(0)
	switch {
	case len(data) == 0:
		// Fresh file: stamp the header now so even an empty journal
		// identifies itself.
		if _, err := f.Write(journalHeader); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("serve: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("serve: sync journal header: %w", err)
		}
		return j, nil, false, nil
	case !bytes.HasPrefix(data, journalHeader):
		// Possibly a torn header write; only an exact prefix of the
		// header is recoverable (rewrite it), anything else is alien.
		if bytes.HasPrefix(journalHeader, data) {
			truncated = true
			good = 0
			break
		}
		f.Close()
		return nil, nil, false, fmt.Errorf("serve: %s is not a %s journal", path, JournalSchema)
	default:
		good = int64(len(journalHeader))
		records, good, truncated = decodeRecords(data, good)
	}

	if truncated || good < int64(len(data)) {
		truncated = true
		if err := f.Truncate(goodOrHeader(good)); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("serve: truncate damaged journal tail: %w", err)
		}
		if good == 0 {
			// The header itself was torn: rewrite it whole.
			if _, err := f.WriteAt(journalHeader, 0); err != nil {
				f.Close()
				return nil, nil, false, fmt.Errorf("serve: rewrite journal header: %w", err)
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("serve: sync truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("serve: seek journal end: %w", err)
	}
	for _, r := range records {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	return j, records, truncated, nil
}

// goodOrHeader keeps at least the header when the log body was all bad.
func goodOrHeader(good int64) int64 {
	if good < int64(len(journalHeader)) {
		return int64(len(journalHeader))
	}
	return good
}

// decodeRecords walks frames from offset off, returning the intact
// records, the offset past the last intact frame, and whether a damaged
// tail was found. Length-prefixed frames cannot be resynchronized after
// damage, so the first bad frame ends the walk — which is exactly the
// torn-tail semantics an fsync'd append-only log needs.
func decodeRecords(data []byte, off int64) ([]Record, int64, bool) {
	var out []Record
	for {
		if off == int64(len(data)) {
			return out, off, false
		}
		if int64(len(data))-off < 8 {
			return out, off, true // torn length/crc prefix
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > int64(len(data)) {
			return out, off, true // torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return out, off, true // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return out, off, true // checksum passed but not a record
		}
		out = append(out, rec)
		off += 8 + n
	}
}

// NextSeq returns the next unused sequence number and advances it.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	return j.seq
}

// Append buffers one record for the next Sync. The record is not
// durable — and must not be acknowledged — until Sync returns.
func (j *Journal) Append(rec Record) error {
	frame, err := recordFrame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	j.w.Write(frame)
	return nil
}

// Sync writes every buffered record and fsyncs the file — the group
// commit that makes a whole admission batch durable with one disk
// round trip.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	if j.w.Len() > 0 {
		if _, err := j.f.Write(j.w.Bytes()); err != nil {
			return fmt.Errorf("serve: journal write: %w", err)
		}
		j.w.Reset()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal fsync: %w", err)
	}
	return nil
}

// Close flushes and closes the file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	cerr := j.f.Close()
	j.f = nil
	if err != nil {
		return err
	}
	return cerr
}

// Compact atomically rewrites the journal to contain only recs —
// typically the rows of still-pending jobs at a clean drain, dropping
// the classified history that replay no longer needs. The sequence
// counter carries over so replayed and fresh records never collide.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("serve: compact temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	buf := &bytes.Buffer{}
	buf.Write(journalHeader)
	for _, rec := range recs {
		frame, err := recordFrame(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		buf.Write(frame)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("serve: compact rename: %w", err)
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: reopen compacted journal: %w", err)
	}
	old.Close()
	j.f = f
	return nil
}
