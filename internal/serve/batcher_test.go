package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jobgraph/internal/obs"
)

// echoFlush responds to every op with its request, recording batches.
type echoFlush struct {
	mu      sync.Mutex
	batches [][]*op
	delay   time.Duration
	block   chan struct{} // when non-nil, flush waits for a receive
}

func (e *echoFlush) flush(batch []*op) {
	if e.block != nil {
		<-e.block
	}
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	e.mu.Lock()
	e.batches = append(e.batches, batch)
	e.mu.Unlock()
	for _, o := range batch {
		o.respond(o.req, nil)
	}
}

func (e *echoFlush) batchCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.batches)
}

func TestBatcherFlushesBySize(t *testing.T) {
	e := &echoFlush{}
	b := newBatcher(BatcherConfig{BatchSize: 4, MaxWait: time.Hour, QueueDepth: 64, Registry: obs.NewRegistry()}, e.flush)
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Submit(context.Background(), i)
			if err != nil || v.(int) != i {
				t.Errorf("submit %d: %v %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	// MaxWait is an hour: the only way these responded is a size flush.
	if e.batchCount() == 0 {
		t.Fatal("no batch flushed")
	}
}

func TestBatcherFlushesByMaxWait(t *testing.T) {
	e := &echoFlush{}
	b := newBatcher(BatcherConfig{BatchSize: 1000, MaxWait: 20 * time.Millisecond, QueueDepth: 64, Registry: obs.NewRegistry()}, e.flush)
	defer b.Close()

	start := time.Now()
	v, err := b.Submit(context.Background(), "solo")
	if err != nil || v.(string) != "solo" {
		t.Fatalf("submit: %v %v", v, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("single op waited %v; MaxWait flush did not fire", d)
	}
}

// waitFor polls cond until it holds or the test deadline hits.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherQueueFull(t *testing.T) {
	// flush blocks on <-e.block until the gate is closed, wedging the
	// loop so the queue genuinely backs up.
	e := &echoFlush{block: make(chan struct{})}
	b := newBatcher(BatcherConfig{BatchSize: 1, MaxWait: time.Hour, QueueDepth: 2, Registry: obs.NewRegistry()}, e.flush)

	results := make(chan error, 3)
	go func() {
		_, err := b.Submit(context.Background(), "wedge")
		results <- err
	}()
	// The loop has picked the op up (queue empty again) and is wedged.
	waitFor(t, "flush to wedge", func() bool { return len(b.queue) == 0 && e.batchCount() == 0 })

	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Submit(context.Background(), "queued")
			results <- err
		}()
	}
	waitFor(t, "queue to fill", func() bool { return len(b.queue) == 2 })

	// Queue (depth 2) full while flush is wedged: overflow bounces fast.
	if _, err := b.Submit(context.Background(), "overflow"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}

	close(e.block) // release the flush; everything accepted completes
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("accepted submit failed: %v", err)
		}
	}
	b.Close()
}

func TestBatcherDrainFlushesAccepted(t *testing.T) {
	e := &echoFlush{delay: 10 * time.Millisecond}
	b := newBatcher(BatcherConfig{BatchSize: 100, MaxWait: time.Hour, QueueDepth: 64, Registry: obs.NewRegistry()}, e.flush)

	var wg sync.WaitGroup
	var ok, drained atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Submit(context.Background(), "v")
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrDraining):
				drained.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the submits enqueue
	b.Close()
	wg.Wait()
	// MaxWait is an hour and BatchSize 100: only the drain sweep can have
	// flushed these.
	if ok.Load() == 0 {
		t.Fatal("drain did not flush accepted operations")
	}
	// After Close, new submits are refused outright.
	if _, err := b.Submit(context.Background(), "late"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
}

func TestBatcherSubmitHonorsContext(t *testing.T) {
	e := &echoFlush{block: make(chan struct{})}
	b := newBatcher(BatcherConfig{BatchSize: 1, MaxWait: time.Hour, QueueDepth: 8, Registry: obs.NewRegistry()}, e.flush)

	// Wedge the flush goroutine so a second submit has to wait.
	go b.Submit(context.Background(), "wedge")
	waitFor(t, "flush to wedge", func() bool { return len(b.queue) == 0 && e.batchCount() == 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.Submit(ctx, "waits")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit under expired deadline: %v", err)
	}

	close(e.block)
	b.Close()
}

func TestBatcherCloseConcurrent(t *testing.T) {
	e := &echoFlush{}
	b := newBatcher(BatcherConfig{Registry: obs.NewRegistry()}, e.flush)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
	}
	wg.Wait()
}
