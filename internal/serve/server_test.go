package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jobgraph/internal/core"
	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

// Training a model is the expensive part of every server test; do it
// once per test binary.
var (
	trainOnce  sync.Once
	trainedM   *core.Model
	trainJobs  []trace.Job
	trainError error
)

func testModel(t *testing.T) (*core.Model, []trace.Job) {
	t.Helper()
	trainOnce.Do(func() {
		jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(1500, 7))
		if err != nil {
			trainError = err
			return
		}
		cfg := core.DefaultConfig(2*8*24*3600, 7)
		cfg.SampleSize = 40
		an, err := core.Run(jobs, cfg)
		if err != nil {
			trainError = err
			return
		}
		m, err := core.ExtractModel(an, cfg.Conflate)
		if err != nil {
			trainError = err
			return
		}
		// Keep only jobs with real dependency structure: generated
		// traces include plenty of all-independent jobs whose DAGs are
		// empty, and the serving tests want non-trivial classifications.
		var withDAGs []trace.Job
		for _, job := range jobs {
			g, err := (&Server{}).buildGraph(job.Name, job.Tasks)
			if err == nil && g.Size() >= 3 {
				withDAGs = append(withDAGs, job)
			}
			if len(withDAGs) >= 32 {
				break
			}
		}
		if len(withDAGs) < 16 {
			trainError = fmt.Errorf("only %d generated jobs have DAGs", len(withDAGs))
			return
		}
		trainedM, trainJobs = m, withDAGs
	})
	if trainError != nil {
		t.Fatalf("training model: %v", trainError)
	}
	return trainedM, trainJobs
}

// newTestServer builds a server on a fresh registry with fast batching.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	m, _ := testModel(t)
	cfg := Config{
		Model:       m,
		JournalPath: filepath.Join(t.TempDir(), "serve.journal"),
		Registry:    obs.NewRegistry(),
		Batch:       BatcherConfig{BatchSize: 8, MaxWait: 5 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServerClassifyWholeJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, jobs := testModel(t)

	job := jobs[0]
	resp, body := postJSON(t, ts.URL+"/v1/jobs", jobRequest{Name: job.Name, Tasks: job.Tasks})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad result JSON: %v: %s", err, body)
	}
	if res.Job != job.Name || res.Group == "" || res.Score < 0 || res.Score > 1 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Size <= 0 {
		t.Fatalf("result lost graph size: %+v", res)
	}
}

func TestServerRowsThenComplete(t *testing.T) {
	s, ts := newTestServer(t, nil)
	_, jobs := testModel(t)
	job := jobs[1]

	// Stream the job's rows in two halves, then complete it.
	half := len(job.Tasks) / 2
	if half == 0 {
		half = len(job.Tasks)
	}
	for _, chunk := range [][]trace.TaskRecord{job.Tasks[:half], job.Tasks[half:]} {
		if len(chunk) == 0 {
			continue
		}
		resp, body := postJSON(t, ts.URL+"/v1/rows", rowsRequest{Rows: chunk})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("rows status %d: %s", resp.StatusCode, body)
		}
		var acc rowsAccepted
		if err := json.Unmarshal(body, &acc); err != nil || acc.Accepted != len(chunk) {
			t.Fatalf("rows ack wrong: %+v (%v): %s", acc, err, body)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/complete", completeRequest{Job: job.Name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil || res.Job != job.Name {
		t.Fatalf("complete result: %+v (%v)", res, err)
	}

	// Completing again is idempotent: same recorded result, not an error.
	resp2, body2 := postJSON(t, ts.URL+"/v1/complete", completeRequest{Job: job.Name})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-complete status %d: %s", resp2.StatusCode, body2)
	}
	var res2 Result
	if err := json.Unmarshal(body2, &res2); err != nil || res2.Group != res.Group || res2.Score != res.Score {
		t.Fatalf("re-complete disagrees: %+v vs %+v", res2, res)
	}

	// Completing a job nobody sent rows for is a 404.
	resp3, _ := postJSON(t, ts.URL+"/v1/complete", completeRequest{Job: "j_never_seen"})
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown complete status %d, want 404", resp3.StatusCode)
	}

	if st := s.Stats(); st.Classified != 1 || st.AcceptedRows != int64(len(job.Tasks)) {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		path string
		body string
	}{
		{"/v1/rows", `{"rows":[]}`},
		{"/v1/rows", `{"rows":[{"TaskName":"t1"}]}`}, // empty job name
		{"/v1/jobs", `{"name":"","tasks":[]}`},
		{"/v1/complete", `{"job":""}`},
		{"/v1/jobs", `{not json`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// Saturating the admission queue must yield 429 + Retry-After, and a
// client that honors it must eventually land every request.
func TestServerBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		// BatchSize 1 serializes flushes (each one classifies), QueueDepth
		// 2 makes the queue trivially saturable by 24 concurrent posts.
		c.Batch = BatcherConfig{BatchSize: 1, MaxWait: time.Millisecond, QueueDepth: 2}
	})
	// On a fast machine the admission loop can classify a tiny job
	// quicker than the HTTP stack delivers the next post, so the queue
	// would never fill. Interpose a batcher whose flush holds the loop
	// long enough that concurrent posts deterministically pile up.
	inner := s.batcher
	s.batcher = newBatcher(inner.cfg, func(ops []*op) {
		time.Sleep(2 * time.Millisecond)
		inner.flush(ops)
	})
	t.Cleanup(inner.Close) // s.Drain closes the wrapper
	_, jobs := testModel(t)
	job := jobs[2]

	const n = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	saw429 := 0
	succeeded := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(jobRequest{Name: fmt.Sprintf("%s-copy%d", job.Name, i), Tasks: job.Tasks})
			for attempt := 0; attempt < 200; attempt++ {
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					succeeded++
					mu.Unlock()
					return
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
						return
					}
					mu.Lock()
					saw429++
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
			t.Error("request never succeeded")
		}(i)
	}
	wg.Wait()
	if succeeded != n {
		t.Fatalf("%d/%d requests succeeded", succeeded, n)
	}
	if saw429 == 0 {
		t.Fatal("queue never saturated: no 429 observed")
	}
	t.Logf("saw %d 429s across %d requests", saw429, n)
}

// Rows accepted but never completed must survive a drain/restart cycle
// via journal compaction, and a job completed before the "crash" (journal
// carries rows+complete but no result) must be classified exactly once
// at boot.
func TestServerDrainAndReplay(t *testing.T) {
	m, jobs := testModel(t)
	dir := t.TempDir()
	jpath := filepath.Join(dir, "serve.journal")
	pendingJob, doneJob := jobs[3], jobs[4]

	cfg := Config{
		Model:       m,
		JournalPath: jpath,
		Registry:    obs.NewRegistry(),
		Batch:       BatcherConfig{BatchSize: 8, MaxWait: 5 * time.Millisecond},
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())

	// pendingJob: rows only. doneJob: classified normally.
	resp, body := postJSON(t, ts.URL+"/v1/rows", rowsRequest{Rows: pendingJob.Tasks})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rows: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", jobRequest{Name: doneJob.Name, Tasks: doneJob.Tasks})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jobs: %d %s", resp.StatusCode, body)
	}
	var firstRes Result
	if err := json.Unmarshal(body, &firstRes); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The compacted journal holds only pendingJob's rows (plus markers):
	// simulate the crash window by appending a complete for pendingJob
	// with no result, as if the daemon died mid-classification.
	j, recs, truncated, err := OpenJournal(jpath)
	if err != nil || truncated {
		t.Fatalf("reopen journal: %v truncated=%v", err, truncated)
	}
	rowCount := 0
	for _, r := range recs {
		if r.Op == OpRow {
			if r.Job != pendingJob.Name {
				t.Fatalf("compacted journal kept row for %s", r.Job)
			}
			rowCount++
		}
		if r.Op == OpResult {
			t.Fatalf("compacted journal kept a result record")
		}
	}
	if rowCount != len(pendingJob.Tasks) {
		t.Fatalf("compacted journal has %d rows, want %d", rowCount, len(pendingJob.Tasks))
	}
	if err := j.Append(Record{Op: OpComplete, Seq: j.NextSeq(), Job: pendingJob.Name}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": boot a second server on the same journal. Replay must
	// classify pendingJob exactly once.
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Drain()
	replayed := s2.Replayed()
	if len(replayed) != 1 || replayed[0].Job != pendingJob.Name || !replayed[0].Replayed {
		t.Fatalf("replay produced %+v, want one result for %s", replayed, pendingJob.Name)
	}
	want, wantScore, err := m.Classify(mustGraph(t, pendingJob))
	if err != nil {
		t.Fatal(err)
	}
	if replayed[0].Group != want.Name || replayed[0].Score != wantScore {
		t.Fatalf("replayed result %s/%v differs from direct classification %s/%v",
			replayed[0].Group, replayed[0].Score, want.Name, wantScore)
	}

	// A third boot sees the result record and does NOT classify again.
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	// Drain compacts pending-only state; pendingJob was classified, so
	// the journal is now empty of rows and a restart replays nothing.
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Drain()
	if got := s3.Replayed(); len(got) != 0 {
		t.Fatalf("third boot replayed %+v, want nothing", got)
	}
	if st := s3.Stats(); st.Pending != 0 {
		t.Fatalf("third boot has %d pending jobs", st.Pending)
	}
}

// mustGraph builds the classification-side DAG for a whole job, the
// same way the server's classify path does.
func mustGraph(t *testing.T, job trace.Job) *dag.Graph {
	t.Helper()
	g, err := (&Server{}).buildGraph(job.Name, job.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestServerStatsAndHealth(t *testing.T) {
	s, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Schema != StatsSchema || st.ModelGroups == 0 {
		t.Fatalf("stats: %+v", st)
	}

	// /metrics exposes the serve counters in Prometheus text format.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("serve_")) {
		t.Fatalf("metrics: %d %.200s", resp.StatusCode, body)
	}

	// Draining flips readiness.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	s.draining.Store(false)
}

func TestServerModelReload(t *testing.T) {
	m, _ := testModel(t)
	reloads := 0
	s, ts := newTestServer(t, func(c *Config) {
		c.Reload = func(ctx context.Context) (*core.Model, error) {
			reloads++
			return m, nil
		}
	})
	old := s.Model()
	resp, body := postJSON(t, ts.URL+"/model/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	if reloads != 1 {
		t.Fatalf("reload ran %d times", reloads)
	}
	_ = old
}

func TestServerReloadUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := postJSON(t, ts.URL+"/model/reload", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without source: %d, want 501", resp.StatusCode)
	}
}

// Hot-swapping the model while classifications are in flight must be
// race-free (run under -race) and every response must come from a
// coherent model.
func TestServerConcurrentHotSwap(t *testing.T) {
	m, jobs := testModel(t)
	s, ts := newTestServer(t, nil)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SwapModel(m)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := jobs[i%8]
			for n := 0; n < 10; n++ {
				body, _ := json.Marshal(jobRequest{Name: fmt.Sprintf("%s-swap%d-%d", job.Name, i, n), Tasks: job.Tasks})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %.120s", resp.StatusCode, data)
					return
				}
				var res Result
				if err := json.Unmarshal(data, &res); err != nil || res.Group == "" {
					t.Errorf("bad result under swap: %v %.120s", err, data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
}

func TestServerWorkersHeartbeatIdleBetweenBatches(t *testing.T) {
	// An idle daemon must not look stalled: the serve.workers heartbeat
	// is active only while a flush runs, so the watchdog's
	// heartbeat-stall check skips it between batches no matter how long
	// the daemon sits with no traffic.
	s, ts := newTestServer(t, nil)
	_, jobs := testModel(t)
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"name": "hb_job", "tasks": jobs[0].Tasks})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var st *obs.HeartbeatState
		for _, hb := range s.reg.HeartbeatStates() {
			if hb.Name == "serve.workers" {
				hb := hb
				st = &hb
			}
		}
		if st != nil && st.Beats > 0 && !st.Active {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve.workers heartbeat not idle after the flush: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
