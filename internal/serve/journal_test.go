package serve

import (
	"os"
	"path/filepath"
	"testing"

	"jobgraph/internal/trace"
)

func testRecords() []Record {
	row := &trace.TaskRecord{TaskName: "t1", JobName: "j1", InstanceNum: 3}
	return []Record{
		{Op: OpRow, Seq: 1, Job: "j1", Row: row},
		{Op: OpComplete, Seq: 2, Job: "j1"},
		{Op: OpResult, Seq: 3, Job: "j1", Group: "B", Score: 0.875},
	}
}

func writeJournal(t *testing.T, path string, recs []Record) {
	t.Helper()
	j, got, truncated, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(got) != 0 || truncated {
		t.Fatalf("fresh journal not empty: %d records, truncated=%v", len(got), truncated)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "serve.journal")
	recs := testRecords()
	writeJournal(t, path, recs)

	j, got, truncated, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	if truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Op != recs[i].Op || rec.Seq != recs[i].Seq || rec.Job != recs[i].Job {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, rec, recs[i])
		}
	}
	if got[0].Row == nil || got[0].Row.InstanceNum != 3 {
		t.Fatalf("row payload lost: %+v", got[0].Row)
	}
	if got[2].Group != "B" || got[2].Score != 0.875 {
		t.Fatalf("result payload lost: %+v", got[2])
	}
	// Sequence counter resumes past the replayed records.
	if seq := j.NextSeq(); seq != 4 {
		t.Fatalf("NextSeq after replay = %d, want 4", seq)
	}
}

// A kill -9 can sever the file anywhere; every cut point must recover
// the records fully written before it and accept appends afterwards.
func TestJournalTornTailEveryCutPoint(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.journal")
	recs := testRecords()
	writeJournal(t, ref, recs)
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: header, then each record's end offset.
	bounds := []int{len(journalHeader)}
	off := int64(len(journalHeader))
	for range recs {
		got, next, _ := decodeRecords(data, off)
		if len(got) == 0 {
			t.Fatal("decode stalled")
		}
		_ = got
		// decodeRecords walks all frames; step one frame manually.
		n := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + n
		bounds = append(bounds, int(off))
		_ = next
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, got, truncated, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		// Number of fully-written records before the cut.
		want := 0
		for i := 1; i < len(bounds); i++ {
			if cut >= bounds[i] {
				want = i
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		// cut 0 is indistinguishable from a fresh file; a cut exactly on a
		// frame (or header) boundary loses nothing.
		wantTrunc := cut != 0 && cut != bounds[want]
		if truncated != wantTrunc {
			t.Fatalf("cut %d: truncated=%v, want %v", cut, truncated, wantTrunc)
		}
		// The recovered journal must accept and persist new appends.
		if err := j.Append(Record{Op: OpDrain, Seq: j.NextSeq()}); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := j.Sync(); err != nil {
			t.Fatalf("cut %d: sync: %v", cut, err)
		}
		j.Close()
		_, got2, trunc2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: re-reopen: %v", cut, err)
		}
		if trunc2 || len(got2) != want+1 {
			t.Fatalf("cut %d: after append got %d records (truncated=%v), want %d",
				cut, len(got2), trunc2, want+1)
		}
		os.Remove(path)
	}
}

func TestJournalCorruptMiddleByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.journal")
	writeJournal(t, path, testRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the second record: everything from there on
	// is unrecoverable, the first record survives.
	data[len(journalHeader)+30] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, truncated, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	if !truncated {
		t.Fatal("corruption not reported")
	}
	if len(got) > 2 {
		t.Fatalf("recovered %d records past corruption", len(got))
	}
}

func TestJournalRejectsAlienFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alien")
	if err := os.WriteFile(path, []byte("definitely not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenJournal(path); err == nil {
		t.Fatal("expected alien-file error")
	}
}

func TestJournalTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	if err := os.WriteFile(path, journalHeader[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, got, truncated, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open torn header: %v", err)
	}
	defer j.Close()
	if !truncated || len(got) != 0 {
		t.Fatalf("torn header: records=%d truncated=%v", len(got), truncated)
	}
	if err := j.Append(Record{Op: OpDrain, Seq: j.NextSeq()}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got2, trunc2, err := OpenJournal(path)
	if err != nil || trunc2 || len(got2) != 1 {
		t.Fatalf("recovered journal unusable: %d records, truncated=%v, err=%v", len(got2), trunc2, err)
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	writeJournal(t, path, testRecords())

	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := []Record{
		{Op: OpRow, Seq: j.NextSeq(), Job: "j2", Row: &trace.TaskRecord{TaskName: "t9", JobName: "j2"}},
		{Op: OpDrain, Seq: j.NextSeq()},
	}
	if err := j.Compact(keep); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// The compacted journal stays writable and the counter carries over.
	after := j.NextSeq()
	if after <= keep[1].Seq {
		t.Fatalf("seq went backwards after compact: %d <= %d", after, keep[1].Seq)
	}
	if err := j.Append(Record{Op: OpDrain, Seq: after}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, got, truncated, err := OpenJournal(path)
	if err != nil || truncated {
		t.Fatalf("reopen compacted: %v truncated=%v", err, truncated)
	}
	if len(got) != 3 || got[0].Job != "j2" || got[1].Op != OpDrain {
		t.Fatalf("compacted content wrong: %+v", got)
	}
}
