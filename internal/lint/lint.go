// Package lint validates batch-trace data quality: per-row schema
// problems, per-job structural problems (cycles, dangling dependency
// references, duplicate task ids) and corpus-level anomalies. It is the
// "trace doctor" run before feeding unfamiliar data — the real Alibaba
// tables contain all of these defects — and it reproduces, as checks,
// the filtering rationale of the paper's §IV-B sampling criteria.
package lint

import (
	"fmt"
	"sort"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
)

// Severity grades a finding.
type Severity int

// Severity levels.
const (
	// Info findings are expected trace properties worth counting
	// (running jobs, non-DAG jobs).
	Info Severity = iota
	// Warning findings degrade analysis quality (dangling deps,
	// zero-duration terminated tasks).
	Warning
	// Error findings make a job unusable (cycles, duplicate ids).
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one detected issue.
type Finding struct {
	Severity Severity
	Job      string
	Check    string // stable identifier, e.g. "cycle", "dangling-dep"
	Detail   string
}

// Report aggregates findings for a corpus.
type Report struct {
	Jobs     int
	Findings []Finding
	// ByCheck counts findings per check id.
	ByCheck map[string]int
}

// Count returns the number of findings at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// Clean reports whether the corpus has no Error findings.
func (r *Report) Clean() bool { return r.Count(Error) == 0 }

// NewReport returns an empty report ready for incremental Lint calls —
// the streaming counterpart of Jobs, for callers consuming
// trace.ForEachJob. Call Finish once all jobs have been linted.
func NewReport() *Report {
	return &Report{ByCheck: make(map[string]int)}
}

// Lint checks one job and accumulates its findings.
func (r *Report) Lint(j trace.Job) {
	r.Jobs++
	lintJob(r, j)
}

// Finish sorts the findings into deterministic output order (by job,
// then check). The report is ready to read afterwards.
func (r *Report) Finish() *Report {
	sort.SliceStable(r.Findings, func(a, b int) bool {
		if r.Findings[a].Job != r.Findings[b].Job {
			return r.Findings[a].Job < r.Findings[b].Job
		}
		return r.Findings[a].Check < r.Findings[b].Check
	})
	return r
}

// Jobs lints a grouped trace.
func Jobs(jobs []trace.Job) *Report {
	rep := NewReport()
	for _, j := range jobs {
		rep.Lint(j)
	}
	return rep.Finish()
}

func (r *Report) add(sev Severity, job, check, detail string) {
	r.Findings = append(r.Findings, Finding{Severity: sev, Job: job, Check: check, Detail: detail})
	r.ByCheck[check]++
}

func lintJob(rep *Report, j trace.Job) {
	if len(j.Tasks) == 0 {
		rep.add(Error, j.Name, "empty-job", "job has no task rows")
		return
	}

	seenIDs := make(map[int]string)
	parsed := make([]taskname.Parsed, 0, len(j.Tasks))
	dagTasks := 0
	for _, t := range j.Tasks {
		if err := t.Validate(); err != nil {
			rep.add(Error, j.Name, "bad-record", err.Error())
			continue
		}
		p, err := taskname.Parse(t.TaskName)
		if err != nil {
			rep.add(Error, j.Name, "self-dependency", fmt.Sprintf("task %q", t.TaskName))
			continue
		}
		if t.Status == trace.StatusTerminated && t.Duration() == 0 {
			rep.add(Warning, j.Name, "zero-duration",
				fmt.Sprintf("terminated task %q has no interval", t.TaskName))
		}
		if !t.Status.Known() {
			rep.add(Warning, j.Name, "unknown-status",
				fmt.Sprintf("task %q status %q", t.TaskName, t.Status))
		}
		if p.Independent {
			continue
		}
		dagTasks++
		if prev, dup := seenIDs[p.ID]; dup {
			rep.add(Error, j.Name, "duplicate-task-id",
				fmt.Sprintf("tasks %q and %q share id %d", prev, t.TaskName, p.ID))
			continue
		}
		seenIDs[p.ID] = t.TaskName
		parsed = append(parsed, p)
	}

	if dagTasks == 0 {
		rep.add(Info, j.Name, "non-dag", "no dependency-structured tasks")
		return
	}
	if !j.AllTerminated() {
		rep.add(Info, j.Name, "not-terminated", "job violates the integrity criterion")
	}

	// Dependency references and cycles, on the deduplicated task set.
	g := dag.New(j.Name)
	for _, p := range parsed {
		_ = g.AddNode(dag.Node{ID: dag.NodeID(p.ID)})
	}
	for _, p := range parsed {
		for _, d := range p.Deps {
			if _, ok := seenIDs[d]; !ok {
				rep.add(Warning, j.Name, "dangling-dep",
					fmt.Sprintf("task %q references missing task %d", p.Raw, d))
				continue
			}
			if err := g.AddEdge(dag.NodeID(d), dag.NodeID(p.ID)); err != nil {
				rep.add(Warning, j.Name, "duplicate-edge", err.Error())
			}
		}
	}
	if _, err := g.TopoSort(); err != nil {
		rep.add(Error, j.Name, "cycle", "dependency references form a cycle")
	}
}
