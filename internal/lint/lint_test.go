package lint

import (
	"testing"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func job(name string, tasks ...trace.TaskRecord) trace.Job {
	for i := range tasks {
		tasks[i].JobName = name
		if tasks[i].Status == "" {
			tasks[i].Status = trace.StatusTerminated
		}
		if tasks[i].EndTime == 0 && tasks[i].Status == trace.StatusTerminated {
			tasks[i].StartTime = 10
			tasks[i].EndTime = 20
		}
	}
	return trace.Job{Name: name, Tasks: tasks}
}

func TestLintCleanJob(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "M1", InstanceNum: 1},
		trace.TaskRecord{TaskName: "R2_1", InstanceNum: 1},
	)})
	if !rep.Clean() {
		t.Fatalf("clean job flagged: %+v", rep.Findings)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("findings = %+v", rep.Findings)
	}
}

func TestLintEmptyJob(t *testing.T) {
	rep := Jobs([]trace.Job{{Name: "j"}})
	if rep.Clean() || rep.ByCheck["empty-job"] != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestLintCycle(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "M1_2", InstanceNum: 1},
		trace.TaskRecord{TaskName: "R2_1", InstanceNum: 1},
	)})
	if rep.Clean() || rep.ByCheck["cycle"] != 1 {
		t.Fatalf("cycle not detected: %+v", rep.Findings)
	}
}

func TestLintDanglingDep(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "R2_9", InstanceNum: 1},
	)})
	if rep.ByCheck["dangling-dep"] != 1 {
		t.Fatalf("dangling dep not flagged: %+v", rep.Findings)
	}
	if !rep.Clean() {
		t.Fatal("dangling dep should be a warning, not an error")
	}
}

func TestLintDuplicateTaskID(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "M1", InstanceNum: 1},
		trace.TaskRecord{TaskName: "R1", InstanceNum: 1},
	)})
	if rep.Clean() || rep.ByCheck["duplicate-task-id"] != 1 {
		t.Fatalf("duplicate id not flagged: %+v", rep.Findings)
	}
}

func TestLintSelfDependency(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "R2_2", InstanceNum: 1},
	)})
	if rep.Clean() || rep.ByCheck["self-dependency"] != 1 {
		t.Fatalf("self dependency not flagged: %+v", rep.Findings)
	}
}

func TestLintZeroDurationAndStatus(t *testing.T) {
	rep := Jobs([]trace.Job{{Name: "j", Tasks: []trace.TaskRecord{
		{TaskName: "M1", JobName: "j", InstanceNum: 1, Status: trace.StatusTerminated},
		{TaskName: "R2_1", JobName: "j", InstanceNum: 1, Status: "Weird", StartTime: 1, EndTime: 2},
	}}})
	if rep.ByCheck["zero-duration"] != 1 {
		t.Fatalf("zero duration not flagged: %+v", rep.Findings)
	}
	if rep.ByCheck["unknown-status"] != 1 {
		t.Fatalf("unknown status not flagged: %+v", rep.Findings)
	}
	if rep.ByCheck["not-terminated"] != 1 {
		t.Fatalf("integrity not flagged: %+v", rep.Findings)
	}
}

func TestLintNonDAGJobIsInfo(t *testing.T) {
	rep := Jobs([]trace.Job{job("j",
		trace.TaskRecord{TaskName: "task_abc", InstanceNum: 1},
	)})
	if !rep.Clean() || rep.ByCheck["non-dag"] != 1 {
		t.Fatalf("non-dag handling: %+v", rep.Findings)
	}
	if rep.Count(Info) != 1 {
		t.Fatalf("info count = %d", rep.Count(Info))
	}
}

func TestLintBadRecord(t *testing.T) {
	rep := Jobs([]trace.Job{{Name: "j", Tasks: []trace.TaskRecord{
		{TaskName: "M1", JobName: "j", InstanceNum: -5, Status: trace.StatusTerminated},
	}}})
	if rep.Clean() || rep.ByCheck["bad-record"] != 1 {
		t.Fatalf("bad record not flagged: %+v", rep.Findings)
	}
}

func TestLintGeneratedTraceIsStructurallyClean(t *testing.T) {
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(3000, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep := Jobs(jobs)
	if !rep.Clean() {
		t.Fatalf("generated trace has %d errors: %+v", rep.Count(Error), rep.Findings[:5])
	}
	// Expected info findings: non-DAG jobs and running/failed jobs.
	if rep.ByCheck["non-dag"] == 0 || rep.ByCheck["not-terminated"] == 0 {
		t.Fatalf("expected info findings missing: %v", rep.ByCheck)
	}
	// Running jobs have one unfinished task -> zero-duration warnings
	// must NOT appear for them (they are not terminated); generated
	// terminated tasks always have intervals.
	if rep.ByCheck["zero-duration"] != 0 {
		t.Fatalf("unexpected zero-duration warnings: %d", rep.ByCheck["zero-duration"])
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Fatal("severity names")
	}
	if Severity(9).String() != "severity(9)" {
		t.Fatal("unknown severity")
	}
}

func TestFindingsDeterministicOrder(t *testing.T) {
	jobs := []trace.Job{
		job("b", trace.TaskRecord{TaskName: "R2_9", InstanceNum: 1}),
		job("a", trace.TaskRecord{TaskName: "R2_9", InstanceNum: 1}),
	}
	rep := Jobs(jobs)
	if len(rep.Findings) != 2 || rep.Findings[0].Job != "a" || rep.Findings[1].Job != "b" {
		t.Fatalf("order: %+v", rep.Findings)
	}
}
