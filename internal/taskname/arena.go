package taskname

import (
	"strings"
	"sync"
)

// Symbol is an interned task-name handle: a dense uint32 assigned by an
// Arena in first-seen order. The zero Symbol means "not interned", so
// records that never passed through an arena stay valid.
type Symbol uint32

// Arena interns task-name strings. A production trace repeats the same
// few thousand distinct task names across millions of rows; interning
// collapses each repetition to a 4-byte Symbol, detaches the retained
// string from the multi-kilobyte CSV record backing it, and caches the
// parsed DAG structure so each distinct name is parsed exactly once.
//
// Interning order is whatever order the caller presents names in, so
// callers that need run-to-run stable symbol values (the trace reader)
// must intern at a serialized point. Lookups after interning are safe
// from any number of goroutines.
type Arena struct {
	mu      sync.RWMutex
	syms    map[string]Symbol
	entries []arenaEntry // index Symbol-1
}

type arenaEntry struct {
	name     string
	parsed   Parsed
	parseErr error
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{syms: make(map[string]Symbol)}
}

// Intern returns the symbol for s, assigning the next dense symbol on
// first sight. The returned string is the arena's canonical copy —
// callers should retain it instead of s, which may alias a much larger
// buffer (a CSV record) that the canonical copy does not pin.
func (a *Arena) Intern(s string) (Symbol, string) {
	a.mu.RLock()
	sym, ok := a.syms[s]
	var name string
	if ok {
		name = a.entries[sym-1].name
	}
	a.mu.RUnlock()
	if ok {
		return sym, name
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if sym, ok := a.syms[s]; ok {
		return sym, a.entries[sym-1].name
	}
	name = strings.Clone(s)
	p, err := Parse(name)
	a.entries = append(a.entries, arenaEntry{name: name, parsed: p, parseErr: err})
	sym = Symbol(len(a.entries))
	a.syms[name] = sym
	return sym, name
}

// Name returns the canonical string for a symbol, or "" for the zero
// symbol or an out-of-range value.
func (a *Arena) Name(sym Symbol) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if sym == 0 || int(sym) > len(a.entries) {
		return ""
	}
	return a.entries[sym-1].name
}

// ParseSym returns the cached parse of the symbol's name. The Parsed
// value shares its Deps slice with the arena cache; callers must treat
// it as read-only.
func (a *Arena) ParseSym(sym Symbol) (Parsed, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if sym == 0 || int(sym) > len(a.entries) {
		return Parsed{Type: TypeOther, Independent: true}, nil
	}
	e := &a.entries[sym-1]
	return e.parsed, e.parseErr
}

// ParseNamed returns the cached parse for sym when the symbol resolves
// to name in this arena. ok=false means the symbol is zero or stale —
// e.g. it rode in on a record decoded under a different arena (a cached
// artifact from an earlier run) — and the caller must parse the name
// itself.
func (a *Arena) ParseNamed(sym Symbol, name string) (p Parsed, err error, ok bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if sym == 0 || int(sym) > len(a.entries) {
		return Parsed{}, nil, false
	}
	e := &a.entries[sym-1]
	if e.name != name {
		return Parsed{}, nil, false
	}
	return e.parsed, e.parseErr, true
}

// Len returns the number of interned names.
func (a *Arena) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.entries)
}
