package taskname

import "testing"

// FuzzParse drives the name parser with arbitrary byte strings; Parse
// must never panic, and every accepted parse must satisfy the package
// invariants.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"M1", "R2_1", "J3_2_1", "R5_4_3_2_1", "task_Nzg3",
		"MergeTask", "", "M", "M0", "M1_0", "m1_2", "MRG7_3",
		"M999999999999999999999", "M1_1", "M1__2", "_1", "1_M",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := Parse(name)
		if err != nil {
			return // explicit rejection is allowed
		}
		if p.Independent {
			return
		}
		if p.ID <= 0 {
			t.Fatalf("accepted non-positive id: %+v", p)
		}
		seen := map[int]bool{}
		for _, d := range p.Deps {
			if d <= 0 || d == p.ID {
				t.Fatalf("invalid dep in %+v", p)
			}
			if seen[d] {
				t.Fatalf("duplicate dep in %+v", p)
			}
			seen[d] = true
		}
		// Round trip through Format must be stable.
		back, err := Parse(Format(p))
		if err != nil || back.Independent || back.ID != p.ID || back.Type != p.Type {
			t.Fatalf("format round trip broke: %+v -> %+v (%v)", p, back, err)
		}
	})
}
