package taskname

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseSimpleMap(t *testing.T) {
	p, err := Parse("M1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Independent || p.Type != TypeMap || p.ID != 1 || len(p.Deps) != 0 {
		t.Fatalf("Parse(M1) = %+v", p)
	}
}

func TestParsePaperExamples(t *testing.T) {
	// The exact examples from §IV-A of the paper (job 1001388).
	cases := []struct {
		name string
		typ  Type
		id   int
		deps []int
	}{
		{"M1", TypeMap, 1, nil},
		{"M3", TypeMap, 3, nil},
		{"R2_1", TypeReduce, 2, []int{1}},
		{"R4_3", TypeReduce, 4, []int{3}},
		{"R5_4_3_2_1", TypeReduce, 5, []int{4, 3, 2, 1}},
		{"J3_2_1", TypeJoin, 3, []int{2, 1}},
	}
	for _, c := range cases {
		p, err := Parse(c.name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.name, err)
		}
		if p.Independent {
			t.Fatalf("Parse(%q) marked independent", c.name)
		}
		if p.Type != c.typ || p.ID != c.id || !reflect.DeepEqual(p.Deps, c.deps) {
			t.Fatalf("Parse(%q) = %+v", c.name, p)
		}
	}
}

func TestParseIndependentNames(t *testing.T) {
	for _, name := range []string{
		"task_Nzg3ODcwNzI2",
		"MergeTask",
		"", "   ",
		"M",      // type but no id
		"1",      // id but no type
		"M0",     // ids are 1-based in the trace
		"M1_x",   // non-numeric dependency suffix
		"M1_0",   // dependency id 0 impossible
		"M1_2_x", // partially numeric suffix
		"M1x",    // trailing junk in head
	} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if !p.Independent {
			t.Fatalf("Parse(%q) = %+v, want independent", name, p)
		}
	}
}

func TestParseSelfDependencyRejected(t *testing.T) {
	if _, err := Parse("R2_2"); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if _, err := Parse("R2_1_2"); err == nil {
		t.Fatal("self-dependency in longer list accepted")
	}
}

func TestParseDuplicateDepsDeduplicated(t *testing.T) {
	p, err := Parse("R3_1_1_2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Deps, []int{1, 2}) {
		t.Fatalf("deps = %v, want [1 2]", p.Deps)
	}
}

func TestParseLowercaseAndMultiLetter(t *testing.T) {
	p, _ := Parse("r2_1")
	if p.Independent || p.Type != TypeReduce {
		t.Fatalf("lowercase: %+v", p)
	}
	// Multi-letter prefixes occur in the trace ("MR", "Stg"); type comes
	// from the first letter, structure from the digits.
	p, _ = Parse("MRG7_3")
	if p.Independent || p.Type != TypeMap || p.ID != 7 || p.Deps[0] != 3 {
		t.Fatalf("multi-letter: %+v", p)
	}
	p, _ = Parse("Stg2_1")
	if p.Independent || p.Type != TypeOther {
		t.Fatalf("unknown letter prefix: %+v", p)
	}
}

func TestParseWhitespaceTrimmed(t *testing.T) {
	p, err := Parse("  M2_1 ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Independent || p.ID != 2 {
		t.Fatalf("whitespace: %+v", p)
	}
}

func TestTypeString(t *testing.T) {
	if TypeMap.String() != "M" || TypeReduce.String() != "R" ||
		TypeJoin.String() != "J" || TypeOther.String() != "?" {
		t.Fatal("Type.String mismatch")
	}
	if Type('Z').String() != "?" {
		t.Fatal("unknown type should render ?")
	}
}

func TestFormatRoundTripProperty(t *testing.T) {
	// Any structurally valid parsed task formats to a name that parses
	// back to an identical structure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := []Type{TypeMap, TypeReduce, TypeJoin}
		id := 2 + rng.Intn(30)
		nDeps := rng.Intn(4)
		deps := make([]int, 0, nDeps)
		seen := map[int]bool{id: true}
		for len(deps) < nDeps {
			d := 1 + rng.Intn(31)
			if !seen[d] {
				seen[d] = true
				deps = append(deps, d)
			}
		}
		orig := Parsed{Type: types[rng.Intn(3)], ID: id, Deps: deps}
		back, err := Parse(Format(orig))
		if err != nil || back.Independent {
			return false
		}
		if back.Type != orig.Type || back.ID != orig.ID {
			return false
		}
		if len(back.Deps) != len(orig.Deps) {
			return false
		}
		for i := range deps {
			if back.Deps[i] != deps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatIndependent(t *testing.T) {
	p, _ := Parse("task_abc")
	if Format(p) != "task_abc" {
		t.Fatalf("Format(independent) = %q", Format(p))
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		p, err := Parse(s)
		if err != nil {
			return true // explicit rejection is fine
		}
		// Invariants of an accepted parse.
		if !p.Independent {
			if p.ID <= 0 {
				return false
			}
			for _, d := range p.Deps {
				if d <= 0 || d == p.ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
