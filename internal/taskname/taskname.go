// Package taskname parses the Alibaba cluster-trace-v2018 task naming
// convention, which encodes both the task's role in its computation
// framework and its position in the job's dependency DAG.
//
// In the trace, a DAG-structured task is named
//
//	<TYPE><ID>[_<DEP>]*
//
// for example:
//
//	M1          a Map task with id 1 and no upstream dependency
//	R2_1        a Reduce task with id 2 depending on task 1
//	J3_2_1      a Join task with id 3 depending on tasks 2 and 1
//	R5_4_3_2_1  a Reduce task with id 5 depending on 4, 3, 2 and 1
//
// The paper (§IV-A, §V-C) derives the entire job DAG from these names:
// vertex ids from the numeric part, edges from the dependency suffix and
// task types (M = Map/Merge, R = Reduce, J = Join) from the letter prefix.
//
// Task names that do not follow the convention (e.g. "task_Nzg3...",
// "MergeTask") belong to jobs without DAG structure; Parse reports them
// as independent rather than failing, because they are a majority of the
// raw trace and must flow through filtering, not error paths.
package taskname

import (
	"fmt"
	"strconv"
	"strings"
)

// Type classifies a task by the letter prefix of its name.
type Type byte

// Task types observed in the trace. The paper's Figure 6 counts M, J and
// R tasks; everything else (including un-parseable names) is Other.
const (
	TypeMap    Type = 'M' // Map or Merge stage
	TypeReduce Type = 'R' // Reduce stage
	TypeJoin   Type = 'J' // independent Join stage (Map-Join-Reduce)
	TypeOther  Type = '?'
)

// String returns the single-letter name of the type.
func (t Type) String() string {
	switch t {
	case TypeMap, TypeReduce, TypeJoin:
		return string(byte(t))
	default:
		return "?"
	}
}

// typeOf maps a name's letter prefix to a Type.
func typeOf(prefix string) Type {
	if len(prefix) == 0 {
		return TypeOther
	}
	switch prefix[0] {
	case 'M', 'm':
		return TypeMap
	case 'R', 'r':
		return TypeReduce
	case 'J', 'j':
		return TypeJoin
	default:
		return TypeOther
	}
}

// Parsed is the decoded form of one task name.
type Parsed struct {
	Raw         string
	Type        Type
	ID          int   // numeric task id within the job; 0 when Independent
	Deps        []int // upstream task ids, deduplicated, order preserved
	Independent bool  // true when the name does not follow the DAG grammar
}

// Parse decodes one task name. It never returns an error for merely
// unconventional names — those come back with Independent=true — but it
// does reject structurally impossible DAG names (self-dependency,
// dependency id 0) since silently accepting them would corrupt the DAG
// builder downstream.
func Parse(name string) (Parsed, error) {
	p := Parsed{Raw: name, Type: TypeOther, Independent: true}
	trimmed := strings.TrimSpace(name)
	if trimmed == "" {
		return p, nil
	}
	p.Raw = trimmed

	head, rest := splitHead(trimmed)
	if head == "" {
		return p, nil // no "<letters><digits>" head: independent task
	}
	letters, digits := splitLetters(head)
	if letters == "" || digits == "" {
		return p, nil
	}
	id, err := strconv.Atoi(digits)
	if err != nil || id <= 0 {
		return p, nil
	}
	// A plausible DAG head; now every suffix component must be a numeric
	// dependency, otherwise the name is a free-form identifier that just
	// happens to start like one (e.g. "M1_stage_final").
	var deps []int
	if rest != "" {
		for _, part := range strings.Split(rest, "_") {
			d, err := strconv.Atoi(part)
			if err != nil || d <= 0 {
				return p, nil
			}
			deps = append(deps, d)
		}
	}
	for _, d := range deps {
		if d == id {
			return p, fmt.Errorf("taskname: %q depends on itself", trimmed)
		}
	}
	p.Type = typeOf(letters)
	p.ID = id
	p.Deps = dedupInts(deps)
	p.Independent = false
	return p, nil
}

// splitHead cuts a name into the "<letters><digits>" head and the
// remainder after the first underscore. It returns head="" when the name
// has no underscore-free leading segment of that form.
func splitHead(s string) (head, rest string) {
	if i := strings.IndexByte(s, '_'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// splitLetters separates a leading run of letters from a trailing run of
// digits. Both must be non-empty and jointly cover the input for the
// name to qualify as a DAG head.
func splitLetters(s string) (letters, digits string) {
	i := 0
	for i < len(s) && isLetter(s[i]) {
		i++
	}
	j := i
	for j < len(s) && isDigit(s[j]) {
		j++
	}
	if i == 0 || j != len(s) || i == j {
		return "", ""
	}
	return s[:i], s[i:]
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// dedupInts removes duplicates preserving first-seen order. The trace
// contains a handful of names with repeated dependency ids; the DAG has
// at most one edge per pair.
func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Format renders a parsed task back into the trace naming convention.
// Independent tasks render as their raw name. Tasks of TypeOther (whose
// original letter prefix was not M/R/J) are rendered with the neutral
// prefix "T" so the output re-parses to the same structure; "?" — the
// display name of TypeOther — is not a letter and would not.
func Format(p Parsed) string {
	if p.Independent {
		return p.Raw
	}
	var b strings.Builder
	if p.Type == TypeOther {
		b.WriteString("T")
	} else {
		b.WriteString(p.Type.String())
	}
	b.WriteString(strconv.Itoa(p.ID))
	for _, d := range p.Deps {
		b.WriteByte('_')
		b.WriteString(strconv.Itoa(d))
	}
	return b.String()
}
