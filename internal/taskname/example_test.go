package taskname_test

import (
	"fmt"

	"jobgraph/internal/taskname"
)

func ExampleParse() {
	// The paper's example task: Reduce 5 depends on tasks 4, 3, 2, 1.
	p, err := taskname.Parse("R5_4_3_2_1")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Type, p.ID, p.Deps)

	// Names outside the convention are independent, not errors.
	q, _ := taskname.Parse("task_Nzg3ODcwNzI2")
	fmt.Println(q.Independent)
	// Output:
	// R 5 [4 3 2 1]
	// true
}
