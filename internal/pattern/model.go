package pattern

import (
	"fmt"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// Model is the batch programming model inferred from a job's task types
// and their arrangement — the §V-C analysis: "there are some common
// batch programming modes ... map-reduce, map-join-reduce, and
// map-reduce-merge".
type Model int

// Programming models.
const (
	// ModelUnknown covers jobs whose task types don't match any of the
	// known frameworks (e.g. all-Other types).
	ModelUnknown Model = iota
	// ModelMapOnly jobs have no Reduce or Join stage at all.
	ModelMapOnly
	// ModelMapReduce is the plain framework: Map and Reduce tasks only.
	ModelMapReduce
	// ModelMapJoinReduce contains independent Join stages between Maps
	// and Reduces (the filtering-join-aggregation model).
	ModelMapJoinReduce
	// ModelMapReduceMerge has a Map/Merge stage running downstream of a
	// Reduce — the Merge phase appended after map and reduce.
	ModelMapReduceMerge
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelMapOnly:
		return "map-only"
	case ModelMapReduce:
		return "map-reduce"
	case ModelMapJoinReduce:
		return "map-join-reduce"
	case ModelMapReduceMerge:
		return "map-reduce-merge"
	case ModelUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// ClassifyModel infers the programming model of a job DAG. Precedence:
// a Join stage anywhere makes the job Map-Join-Reduce; otherwise a
// Map/Merge task downstream of any Reduce makes it Map-Reduce-Merge;
// otherwise the presence of both M and R is plain Map-Reduce.
func ClassifyModel(g *dag.Graph) (Model, error) {
	if g.Size() == 0 {
		return ModelUnknown, nil
	}
	order, err := g.TopoSort()
	if err != nil {
		return ModelUnknown, err
	}
	var hasM, hasR, hasJ, hasOther, mergeAfterReduce bool
	reduceSeen := make(map[dag.NodeID]bool, len(order))
	for _, id := range order {
		n := g.Node(id)
		// A task runs after a Reduce when any predecessor is a Reduce
		// or itself runs after one.
		after := false
		for _, p := range g.Pred(id) {
			if g.Node(p).Type == taskname.TypeReduce || reduceSeen[p] {
				after = true
				break
			}
		}
		reduceSeen[id] = after
		switch n.Type {
		case taskname.TypeMap:
			hasM = true
			if after {
				mergeAfterReduce = true
			}
		case taskname.TypeReduce:
			hasR = true
		case taskname.TypeJoin:
			hasJ = true
		default:
			hasOther = true
		}
	}
	switch {
	case hasJ:
		return ModelMapJoinReduce, nil
	case mergeAfterReduce:
		return ModelMapReduceMerge, nil
	case hasM && hasR:
		return ModelMapReduce, nil
	case hasM && !hasR && !hasOther:
		return ModelMapOnly, nil
	case hasR && !hasM && !hasOther:
		// Reduce-only fragments occur in truncated jobs; classify as
		// plain map-reduce lineage rather than unknown.
		return ModelMapReduce, nil
	default:
		return ModelUnknown, nil
	}
}

// ModelCensus tallies programming models across jobs.
type ModelCensus struct {
	Counts map[Model]int
	Total  int
}

// NewModelCensus returns an empty census.
func NewModelCensus() *ModelCensus {
	return &ModelCensus{Counts: make(map[Model]int)}
}

// Add classifies g and records the result.
func (c *ModelCensus) Add(g *dag.Graph) error {
	m, err := ClassifyModel(g)
	if err != nil {
		return err
	}
	c.Counts[m]++
	c.Total++
	return nil
}

// Fraction returns the share of jobs with the given model.
func (c *ModelCensus) Fraction(m Model) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Counts[m]) / float64(c.Total)
}

// AllModels lists models in report order.
func AllModels() []Model {
	return []Model{ModelMapReduce, ModelMapJoinReduce, ModelMapReduceMerge, ModelMapOnly, ModelUnknown}
}
