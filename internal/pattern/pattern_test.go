package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// build constructs a graph from an edge list over 1..n.
func build(t testing.TB, n int, edges [][2]int) *dag.Graph {
	t.Helper()
	g := dag.New("test")
	for i := 1; i <= n; i++ {
		typ := taskname.TypeMap
		if i > n/2 {
			typ = taskname.TypeReduce
		}
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(dag.NodeID(e[0]), dag.NodeID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func classify(t testing.TB, g *dag.Graph) Shape {
	t.Helper()
	s, err := Classify(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClassifyDegenerate(t *testing.T) {
	if got := classify(t, dag.New("e")); got != Empty {
		t.Fatalf("empty = %v", got)
	}
	if got := classify(t, build(t, 1, nil)); got != Singleton {
		t.Fatalf("singleton = %v", got)
	}
}

func TestClassifyChain(t *testing.T) {
	g := build(t, 4, [][2]int{{1, 2}, {2, 3}, {3, 4}})
	if got := classify(t, g); got != Chain {
		t.Fatalf("chain = %v", got)
	}
}

func TestClassifyTwoNodeChain(t *testing.T) {
	g := build(t, 2, [][2]int{{1, 2}})
	if got := classify(t, g); got != Chain {
		t.Fatalf("2-chain = %v", got)
	}
}

func TestClassifyInvertedTriangle(t *testing.T) {
	// The paper's simple MapReduce: two maps into one reduce.
	g := build(t, 3, [][2]int{{1, 3}, {2, 3}})
	if got := classify(t, g); got != InvertedTriangle {
		t.Fatalf("map-reduce = %v", got)
	}
	// 30-of-31 extreme case.
	edges := make([][2]int, 0, 30)
	for i := 1; i <= 30; i++ {
		edges = append(edges, [2]int{i, 31})
	}
	if got := classify(t, build(t, 31, edges)); got != InvertedTriangle {
		t.Fatalf("wide map-reduce = %v", got)
	}
	// Convergent with a tail still narrows monotonically:
	// {1,2} -> 3 -> 4.
	g = build(t, 4, [][2]int{{1, 3}, {2, 3}, {3, 4}})
	if got := classify(t, g); got != InvertedTriangle {
		t.Fatalf("triangle+tail = %v", got)
	}
}

func TestClassifyDiamond(t *testing.T) {
	g := build(t, 4, [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}})
	if got := classify(t, g); got != Diamond {
		t.Fatalf("diamond = %v", got)
	}
	// Wider diamond with two middle levels.
	g = build(t, 6, [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 6}})
	if got := classify(t, g); got != Diamond {
		t.Fatalf("long diamond = %v", got)
	}
}

func TestClassifyHourglass(t *testing.T) {
	// 2 sources -> 1 waist -> 2 sinks.
	g := build(t, 5, [][2]int{{1, 3}, {2, 3}, {3, 4}, {3, 5}})
	if got := classify(t, g); got != Hourglass {
		t.Fatalf("hourglass = %v", got)
	}
}

func TestClassifyTrapezium(t *testing.T) {
	// One source diverging into three sinks — the paper's group E
	// "released from a single node" style.
	g := build(t, 4, [][2]int{{1, 2}, {1, 3}, {1, 4}})
	if got := classify(t, g); got != Trapezium {
		t.Fatalf("trapezium = %v", got)
	}
	// Gradual widening 1 -> 2 -> 3.
	g = build(t, 6, [][2]int{{1, 2}, {1, 3}, {2, 4}, {2, 5}, {3, 6}})
	if got := classify(t, g); got != Trapezium {
		t.Fatalf("widening trapezium = %v", got)
	}
}

func TestClassifyHybrid(t *testing.T) {
	// Two disconnected chains: widths all 1 but not one connected run.
	g := build(t, 4, [][2]int{{1, 2}, {3, 4}})
	if got := classify(t, g); got != Hybrid {
		t.Fatalf("parallel rails = %v", got)
	}
	// Widen-then-narrow-then-widen: none of the monotone classes.
	g = build(t, 7, [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}, {4, 6}, {5, 7}, {6, 7}})
	// widths: 1,2,1,2,1 — single source/sink with wider middle → Diamond
	// by our definition; build a genuinely mixed shape instead:
	// 2 sources -> 1 -> 2 sinks -> extra level of 1.
	g = build(t, 6, [][2]int{{1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}})
	// widths: 2,1,2,1; sources 2, sinks 2 (5 and 6): not monotone,
	// ends differ from hourglass (last width 1).
	if got := classify(t, g); got != Hybrid {
		t.Fatalf("mixed shape = %v", got)
	}
}

func TestClassifyNeverErrorsOnRandomDAGsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g := dag.New("r")
		for i := 1; i <= n; i++ {
			_ = g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap})
		}
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Float64() < 0.3 {
					_ = g.AddEdge(dag.NodeID(i), dag.NodeID(j))
				}
			}
		}
		s, err := Classify(g)
		if err != nil {
			return false
		}
		// A classified shape must be one of the taxonomy values.
		switch s {
		case Empty, Singleton, Chain, InvertedTriangle, Diamond, Hourglass, Trapezium, Hybrid:
			return true
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCensus(t *testing.T) {
	c := NewCensus()
	if err := c.Add(build(t, 3, [][2]int{{1, 2}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(build(t, 3, [][2]int{{1, 3}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(build(t, 2, [][2]int{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if c.Total != 3 || c.Counts[Chain] != 2 || c.Counts[InvertedTriangle] != 1 {
		t.Fatalf("census = %+v", c)
	}
	if got := c.Fraction(Chain); got != 2.0/3.0 {
		t.Fatalf("fraction = %g", got)
	}
	if NewCensus().Fraction(Chain) != 0 {
		t.Fatal("empty census fraction")
	}
}

func TestShapeString(t *testing.T) {
	if Chain.String() != "chain" || InvertedTriangle.String() != "inverted-triangle" {
		t.Fatal("shape names")
	}
	if Shape(99).String() != "shape(99)" {
		t.Fatal("unknown shape name")
	}
	if len(AllShapes()) != 8 {
		t.Fatal("AllShapes incomplete")
	}
}
