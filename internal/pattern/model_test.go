package pattern

import (
	"testing"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// mkTyped builds a graph from typed nodes and an edge list.
func mkTyped(t testing.TB, types []taskname.Type, edges [][2]int) *dag.Graph {
	t.Helper()
	g := dag.New("m")
	for i, typ := range types {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(dag.NodeID(e[0]), dag.NodeID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

const (
	tM = taskname.TypeMap
	tR = taskname.TypeReduce
	tJ = taskname.TypeJoin
	tO = taskname.TypeOther
)

func classifyModel(t testing.TB, g *dag.Graph) Model {
	t.Helper()
	m, err := ClassifyModel(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClassifyModelMapReduce(t *testing.T) {
	g := mkTyped(t, []taskname.Type{tM, tM, tR}, [][2]int{{1, 3}, {2, 3}})
	if got := classifyModel(t, g); got != ModelMapReduce {
		t.Fatalf("map-reduce = %v", got)
	}
}

func TestClassifyModelMapJoinReduce(t *testing.T) {
	g := mkTyped(t, []taskname.Type{tM, tM, tJ, tR},
		[][2]int{{1, 3}, {2, 3}, {3, 4}})
	if got := classifyModel(t, g); got != ModelMapJoinReduce {
		t.Fatalf("map-join-reduce = %v", got)
	}
}

func TestClassifyModelMapReduceMerge(t *testing.T) {
	// M -> R -> M: the trailing Map-typed task after a Reduce is the
	// Merge phase.
	g := mkTyped(t, []taskname.Type{tM, tR, tM}, [][2]int{{1, 2}, {2, 3}})
	if got := classifyModel(t, g); got != ModelMapReduceMerge {
		t.Fatalf("map-reduce-merge = %v", got)
	}
	// Deeper: merge two levels below the reduce.
	g = mkTyped(t, []taskname.Type{tM, tR, tR, tM},
		[][2]int{{1, 2}, {2, 3}, {3, 4}})
	if got := classifyModel(t, g); got != ModelMapReduceMerge {
		t.Fatalf("deep merge = %v", got)
	}
}

func TestClassifyModelMapOnly(t *testing.T) {
	g := mkTyped(t, []taskname.Type{tM, tM}, [][2]int{{1, 2}})
	if got := classifyModel(t, g); got != ModelMapOnly {
		t.Fatalf("map-only = %v", got)
	}
}

func TestClassifyModelJoinWinsOverMerge(t *testing.T) {
	// Both a Join and a post-Reduce Map: Join takes precedence (it is
	// the structural marker of the framework).
	g := mkTyped(t, []taskname.Type{tM, tJ, tR, tM},
		[][2]int{{1, 2}, {2, 3}, {3, 4}})
	if got := classifyModel(t, g); got != ModelMapJoinReduce {
		t.Fatalf("join precedence = %v", got)
	}
}

func TestClassifyModelDegenerate(t *testing.T) {
	if got := classifyModel(t, dag.New("e")); got != ModelUnknown {
		t.Fatalf("empty = %v", got)
	}
	g := mkTyped(t, []taskname.Type{tO, tO}, [][2]int{{1, 2}})
	if got := classifyModel(t, g); got != ModelUnknown {
		t.Fatalf("other-typed = %v", got)
	}
	g = mkTyped(t, []taskname.Type{tR, tR}, [][2]int{{1, 2}})
	if got := classifyModel(t, g); got != ModelMapReduce {
		t.Fatalf("reduce-only fragment = %v", got)
	}
}

func TestModelCensus(t *testing.T) {
	c := NewModelCensus()
	if err := c.Add(mkTyped(t, []taskname.Type{tM, tR}, [][2]int{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(mkTyped(t, []taskname.Type{tM, tJ, tR}, [][2]int{{1, 2}, {2, 3}})); err != nil {
		t.Fatal(err)
	}
	if c.Total != 2 || c.Counts[ModelMapReduce] != 1 || c.Counts[ModelMapJoinReduce] != 1 {
		t.Fatalf("census = %+v", c)
	}
	if c.Fraction(ModelMapReduce) != 0.5 {
		t.Fatalf("fraction = %g", c.Fraction(ModelMapReduce))
	}
	if NewModelCensus().Fraction(ModelMapReduce) != 0 {
		t.Fatal("empty census")
	}
}

func TestModelString(t *testing.T) {
	if ModelMapReduce.String() != "map-reduce" ||
		ModelMapJoinReduce.String() != "map-join-reduce" ||
		ModelMapReduceMerge.String() != "map-reduce-merge" ||
		ModelMapOnly.String() != "map-only" ||
		ModelUnknown.String() != "unknown" {
		t.Fatal("model names")
	}
	if Model(9).String() != "model(9)" {
		t.Fatal("unknown model name")
	}
	if len(AllModels()) != 5 {
		t.Fatal("AllModels incomplete")
	}
}
