package pattern_test

import (
	"fmt"

	"jobgraph/internal/dag"
	"jobgraph/internal/pattern"
)

func ExampleClassify() {
	// A simple MapReduce job: two maps converging into one reduce —
	// the paper's archetypal inverted triangle.
	res, err := dag.FromTasks("job", []dag.TaskSpec{
		{Name: "M1"}, {Name: "M2"}, {Name: "R3_1_2"},
	}, dag.BuildOptions{})
	if err != nil {
		panic(err)
	}
	shape, err := pattern.Classify(res.Graph)
	if err != nil {
		panic(err)
	}
	model, err := pattern.ClassifyModel(res.Graph)
	if err != nil {
		panic(err)
	}
	fmt.Println(shape, "/", model)
	// Output:
	// inverted-triangle / map-reduce
}
