// Package pattern classifies job DAGs into the shape taxonomy of §V-B:
// straight chain, inverted triangle, diamond, hourglass, trapezium and
// hybrid combinations. The paper reports chains at 58% of DAG jobs,
// inverted triangles at 37%, with diamonds and the composite shapes in
// the tail.
//
// The classifier works on the level-width profile (the number of tasks
// at each longest-path layer) plus source/sink counts, which captures
// exactly the visual notions the paper uses:
//
//	chain              widths all 1
//	inverted triangle  convergent: non-increasing widths toward one sink
//	trapezium          divergent: non-decreasing widths, more sinks than sources
//	diamond            single source and sink with a wider middle
//	hourglass          wide at both ends, pinched in the middle
//	hybrid             any other combination
package pattern

import (
	"fmt"

	"jobgraph/internal/dag"
)

// Shape is one class in the taxonomy.
type Shape int

// Shape values. Singleton and Empty cover degenerate inputs that the
// paper filters out before classification but that real pipelines see.
const (
	Empty Shape = iota
	Singleton
	Chain
	InvertedTriangle
	Diamond
	Hourglass
	Trapezium
	Hybrid
)

var shapeNames = map[Shape]string{
	Empty:            "empty",
	Singleton:        "singleton",
	Chain:            "chain",
	InvertedTriangle: "inverted-triangle",
	Diamond:          "diamond",
	Hourglass:        "hourglass",
	Trapezium:        "trapezium",
	Hybrid:           "hybrid",
}

// String returns the shape's report label.
func (s Shape) String() string {
	if n, ok := shapeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// AllShapes lists every shape in report order.
func AllShapes() []Shape {
	return []Shape{Chain, InvertedTriangle, Diamond, Hourglass, Trapezium, Hybrid, Singleton, Empty}
}

// Classify assigns g a shape. It returns an error only when the graph is
// cyclic (invalid as a job DAG).
func Classify(g *dag.Graph) (Shape, error) {
	n := g.Size()
	if n == 0 {
		return Empty, nil
	}
	if n == 1 {
		return Singleton, nil
	}
	widths, err := g.WidthProfile()
	if err != nil {
		return Empty, err
	}
	nSources, nSinks := 0, 0
	for p := 0; p < g.NumNodes(); p++ {
		if len(g.PredPos(p)) == 0 {
			nSources++
		}
		if len(g.SuccPos(p)) == 0 {
			nSinks++
		}
	}

	if allOnes(widths) {
		// All levels width 1. With n > 1 and each level holding exactly
		// one task this is a straight chain when it is one connected
		// run; disconnected width-1 levels cannot happen because level
		// counts sum to n and depth == n forces a single path only if
		// connected — check connectivity to be precise.
		if g.IsConnected() && len(widths) == n {
			return Chain, nil
		}
		return Hybrid, nil
	}

	first, last := widths[0], widths[len(widths)-1]
	interiorMin := minInterior(widths)

	switch {
	case nSources == 1 && nSinks == 1 && first == 1 && last == 1:
		// Single entry, single exit, wider middle: diamond.
		return Diamond, nil
	case first > 1 && last > 1 && interiorMin >= 0 && interiorMin < first && interiorMin < last:
		return Hourglass, nil
	case nonIncreasing(widths) && first > last && nSinks <= nSources:
		return InvertedTriangle, nil
	case nonDecreasing(widths) && last > first && nSinks >= nSources:
		return Trapezium, nil
	default:
		return Hybrid, nil
	}
}

// Census tallies shapes across a set of graphs.
type Census struct {
	Counts map[Shape]int
	Total  int
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{Counts: make(map[Shape]int)}
}

// Add classifies g and records the result.
func (c *Census) Add(g *dag.Graph) error {
	s, err := Classify(g)
	if err != nil {
		return err
	}
	c.Counts[s]++
	c.Total++
	return nil
}

// Fraction returns the share of jobs with the given shape.
func (c *Census) Fraction(s Shape) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Counts[s]) / float64(c.Total)
}

func allOnes(ws []int) bool {
	for _, w := range ws {
		if w != 1 {
			return false
		}
	}
	return true
}

func nonIncreasing(ws []int) bool {
	for i := 1; i < len(ws); i++ {
		if ws[i] > ws[i-1] {
			return false
		}
	}
	return true
}

func nonDecreasing(ws []int) bool {
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			return false
		}
	}
	return true
}

// minInterior returns the smallest width strictly between the first and
// last levels, or -1 when there are fewer than three levels.
func minInterior(ws []int) int {
	if len(ws) < 3 {
		return -1
	}
	m := ws[1]
	for _, w := range ws[1 : len(ws)-1] {
		if w < m {
			m = w
		}
	}
	return m
}
