package cli

import (
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/core"
	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/flight"
)

// TestPanicWritesFlightDump is the acceptance path for crash capture: a
// panic escaping the command body through protect must leave a parseable
// <run_id>.flight.json carrying the panic value, the stack, and the
// events recorded before the crash — and the panic itself must still
// propagate.
func TestPanicWritesFlightDump(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	dir := t.TempDir()
	fs := flag.NewFlagSet("panictest", flag.ContinueOnError)
	o := RegisterObsFlagsOn(fs)
	if err := fs.Parse([]string{"-flight-dir", dir}); err != nil {
		t.Fatal(err)
	}
	s, err := o.Start("panictest")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate through protect")
		}
		d, err := flight.ReadFile(flight.DumpPath(dir, s.Info.RunID))
		if err != nil {
			t.Fatalf("flight dump does not round-trip: %v", err)
		}
		if d.Reason != "panic" || d.RunID != s.Info.RunID || d.Command != "panictest" {
			t.Fatalf("dump identity wrong: %+v", d)
		}
		if !strings.Contains(d.Detail, "kaboom") {
			t.Fatalf("dump detail %q does not carry the panic value", d.Detail)
		}
		if !strings.Contains(d.Stack, "protect") {
			t.Fatal("dump stack does not show the crash site")
		}
		found := false
		for _, ev := range d.Events {
			if ev.Kind == flight.KindSpanEnd && strings.Contains(ev.Name, "doomed") {
				found = true
			}
		}
		if !found {
			t.Fatal("dump ring does not hold the span recorded before the crash")
		}
	}()
	_ = protect(func() error {
		reg.StartSpan("doomed").End()
		panic("kaboom")
	})
}

// TestSessionWatchdogTrip drives the session-level stall path: a
// heartbeat that goes silent under -watchdog trips the poller, which
// records the warning and dump path on the session, arms cooperative
// cancellation (-watchdog-cancel via Configure), and lands the dump
// path in the run's ledger entry on Close.
func TestSessionWatchdogTrip(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "runs.jsonl")
	fs := flag.NewFlagSet("wdtest", flag.ContinueOnError)
	pf := RegisterPipelineFlagsOn(fs, "wdtest", true)
	if err := fs.Parse([]string{
		"-flight-dir", dir, "-watchdog", "50ms", "-watchdog-cancel", "-ledger", ledgerPath,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}

	hb := reg.Heartbeat("test.stall")
	hb.Beat() // arm, then go silent

	deadline := time.Now().Add(5 * time.Second)
	for s.FlightDump() == "" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	dump := s.FlightDump()
	if dump == "" {
		t.Fatal("watchdog did not trip on the silent heartbeat")
	}
	if _, err := flight.ReadFile(dump); err != nil {
		t.Fatalf("trip dump does not round-trip: %v", err)
	}
	if err := s.CancelErr(); !errors.Is(err, flight.ErrStalled) {
		t.Fatalf("CancelErr = %v, want ErrStalled", err)
	}

	// Configure must chain the trip into the cooperative hooks, and
	// preserve a pre-existing hook when the watchdog is quiet.
	var cfg core.Config
	pf.Configure(&cfg)
	if err := cfg.OnJob(1, 10); !errors.Is(err, flight.ErrStalled) {
		t.Fatalf("OnJob after trip = %v, want ErrStalled", err)
	}
	if err := cfg.OnRow(1, 10); !errors.Is(err, flight.ErrStalled) {
		t.Fatalf("OnRow after trip = %v, want ErrStalled", err)
	}

	hb.Done()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.FlightDump != dump {
		t.Fatalf("ledger flight_dump = %q, want %q", e.FlightDump, dump)
	}
	warned := false
	for _, w := range e.Warnings {
		if strings.Contains(w, "watchdog tripped") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("ledger warnings missing the trip: %v", e.Warnings)
	}
}

// TestCancelErrQuietWatchdog proves the cancellation probe stays nil
// while nothing has gone wrong — no watchdog trip, no termination
// signal — and that the hooks Configure installs (always, for
// SIGINT/SIGTERM coverage) pass cleanly on a healthy run.
func TestCancelErrQuietWatchdog(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	fs := flag.NewFlagSet("quiet", flag.ContinueOnError)
	pf := RegisterPipelineFlagsOn(fs, "quiet", true)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	s, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CancelErr(); err != nil {
		t.Fatalf("CancelErr on a healthy run = %v", err)
	}
	var cfg core.Config
	pf.Configure(&cfg)
	if cfg.OnJob == nil || cfg.OnRow == nil {
		t.Fatal("Configure did not install cancellation hooks")
	}
	if err := cfg.OnJob(1, 2); err != nil {
		t.Fatalf("OnJob on a healthy run = %v", err)
	}
	if err := cfg.OnRow(1, 2); err != nil {
		t.Fatalf("OnRow on a healthy run = %v", err)
	}
}
