//go:build unix

package cli

import (
	"os"
	"os/signal"
	"syscall"
)

// notifySIGQUIT arranges for dump to run when the process receives
// SIGQUIT, then re-raises the signal with the default handler restored
// — so the operator's ^\ still gets Go's full goroutine stack dump,
// now preceded by a flight dump on disk. The returned stop function
// uninstalls the handler (Close on the healthy path).
func notifySIGQUIT(dump func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	done := make(chan struct{})
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		select {
		case <-ch:
			dump()
			signal.Reset(syscall.SIGQUIT)
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
