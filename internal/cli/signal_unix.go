//go:build unix

package cli

import (
	"os"
	"os/signal"
	"syscall"
)

// notifySIGQUIT arranges for dump to run when the process receives
// SIGQUIT, then re-raises the signal with the default handler restored
// — so the operator's ^\ still gets Go's full goroutine stack dump,
// now preceded by a flight dump on disk. The returned stop function
// uninstalls the handler (Close on the healthy path).
func notifySIGQUIT(dump func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	done := make(chan struct{})
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		select {
		case <-ch:
			dump()
			signal.Reset(syscall.SIGQUIT)
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// notifyTermination watches SIGINT and SIGTERM. The first signal runs
// onFirst (once) so the command can finish cooperatively — batch runs
// cancel at the next progress hook, the daemon drains. A second signal
// means the operator is done waiting: hard exit with the conventional
// 128+signum status. The returned stop uninstalls the handler.
func notifyTermination(onFirst func(sig string)) (stop func()) {
	ch := make(chan os.Signal, 2)
	done := make(chan struct{})
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		var sig os.Signal
		select {
		case sig = <-ch:
		case <-done:
			return
		}
		onFirst(sigString(sig))
		select {
		case sig = <-ch:
			os.Exit(termExitCode(sig))
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

func sigString(sig os.Signal) string {
	if sig == syscall.SIGTERM {
		return "SIGTERM"
	}
	return "SIGINT"
}

// termExitCode is the shell convention: 128 + signal number.
func termExitCode(sig os.Signal) int {
	if sig == syscall.SIGTERM {
		return 143
	}
	return 130
}
