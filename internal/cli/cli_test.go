package cli

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jobgraph/internal/obs"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func TestLoadOrGenerateSynthetic(t *testing.T) {
	jobs, err := LoadOrGenerate("", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}

func TestLoadOrGenerateFromFile(t *testing.T) {
	records, err := tracegen.Generate(tracegen.DefaultConfig(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch_task.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTasks(f, records); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	jobs, err := LoadOrGenerate(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 100 {
		t.Fatalf("jobs = %d, want 100", len(jobs))
	}
}

func TestLoadOrGenerateMissingFile(t *testing.T) {
	if _, err := LoadOrGenerate("/nonexistent/batch_task.csv", 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadOrGenerateMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrGenerate(path, 0, 0); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestTraceWindowCoversGeneratedJobs(t *testing.T) {
	jobs, err := LoadOrGenerate("", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := TraceWindow()
	for _, j := range jobs {
		if _, end, ok := j.Window(); ok && end >= w {
			t.Fatalf("job %s ends at %d beyond window %d", j.Name, end, w)
		}
	}
}

func TestProtectRunsDefersOnFatalf(t *testing.T) {
	cleaned := false
	err := protect(func() error {
		defer func() { cleaned = true }()
		Fatalf("boom %d", 42)
		return nil
	})
	if !cleaned {
		t.Fatal("deferred cleanup skipped on Fatalf")
	}
	var ee *exitError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *exitError", err)
	}
	if ee.code != 1 || ee.Error() != "boom 42" {
		t.Fatalf("exitError = code %d %q", ee.code, ee.Error())
	}
}

func TestProtectExitCarriesCode(t *testing.T) {
	err := protect(func() error {
		Exit(3)
		return nil
	})
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != 3 {
		t.Fatalf("err = %v, want exit code 3", err)
	}
}

func TestProtectPassesThroughErrors(t *testing.T) {
	want := errors.New("plain failure")
	if err := protect(func() error { return want }); err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := protect(func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestProtectRepanicsForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_ = protect(func() error { panic("unrelated") })
}

// TestProtectRepanicsWithOriginalValue: a non-Fatalf panic must
// propagate with its original value, not a wrapped or stringified
// copy, so callers' recover logic and crash reports see the real
// cause.
func TestProtectRepanicsWithOriginalValue(t *testing.T) {
	type custom struct{ reason string }
	want := &custom{reason: "index out of range"}
	defer func() {
		got := recover()
		if got == nil {
			t.Fatal("foreign panic swallowed")
		}
		if got != want {
			t.Fatalf("panic value = %#v, want the original %#v", got, want)
		}
	}()
	_ = protect(func() error { panic(want) })
}

// TestDeferredMetricsSnapshotRunsOnFatalf: reproduce defers
// WriteMetrics before work begins; the snapshot must still land when
// the run dies via Fatalf.
func TestDeferredMetricsSnapshotRunsOnFatalf(t *testing.T) {
	dir := t.TempDir()
	err := protect(func() error {
		defer func() {
			if werr := WriteMetrics(dir); werr != nil {
				t.Errorf("WriteMetrics on Fatalf path: %v", werr)
			}
		}()
		Fatalf("pipeline exploded")
		return nil
	})
	var ee *exitError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *exitError", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "metrics.json")); serr != nil {
		t.Fatalf("metrics snapshot missing after Fatalf: %v", serr)
	}
}

func TestWriteMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := WriteMetrics(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), obs.SnapshotSchema) {
		t.Fatalf("snapshot missing schema marker: %s", data)
	}
	if err := WriteMetrics(""); err != nil {
		t.Fatalf("empty dir should be a no-op, got %v", err)
	}
}
