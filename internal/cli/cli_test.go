package cli

import (
	"os"
	"path/filepath"
	"testing"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func TestLoadOrGenerateSynthetic(t *testing.T) {
	jobs, err := LoadOrGenerate("", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}

func TestLoadOrGenerateFromFile(t *testing.T) {
	records, err := tracegen.Generate(tracegen.DefaultConfig(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch_task.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTasks(f, records); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	jobs, err := LoadOrGenerate(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 100 {
		t.Fatalf("jobs = %d, want 100", len(jobs))
	}
}

func TestLoadOrGenerateMissingFile(t *testing.T) {
	if _, err := LoadOrGenerate("/nonexistent/batch_task.csv", 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadOrGenerateMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrGenerate(path, 0, 0); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestTraceWindowCoversGeneratedJobs(t *testing.T) {
	jobs, err := LoadOrGenerate("", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := TraceWindow()
	for _, j := range jobs {
		if _, end, ok := j.Window(); ok && end >= w {
			t.Fatalf("job %s ends at %d beyond window %d", j.Name, end, w)
		}
	}
}
