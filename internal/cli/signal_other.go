//go:build !unix

package cli

import (
	"os"
	"os/signal"
)

// notifySIGQUIT is a no-op where SIGQUIT does not exist; panic and
// watchdog capture still work.
func notifySIGQUIT(func()) (stop func()) { return func() {} }

// notifyTermination watches os.Interrupt only where SIGTERM does not
// exist; semantics otherwise match the unix version.
func notifyTermination(onFirst func(sig string)) (stop func()) {
	ch := make(chan os.Signal, 2)
	done := make(chan struct{})
	signal.Notify(ch, os.Interrupt)
	go func() {
		select {
		case <-ch:
		case <-done:
			return
		}
		onFirst("interrupt")
		select {
		case <-ch:
			os.Exit(130)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
