//go:build !unix

package cli

// notifySIGQUIT is a no-op where SIGQUIT does not exist; panic and
// watchdog capture still work.
func notifySIGQUIT(func()) (stop func()) { return func() {} }
