package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/promexport"
	"jobgraph/internal/obs/traceexport"
)

// newTestFlags builds an ObsFlags on a private flag set and parses the
// given arguments, mirroring what a command's main does with
// flag.CommandLine.
func newTestFlags(t *testing.T, args ...string) *ObsFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := RegisterObsFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

// resetDefaultObs restores the state Start mutates on the shared
// Default registry so session tests don't leak into each other.
func resetDefaultObs(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		reg := obs.Default()
		reg.SetLogger(nil)
		reg.SetEventCapacity(0)
		reg.Reset()
	})
}

func TestSessionWritesTraceAndLedger(t *testing.T) {
	resetDefaultObs(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	ledgerPath := filepath.Join(dir, "runs", "ledger.jsonl")

	o := newTestFlags(t, "-trace-out", tracePath, "-ledger", ledgerPath)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	if reg.EventCapacity() != DefaultEventCapacity {
		t.Fatalf("event capacity = %d, want %d", reg.EventCapacity(), DefaultEventCapacity)
	}
	sp := reg.StartSpan("pipeline")
	sp.Child("wl.matrix").End()
	sp.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// The trace parses as a Perfetto document carrying the run identity.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceexport.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != 2 {
		t.Fatalf("trace complete events = %d, want 2", complete)
	}
	if doc.OtherData["run_id"] != sess.Info.RunID {
		t.Fatalf("trace run_id = %q, want %q", doc.OtherData["run_id"], sess.Info.RunID)
	}

	// The ledger holds one entry matching the session.
	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger entries = %d", len(entries))
	}
	e := entries[0]
	if e.RunID != sess.Info.RunID || e.Command != "testcmd" || e.ConfigHash != sess.Info.ConfigHash {
		t.Fatalf("entry identity mismatch: %+v vs %+v", e, sess.Info)
	}
	if e.WallMs <= 0 {
		t.Fatalf("wall_ms = %v", e.WallMs)
	}
	if e.Host.NumCPU <= 0 || e.Host.GoVersion == "" {
		t.Fatalf("host info missing: %+v", e.Host)
	}
	if e.Metrics.Schema != obs.SnapshotSchema {
		t.Fatalf("nested metrics schema = %q", e.Metrics.Schema)
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	resetDefaultObs(t)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	o := newTestFlags(t, "-ledger", ledgerPath)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	// Commands both defer Close and may hit it again via cleanup paths:
	// only the first call appends.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("double Close appended twice: %d entries", len(entries))
	}
	// A nil session is also safe (Start failed, defer still runs).
	var nilSess *RunSession
	if err := nilSess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWithoutOutputsIsQuiet(t *testing.T) {
	resetDefaultObs(t)
	o := newTestFlags(t)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	// No -trace-out → event retention stays disabled (hot path cheap).
	if got := obs.Default().EventCapacity(); got != 0 {
		t.Fatalf("event capacity = %d without -trace-out", got)
	}
	if sess.Info.RunID == "" || len(sess.Info.RunID) != 16 {
		t.Fatalf("run id = %q", sess.Info.RunID)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionDebugServer(t *testing.T) {
	resetDefaultObs(t)
	o := newTestFlags(t, "-debug-addr", "localhost:0")
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	if sess.closeDebug == nil {
		t.Fatal("debug server not started")
	}
	if sess.DebugAddr == "" || strings.HasSuffix(sess.DebugAddr, ":0") {
		t.Fatalf("DebugAddr = %q, want a resolved port", sess.DebugAddr)
	}

	// /metrics serves valid Prometheus text exposition while running.
	obs.Default().Counter("session.test_counter").Add(7)
	res, err := http.Get("http://" + sess.DebugAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "jobgraph_session_test_counter_total 7") {
		t.Fatalf("/metrics missing counter:\n%.400s", body)
	}
	if err := promexport.Check(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails lint:\n%v", err)
	}

	// /progress serves the progress schema.
	res, err = http.Get("http://" + sess.DebugAddr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), obs.ProgressSchema) {
		t.Fatalf("/progress = %.200s", body)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionProfileCapture(t *testing.T) {
	resetDefaultObs(t)
	dir := filepath.Join(t.TempDir(), "profiles")
	o := newTestFlags(t, "-profile-dir", dir)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		path := filepath.Join(dir, sess.Info.RunID+suffix)
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", suffix, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", suffix)
		}
	}
}

func TestSessionRuntimeSampler(t *testing.T) {
	resetDefaultObs(t)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	o := newTestFlags(t, "-ledger", ledgerPath)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger entries = %d", len(entries))
	}
	if g := entries[0].Metrics.Gauges["runtime.goroutines"]; g < 1 {
		t.Errorf("ledger runtime.goroutines = %d, want >= 1", g)
	}
}

func TestConfigHashDeterministic(t *testing.T) {
	mk := func(args ...string) string {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		RegisterObsFlagsOn(fs)
		fs.Int("gen", 2000, "")
		fs.Int64("seed", 1, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return configHash(fs)
	}
	a, b := mk("-gen", "500"), mk("-gen", "500")
	if a != b {
		t.Fatalf("same config hashed differently: %s vs %s", a, b)
	}
	if c := mk("-gen", "501"); c == a {
		t.Fatal("different config collided")
	}
	// Flag order on the command line doesn't matter: VisitAll is sorted.
	if d := mk("-seed", "2", "-gen", "500"); d != mk("-gen", "500", "-seed", "2") {
		t.Fatal("argument order changed the hash")
	}
	if configHash(nil) != "" {
		t.Fatal("nil flag set should hash empty")
	}
}

func TestRunIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := newRunID()
		if seen[id] {
			t.Fatalf("duplicate run id %s", id)
		}
		seen[id] = true
	}
}

func TestSessionStartedAtIsRecent(t *testing.T) {
	resetDefaultObs(t)
	o := newTestFlags(t)
	sess, err := o.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if d := time.Since(sess.Info.StartedAt); d < 0 || d > time.Minute {
		t.Fatalf("StartedAt skewed by %v", d)
	}
}
