package cli

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
	"jobgraph/internal/obs/flight"
	"jobgraph/internal/obs/promexport"
	"jobgraph/internal/obs/traceexport"
)

// ObsFlags is the observability flag set shared by every command:
//
//	-v            per-stage progress logging (slog text, Info level)
//	-log-json     structured JSON logs for machines
//	-debug-addr   live /metrics, /progress, expvar + pprof endpoint
//	-trace-out    Perfetto/chrome://tracing timeline JSON on exit
//	-ledger       append the run's metrics snapshot to a JSONL ledger
//	-profile-dir  capture CPU + heap profiles named by run id
//	-flight-dir   where crash/stall flight dumps land (default: temp dir)
//	-watchdog     stall watchdog budget for stages and heartbeats
//	-watchdog-cancel  cancel the run cooperatively when the watchdog trips
//	-watchdog-exit    exit 7 when the watchdog trips (for wedged runs)
//
// Register the flags before flag.Parse, Start the session after.
type ObsFlags struct {
	Verbose    bool
	LogJSON    bool
	DebugAddr  string
	TraceOut   string
	Ledger     string
	ProfileDir string

	FlightDir      string
	Watchdog       time.Duration
	WatchdogCancel bool
	WatchdogExit   bool

	fs *flag.FlagSet
}

// RegisterObsFlags registers the shared observability flags on the
// process flag set.
func RegisterObsFlags() *ObsFlags { return RegisterObsFlagsOn(flag.CommandLine) }

// RegisterObsFlagsOn registers the shared observability flags on fs
// (tests use private flag sets).
func RegisterObsFlagsOn(fs *flag.FlagSet) *ObsFlags {
	o := &ObsFlags{fs: fs}
	fs.BoolVar(&o.Verbose, "v", false, "log per-stage progress to stderr")
	fs.BoolVar(&o.LogJSON, "log-json", false, "emit logs as JSON instead of text")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/vars and /debug/pprof/ on this address (e.g. localhost:6060)")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a Perfetto-compatible trace JSON to this path on exit")
	fs.StringVar(&o.Ledger, "ledger", "", "append this run's metrics snapshot to this JSONL run ledger")
	fs.StringVar(&o.ProfileDir, "profile-dir", "", "write <run_id>.cpu.pprof and <run_id>.heap.pprof into this directory")
	fs.StringVar(&o.FlightDir, "flight-dir", "", "write <run_id>.flight.json crash/stall dumps into this directory (default: the system temp dir)")
	fs.DurationVar(&o.Watchdog, "watchdog", 0, "trip the stall watchdog when a stage or worker pool is silent this long (0: disabled)")
	fs.BoolVar(&o.WatchdogCancel, "watchdog-cancel", false, "on a watchdog trip, also cancel the run cooperatively at the next progress callback")
	fs.BoolVar(&o.WatchdogExit, "watchdog-exit", false, "on a watchdog trip, exit with status 7 after capturing the flight dump (for runs wedged beyond cooperative cancellation)")
	return o
}

// RunInfo identifies one command invocation for logs, traces and the
// ledger.
type RunInfo struct {
	RunID      string // random per-invocation id
	Command    string
	ConfigHash string // hash of the effective flag configuration
	GitSHA     string // vcs revision when the binary carries build info
	StartedAt  time.Time
	Host       ledger.Host
}

// RunSession is one command's live observability state: the structured
// logger (also installed on the Default obs registry) plus the exit
// work — trace export, ledger append, debug-server shutdown — that
// Close performs. Commands defer Close inside cli.Run so it also runs
// on the Fatalf path.
type RunSession struct {
	Info   RunInfo
	Logger *slog.Logger
	// DebugAddr is the debug server's resolved listen address (empty
	// without -debug-addr) — with -debug-addr :0, the kernel-assigned
	// port lands here.
	DebugAddr string

	flags      *ObsFlags
	closeDebug func() error
	sampler    *obs.RuntimeSampler
	cpuProfile *os.File
	closed     bool

	recorder *flight.Recorder
	watchdog *flight.Watchdog
	sigStop  func()
	termStop func()
	termCh   chan struct{}

	// mu guards warnings, flightDump and the termination state: the
	// watchdog trips and signals arrive on their own goroutines while
	// the command body may be adding warnings.
	mu         sync.Mutex
	warnings   []string
	flightDump string
	termSig    string
	termHooks  []func()
}

// ErrTerminated marks a run stopped cooperatively by SIGINT or SIGTERM.
// Pipeline hooks surface it through CancelErr; match with errors.Is.
var ErrTerminated = errors.New("cli: terminated by signal")

// Terminated returns a channel closed when the first SIGINT/SIGTERM
// arrives — the daemon's cue to stop accepting and drain. A second
// signal hard-exits the process (130/143), so a wedged drain never
// traps the operator.
func (s *RunSession) Terminated() <-chan struct{} { return s.termCh }

// TermErr reports the termination signal as an error wrapping
// ErrTerminated, or nil while the run is unsignalled.
func (s *RunSession) TermErr() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	sig := s.termSig
	s.mu.Unlock()
	if sig == "" {
		return nil
	}
	return fmt.Errorf("%w (%s)", ErrTerminated, sig)
}

// OnTerminate registers fn to run (on the signal goroutine) when the
// first termination signal arrives. Registered after the signal, fn
// runs immediately.
func (s *RunSession) OnTerminate(fn func()) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	fired := s.termSig != ""
	if !fired {
		s.termHooks = append(s.termHooks, fn)
	}
	s.mu.Unlock()
	if fired {
		fn()
	}
}

// AddWarning records a non-fatal degradation on the session: it is
// logged immediately at Warn level and lands in the run's ledger entry
// on Close. Call before Close. Safe from any goroutine (the stall
// watchdog warns from its polling goroutine).
func (s *RunSession) AddWarning(w string) {
	if s == nil || w == "" {
		return
	}
	s.mu.Lock()
	s.warnings = append(s.warnings, w)
	s.mu.Unlock()
	s.Logger.Warn("run degraded", "warning", w)
}

// FlightDump returns the path of the flight dump captured by a
// watchdog trip this run, or "" when none was written.
func (s *RunSession) FlightDump() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flightDump
}

// CancelErr reports why the run should stop: non-nil once a
// termination signal has arrived (wrapping ErrTerminated), or once the
// watchdog has tripped with -watchdog-cancel set (wrapping
// flight.ErrStalled). Wired into the pipeline's cooperative progress
// hooks by PipelineFlags.Configure, so both SIGINT/SIGTERM and a
// tripped watchdog stop a batch run at the next per-job/per-row
// callback — the same cooperative path the daemon's drain uses.
func (s *RunSession) CancelErr() error {
	if s == nil {
		return nil
	}
	if err := s.TermErr(); err != nil {
		return err
	}
	if s.watchdog == nil || !s.flags.WatchdogCancel {
		return nil
	}
	return s.watchdog.Err()
}

// flightDir resolves where crash and stall artifacts land.
func (s *RunSession) flightDir() string {
	if s.flags.FlightDir != "" {
		return s.flags.FlightDir
	}
	return os.TempDir()
}

// dumpFlight captures counter deltas and writes the flight dump,
// returning its path ("" on failure — crash paths must not fail on
// telemetry).
func (s *RunSession) dumpFlight(reason, detail string, stack []byte) string {
	if s == nil || s.recorder == nil {
		return ""
	}
	s.recorder.CaptureMetrics()
	path, err := s.recorder.DumpTo(s.flightDir(), reason, detail, string(stack))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flight dump failed: %v\n", err)
		return ""
	}
	fmt.Fprintf(os.Stderr, "flight dump written to %s\n", path)
	return path
}

// DefaultEventCapacity bounds the span event ring enabled by
// -trace-out: at ~48 bytes per retained event this caps memory near
// 800 KiB while holding every stage of even a reproduce run.
const DefaultEventCapacity = 1 << 14

// Start builds the run identity, installs the structured logger on the
// Default obs registry, enables span-event retention when a trace is
// requested, and starts the debug server when configured.
func (o *ObsFlags) Start(command string) (*RunSession, error) {
	info := RunInfo{
		RunID:      newRunID(),
		Command:    command,
		ConfigHash: configHash(o.fs),
		GitSHA:     gitSHA(),
		StartedAt:  time.Now(),
		Host:       hostInfo(),
	}
	level := slog.LevelWarn
	if o.Verbose {
		level = slog.LevelInfo
	}
	reg := obs.Default()
	// The flight recorder rides along on every run: a bounded in-memory
	// ring of recent spans, stage transitions and log records that a
	// panic, SIGQUIT or watchdog trip dumps as <run_id>.flight.json.
	rec := flight.NewRecorder(reg, flight.DefaultCapacity)
	rec.SetRunInfo(info.RunID, command)
	reg.SetObserver(rec)

	var h slog.Handler
	if o.LogJSON {
		h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		h = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	// Tee log records into the ring regardless of the stderr level, so
	// a crash dump carries the Info-level narrative even on quiet runs.
	h = rec.TeeHandler(h)
	lg := slog.New(h).With("cmd", command, "run_id", info.RunID, "config_hash", info.ConfigHash)
	reg.SetLogger(lg)

	if o.TraceOut != "" {
		reg.SetEventCapacity(DefaultEventCapacity)
	}

	s := &RunSession{Info: info, Logger: lg, flags: o, recorder: rec,
		termCh: make(chan struct{})}

	// Crash capture: a panic escaping the command body (via cli.Run's
	// protect) and a SIGQUIT both flush the ring before the process
	// dies; SIGQUIT then re-raises so Go's default stack dump still
	// prints.
	installCrashDump(func(reason, detail string, stack []byte) {
		s.dumpFlight(reason, detail, stack)
	})
	s.sigStop = notifySIGQUIT(func() {
		s.dumpFlight("sigquit", "SIGQUIT received", nil)
	})
	// Cooperative termination: the first SIGINT/SIGTERM flips the
	// session's termination state (CancelErr, Terminated, OnTerminate
	// hooks); a second one hard-exits. Every command gets the same
	// two-signal contract — batch runs cancel at the next progress
	// callback, the daemon starts its drain.
	s.termStop = notifyTermination(func(sig string) {
		s.mu.Lock()
		s.termSig = sig
		hooks := s.termHooks
		s.termHooks = nil
		s.mu.Unlock()
		lg.Warn("termination signal received; finishing cooperatively (signal again to force exit)", "signal", sig)
		close(s.termCh)
		for _, fn := range hooks {
			fn()
		}
	})

	if o.Watchdog > 0 {
		s.watchdog = flight.NewWatchdog(flight.Config{
			Registry:         reg,
			Recorder:         rec,
			StageBudget:      o.Watchdog,
			HeartbeatTimeout: o.Watchdog,
			FlightDir:        s.flightDir(),
			RunID:            info.RunID,
			OnTrip: func(ti flight.TripInfo) {
				s.mu.Lock()
				s.flightDump = ti.DumpPath
				s.mu.Unlock()
				s.AddWarning(fmt.Sprintf("watchdog tripped: %s", ti))
				if o.WatchdogExit {
					fmt.Fprintf(os.Stderr, "watchdog: %s; flight dump at %s\n", ti, ti.DumpPath)
					os.Exit(7)
				}
			},
		})
		s.watchdog.Start()
	}
	if o.DebugAddr != "" {
		ds, err := reg.ServeDebug(o.DebugAddr, obs.Endpoint{
			Pattern: "/metrics",
			Handler: promexport.Handler(reg),
		})
		if err != nil {
			return nil, err
		}
		// Announced unconditionally (not at Info) so -debug-addr :0 is
		// usable without -v.
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/metrics, /progress, /debug/vars and /debug/pprof/\n", ds.Addr)
		s.DebugAddr = ds.Addr
		s.closeDebug = ds.Close
	}
	// Runtime self-telemetry rides along with every instrumented output:
	// a scrape, the exit snapshot and the ledger all carry runtime.*
	// gauges without each command opting in.
	if o.DebugAddr != "" || o.Ledger != "" || o.TraceOut != "" {
		s.sampler = reg.NewRuntimeSampler()
		s.sampler.Start(obs.DefaultRuntimeSampleInterval)
	}
	if o.ProfileDir != "" {
		if err := s.startCPUProfile(); err != nil {
			s.Close()
			return nil, err
		}
	}
	lg.Info("run started", "git_sha", info.GitSHA, "host", info.Host.Hostname,
		"go", info.Host.GoVersion, "cpus", info.Host.NumCPU)
	return s, nil
}

// startCPUProfile begins CPU profiling into
// <profile-dir>/<run_id>.cpu.pprof.
func (s *RunSession) startCPUProfile() error {
	if err := os.MkdirAll(s.flags.ProfileDir, 0o755); err != nil {
		return fmt.Errorf("cli: profile dir: %w", err)
	}
	path := filepath.Join(s.flags.ProfileDir, s.Info.RunID+".cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cli: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cli: cpu profile: %w", err)
	}
	s.cpuProfile = f
	return nil
}

// stopProfiles ends the CPU profile and writes the heap profile; both
// are named by run id so profiles pair with ledger entries.
func (s *RunSession) stopProfiles() error {
	var errs []error
	if s.cpuProfile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuProfile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cli: cpu profile: %w", err))
		} else {
			s.Logger.Info("cpu profile written", "path", s.cpuProfile.Name())
		}
		s.cpuProfile = nil
	}
	if s.flags.ProfileDir != "" {
		path := filepath.Join(s.flags.ProfileDir, s.Info.RunID+".heap.pprof")
		f, err := os.Create(path)
		if err != nil {
			return errors.Join(append(errs, fmt.Errorf("cli: heap profile: %w", err))...)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			errs = append(errs, fmt.Errorf("cli: heap profile: %w", err))
		} else {
			s.Logger.Info("heap profile written", "path", path)
		}
		if err := f.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cli: heap profile: %w", err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes the run's observability outputs: the Perfetto trace,
// the ledger entry, and the debug server. Safe to call once deferred
// and again explicitly; later calls are no-ops.
func (s *RunSession) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	reg := obs.Default()
	var errs []error
	// Crash capture stands down first: after Close the ring stops
	// filling and a later panic belongs to whatever runs next.
	if s.watchdog != nil {
		s.watchdog.Stop()
	}
	if s.sigStop != nil {
		s.sigStop()
	}
	if s.termStop != nil {
		s.termStop()
	}
	installCrashDump(nil)
	if s.recorder != nil {
		reg.SetObserver(nil)
	}
	// Profiles and the final runtime sample land before the snapshot
	// consumers below, so the ledger entry sees up-to-date gauges.
	if err := s.stopProfiles(); err != nil {
		errs = append(errs, err)
	}
	if s.sampler != nil {
		s.sampler.Stop()
	}
	if s.flags.TraceOut != "" {
		events := reg.Events()
		meta := traceexport.Meta{
			Process: s.Info.Command,
			Labels: map[string]string{
				"run_id":      s.Info.RunID,
				"config_hash": s.Info.ConfigHash,
			},
		}
		if s.Info.GitSHA != "" {
			meta.Labels["git_sha"] = s.Info.GitSHA
		}
		if err := traceexport.WriteFile(s.flags.TraceOut, events, meta); err != nil {
			errs = append(errs, err)
		} else {
			s.Logger.Info("trace written", "path", s.flags.TraceOut,
				"events", len(events), "dropped", reg.EventsDropped())
		}
	}
	if s.flags.Ledger != "" {
		s.mu.Lock()
		warnings := append([]string(nil), s.warnings...)
		dump := s.flightDump
		s.mu.Unlock()
		e := ledger.Entry{
			Schema:     ledger.Schema,
			RunID:      s.Info.RunID,
			Command:    s.Info.Command,
			StartedAt:  s.Info.StartedAt.UTC(),
			WallMs:     float64(time.Since(s.Info.StartedAt)) / float64(time.Millisecond),
			GitSHA:     s.Info.GitSHA,
			ConfigHash: s.Info.ConfigHash,
			Host:       s.Info.Host,
			Metrics:    reg.Snapshot(),
			Warnings:   warnings,
			FlightDump: dump,
		}
		if err := ledger.Append(s.flags.Ledger, e); err != nil {
			errs = append(errs, err)
		} else {
			s.Logger.Info("ledger appended", "path", s.flags.Ledger, "run_id", e.RunID)
		}
	}
	if s.closeDebug != nil {
		if err := s.closeDebug(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// newRunID returns a 16-hex-char random run id (time-derived when the
// system RNG is unavailable).
func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// configHash fingerprints the effective flag configuration — every
// flag's value, defaults included — so runs are comparable exactly
// when their configuration matches. Call after flag.Parse.
func configHash(fs *flag.FlagSet) string {
	if fs == nil {
		return ""
	}
	h := fnv.New64a()
	fs.VisitAll(func(f *flag.Flag) {
		fmt.Fprintf(h, "%s=%s\n", f.Name, f.Value.String())
	})
	return fmt.Sprintf("%016x", h.Sum64())
}

// gitSHA reads the vcs revision stamped into the binary, if any
// (absent under plain `go run` without VCS stamping).
func gitSHA() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// hostInfo describes the current machine for the ledger.
func hostInfo() ledger.Host {
	hn, _ := os.Hostname()
	return ledger.Host{
		Hostname:  hn,
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}
