//go:build unix

package cli

import (
	"errors"
	"flag"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"jobgraph/internal/core"
	"jobgraph/internal/obs"
)

// One real SIGTERM to ourselves: the session handler must intercept it
// (not kill the test binary), flip every termination surface —
// Terminated, TermErr, CancelErr, OnTerminate, the Configure'd hooks —
// and late OnTerminate registrations must still fire.
func TestSessionTermination(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()
	defer reg.SetObserver(nil)

	fs := flag.NewFlagSet("term", flag.ContinueOnError)
	pf := RegisterPipelineFlagsOn(fs, "term", true)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	s, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var cfg core.Config
	pf.Configure(&cfg)

	var hooked atomic.Int32
	s.OnTerminate(func() { hooked.Add(1) })

	if err := s.TermErr(); err != nil {
		t.Fatalf("TermErr before signal = %v", err)
	}
	select {
	case <-s.Terminated():
		t.Fatal("Terminated closed before any signal")
	default:
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Terminated():
	case <-time.After(5 * time.Second):
		t.Fatal("Terminated never closed after SIGTERM")
	}
	if hooked.Load() != 1 {
		t.Fatalf("OnTerminate hook ran %d times, want 1", hooked.Load())
	}
	// Registration after the signal fires immediately.
	s.OnTerminate(func() { hooked.Add(1) })
	if hooked.Load() != 2 {
		t.Fatalf("late OnTerminate did not fire: %d", hooked.Load())
	}

	if err := s.TermErr(); !errors.Is(err, ErrTerminated) {
		t.Fatalf("TermErr = %v, want ErrTerminated", err)
	}
	if err := s.CancelErr(); !errors.Is(err, ErrTerminated) {
		t.Fatalf("CancelErr = %v, want ErrTerminated", err)
	}
	// The pipeline hooks now abort the run cooperatively.
	if err := cfg.OnJob(1, 10); !errors.Is(err, ErrTerminated) {
		t.Fatalf("OnJob after signal = %v, want ErrTerminated", err)
	}
	if err := cfg.OnRow(1, 10); !errors.Is(err, ErrTerminated) {
		t.Fatalf("OnRow after signal = %v, want ErrTerminated", err)
	}
}
