package cli

import (
	"flag"
	"fmt"
	"time"

	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
	"jobgraph/internal/trace"
)

// RegisterWorkersFlag registers the shared -workers flag on the process
// flag set: one knob for every parallel stage (shard decoding, job
// grouping, candidate filtering, the per-job DAG stage, the kernel
// matrix). 0 uses every CPU; 1 forces the sequential pipeline, which
// reproduces the parallel output bit-for-bit.
func RegisterWorkersFlag() *int { return RegisterWorkersFlagOn(flag.CommandLine) }

// RegisterWorkersFlagOn registers -workers on fs (tests use private
// flag sets).
func RegisterWorkersFlagOn(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines for parallel stages (0: all CPUs, 1: sequential)")
}

// StreamJobs streams a trace table through trace.ForEachJob under the
// trace.load span: each job is handed to fn as soon as its rows are
// complete, so memory stays bounded by the job window instead of the
// table size. Budget violations surface as a *trace.BudgetError.
func StreamJobs(path string, opt trace.ReadOptions, fn func(trace.Job) error) (*trace.ReadStats, error) {
	reg := obs.Default()
	sp := reg.StartSpan(stages.TraceLoad)
	f, err := trace.OpenTable(path)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	var jobs int64
	stats, err := trace.ForEachJob(f, opt, func(j trace.Job) error {
		jobs++
		return fn(j)
	})
	if err != nil {
		return &stats, fmt.Errorf("parse trace %s: %w", path, err)
	}
	reg.Counter("trace.jobs_loaded").Add(jobs)
	d := sp.End()
	reg.Logger().Info("stage complete", "stage", stages.TraceLoad,
		"duration", d.Round(time.Microsecond), "jobs", jobs, "source", path,
		"ingest", stats.Summary())
	return &stats, nil
}
