package cli

import (
	"flag"

	"jobgraph/internal/core"
	"jobgraph/internal/trace"
)

// PipelineFlags folds the per-command pipeline plumbing — the shared
// observability session, resilient ingest, the -workers bound, and the
// artifact cache — into one registration:
//
//	pf := cli.RegisterPipelineFlags("clusterjobs", true)
//	flag.Parse()
//	sess, err := pf.Start()
//	defer sess.Close()
//	defer pf.Close()
//	readOpts, err := pf.ReadOptions()
//	...
//	pf.Configure(&cfg) // Workers + CacheDir onto a core.Config
//
// The cache flags (-cache-dir, -no-cache) are only registered when the
// command runs the analysis pipeline; pre-flight tools like tracecheck
// pass cache=false and keep their flag surface honest.
type PipelineFlags struct {
	Obs     *ObsFlags
	Ingest  *IngestFlags
	Workers *int

	// CacheDir and NoCache are the artifact-cache knobs. Use
	// EffectiveCacheDir (or Configure), which resolves their
	// interaction, rather than reading CacheDir directly.
	CacheDir string
	NoCache  bool

	command string
}

// RegisterPipelineFlags registers the shared pipeline flags on the
// process flag set. command names the observability session; cache
// controls whether the artifact-cache flags are registered.
func RegisterPipelineFlags(command string, cache bool) *PipelineFlags {
	return RegisterPipelineFlagsOn(flag.CommandLine, command, cache)
}

// RegisterPipelineFlagsOn registers the shared pipeline flags on fs
// (tests use private flag sets).
func RegisterPipelineFlagsOn(fs *flag.FlagSet, command string, cache bool) *PipelineFlags {
	p := &PipelineFlags{
		Obs:     RegisterObsFlagsOn(fs),
		Ingest:  RegisterIngestFlagsOn(fs),
		Workers: RegisterWorkersFlagOn(fs),
		command: command,
	}
	if cache {
		fs.StringVar(&p.CacheDir, "cache-dir", "",
			"persist stage artifacts to this content-addressed cache directory and reuse them on matching re-runs")
		fs.BoolVar(&p.NoCache, "no-cache", false,
			"run fully uncached even when -cache-dir is set (cold-run baselines)")
	}
	return p
}

// Start opens the observability session. Call after flag.Parse; defer
// Close on the returned session.
func (p *PipelineFlags) Start() (*RunSession, error) { return p.Obs.Start(p.command) }

// ReadOptions builds the trace reader configuration the flags describe:
// ingest budgets and quarantine plus the shared worker bound. The
// quarantine sidecar (when configured) stays open until Close.
func (p *PipelineFlags) ReadOptions() (trace.ReadOptions, error) {
	opt, err := p.Ingest.Options()
	if err != nil {
		return opt, err
	}
	opt.Workers = *p.Workers
	return opt, nil
}

// Close releases flag-owned resources (the quarantine sidecar). Safe
// to call when nothing was opened, and more than once.
func (p *PipelineFlags) Close() error { return p.Ingest.Close() }

// EffectiveCacheDir resolves the artifact-cache directory: -no-cache
// wins over -cache-dir.
func (p *PipelineFlags) EffectiveCacheDir() string {
	if p.NoCache {
		return ""
	}
	return p.CacheDir
}

// Configure applies the shared pipeline knobs to a core configuration.
func (p *PipelineFlags) Configure(cfg *core.Config) {
	cfg.Workers = *p.Workers
	cfg.CacheDir = p.EffectiveCacheDir()
}
