package cli

import (
	"flag"

	"jobgraph/internal/core"
	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
)

// PipelineFlags folds the per-command pipeline plumbing — the shared
// observability session, resilient ingest, the -workers bound, and the
// artifact cache — into one registration:
//
//	pf := cli.RegisterPipelineFlags("clusterjobs", true)
//	flag.Parse()
//	sess, err := pf.Start()
//	defer sess.Close()
//	defer pf.Close()
//	readOpts, err := pf.ReadOptions()
//	...
//	pf.Configure(&cfg) // Workers + CacheDir onto a core.Config
//
// The cache flags (-cache-dir, -no-cache) are only registered when the
// command runs the analysis pipeline; pre-flight tools like tracecheck
// pass cache=false and keep their flag surface honest.
type PipelineFlags struct {
	Obs     *ObsFlags
	Ingest  *IngestFlags
	Workers *int

	// CacheDir and NoCache are the artifact-cache knobs. Use
	// EffectiveCacheDir (or Configure), which resolves their
	// interaction, rather than reading CacheDir directly.
	CacheDir string
	NoCache  bool

	// SlowJobs sizes the slow-job exemplar list (-slow-jobs); only
	// registered for analysis commands (cache=true).
	SlowJobs int

	command string
	sess    *RunSession
	arena   *taskname.Arena
}

// RegisterPipelineFlags registers the shared pipeline flags on the
// process flag set. command names the observability session; cache
// controls whether the artifact-cache flags are registered.
func RegisterPipelineFlags(command string, cache bool) *PipelineFlags {
	return RegisterPipelineFlagsOn(flag.CommandLine, command, cache)
}

// RegisterPipelineFlagsOn registers the shared pipeline flags on fs
// (tests use private flag sets).
func RegisterPipelineFlagsOn(fs *flag.FlagSet, command string, cache bool) *PipelineFlags {
	p := &PipelineFlags{
		Obs:     RegisterObsFlagsOn(fs),
		Ingest:  RegisterIngestFlagsOn(fs),
		Workers: RegisterWorkersFlagOn(fs),
		command: command,
	}
	if cache {
		fs.StringVar(&p.CacheDir, "cache-dir", "",
			"persist stage artifacts to this content-addressed cache directory and reuse them on matching re-runs")
		fs.BoolVar(&p.NoCache, "no-cache", false,
			"run fully uncached even when -cache-dir is set (cold-run baselines)")
		fs.IntVar(&p.SlowJobs, "slow-jobs", 0,
			"slow-job exemplars to keep from DAG construction (0: default 8, negative: off)")
	}
	return p
}

// Start opens the observability session. Call after flag.Parse; defer
// Close on the returned session.
func (p *PipelineFlags) Start() (*RunSession, error) {
	s, err := p.Obs.Start(p.command)
	p.sess = s
	return s, err
}

// ReadOptions builds the trace reader configuration the flags describe:
// ingest budgets and quarantine plus the shared worker bound. The
// quarantine sidecar (when configured) stays open until Close. The
// returned options carry the command's task-name interning arena, the
// same one Configure hands to the pipeline — records read here resolve
// their name symbols for free during DAG construction.
func (p *PipelineFlags) ReadOptions() (trace.ReadOptions, error) {
	opt, err := p.Ingest.Options()
	if err != nil {
		return opt, err
	}
	opt.Workers = *p.Workers
	opt.Arena = p.Arena()
	return opt, nil
}

// Arena returns the command's task-name interning arena, created on
// first use. One arena spans the whole command: the trace read interns
// under it and the pipeline resolves against it.
func (p *PipelineFlags) Arena() *taskname.Arena {
	if p.arena == nil {
		p.arena = taskname.NewArena()
	}
	return p.arena
}

// Close releases flag-owned resources (the quarantine sidecar). Safe
// to call when nothing was opened, and more than once.
func (p *PipelineFlags) Close() error { return p.Ingest.Close() }

// EffectiveCacheDir resolves the artifact-cache directory: -no-cache
// wins over -cache-dir.
func (p *PipelineFlags) EffectiveCacheDir() string {
	if p.NoCache {
		return ""
	}
	return p.CacheDir
}

// Configure applies the shared pipeline knobs to a core configuration
// and chains the session's cancellation state — SIGINT/SIGTERM, plus
// the watchdog with -watchdog-cancel — into the cooperative progress
// hooks, so any of them aborts the pipeline at the next per-job/per-row
// callback instead of letting the stage run on.
func (p *PipelineFlags) Configure(cfg *core.Config) {
	cfg.Workers = *p.Workers
	cfg.CacheDir = p.EffectiveCacheDir()
	cfg.SlowJobK = p.SlowJobs
	cfg.Arena = p.Arena()
	if p.sess != nil {
		cfg.OnJob = chainCancel(cfg.OnJob, p.sess.CancelErr)
		cfg.OnRow = chainCancel(cfg.OnRow, p.sess.CancelErr)
	}
}

// chainCancel wraps a progress hook so check's error (the watchdog
// trip) cancels the run even when no hook was installed.
func chainCancel(prev func(done, total int) error, check func() error) func(done, total int) error {
	return func(done, total int) error {
		if err := check(); err != nil {
			return err
		}
		if prev != nil {
			return prev(done, total)
		}
		return nil
	}
}
