package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jobgraph/internal/faultinject"
	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
	"jobgraph/internal/trace"
)

// IngestFlags is the resilient-ingestion flag set shared by commands
// that read trace tables:
//
//	-lenient        skip malformed rows instead of aborting
//	-max-bad-rows   absolute bad-row budget (0: unlimited)
//	-max-bad-ratio  bad/total ratio budget (0: unlimited)
//	-quarantine     write skipped rows with provenance to this file
//
// Register before flag.Parse; call Options after to build the reader
// configuration (which opens the quarantine sidecar), and defer Close.
type IngestFlags struct {
	Lenient     bool
	MaxBadRows  int64
	MaxBadRatio float64
	Quarantine  string
	// StallBytes (-fi-stall-bytes) is a fault injector: deliver this
	// many bytes of the trace, then block the reader forever. Exists to
	// exercise the stall watchdog end to end (make flight-demo, CI);
	// never set it on a real run.
	StallBytes int64

	qfile *os.File
}

// RegisterIngestFlags registers the ingestion flags on the process
// flag set.
func RegisterIngestFlags() *IngestFlags { return RegisterIngestFlagsOn(flag.CommandLine) }

// RegisterIngestFlagsOn registers the ingestion flags on fs (tests use
// private flag sets).
func RegisterIngestFlagsOn(fs *flag.FlagSet) *IngestFlags {
	f := &IngestFlags{}
	fs.BoolVar(&f.Lenient, "lenient", false, "skip malformed trace rows (with budgets) instead of aborting on the first")
	fs.Int64Var(&f.MaxBadRows, "max-bad-rows", 0, "abort a lenient read after this many bad rows (0: unlimited)")
	fs.Float64Var(&f.MaxBadRatio, "max-bad-ratio", 0, "abort a lenient read when bad/total exceeds this ratio (0: unlimited)")
	fs.StringVar(&f.Quarantine, "quarantine", "", "write skipped rows verbatim (with line/offset provenance) to this sidecar file")
	fs.Int64Var(&f.StallBytes, "fi-stall-bytes", 0, "FAULT INJECTION: stall the trace reader forever after this many bytes (0: off) — pairs with -watchdog to demo stall detection")
	return f
}

// Options builds the trace.ReadOptions the flags describe, creating the
// quarantine sidecar when one is configured. The caller owns the
// sidecar's lifetime through Close.
func (f *IngestFlags) Options() (trace.ReadOptions, error) {
	opt := trace.ReadOptions{
		MaxBadRows:  f.MaxBadRows,
		MaxBadRatio: f.MaxBadRatio,
	}
	if f.Lenient {
		opt.Mode = trace.Lenient
	}
	if f.Quarantine != "" {
		if !f.Lenient {
			return opt, fmt.Errorf("cli: -quarantine requires -lenient (strict mode aborts on the first bad row)")
		}
		qf, err := os.Create(f.Quarantine)
		if err != nil {
			return opt, fmt.Errorf("cli: quarantine sidecar: %w", err)
		}
		f.qfile = qf
		opt.Quarantine = qf
	}
	if f.StallBytes > 0 {
		n := f.StallBytes
		opt.WrapReader = func(r io.Reader) io.Reader { return faultinject.StallAt(r, n) }
	}
	return opt, nil
}

// Close flushes and closes the quarantine sidecar, if open. Safe to
// call when no sidecar was configured, and more than once.
func (f *IngestFlags) Close() error {
	if f.qfile == nil {
		return nil
	}
	qf := f.qfile
	f.qfile = nil
	if err := qf.Close(); err != nil {
		return fmt.Errorf("cli: quarantine sidecar: %w", err)
	}
	return nil
}

// LoadOrGenerateOpts is LoadOrGenerate under explicit trace read
// options: it returns the ingest-health stats alongside the jobs when
// the trace came from a file (nil when generated). Budget violations
// surface as a *trace.BudgetError.
func LoadOrGenerateOpts(path string, numJobs int, seed int64, opt trace.ReadOptions) ([]trace.Job, *trace.ReadStats, error) {
	if path == "" {
		jobs, err := LoadOrGenerate("", numJobs, seed)
		return jobs, nil, err
	}
	reg := obs.Default()
	sp := reg.StartSpan(stages.TraceLoad)
	f, err := trace.OpenTable(path)
	if err != nil {
		return nil, nil, fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	jobs, stats, err := trace.ReadJobsOpts(f, opt)
	if err != nil {
		return nil, &stats, fmt.Errorf("parse trace %s: %w", path, err)
	}
	reg.Counter("trace.jobs_loaded").Add(int64(len(jobs)))
	d := sp.End()
	reg.Logger().Info("stage complete", "stage", stages.TraceLoad,
		"duration", d.Round(time.Microsecond), "jobs", len(jobs), "source", path,
		"ingest", stats.Summary())
	return jobs, &stats, nil
}
