package cli

import (
	"flag"
	"testing"

	"jobgraph/internal/core"
	"jobgraph/internal/trace"
)

func TestPipelineFlagsConfigure(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := RegisterPipelineFlagsOn(fs, "test", true)
	if err := fs.Parse([]string{"-workers", "3", "-cache-dir", "/tmp/c", "-lenient"}); err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	if *pf.Workers != 3 {
		t.Fatalf("workers = %d", *pf.Workers)
	}
	opts, err := pf.ReadOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 3 || opts.Mode != trace.Lenient {
		t.Fatalf("read options = %+v", opts)
	}

	var cfg core.Config
	pf.Configure(&cfg)
	if cfg.Workers != 3 || cfg.CacheDir != "/tmp/c" {
		t.Fatalf("configured core config = %+v", cfg)
	}
}

func TestPipelineFlagsNoCacheWins(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := RegisterPipelineFlagsOn(fs, "test", true)
	if err := fs.Parse([]string{"-cache-dir", "/tmp/c", "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if got := pf.EffectiveCacheDir(); got != "" {
		t.Fatalf("EffectiveCacheDir = %q, want empty under -no-cache", got)
	}
	var cfg core.Config
	pf.Configure(&cfg)
	if cfg.CacheDir != "" {
		t.Fatalf("config cache dir = %q", cfg.CacheDir)
	}
}

// Commands that never run the analysis pipeline (tracecheck) keep
// their flag surface honest: no cache flags registered.
func TestPipelineFlagsWithoutCache(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterPipelineFlagsOn(fs, "test", false)
	if fs.Lookup("cache-dir") != nil || fs.Lookup("no-cache") != nil {
		t.Fatal("cache flags registered for a cache=false command")
	}
	if fs.Lookup("workers") == nil || fs.Lookup("lenient") == nil || fs.Lookup("v") == nil {
		t.Fatal("shared flags missing")
	}
}
