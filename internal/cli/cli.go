// Package cli provides the small amount of shared plumbing used by the
// command-line tools: loading a trace from CSV or generating a
// synthetic one, with consistent flags and error text.
package cli

import (
	"fmt"
	"os"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

// LoadOrGenerate returns trace jobs either parsed from the batch_task
// CSV at path (when non-empty) or synthesized with numJobs/seed.
func LoadOrGenerate(path string, numJobs int, seed int64) ([]trace.Job, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		jobs, err := trace.ReadJobs(f)
		if err != nil {
			return nil, fmt.Errorf("parse trace %s: %w", path, err)
		}
		return jobs, nil
	}
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(numJobs, seed))
	if err != nil {
		return nil, fmt.Errorf("generate trace: %w", err)
	}
	return jobs, nil
}

// TraceWindow returns the analysis window for generated traces: the
// configured 8-day span plus slack for jobs whose execution extends
// past their arrival.
func TraceWindow() int64 {
	return 2 * 8 * 24 * 3600
}

// Fatalf prints an error to stderr and exits non-zero.
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
