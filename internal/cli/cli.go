// Package cli provides the small amount of shared plumbing used by the
// command-line tools: a main wrapper that guarantees deferred cleanup
// runs before exit, loading a trace from CSV or generating a synthetic
// one, and the shared observability session (structured slog logging,
// -debug-addr live metrics, Perfetto trace export, the run ledger and
// metrics.json snapshots) — see session.go.
package cli

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync/atomic"
	"time"

	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

// crashDumpFn flushes the flight recorder on an escaping panic:
// (reason, detail, stack). Installed by RunSession.Start, cleared by
// Close; an atomic pointer because the panic may race a concurrent
// Close.
type crashDumpFn func(reason, detail string, stack []byte)

var crashDump atomic.Pointer[crashDumpFn]

// installCrashDump registers fn as the panic-time flight-dump hook
// (nil uninstalls).
func installCrashDump(fn crashDumpFn) {
	if fn == nil {
		crashDump.Store(nil)
		return
	}
	crashDump.Store(&fn)
}

// exitError carries a fatal condition through a panic so that Run can
// unwind main's defers (snapshot writers, file closes) before exiting.
type exitError struct {
	code int
	err  error
}

// Run executes a command's body and exits non-zero on failure. Unlike
// a bare os.Exit in main, errors surfaced through the returned error,
// Fatalf or Exit unwind fn's deferred functions first, so metrics
// snapshots and output files are flushed even on the failure path.
//
// Every command's main is a single call:
//
//	func main() { cli.Run(run) }
func Run(fn func() error) {
	err := protect(fn)
	if err == nil {
		return
	}
	var ee *exitError
	if errors.As(err, &ee) {
		if ee.err != nil {
			fmt.Fprintln(os.Stderr, ee.err)
		}
		os.Exit(ee.code)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// protect runs fn, converting Fatalf/Exit panics into ordinary errors
// after the panic has unwound (and therefore run) fn's defers.
func protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(*exitError); ok {
				err = ee
				return
			}
			// A real panic: flush the flight recorder before re-raising
			// so the crash leaves a <run_id>.flight.json next to Go's
			// own stack dump. The hook must not itself panic the crash
			// path away, so it is best-effort by construction.
			if h := crashDump.Load(); h != nil {
				(*h)("panic", fmt.Sprint(r), debug.Stack())
			}
			panic(r)
		}
	}()
	return fn()
}

// Error implements error.
func (e *exitError) Error() string {
	if e.err != nil {
		return e.err.Error()
	}
	return fmt.Sprintf("exit status %d", e.code)
}

// Fatalf aborts the command with a formatted error and exit status 1.
// Inside cli.Run (every command), deferred cleanup runs first.
func Fatalf(format string, args ...interface{}) {
	panic(&exitError{code: 1, err: fmt.Errorf(format, args...)})
}

// Exit aborts the command with the given status and no message —
// for tools like tracecheck whose non-zero exit is a finding count,
// not an error.
func Exit(code int) {
	panic(&exitError{code: code})
}

// LoadOrGenerate returns trace jobs either parsed from the batch_task
// CSV at path (when non-empty) or synthesized with numJobs/seed. Either
// way the work is recorded as a span (trace.load / trace.generate) on
// the Default obs registry, with one structured progress record when
// -v logging is enabled.
func LoadOrGenerate(path string, numJobs int, seed int64) ([]trace.Job, error) {
	reg := obs.Default()
	if path != "" {
		sp := reg.StartSpan(stages.TraceLoad)
		f, err := trace.OpenTable(path)
		if err != nil {
			return nil, fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		jobs, err := trace.ReadJobs(f)
		if err != nil {
			return nil, fmt.Errorf("parse trace %s: %w", path, err)
		}
		reg.Counter("trace.jobs_loaded").Add(int64(len(jobs)))
		d := sp.End()
		reg.Logger().Info("stage complete", "stage", stages.TraceLoad,
			"duration", d.Round(time.Microsecond), "jobs", len(jobs), "source", path)
		return jobs, nil
	}
	sp := reg.StartSpan(stages.TraceGenerate)
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(numJobs, seed))
	if err != nil {
		return nil, fmt.Errorf("generate trace: %w", err)
	}
	reg.Counter("tracegen.jobs_generated").Add(int64(len(jobs)))
	d := sp.End()
	reg.Logger().Info("stage complete", "stage", stages.TraceGenerate,
		"duration", d.Round(time.Microsecond), "jobs", len(jobs), "seed", seed)
	return jobs, nil
}

// TraceWindow returns the analysis window for generated traces: the
// configured 8-day span plus slack for jobs whose execution extends
// past their arrival.
func TraceWindow() int64 {
	return 2 * 8 * 24 * 3600
}

// WriteMetrics snapshots the Default registry into dir/metrics.json.
// A no-op when dir is empty; intended to be deferred so the snapshot
// is written on both success and Fatalf paths.
func WriteMetrics(dir string) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, "metrics.json")
	if err := obs.Default().WriteSnapshotFile(path); err != nil {
		return err
	}
	obs.Default().Logger().Info("metrics snapshot written", "path", path)
	return nil
}
