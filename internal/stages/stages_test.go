package stages

import "testing"

func TestCoreStagesUniqueAndNonEmpty(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Core {
		if s == "" {
			t.Fatal("empty stage name in Core")
		}
		if seen[s] {
			t.Fatalf("duplicate stage name %q in Core", s)
		}
		seen[s] = true
	}
	if seen[Pipeline] || seen[Ingest] {
		t.Fatal("Core must list only computed stages, not the root or the source")
	}
}
