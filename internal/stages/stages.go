// Package stages is the single authority for pipeline stage names.
//
// Stage names appear in four places that must agree for the tooling to
// work: the engine's stage graph (and therefore the artifact cache
// keys), the obs span tree (and therefore metrics.json and the Perfetto
// timeline), the run ledger entries cmd/benchdiff diffs for the perf
// gate, and the per-run Analysis.Stages timings. Before this package
// each site spelled the names as ad-hoc string literals, so renaming a
// stage could silently disconnect the perf gate from the stage it was
// supposed to guard. Referencing the exported constants makes a renamed
// stage a compile error instead.
//
// The package has no dependencies so every layer (core, engine, cli,
// obs consumers, commands) can import it.
package stages

// Pipeline is the root span every core.Run stage nests under.
const Pipeline = "pipeline"

// Ingest-layer stages recorded by the cli helpers, outside core.Run.
const (
	// TraceLoad covers parsing a trace table from disk.
	TraceLoad = "trace.load"
	// TraceGenerate covers synthesizing a trace in memory.
	TraceGenerate = "trace.generate"
)

// Core pipeline stages, in execution order. Ingest is the engine's
// source stage (the jobs handed to core.Run); the rest are computed.
const (
	// Ingest is the engine source stage holding the input trace jobs.
	// It is provided, not executed, so it never appears as a span.
	Ingest = "ingest"
	// SamplingFilter applies the paper's §IV-B integrity/availability
	// criteria and builds a DAG per surviving job.
	SamplingFilter = "sampling.filter"
	// SamplingSample draws the diverse job sample.
	SamplingSample = "sampling.sample"
	// DAGJobs is the per-job structural stage: optional conflation plus
	// size/depth/width/chain classification and resource sums.
	DAGJobs = "dag.jobs"
	// WLFeatures embeds every sampled DAG as a WL feature vector.
	WLFeatures = "wl.features"
	// WLMatrix computes the n×n normalized kernel similarity matrix.
	WLMatrix = "wl.matrix"
	// ClusterSpectral runs spectral clustering over the kernel matrix.
	ClusterSpectral = "cluster.spectral"
	// ProfileGroups computes the population-ranked group profiles.
	ProfileGroups = "profile.groups"
)

// Approximate-similarity stages, appended to the plan only when the
// run opts in (core.Config.ANN). They are additive: the exact kernel
// stages above stay the reference path, so Core is unchanged and the
// perf gate's expectations hold for default runs.
const (
	// WLSketch computes feature-hashed WL embeddings of the sampled
	// DAGs and their MinHash signatures.
	WLSketch = "wl.sketch"
	// WLANNIndex assembles the banded-LSH ANN index from the sketches.
	WLANNIndex = "wl.annindex"
)

// ANN lists the opt-in approximate-similarity stages in execution
// order; an ANN-enabled run executes Core followed by ANN.
var ANN = []string{WLSketch, WLANNIndex}

// Core lists the computed core pipeline stages in execution order —
// the stages the perf gate expects to find under Pipeline in a cold
// instrumented run.
var Core = []string{
	SamplingFilter,
	SamplingSample,
	DAGJobs,
	WLFeatures,
	WLMatrix,
	ClusterSpectral,
	ProfileGroups,
}
