package core

import (
	"os"
	"path/filepath"
	"testing"

	"jobgraph/internal/tracegen"
)

// trainedModel runs a small pipeline and extracts its model.
func trainedModel(t *testing.T) (*Model, *Analysis) {
	t.Helper()
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(3000, 1))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := DefaultConfig(2*8*24*3600, 1)
	cfg.SampleSize = 60
	an, err := Run(jobs, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := ExtractModel(an, cfg.Conflate)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return m, an
}

func TestExtractModel(t *testing.T) {
	m, an := trainedModel(t)
	if m.Schema != ModelSchema {
		t.Fatalf("schema %q", m.Schema)
	}
	if len(m.Groups) != len(an.Groups) {
		t.Fatalf("groups %d != %d", len(m.Groups), len(an.Groups))
	}
	if m.TrainedOn != len(an.Graphs) {
		t.Fatalf("trained on %d != %d", m.TrainedOn, len(an.Graphs))
	}
	for _, g := range m.Groups {
		if len(g.Centroid) == 0 {
			t.Fatalf("group %s has empty centroid", g.Name)
		}
	}
	fp, _ := an.Fingerprint()
	if m.Fingerprint != fp {
		t.Fatalf("fingerprint mismatch")
	}
}

func TestExtractModelRequiresKernelState(t *testing.T) {
	if _, err := ExtractModel(&Analysis{}, false); err == nil {
		t.Fatal("expected error for analysis without kernel state")
	}
}

// A training member must classify into a group with a high score, and
// its own group should usually win; at minimum classification must be
// deterministic and in [0,1].
func TestModelClassify(t *testing.T) {
	m, an := trainedModel(t)
	agree := 0
	for gi, gp := range an.Groups {
		for _, idx := range gp.Members {
			got, score, err := m.Classify(an.Graphs[idx])
			if err != nil {
				t.Fatalf("classify member %d: %v", idx, err)
			}
			if score < 0 || score > 1 {
				t.Fatalf("score %v out of [0,1]", score)
			}
			if got.Name == an.Groups[gi].Name {
				agree++
			}
			// Determinism: a second classification matches the first.
			again, score2, err := m.Classify(an.Graphs[idx])
			if err != nil || again.Name != got.Name || score2 != score {
				t.Fatalf("classification not deterministic: %v/%v vs %v/%v (%v)",
					got.Name, score, again.Name, score2, err)
			}
		}
	}
	if frac := float64(agree) / float64(len(an.Graphs)); frac < 0.5 {
		t.Fatalf("only %.0f%% of training members classify into their own group", 100*frac)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, an := trainedModel(t)
	path := filepath.Join(t.TempDir(), "sub", "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Fingerprint != m.Fingerprint || loaded.TrainedOn != m.TrainedOn {
		t.Fatalf("round trip lost identity")
	}
	if loaded.Dict.Len() != m.Dict.Len() {
		t.Fatalf("dictionary size changed: %d != %d", loaded.Dict.Len(), m.Dict.Len())
	}
	// The loaded model classifies identically to the original.
	for _, g := range an.Graphs[:10] {
		g1, s1, err1 := m.Classify(g)
		g2, s2, err2 := loaded.Classify(g)
		if err1 != nil || err2 != nil || g1.Name != g2.Name || s1 != s2 {
			t.Fatalf("loaded model disagrees: %v/%v vs %v/%v", g1.Name, s1, g2.Name, s2)
		}
	}
}

func TestLoadModelRejectsAlienFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := os.WriteFile(path, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestLoadModelRejectsTruncated(t *testing.T) {
	m, _ := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err == nil {
		t.Fatal("expected decode error on truncated model")
	}
}
