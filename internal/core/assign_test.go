package core

import (
	"testing"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// mkChainJob builds a simple chain DAG of the given size.
func mkChainJob(t testing.TB, id string, n int) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	for i := 1; i <= n; i++ {
		typ := taskname.TypeReduce
		if i == 1 {
			typ = taskname.TypeMap
		}
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAssignGroupChainJob(t *testing.T) {
	an := runPipeline(t, 8000, 40)
	// A fresh 2-task chain must land in a chain-dominated group with
	// near-perfect similarity (identical jobs exist in the sample).
	gp, score, err := an.AssignGroup(mkChainJob(t, "new-job", 2))
	if err != nil {
		t.Fatal(err)
	}
	if gp.ChainFraction < 0.9 || gp.ShortFraction < 0.9 {
		t.Fatalf("2-chain assigned to group %s (chain=%.2f short=%.2f)",
			gp.Name, gp.ChainFraction, gp.ShortFraction)
	}
	if score < 0.9 {
		t.Fatalf("similarity score = %.3f, want near 1", score)
	}
}

func TestAssignGroupLargeJobAvoidsChainGroup(t *testing.T) {
	an := runPipeline(t, 8000, 41)
	// A wide inverted triangle should not land in a pure-chain group.
	g := dag.New("wide")
	sink := dag.NodeID(21)
	if err := g.AddNode(dag.Node{ID: sink, Type: taskname.TypeReduce}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(dag.NodeID(i), sink); err != nil {
			t.Fatal(err)
		}
	}
	gp, _, err := an.AssignGroup(g)
	if err != nil {
		t.Fatal(err)
	}
	if gp.ChainFraction > 0.5 {
		t.Fatalf("wide triangle assigned to chain group %s", gp.Name)
	}
}

func TestAssignGroupDeterministic(t *testing.T) {
	an := runPipeline(t, 3000, 42)
	g := mkChainJob(t, "q", 3)
	g1, s1, err := an.AssignGroup(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, s2, err := an.AssignGroup(g)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Name != g2.Name || s1 != s2 {
		t.Fatal("assignment not deterministic")
	}
}

func TestAssignGroupWithoutKernelState(t *testing.T) {
	an := &Analysis{}
	if _, _, err := an.AssignGroup(mkChainJob(t, "q", 2)); err == nil {
		t.Fatal("missing kernel state accepted")
	}
}
