package core

import (
	"fmt"
	"sync"

	"jobgraph/internal/obs"
)

// runPool executes work(i) for i in [0,n) across a bounded worker pool
// with deterministic error selection and cooperative cancellation —
// the per-job counterpart of wl.MatrixFromVectorsOpts's row pool.
//
// Results must be written by work into caller-owned, index-addressed
// storage, so collection is order-stable by construction. When several
// workers fail, the error of the lowest item index wins regardless of
// completion order, matching what a sequential loop would have
// returned. onItem, when non-nil, is invoked serially after each item
// with (done, total); a non-nil return cancels the pool and surfaces as
// "core: <stage> aborted after done/total jobs". Per-worker throughput
// lands on the core.pool.<stage>.workerNN.items counters.
func runPool(stageName string, n, workers int, onItem func(done, total int) error, work func(i int) error) error {
	if n == 0 {
		return nil
	}
	// Pool liveness for the stall watchdog: armed before the first item,
	// beaten on every completion, disarmed when the pool drains — a pool
	// whose workers all wedge shows up as an active, silent heartbeat.
	hb := obs.Default().Heartbeat("core.pool." + stageName)
	hb.Beat()
	defer hb.Done()
	if workers <= 1 {
		done := 0
		for i := 0; i < n; i++ {
			if err := work(i); err != nil {
				return err
			}
			done++
			hb.Beat()
			if onItem != nil {
				if err := onItem(done, n); err != nil {
					return fmt.Errorf("core: %s aborted after %d/%d jobs: %w", stageName, done, n, err)
				}
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	items := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var (
		mu       sync.Mutex
		done     int
		firstIdx int = n
		firstErr error
		abortErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if err != nil && i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		halt()
	}
	finish := func() error {
		mu.Lock()
		defer mu.Unlock()
		done++
		if onItem == nil {
			return nil
		}
		if err := onItem(done, n); err != nil {
			if abortErr == nil {
				abortErr = fmt.Errorf("core: %s aborted after %d/%d jobs: %w", stageName, done, n, err)
			}
			return abortErr
		}
		return nil
	}

	// Windowed items/s across all workers: live throughput for this
	// stage on /metrics, alongside the per-worker lifetime counters.
	rate := obs.Default().RateCounter("core.pool."+stageName+".items", obs.DefaultWindow)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := obs.Default().Counter(fmt.Sprintf("core.pool.%s.worker%02d.items", stageName, w))
			for {
				var i int
				select {
				case i = <-items:
				case <-stop:
					return
				}
				if err := work(i); err != nil {
					fail(i, err)
					return
				}
				ctr.Add(1)
				rate.Add(1)
				hb.Beat()
				if err := finish(); err != nil {
					halt()
					return
				}
			}
		}(w)
	}
	go func() {
		// Hand out every index in order (ordered dispatch is what makes
		// the lowest-index error selection match the sequential loop),
		// then halt to release idle workers; wg.Wait is the barrier.
		for i := 0; i < n; i++ {
			select {
			case items <- i:
			case <-stop:
				return
			}
		}
		halt()
	}()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return abortErr
}
