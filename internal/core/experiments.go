package core

import (
	"fmt"
	"sort"
	"strings"

	"jobgraph/internal/conflate"
	"jobgraph/internal/dag"
	"jobgraph/internal/pattern"
	"jobgraph/internal/report"
	"jobgraph/internal/stats"
)

// Fig2DOT renders the first n sampled job DAGs as Graphviz documents —
// the paper's Figure 2 "job-level abstraction" sample.
func Fig2DOT(an *Analysis, n int) []string {
	if n > len(an.Graphs) {
		n = len(an.Graphs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = an.Graphs[i].DOT()
	}
	return out
}

// Fig3Conflation reproduces Figure 3: the job-size distribution before
// and after node conflation over a set of DAGs.
func Fig3Conflation(graphs []*dag.Graph) (*report.Table, error) {
	before := stats.NewIntCounter()
	after := stats.NewIntCounter()
	for _, g := range graphs {
		before.Add(g.Size())
		cg, _, err := conflate.Conflate(g)
		if err != nil {
			return nil, err
		}
		after.Add(cg.Size())
	}
	tbl := report.NewTable("Fig 3: DAG job sizes before/after node conflation",
		"size", "before", "before_frac", "after", "after_frac")
	seen := make(map[int]bool)
	var sizes []int
	for _, v := range before.Values() {
		if !seen[v] {
			seen[v] = true
			sizes = append(sizes, v)
		}
	}
	for _, v := range after.Values() {
		if !seen[v] {
			seen[v] = true
			sizes = append(sizes, v)
		}
	}
	sortInts(sizes)
	for _, s := range sizes {
		tbl.AddRow(
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", before.Count(s)),
			fmt.Sprintf("%.3f", before.Fraction(s)),
			fmt.Sprintf("%d", after.Count(s)),
			fmt.Sprintf("%.3f", after.Fraction(s)),
		)
	}
	return tbl, nil
}

// SizeGroupFeatures is one row of Figures 4/5: per size group, the job
// count, the maximum critical path and the maximum width observed.
type SizeGroupFeatures struct {
	Size     int
	Count    int
	MaxDepth int
	MaxWidth int
}

// FigSizeGroupFeatures computes the Figure 4 (raw) or Figure 5
// (conflated) rows over a set of DAGs.
func FigSizeGroupFeatures(graphs []*dag.Graph, conflated bool) ([]SizeGroupFeatures, error) {
	byDim := make(map[int]*SizeGroupFeatures)
	for _, g := range graphs {
		cur := g
		if conflated {
			cg, _, err := conflate.Conflate(g)
			if err != nil {
				return nil, err
			}
			cur = cg
		}
		depth, err := cur.Depth()
		if err != nil {
			return nil, err
		}
		width, err := cur.MaxWidth()
		if err != nil {
			return nil, err
		}
		row, ok := byDim[cur.Size()]
		if !ok {
			row = &SizeGroupFeatures{Size: cur.Size()}
			byDim[cur.Size()] = row
		}
		row.Count++
		if depth > row.MaxDepth {
			row.MaxDepth = depth
		}
		if width > row.MaxWidth {
			row.MaxWidth = width
		}
	}
	var sizes []int
	for s := range byDim {
		sizes = append(sizes, s)
	}
	sortInts(sizes)
	out := make([]SizeGroupFeatures, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, *byDim[s])
	}
	return out, nil
}

// FigSizeGroupTable renders FigSizeGroupFeatures rows.
func FigSizeGroupTable(rows []SizeGroupFeatures, title string) *report.Table {
	tbl := report.NewTable(title, "size", "jobs", "max_critical_path", "max_width")
	for _, r := range rows {
		tbl.AddRow(
			fmt.Sprintf("%d", r.Size),
			fmt.Sprintf("%d", r.Count),
			fmt.Sprintf("%d", r.MaxDepth),
			fmt.Sprintf("%d", r.MaxWidth),
		)
	}
	return tbl
}

// PatternCensusTable reproduces the §V-B pattern shares (chain 58%,
// inverted triangle 37%, ...) over a set of DAGs.
func PatternCensusTable(graphs []*dag.Graph) (*report.Table, *pattern.Census, error) {
	census := pattern.NewCensus()
	for _, g := range graphs {
		if err := census.Add(g); err != nil {
			return nil, nil, err
		}
	}
	tbl := report.NewTable("Pattern census (§V-B)", "shape", "jobs", "fraction")
	for _, s := range pattern.AllShapes() {
		if census.Counts[s] == 0 {
			continue
		}
		tbl.AddRow(s.String(),
			fmt.Sprintf("%d", census.Counts[s]),
			fmt.Sprintf("%.3f", census.Fraction(s)))
	}
	return tbl, census, nil
}

// ModelCensusTable tallies the §V-C programming models (Map-Reduce,
// Map-Join-Reduce, Map-Reduce-Merge) across a set of DAGs.
func ModelCensusTable(graphs []*dag.Graph) (*report.Table, *pattern.ModelCensus, error) {
	census := pattern.NewModelCensus()
	for _, g := range graphs {
		if err := census.Add(g); err != nil {
			return nil, nil, err
		}
	}
	tbl := report.NewTable("Programming models (§V-C)", "model", "jobs", "fraction")
	for _, m := range pattern.AllModels() {
		if census.Counts[m] == 0 {
			continue
		}
		tbl.AddRow(m.String(),
			fmt.Sprintf("%d", census.Counts[m]),
			fmt.Sprintf("%.3f", census.Fraction(m)))
	}
	return tbl, census, nil
}

// Fig6TaskTypes reproduces Figure 6: per-job M/J/R task counts.
func Fig6TaskTypes(an *Analysis) *report.Table {
	tbl := report.NewTable("Fig 6: distribution of Map-Join-Reduce tasks",
		"job", "size", "M", "J", "R")
	for _, g := range an.Graphs {
		c := g.TypeCounts()
		tbl.AddRow(g.JobID,
			fmt.Sprintf("%d", g.Size()),
			fmt.Sprintf("%d", c["M"]),
			fmt.Sprintf("%d", c["J"]),
			fmt.Sprintf("%d", c["R"]))
	}
	return tbl
}

// Fig7Heatmap renders the similarity matrix as an ASCII heat map.
func Fig7Heatmap(an *Analysis) string {
	return report.Heatmap(an.Similarity)
}

// Fig8Representatives renders each group's medoid job in DOT.
func Fig8Representatives(an *Analysis) map[string]string {
	byID := make(map[string]*dag.Graph, len(an.Graphs))
	for _, g := range an.Graphs {
		byID[g.JobID] = g
	}
	out := make(map[string]string, len(an.Groups))
	for _, gp := range an.Groups {
		if g, ok := byID[gp.Representative]; ok {
			out[gp.Name] = g.DOT()
		}
	}
	return out
}

// Fig9GroupTable reproduces Figure 9: population, size, critical path
// and parallelism per cluster group.
func Fig9GroupTable(an *Analysis) *report.Table {
	tbl := report.NewTable("Fig 9: properties of job DAGs in cluster groups",
		"group", "jobs", "population", "mean_size", "median_size",
		"mean_depth", "max_depth", "mean_width", "max_width",
		"chain_frac", "short_frac", "representative")
	for _, gp := range an.Groups {
		tbl.AddRow(
			gp.Name,
			fmt.Sprintf("%d", gp.Count),
			fmt.Sprintf("%.3f", gp.Population),
			fmt.Sprintf("%.2f", gp.Sizes.Mean),
			fmt.Sprintf("%.1f", gp.Sizes.Median),
			fmt.Sprintf("%.2f", gp.Depths.Mean),
			fmt.Sprintf("%.0f", gp.Depths.Max),
			fmt.Sprintf("%.2f", gp.Widths.Mean),
			fmt.Sprintf("%.0f", gp.Widths.Max),
			fmt.Sprintf("%.3f", gp.ChainFraction),
			fmt.Sprintf("%.3f", gp.ShortFraction),
			gp.Representative,
		)
	}
	return tbl
}

// Fig9BoxPlots renders the three panels of Figure 9 (b)–(d) — per-group
// distributions of job size, critical path and maximum parallelism — as
// ASCII box plots on shared scales.
func Fig9BoxPlots(an *Analysis) (string, error) {
	labels := make([]string, len(an.Groups))
	sizes := make([][]float64, len(an.Groups))
	depths := make([][]float64, len(an.Groups))
	widths := make([][]float64, len(an.Groups))
	for gi, gp := range an.Groups {
		labels[gi] = gp.Name
		for _, idx := range gp.Members {
			g := an.Graphs[idx]
			d, err := g.Depth()
			if err != nil {
				return "", err
			}
			w, err := g.MaxWidth()
			if err != nil {
				return "", err
			}
			sizes[gi] = append(sizes[gi], float64(g.Size()))
			depths[gi] = append(depths[gi], float64(d))
			widths[gi] = append(widths[gi], float64(w))
		}
	}
	var b strings.Builder
	for _, panel := range []struct {
		title  string
		series [][]float64
	}{
		{"Fig 9(b): job size by group", sizes},
		{"Fig 9(c): critical path by group", depths},
		{"Fig 9(d): max parallelism by group", widths},
	} {
		s, err := report.BoxPlotGroup(panel.title, labels, panel.series, 60)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// GroupResourceTable renders each group's resource profile — the
// extension experiment toward the paper's "combining resource analysis
// techniques" future work.
func GroupResourceTable(an *Analysis) *report.Table {
	tbl := report.NewTable("Per-group resource profile",
		"group", "jobs", "mean_instances", "mean_plan_cpu", "mean_total_duration_s")
	for _, gp := range an.Groups {
		tbl.AddRow(
			gp.Name,
			fmt.Sprintf("%d", gp.Count),
			fmt.Sprintf("%.1f", gp.MeanInstances),
			fmt.Sprintf("%.1f", gp.MeanPlanCPU),
			fmt.Sprintf("%.1f", gp.MeanDuration),
		)
	}
	return tbl
}

// SizeWidthCorrelation computes the Spearman rank correlation between
// job size and max width across the analyzed sample — the paper's
// "parallelism of a job is quite positively correlated to the size".
func SizeWidthCorrelation(an *Analysis) (float64, error) {
	var sizes, widths []float64
	for _, g := range an.Graphs {
		w, err := g.MaxWidth()
		if err != nil {
			return 0, err
		}
		sizes = append(sizes, float64(g.Size()))
		widths = append(widths, float64(w))
	}
	return stats.Spearman(sizes, widths)
}

func sortInts(xs []int) { sort.Ints(xs) }
