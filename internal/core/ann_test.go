package core

import (
	"strings"
	"testing"

	"jobgraph/internal/stages"
)

// The ANN path is additive: default runs execute exactly stages.Core
// (pinned elsewhere); an ANN run executes Core followed by stages.ANN
// and surfaces a queryable index aligned with the sample.
func TestANNPipelineStages(t *testing.T) {
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 40
	cfg.Groups = 4
	cfg.ANN = true

	an, err := Run(genJobs(t, 2000, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]string(nil), stages.Core...), stages.ANN...)
	if got := executedNames(an); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("executed %v, want %v", got, want)
	}
	if an.ANNIndex == nil {
		t.Fatal("ANN run produced no index")
	}
	if an.ANNIndex.Len() != len(an.Sample) {
		t.Fatalf("index holds %d jobs, sample has %d", an.ANNIndex.Len(), len(an.Sample))
	}
	if len(an.HashedVectors) != len(an.Sample) {
		t.Fatalf("%d hashed vectors, sample has %d", len(an.HashedVectors), len(an.Sample))
	}
	hits, err := an.ANNIndex.QueryJob(an.Graphs[0].JobID, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.JobID == an.Graphs[0].JobID {
			t.Fatal("query returned the query job")
		}
	}
}

// ANN artifacts are cacheable like every other stage: a warm run loads
// wl.sketch and wl.annindex from the store, reproduces the payload
// fingerprint, and the reloaded index answers queries identically.
func TestANNCacheEquivalence(t *testing.T) {
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 40
	cfg.Groups = 4
	cfg.ANN = true
	cfg.CacheDir = t.TempDir()

	cold, coldFP := runFingerprint(t, 2000, cfg)
	warm, warmFP := runFingerprint(t, 2000, cfg)
	if coldFP != warmFP {
		t.Fatal("warm ANN run changed the payload fingerprint")
	}
	if len(warm.Stages) != 0 {
		t.Fatalf("warm run executed %v", executedNames(warm))
	}
	wantCached := append(append([]string(nil), stages.Core...), stages.ANN...)
	if got := strings.Join(warm.CachedStages, ","); got != strings.Join(wantCached, ",") {
		t.Fatalf("warm run cached %v, want %v", warm.CachedStages, wantCached)
	}
	for _, jobID := range []string{cold.Graphs[0].JobID, cold.Graphs[7].JobID} {
		a, err := cold.ANNIndex.QueryJob(jobID, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.ANNIndex.QueryJob(jobID, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("job %s: %d hits cold, %d warm", jobID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("job %s hit %d: cold %+v, warm %+v", jobID, i, a[i], b[i])
			}
		}
	}

	// Disabling ANN on the same cache keeps the default stage list and
	// carries no index.
	off := cfg
	off.ANN = false
	plain, plainFP := runFingerprint(t, 2000, off)
	if plain.ANNIndex != nil {
		t.Fatal("non-ANN run carries an index")
	}
	if plainFP != coldFP {
		t.Fatal("ANN toggle changed the payload fingerprint")
	}
}
