package core

import (
	"errors"
	"io"
	"strings"
	"testing"

	"jobgraph/internal/cluster"
	"jobgraph/internal/linalg"
	"jobgraph/internal/trace"
)

// swapSpectral installs a replacement spectral implementation for the
// duration of the test.
func swapSpectral(t *testing.T, fn func(*linalg.Matrix, cluster.SpectralOptions) (*cluster.SpectralResult, error)) {
	t.Helper()
	orig := spectralFn
	spectralFn = fn
	t.Cleanup(func() { spectralFn = orig })
}

func degradeConfig(seed int64) Config {
	cfg := DefaultConfig(testWindow, seed)
	cfg.SampleSize = 30
	cfg.Groups = 3
	return cfg
}

func TestSpectralFailureFallsBackToSizeQuantiles(t *testing.T) {
	swapSpectral(t, func(*linalg.Matrix, cluster.SpectralOptions) (*cluster.SpectralResult, error) {
		return nil, errors.New("injected eigensolver meltdown")
	})
	an, err := Run(genJobs(t, 800, 3), degradeConfig(3))
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if len(an.Labels) != 30 || len(an.Groups) != 3 {
		t.Fatalf("fallback produced %d labels, %d groups; want 30, 3", len(an.Labels), len(an.Groups))
	}
	found := false
	for _, w := range an.Warnings {
		if strings.Contains(w, "size-quantile") && strings.Contains(w, "injected eigensolver meltdown") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback not surfaced in warnings: %v", an.Warnings)
	}
	// Quantile groups must cover every sample and respect size ordering
	// on the medians.
	total := 0
	for _, g := range an.Groups {
		total += g.Count
		if g.Count == 0 {
			t.Fatalf("empty fallback group %s", g.Name)
		}
	}
	if total != 30 {
		t.Fatalf("fallback groups cover %d of 30 samples", total)
	}
}

func TestSpectralWarningsPropagate(t *testing.T) {
	swapSpectral(t, func(sim *linalg.Matrix, opt cluster.SpectralOptions) (*cluster.SpectralResult, error) {
		res, err := cluster.Spectral(sim, opt)
		if err != nil {
			return nil, err
		}
		res.Warnings = append(res.Warnings, "synthetic eigensolver retry warning")
		return res, nil
	})
	an, err := Run(genJobs(t, 800, 4), degradeConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range an.Warnings {
		if w == "synthetic eigensolver retry warning" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spectral warnings not propagated: %v", an.Warnings)
	}
}

func TestIngestStatsSurfaceOnAnalysis(t *testing.T) {
	cfg := degradeConfig(5)
	cfg.Ingest = &trace.ReadStats{
		Rows:         1234,
		BadRows:      7,
		ByClass:      map[trace.ErrClass]int64{trace.ErrClassNumeric: 7},
		Partial:      true,
		PartialCause: io.ErrUnexpectedEOF,
	}
	an, err := Run(genJobs(t, 800, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Partial {
		t.Fatal("truncated ingest not marked Partial on analysis")
	}
	var sawPartial, sawBad bool
	for _, w := range an.Warnings {
		if strings.Contains(w, "truncated") {
			sawPartial = true
		}
		if strings.Contains(w, "7 malformed rows") {
			sawBad = true
		}
	}
	if !sawPartial || !sawBad {
		t.Fatalf("ingest warnings missing: %v", an.Warnings)
	}
}

func TestCleanRunNoWarnings(t *testing.T) {
	an, err := Run(genJobs(t, 800, 6), degradeConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Warnings) != 0 || an.Partial {
		t.Fatalf("clean run degraded: partial=%v warnings=%v", an.Partial, an.Warnings)
	}
}

func TestSizeQuantileLabels(t *testing.T) {
	an, err := Run(genJobs(t, 800, 7), degradeConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	labels := sizeQuantileLabels(an.Graphs, 3)
	if len(labels) != len(an.Graphs) {
		t.Fatalf("labels = %d, want %d", len(labels), len(an.Graphs))
	}
	counts := map[int]int{}
	for i, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
		counts[l]++
	}
	if len(counts) != 3 {
		t.Fatalf("quantile buckets = %d, want 3", len(counts))
	}
	// Bucket membership must follow size: nothing in a lower bucket may
	// be larger than something in a higher bucket.
	maxOf := map[int]int{}
	minOf := map[int]int{}
	for i, l := range labels {
		s := an.Graphs[i].Size()
		if v, ok := maxOf[l]; !ok || s > v {
			maxOf[l] = s
		}
		if v, ok := minOf[l]; !ok || s < v {
			minOf[l] = s
		}
	}
	for b := 0; b < 2; b++ {
		if maxOf[b] > minOf[b+1] {
			t.Fatalf("bucket %d max size %d exceeds bucket %d min %d", b, maxOf[b], b+1, minOf[b+1])
		}
	}
}
