// Classification model extraction: the serving-plane artifact distilled
// from a full Analysis. Where an Analysis is the batch pipeline's rich
// output, a Model is the minimum state a long-lived daemon needs to
// classify a never-before-seen job DAG into the learned groups A–E: the
// WL dictionary (so new graphs embed into the same feature space), the
// kernel options, and one centroid vector per group.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"jobgraph/internal/dag"
	"jobgraph/internal/wl"
)

// ModelSchema identifies the serialized model layout; bump on breaking
// changes so a daemon refuses a stale file instead of misclassifying.
const ModelSchema = "jobgraph-model/v1"

// ModelGroup is one learned group's serving-time state: the label-count
// centroid in WL feature space plus the profile facts a scheduler acts
// on (expected demand for a job of this group).
type ModelGroup struct {
	// Name is the population-rank label from the analysis ("A" largest).
	Name string
	// Count is the group's population in the training sample.
	Count int
	// Centroid is the L2-normalized mean of the members' normalized WL
	// feature vectors. Classification scores a query by its cosine
	// similarity to each centroid.
	Centroid wl.Vector
	// MeanInstances/MeanPlanCPU/MeanDuration are the group's mean
	// resource demand — the prediction a group label buys.
	MeanInstances float64
	MeanPlanCPU   float64
	MeanDuration  float64
}

// Model is the precomputed classification state a serving process loads
// at boot and hot-swaps on reload. It is immutable after construction:
// concurrent Classify calls share one Model without locking.
type Model struct {
	Schema string
	// WL are the kernel options the dictionary was built under; queries
	// must embed with the same options.
	WL wl.Options
	// Conflate records whether training graphs were node-conflated;
	// queries must live in the same representation.
	Conflate bool
	// Dict maps refined labels to dense ids. Classify embeds queries
	// through a frozen (read-only) view of it, so unseen labels fall
	// out of the vector — exactly the zero weight a cold label carries
	// against every centroid — and concurrent classification is safe.
	Dict   *wl.Dictionary
	Groups []ModelGroup
	// TrainedOn is the size of the training sample.
	TrainedOn int
	// Fingerprint ties the model to the Analysis it was extracted from.
	Fingerprint string
	// BuiltAt is when the model was extracted (UTC).
	BuiltAt time.Time

	// frozen is the immutable dictionary view Classify embeds through,
	// built once on first use (gob decoding leaves it nil).
	frozenOnce sync.Once
	frozen     *wl.Frozen
}

// frozenDict returns the model's immutable dictionary view.
func (m *Model) frozenDict() *wl.Frozen {
	m.frozenOnce.Do(func() { m.frozen = m.Dict.Freeze() })
	return m.frozen
}

// ExtractModel distills an Analysis into a serving Model. The analysis
// must carry kernel state (any Analysis produced by Run does); conflate
// mirrors the Config.Conflate the analysis ran under.
func ExtractModel(an *Analysis, conflate bool) (*Model, error) {
	if an == nil || an.dict == nil || len(an.vectors) != len(an.Graphs) {
		return nil, fmt.Errorf("core: analysis lacks kernel state; cannot extract model")
	}
	if len(an.Groups) == 0 {
		return nil, fmt.Errorf("core: analysis has no groups; cannot extract model")
	}
	fp, err := an.Fingerprint()
	if err != nil {
		return nil, err
	}
	m := &Model{
		Schema:      ModelSchema,
		WL:          an.wlOpts,
		Conflate:    conflate,
		Dict:        an.dict,
		TrainedOn:   len(an.Graphs),
		Fingerprint: fp,
		BuiltAt:     time.Now().UTC(),
	}
	for _, gp := range an.Groups {
		mg := ModelGroup{
			Name:          gp.Name,
			Count:         gp.Count,
			Centroid:      centroid(an.vectors, gp.Members),
			MeanInstances: gp.MeanInstances,
			MeanPlanCPU:   gp.MeanPlanCPU,
			MeanDuration:  gp.MeanDuration,
		}
		m.Groups = append(m.Groups, mg)
	}
	return m, nil
}

// centroid returns the L2-normalized mean of the members' normalized
// feature vectors. Normalizing each member first keeps one huge job
// from dominating its group's direction. All floating-point reductions
// run in sorted key order: fractional components make summation order
// visible in the last bits, and a model must classify identically on
// every machine that loads it.
func centroid(vectors []wl.Vector, members []int) wl.Vector {
	c := make(wl.Vector)
	for _, i := range members {
		v := vectors[i]
		// Count vectors are integral, so this self-product is exact in
		// any order; the division below is one rounding per component.
		n := math.Sqrt(wl.Dot(v, v))
		if n == 0 {
			continue
		}
		for k, x := range v {
			c[k] += x / n
		}
	}
	if n := math.Sqrt(sortedSelfDot(c)); n > 0 {
		for k := range c {
			c[k] /= n
		}
	}
	return c
}

// sortedKeys returns v's keys in increasing order.
func sortedKeys(v wl.Vector) []int {
	keys := make([]int, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedSelfDot is ⟨v, v⟩ accumulated in sorted key order.
func sortedSelfDot(v wl.Vector) float64 {
	var s float64
	for _, k := range sortedKeys(v) {
		s += v[k] * v[k]
	}
	return s
}

// centroidScore is the cosine similarity of an (integral) query vector
// against a unit-norm centroid, accumulated in sorted key order for
// bit-determinism. An empty query matches an empty centroid perfectly
// and any other centroid not at all, mirroring wl.Similarity.
func centroidScore(vec, c wl.Vector) float64 {
	vv := wl.Dot(vec, vec) // integral: exact in any order
	if vv == 0 {
		if len(c) == 0 {
			return 1
		}
		return 0
	}
	if len(c) == 0 {
		return 0
	}
	var num float64
	for _, k := range sortedKeys(vec) {
		num += vec[k] * c[k]
	}
	s := num / math.Sqrt(vv) // the centroid is unit-norm by construction
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Classify embeds g with the model's dictionary and returns the group
// whose centroid it is most cosine-similar to, with the score in [0,1].
// Safe for concurrent use; the model is never mutated.
func (m *Model) Classify(g *dag.Graph) (ModelGroup, float64, error) {
	if len(m.Groups) == 0 {
		return ModelGroup{}, 0, fmt.Errorf("core: model has no groups")
	}
	vec, err := m.frozenDict().Embed(g, m.WL)
	if err != nil {
		return ModelGroup{}, 0, err
	}
	bestIdx, bestScore := 0, -1.0
	for i, mg := range m.Groups {
		s := centroidScore(vec, mg.Centroid)
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	return m.Groups[bestIdx], bestScore, nil
}

// modelHeader precedes the gob payload on disk so a truncated or alien
// file fails fast with a named error instead of a gob decode panic.
var modelHeader = []byte(ModelSchema + "\n")

// Save writes the model atomically (temp file + rename) so a reader
// never observes a half-written model, and fsyncs before the rename so
// a crash cannot leave a renamed-but-empty file.
func (m *Model) Save(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("core: model dir: %w", err)
		}
	}
	var buf bytes.Buffer
	buf.Write(modelHeader)
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".model-*")
	if err != nil {
		return fmt.Errorf("core: model temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("core: write model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: sync model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: close model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: rename model: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save, verifying the schema header.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if !bytes.HasPrefix(data, modelHeader) {
		return nil, fmt.Errorf("core: %s is not a %s file", path, ModelSchema)
	}
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data[len(modelHeader):])).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode model %s: %w", path, err)
	}
	if m.Schema != ModelSchema {
		return nil, fmt.Errorf("core: model %s has schema %q, want %q", path, m.Schema, ModelSchema)
	}
	return &m, nil
}
