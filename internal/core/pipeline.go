// Pipeline wiring: core.Run expressed as a declarative engine plan.
//
// Each stage declares its upstream artifacts, the configuration fields
// that shape its output (the fingerprint), and a gob codec, so the
// engine can content-address every artifact. Worker counts and progress
// callbacks (Workers, OnJob, OnRow) stay out of the fingerprints on
// purpose: every worker count produces the same artifact bit-for-bit,
// so a cache populated at -workers 8 serves a -workers 1 run.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"time"

	"jobgraph/internal/cluster"
	"jobgraph/internal/conflate"
	"jobgraph/internal/dag"
	"jobgraph/internal/engine"
	"jobgraph/internal/engine/cache"
	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
	"jobgraph/internal/pattern"
	"jobgraph/internal/sampling"
	"jobgraph/internal/stages"
	"jobgraph/internal/trace"
	"jobgraph/internal/wl"
)

// Per-stage artifact shapes. These are the cache wire format: any
// change to one of them must be paired with a bump of the engine's key
// schema (or a fingerprint change) so stale artifacts miss.
type (
	filterArtifact struct {
		Cands []sampling.Candidate
		Stats sampling.FilterStats
	}
	sampleArtifact struct {
		Sample []sampling.Candidate
		Pool   int // size of the candidate pool sampled from
	}
	dagJobsArtifact struct {
		Graphs []*dag.Graph
		Stats  []JobStat
	}
	featuresArtifact struct {
		Vectors []wl.Vector
		Dict    *wl.Dictionary
		// Compact mirrors Vectors in sorted parallel-array form — the
		// layout the kernel-matrix stage merge-joins over.
		Compact []wl.CompactVector
	}
	matrixArtifact struct {
		// Sim is packed (upper triangle): symmetric similarity matrices
		// cache and ship at half the dense size. Consumers needing the
		// full n² layout (eigendecomposition, reports) call Sim.Dense().
		Sim *linalg.SymMatrix
	}
	clusterArtifact struct {
		Labels []int
		// Warnings are the degradations this stage absorbed (eigensolver
		// retries, degenerate k-means, or the size-quantile fallback).
		// They live in the artifact — not just on the Analysis — so a
		// warm run reproduces the degraded run's warnings verbatim.
		Warnings []string
		Fallback bool
	}
	profileArtifact struct {
		Groups     []GroupProfile
		Silhouette float64
	}
	sketchArtifact struct {
		Vectors []wl.Vector
		Sigs    []wl.Sketch
	}
	annArtifact struct {
		Index *wl.ANNIndex
	}
)

// digestJobs fingerprints the ingest source: a SHA-256 over every field
// of every task record, streamed in input order. Only computed when a
// cache store is attached (the engine's source fingerprints are lazy).
func digestJobs(jobs []trace.Job) string {
	h := sha256.New()
	buf := make([]byte, 0, 256)
	buf = append(buf, "jobs/v1:"...)
	buf = strconv.AppendInt(buf, int64(len(jobs)), 10)
	buf = append(buf, '\n')
	h.Write(buf)
	for i := range jobs {
		j := &jobs[i]
		buf = buf[:0]
		buf = append(buf, j.Name...)
		buf = append(buf, 0)
		buf = strconv.AppendInt(buf, int64(len(j.Tasks)), 10)
		buf = append(buf, '\n')
		h.Write(buf)
		for k := range j.Tasks {
			t := &j.Tasks[k]
			buf = buf[:0]
			buf = append(buf, t.TaskName...)
			buf = append(buf, 0)
			buf = strconv.AppendInt(buf, int64(t.InstanceNum), 10)
			buf = append(buf, 0)
			buf = append(buf, t.JobName...)
			buf = append(buf, 0)
			buf = append(buf, t.TaskType...)
			buf = append(buf, 0)
			buf = append(buf, string(t.Status)...)
			buf = append(buf, 0)
			buf = strconv.AppendInt(buf, t.StartTime, 10)
			buf = append(buf, 0)
			buf = strconv.AppendInt(buf, t.EndTime, 10)
			buf = append(buf, 0)
			buf = strconv.AppendFloat(buf, t.PlanCPU, 'g', -1, 64)
			buf = append(buf, 0)
			buf = strconv.AppendFloat(buf, t.PlanMem, 'g', -1, 64)
			buf = append(buf, '\n')
			h.Write(buf)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// plan builds the stage graph for one analysis run. lg is used by the
// cluster stage's degradation path; stage completion logging is the
// engine's job. times, when non-nil, receives per-job wall times from
// the dag.jobs stage (only when that stage actually executes) — it is
// measurement plumbing and deliberately bypasses the artifact/cache
// path so timings never enter the wire format.
func (cfg Config) plan(jobs []trace.Job, lg *slog.Logger, times *jobTimes) *engine.Plan {
	p := engine.NewPlan()
	p.Source(stages.Ingest, jobs, func() string { return digestJobs(jobs) })

	p.Add(&engine.Stage{
		Name:        stages.SamplingFilter,
		Deps:        []string{stages.Ingest},
		Fingerprint: fmt.Sprintf("criteria:%+v", cfg.Criteria),
		Codec:       cache.Gob[filterArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			jobs, err := engine.In[[]trace.Job](in, stages.Ingest)
			if err != nil {
				return nil, "", err
			}
			cands, fstats, err := sampling.FilterOpts(jobs, cfg.Criteria,
				sampling.FilterOptions{Workers: cfg.Workers, Arena: cfg.Arena})
			if err != nil {
				return nil, "", err
			}
			if len(cands) == 0 {
				return nil, "", fmt.Errorf("core: no jobs survive filtering (stats %+v)", fstats)
			}
			return filterArtifact{Cands: cands, Stats: fstats},
				fmt.Sprintf("kept %d/%d (integrity %d, availability %d, non-DAG %d)",
					fstats.Kept, fstats.Input, fstats.NotTerminated, fstats.OutsideWindow, fstats.NonDAG), nil
		},
	})

	p.Add(&engine.Stage{
		Name:        stages.SamplingSample,
		Deps:        []string{stages.SamplingFilter},
		Fingerprint: fmt.Sprintf("n:%d seed:%d", cfg.SampleSize, cfg.Seed),
		Codec:       cache.Gob[sampleArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			fa, err := engine.In[filterArtifact](in, stages.SamplingFilter)
			if err != nil {
				return nil, "", err
			}
			sample := sampling.SampleDiverse(fa.Cands, cfg.SampleSize, cfg.Seed)
			if len(sample) < cfg.Groups {
				return nil, "", fmt.Errorf("core: sample of %d too small for %d groups", len(sample), cfg.Groups)
			}
			return sampleArtifact{Sample: sample, Pool: len(fa.Cands)},
				fmt.Sprintf("%d jobs from pool of %d", len(sample), len(fa.Cands)), nil
		},
	})

	// dag.jobs: the per-job structural stage — conflation (when
	// configured) plus size / critical path / max width / chain
	// classification / resource sums — run across the worker pool with
	// index-addressed writes, so collection is order-stable and the
	// result is identical at every worker count.
	p.Add(&engine.Stage{
		Name:        stages.DAGJobs,
		Deps:        []string{stages.SamplingSample},
		Fingerprint: fmt.Sprintf("conflate:%t", cfg.Conflate),
		Codec:       cache.Gob[dagJobsArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			sa, err := engine.In[sampleArtifact](in, stages.SamplingSample)
			if err != nil {
				return nil, "", err
			}
			sample := sa.Sample
			graphs := make([]*dag.Graph, len(sample))
			jstats := make([]JobStat, len(sample))
			if times != nil {
				times.durs = make([]time.Duration, len(sample))
			}
			workers := cfg.Workers
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			reg := obs.Default()
			err = runPool(stages.DAGJobs, len(sample), workers, cfg.OnJob, func(i int) error {
				if times != nil {
					start := reg.Now()
					defer func() { times.durs[i] = reg.Now().Sub(start) }()
				}
				g := sample[i].Graph
				js := JobStat{}
				if cfg.Conflate {
					cg, cst, err := conflate.Conflate(g)
					if err != nil {
						return fmt.Errorf("core: conflating %s: %w", g.JobID, err)
					}
					js.Merged = cst.SizeBefore - cst.SizeAfter
					g = cg
				}
				depth, width, err := g.DepthAndMaxWidth()
				if err != nil {
					return fmt.Errorf("core: depth/width of %s: %w", g.JobID, err)
				}
				js.Size, js.Depth, js.MaxWidth = g.Size(), depth, width
				if s, err := pattern.Classify(g); err == nil && s == pattern.Chain {
					js.Chain = true
				}
				for p := 0; p < g.NumNodes(); p++ {
					n := g.NodeAt(p)
					js.Instances += float64(n.Instances)
					js.PlanCPU += n.PlanCPU
					js.Duration += n.Duration
				}
				graphs[i] = g
				jstats[i] = js
				return nil
			})
			if err != nil {
				return nil, "", err
			}
			art := dagJobsArtifact{Graphs: graphs, Stats: jstats}
			if !cfg.Conflate {
				return art, fmt.Sprintf("structural stats for %d graphs (conflation disabled)", len(graphs)), nil
			}
			merged := 0
			for i := range jstats {
				merged += jstats[i].Merged
			}
			return art, fmt.Sprintf("merged %d nodes across %d graphs", merged, len(graphs)), nil
		},
	})

	p.Add(&engine.Stage{
		Name:        stages.WLFeatures,
		Deps:        []string{stages.DAGJobs},
		Fingerprint: fmt.Sprintf("wl:%+v", cfg.WL),
		Codec:       cache.Gob[featuresArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			da, err := engine.In[dagJobsArtifact](in, stages.DAGJobs)
			if err != nil {
				return nil, "", err
			}
			vectors, dict, err := wl.Features(da.Graphs, cfg.WL)
			if err != nil {
				return nil, "", err
			}
			return featuresArtifact{Vectors: vectors, Dict: dict, Compact: wl.CompactAll(vectors)},
				fmt.Sprintf("%d graphs embedded, %d distinct labels (h=%d)",
					len(vectors), dict.Len(), cfg.WL.Iterations), nil
		},
	})

	p.Add(&engine.Stage{
		Name:  stages.WLMatrix,
		Deps:  []string{stages.WLFeatures},
		Codec: cache.Gob[matrixArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			fa, err := engine.In[featuresArtifact](in, stages.WLFeatures)
			if err != nil {
				return nil, "", err
			}
			compact := fa.Compact
			if len(compact) != len(fa.Vectors) {
				// Defensive: an artifact written without the compact
				// mirror (not expected under the v2 schema) still works.
				compact = wl.CompactAll(fa.Vectors)
			}
			sim, err := wl.SymMatrixFromCompactOpts(compact, wl.MatrixOptions{
				Workers: cfg.Workers,
				OnRow:   cfg.OnRow,
			})
			if err != nil {
				return nil, "", err
			}
			n := len(fa.Vectors)
			return matrixArtifact{Sim: sim},
				fmt.Sprintf("%dx%d similarities (%d pairs)", n, n, n*(n+1)/2), nil
		},
	})

	p.Add(&engine.Stage{
		Name:        stages.ClusterSpectral,
		Deps:        []string{stages.WLMatrix, stages.DAGJobs},
		Fingerprint: fmt.Sprintf("groups:%d seed:%d", cfg.Groups, cfg.Seed),
		Codec:       cache.Gob[clusterArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			ma, err := engine.In[matrixArtifact](in, stages.WLMatrix)
			if err != nil {
				return nil, "", err
			}
			// The sample stage validates this on cold runs, but its
			// artifact does not depend on Groups — a cached sample can
			// be smaller than a newly requested group count, so the
			// check must also hold here.
			if ma.Sim.N < cfg.Groups {
				return nil, "", fmt.Errorf("core: sample of %d too small for %d groups", ma.Sim.N, cfg.Groups)
			}
			spec, err := spectralFn(ma.Sim.Dense(), cluster.SpectralOptions{
				K:      cfg.Groups,
				KMeans: cluster.KMeansOptions{Seed: cfg.Seed},
			})
			if err != nil {
				// Degrade rather than abort: group by job-size quantiles
				// so the run still yields profiles, flagged loudly. Size
				// is the strongest single structural signal the paper
				// identifies, so the fallback is coarse but not arbitrary.
				obsSpectralFallback.Add(1)
				lg.Warn("spectral clustering failed; using size-quantile fallback", "err", err)
				da, derr := engine.In[dagJobsArtifact](in, stages.DAGJobs)
				if derr != nil {
					return nil, "", derr
				}
				return clusterArtifact{
						Labels: sizeQuantileLabels(da.Graphs, cfg.Groups),
						Warnings: []string{fmt.Sprintf(
							"spectral clustering failed (%v); fell back to size-quantile grouping", err)},
						Fallback: true,
					},
					fmt.Sprintf("degraded: size-quantile fallback into %d groups", cfg.Groups), nil
			}
			return clusterArtifact{Labels: spec.Labels, Warnings: spec.Warnings},
				fmt.Sprintf("%d groups over %d jobs", cfg.Groups, len(spec.Labels)), nil
		},
	})

	p.Add(&engine.Stage{
		Name:  stages.ProfileGroups,
		Deps:  []string{stages.DAGJobs, stages.WLMatrix, stages.ClusterSpectral},
		Codec: cache.Gob[profileArtifact](),
		Run: func(in engine.Inputs) (any, string, error) {
			da, err := engine.In[dagJobsArtifact](in, stages.DAGJobs)
			if err != nil {
				return nil, "", err
			}
			ma, err := engine.In[matrixArtifact](in, stages.WLMatrix)
			if err != nil {
				return nil, "", err
			}
			ca, err := engine.In[clusterArtifact](in, stages.ClusterSpectral)
			if err != nil {
				return nil, "", err
			}
			sim := ma.Sim.Dense()
			art := profileArtifact{Groups: profileGroups(da.Graphs, da.Stats, sim, ca.Labels)}
			if dist, err := cluster.DistanceFromSimilarity(sim); err == nil {
				if s, err := cluster.Silhouette(dist, ca.Labels); err == nil {
					art.Silhouette = s
				}
			}
			return art, fmt.Sprintf("%d groups, silhouette %.3f", len(art.Groups), art.Silhouette), nil
		},
	})

	// Approximate-similarity stages, opt-in. They branch off dag.jobs —
	// not wl.features — because the ANN path embeds with feature hashing
	// (no shared dictionary), so the exact and approximate pipelines
	// only share the structural prefix.
	if cfg.ANN {
		sk := cfg.Sketch.Resolved()
		p.Add(&engine.Stage{
			Name:        stages.WLSketch,
			Deps:        []string{stages.DAGJobs},
			Fingerprint: fmt.Sprintf("wl:%+v sketch:%+v", cfg.WL, sk),
			Codec:       cache.Gob[sketchArtifact](),
			Run: func(in engine.Inputs) (any, string, error) {
				da, err := engine.In[dagJobsArtifact](in, stages.DAGJobs)
				if err != nil {
					return nil, "", err
				}
				vectors, err := wl.HashedFeatures(da.Graphs, cfg.WL, sk.Buckets, cfg.Workers)
				if err != nil {
					return nil, "", err
				}
				sigs, err := wl.Sketches(vectors, sk, cfg.Workers)
				if err != nil {
					return nil, "", err
				}
				return sketchArtifact{Vectors: vectors, Sigs: sigs},
					fmt.Sprintf("%d jobs sketched (%d hashes, %d bands, %d buckets)",
						len(sigs), sk.Hashes, sk.Bands, sk.Buckets), nil
			},
		})

		p.Add(&engine.Stage{
			Name:        stages.WLANNIndex,
			Deps:        []string{stages.DAGJobs, stages.WLSketch},
			Fingerprint: fmt.Sprintf("wl:%+v sketch:%+v", cfg.WL, sk),
			Codec:       cache.Gob[annArtifact](),
			Run: func(in engine.Inputs) (any, string, error) {
				da, err := engine.In[dagJobsArtifact](in, stages.DAGJobs)
				if err != nil {
					return nil, "", err
				}
				sa, err := engine.In[sketchArtifact](in, stages.WLSketch)
				if err != nil {
					return nil, "", err
				}
				jobIDs := make([]string, len(da.Graphs))
				for i, g := range da.Graphs {
					jobIDs[i] = g.JobID
				}
				ix, err := wl.NewANNIndexFromSketches(cfg.WL, sk, jobIDs, sa.Vectors, sa.Sigs)
				if err != nil {
					return nil, "", err
				}
				return annArtifact{Index: ix},
					fmt.Sprintf("%d jobs indexed across %d LSH bands", ix.Len(), sk.Bands), nil
			},
		})
	}

	return p
}

// Run executes the pipeline over the given trace jobs.
//
// The stage graph is declared by Config.plan and executed by
// internal/engine: every stage runs inside an obs span (aggregated
// under "pipeline" in the Default registry's stage tree) and is timed
// on Analysis.Stages; with a logger installed (obs.Default().SetLogger,
// the commands' -v flag) one structured record per stage carries the
// stage name, duration and key counts.
//
// With Config.CacheDir set, artifacts are persisted to a
// content-addressed store as each stage completes: a warm re-run with
// only downstream configuration changed (say Groups) loads the kernel
// matrix instead of recomputing it, and a run interrupted mid-stage
// resumes from the last completed artifact. Cached and cold runs
// produce identical analyses (see Analysis.Fingerprint).
func Run(jobs []trace.Job, cfg Config) (*Analysis, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := obs.Default()
	lg := reg.Logger()
	an := &Analysis{}

	if cfg.Ingest != nil {
		if cfg.Ingest.Partial {
			an.Partial = true
			an.Warnings = append(an.Warnings, fmt.Sprintf(
				"ingest: trace truncated (%v); analysis covers the %d rows read before the cut",
				cfg.Ingest.PartialCause, cfg.Ingest.Rows))
		}
		if cfg.Ingest.BadRows > 0 {
			an.Warnings = append(an.Warnings, fmt.Sprintf(
				"ingest: %d malformed rows skipped (%s)", cfg.Ingest.BadRows, cfg.Ingest.Summary()))
		}
	}

	var store *cache.Store
	if cfg.CacheDir != "" {
		var err error
		store, err = cache.Open(cfg.CacheDir)
		if err != nil {
			// An unusable cache degrades to an uncached run; it must not
			// abort an analysis that can complete without it.
			an.Warnings = append(an.Warnings, fmt.Sprintf("artifact cache disabled: %v", err))
			lg.Warn("artifact cache disabled; running uncached", "dir", cfg.CacheDir, "err", err)
		}
	}

	// Per-job wall times for slow-job exemplars: collected outside the
	// artifact path so caching and fingerprints stay timing-free. A nil
	// collector (capture disabled) skips the per-job clock reads.
	var times *jobTimes
	if cfg.slowJobK() > 0 {
		times = &jobTimes{}
	}

	root := reg.StartSpan(stages.Pipeline)
	defer root.End()
	res, err := cfg.plan(jobs, lg, times).Execute(engine.Options{Store: store, Parent: root, Logger: lg})
	if res != nil {
		an.Stages = res.Executed
		an.CachedStages = append([]string(nil), res.Cached...)
		an.indexStages()
	}
	if err != nil {
		return nil, err
	}

	fa, err := engine.ArtifactAs[filterArtifact](res, stages.SamplingFilter)
	if err != nil {
		return nil, err
	}
	sa, err := engine.ArtifactAs[sampleArtifact](res, stages.SamplingSample)
	if err != nil {
		return nil, err
	}
	da, err := engine.ArtifactAs[dagJobsArtifact](res, stages.DAGJobs)
	if err != nil {
		return nil, err
	}
	fe, err := engine.ArtifactAs[featuresArtifact](res, stages.WLFeatures)
	if err != nil {
		return nil, err
	}
	ma, err := engine.ArtifactAs[matrixArtifact](res, stages.WLMatrix)
	if err != nil {
		return nil, err
	}
	ca, err := engine.ArtifactAs[clusterArtifact](res, stages.ClusterSpectral)
	if err != nil {
		return nil, err
	}
	pa, err := engine.ArtifactAs[profileArtifact](res, stages.ProfileGroups)
	if err != nil {
		return nil, err
	}

	if cfg.ANN {
		ska, err := engine.ArtifactAs[sketchArtifact](res, stages.WLSketch)
		if err != nil {
			return nil, err
		}
		aa, err := engine.ArtifactAs[annArtifact](res, stages.WLANNIndex)
		if err != nil {
			return nil, err
		}
		an.HashedVectors = ska.Vectors
		an.ANNIndex = aa.Index
	}

	an.Sample = sa.Sample
	an.Graphs = da.Graphs
	an.JobStats = da.Stats
	an.FilterStats = fa.Stats
	an.Similarity = ma.Sim.Dense()
	an.Labels = ca.Labels
	an.Warnings = append(an.Warnings, ca.Warnings...)
	an.Groups = pa.Groups
	an.Silhouette = pa.Silhouette
	an.wlOpts = cfg.WL
	an.dict = fe.Dict
	an.vectors = fe.Vectors

	if k := cfg.slowJobK(); k > 0 {
		an.SlowJobs = slowJobs(times, an, k)
		publishSlowJobs(reg, an.SlowJobs, k)
	}

	if len(an.Warnings) > 0 {
		obsDegradedRuns.Add(1)
		for _, w := range an.Warnings {
			lg.Warn("analysis degraded", "warning", w)
		}
	}
	return an, nil
}
