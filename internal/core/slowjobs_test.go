package core

import (
	"testing"
	"time"

	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
)

// TestSlowJobsCaptured runs a real pipeline and checks the exemplar
// invariants that hold regardless of which jobs happen to be slowest:
// count, sort order, population coverage of graph shape and group
// assignment, and the obs surfaces (exemplar store + synthetic spans).
func TestSlowJobsCaptured(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()

	jobs := genJobs(t, 800, 7)
	cfg := DefaultConfig(testWindow, 7)
	cfg.SampleSize = 40
	cfg.SlowJobK = 5
	an, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.SlowJobs) != 5 {
		t.Fatalf("SlowJobs = %d, want 5", len(an.SlowJobs))
	}
	group := make(map[int]string)
	for _, gp := range an.Groups {
		for _, idx := range gp.Members {
			group[idx] = gp.Name
		}
	}
	for i, sj := range an.SlowJobs {
		if i > 0 && sj.Duration > an.SlowJobs[i-1].Duration {
			t.Fatalf("SlowJobs not sorted slowest-first at %d", i)
		}
		if sj.Index < 0 || sj.Index >= len(an.Graphs) {
			t.Fatalf("exemplar index %d out of range", sj.Index)
		}
		g := an.Graphs[sj.Index]
		if sj.JobID != g.JobID {
			t.Fatalf("exemplar %d: JobID %q != graph %q", i, sj.JobID, g.JobID)
		}
		if sj.Nodes != an.JobStats[sj.Index].Size || sj.Edges != g.NumEdges() {
			t.Fatalf("exemplar %s shape mismatch", sj.JobID)
		}
		if sj.Group != group[sj.Index] {
			t.Fatalf("exemplar %s group %q, want %q", sj.JobID, sj.Group, group[sj.Index])
		}
	}

	ex := reg.Exemplars()[stages.DAGJobs]
	if len(ex) != 5 {
		t.Fatalf("registry exemplars = %d, want 5", len(ex))
	}
	if ex[0].ID != an.SlowJobs[0].JobID {
		t.Fatalf("registry exemplar order diverges: %q vs %q", ex[0].ID, an.SlowJobs[0].JobID)
	}
	// Each exemplar gets a synthetic pipeline/dag.jobs/slow/<job> span.
	snap := reg.Snapshot()
	var slow *obs.SpanSnapshot
	for ri := range snap.Spans {
		root := &snap.Spans[ri]
		if root.Name != stages.Pipeline {
			continue
		}
		for ci := range root.Children {
			c := &root.Children[ci]
			if c.Name != stages.DAGJobs {
				continue
			}
			for cci := range c.Children {
				if c.Children[cci].Name == "slow" {
					slow = &c.Children[cci]
				}
			}
		}
	}
	if slow == nil {
		t.Fatal("no pipeline/dag.jobs/slow span subtree")
	}
	if len(slow.Children) != 5 {
		t.Fatalf("slow span has %d children, want 5", len(slow.Children))
	}
}

// TestSlowJobsDisabled proves SlowJobK < 0 turns capture off entirely.
func TestSlowJobsDisabled(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	defer reg.Reset()

	cfg := DefaultConfig(testWindow, 3)
	cfg.SampleSize = 20
	cfg.SlowJobK = -1
	an, err := Run(genJobs(t, 400, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.SlowJobs != nil {
		t.Fatalf("SlowJobs = %v with capture disabled", an.SlowJobs)
	}
	if len(reg.Exemplars()) != 0 {
		t.Fatalf("registry exemplars recorded with capture disabled")
	}
}

// TestSlowJobsAssembly pins the pure assembly logic with hand-built
// durations: deterministic ordering (ties break on job id), truncation
// to k, and group attribution.
func TestSlowJobsAssembly(t *testing.T) {
	an := runPipeline(t, 400, 11)
	n := len(an.Graphs)
	if n < 4 {
		t.Fatalf("sample too small: %d", n)
	}
	times := &jobTimes{durs: make([]time.Duration, n)}
	for i := range times.durs {
		times.durs[i] = time.Duration(i%3) * time.Millisecond // ties on purpose
	}
	slow := slowJobs(times, an, 3)
	if len(slow) != 3 {
		t.Fatalf("got %d exemplars, want 3", len(slow))
	}
	for i, sj := range slow {
		if sj.Duration != 2*time.Millisecond {
			t.Fatalf("exemplar %d duration %v, want 2ms", i, sj.Duration)
		}
		if i > 0 && sj.JobID <= slow[i-1].JobID {
			t.Fatalf("tie not broken by ascending job id at %d", i)
		}
	}
	if got := slowJobs(nil, an, 3); got != nil {
		t.Fatalf("nil collector should yield nil, got %v", got)
	}
	if got := slowJobs(times, an, 0); got != nil {
		t.Fatalf("k=0 should yield nil, got %v", got)
	}
}

// TestSlowJobsFingerprintStable proves exemplar capture does not
// perturb the analysis fingerprint: runs with different SlowJobK (and
// thus different SlowJobs slices) fingerprint identically.
func TestSlowJobsFingerprintStable(t *testing.T) {
	jobs := genJobs(t, 400, 5)
	cfg := DefaultConfig(testWindow, 5)
	cfg.SampleSize = 20

	cfg.SlowJobK = 3
	a, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlowJobK = -1
	b, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("fingerprint depends on SlowJobK: %s vs %s", fa, fb)
	}
	if len(a.SlowJobs) == 0 || b.SlowJobs != nil {
		t.Fatalf("capture flags not honored: a=%d b=%v", len(a.SlowJobs), b.SlowJobs)
	}
}
