package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestRunWorkersDeterminism is the tentpole guarantee: Workers=1 (the
// fully sequential pipeline) and Workers=8 produce an identical
// Analysis on a 3k-job synthetic trace — similarity matrix bytes,
// labels, groups, per-job stats, everything except wall-clock timings.
func TestRunWorkersDeterminism(t *testing.T) {
	jobs := genJobs(t, 3000, 21)
	run := func(workers int) *Analysis {
		cfg := DefaultConfig(testWindow, 21)
		cfg.Workers = workers
		an, err := Run(jobs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return an
	}
	seq := run(1)
	par := run(8)

	if !reflect.DeepEqual(seq.Similarity.Data, par.Similarity.Data) {
		t.Error("similarity matrices differ")
	}
	if !reflect.DeepEqual(seq.Labels, par.Labels) {
		t.Error("cluster labels differ")
	}
	if !reflect.DeepEqual(seq.Groups, par.Groups) {
		t.Error("group profiles differ")
	}
	if !reflect.DeepEqual(seq.JobStats, par.JobStats) {
		t.Error("per-job stats differ")
	}
	if seq.Silhouette != par.Silhouette {
		t.Errorf("silhouette differs: %v vs %v", seq.Silhouette, par.Silhouette)
	}
	if !reflect.DeepEqual(seq.FilterStats, par.FilterStats) {
		t.Errorf("filter stats differ: %+v vs %+v", seq.FilterStats, par.FilterStats)
	}
	if len(seq.Sample) != len(par.Sample) {
		t.Fatalf("sample sizes differ: %d vs %d", len(seq.Sample), len(par.Sample))
	}
	for i := range seq.Sample {
		if seq.Sample[i].Job.Name != par.Sample[i].Job.Name {
			t.Fatalf("sample[%d] differs: %s vs %s", i, seq.Sample[i].Job.Name, par.Sample[i].Job.Name)
		}
	}
	if !reflect.DeepEqual(seq.Warnings, par.Warnings) {
		t.Errorf("warnings differ: %v vs %v", seq.Warnings, par.Warnings)
	}
}

func TestRunWorkersDeterminismConflated(t *testing.T) {
	jobs := genJobs(t, 1500, 9)
	run := func(workers int) *Analysis {
		cfg := DefaultConfig(testWindow, 9)
		cfg.Conflate = true
		cfg.Workers = workers
		an, err := Run(jobs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return an
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq.JobStats, par.JobStats) {
		t.Error("conflated per-job stats differ")
	}
	if !reflect.DeepEqual(seq.Labels, par.Labels) {
		t.Error("conflated labels differ")
	}
}

func TestJobStatsAligned(t *testing.T) {
	an := runPipeline(t, 2000, 3)
	if len(an.JobStats) != len(an.Sample) || len(an.JobStats) != len(an.Graphs) {
		t.Fatalf("JobStats misaligned: %d stats, %d sample, %d graphs",
			len(an.JobStats), len(an.Sample), len(an.Graphs))
	}
	for i, js := range an.JobStats {
		if js.Size != an.Graphs[i].Size() {
			t.Fatalf("JobStats[%d].Size=%d, graph size %d", i, js.Size, an.Graphs[i].Size())
		}
		if js.Depth < 1 || js.MaxWidth < 1 {
			t.Fatalf("JobStats[%d] has empty structure: %+v", i, js)
		}
	}
}

func TestRunPoolOrderStable(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		n := 500
		out := make([]int, n)
		err := runPool("test", n, workers, nil, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

func TestRunPoolLowestIndexErrorWins(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := runPool("test", 100, workers, nil, func(i int) error {
			if i == 7 || i == 60 {
				return fmt.Errorf("item %d: %w", i, wantErr)
			}
			return nil
		})
		if err == nil || !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Item 7's error must win: it is always dispatched before any
		// later failing index can halt the pool.
		if got := err.Error(); got != "item 7: boom" {
			t.Fatalf("workers=%d: err = %q, want item 7's", workers, got)
		}
	}
}

func TestRunPoolCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		ran := 0
		err := runPool("test", 1000, workers, func(done, total int) error {
			if done >= 10 {
				return errors.New("enough")
			}
			return nil
		}, func(i int) error {
			mu.Lock()
			ran++
			mu.Unlock()
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected abort error", workers)
		}
		wantPrefix := "core: test aborted after "
		if got := err.Error(); len(got) < len(wantPrefix) || got[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("workers=%d: err = %q", workers, got)
		}
		mu.Lock()
		n := ran
		mu.Unlock()
		if n >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop the pool (ran %d)", workers, n)
		}
	}
}

func TestRunOnJobCancels(t *testing.T) {
	jobs := genJobs(t, 1500, 5)
	cfg := DefaultConfig(testWindow, 5)
	cfg.Workers = 4
	cfg.OnJob = func(done, total int) error {
		if done > 3 {
			return errors.New("user interrupt")
		}
		return nil
	}
	_, err := Run(jobs, cfg)
	if err == nil {
		t.Fatal("expected OnJob cancellation to abort the run")
	}
}
