// Package core assembles the paper's full analysis pipeline:
//
//	trace jobs → integrity/availability filtering → diverse sampling →
//	(optional) node conflation → WL kernel similarity matrix →
//	spectral clustering → per-group structural profiles.
//
// Each stage is implemented by its own substrate package; core wires
// them with one configuration and exposes the Analysis result the
// experiment runners and example programs consume.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"jobgraph/internal/cluster"
	"jobgraph/internal/dag"
	"jobgraph/internal/engine"
	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
	"jobgraph/internal/sampling"
	"jobgraph/internal/stats"
	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
	"jobgraph/internal/wl"
)

// Degradation telemetry: runs that completed with warnings, and runs
// where spectral clustering failed outright and the size-quantile
// fallback produced the grouping.
var (
	obsDegradedRuns     = obs.Default().Counter("core.degraded_runs")
	obsSpectralFallback = obs.Default().Counter("core.spectral_fallbacks")
)

// spectralFn is the spectral-clustering entry point; a variable so
// degradation tests can inject failures without corrupting a real
// similarity matrix.
var spectralFn = cluster.Spectral

// Config drives one end-to-end analysis.
type Config struct {
	// Criteria filters jobs (integrity / availability / size bounds).
	Criteria sampling.Criteria
	// SampleSize is the number of jobs analyzed (the paper uses 100).
	SampleSize int
	// Seed controls sampling and clustering reproducibility.
	Seed int64
	// Conflate applies node conflation to every sampled DAG before the
	// kernel computation.
	Conflate bool
	// WL configures the graph kernel.
	WL wl.Options
	// Groups is the spectral cluster count (the paper finds 5).
	Groups int
	// Workers bounds the pipeline's parallel stages — candidate
	// filtering, the per-job DAG stage, and the kernel matrix (<=0:
	// GOMAXPROCS; 1: fully sequential). Every worker count produces the
	// same Analysis bit-for-bit.
	Workers int
	// OnJob, when non-nil, is invoked serially after each job finishes
	// the per-job DAG stage with (done, total) — the per-job counterpart
	// of wl.MatrixOptions.OnRow. Returning a non-nil error cancels the
	// run cooperatively.
	OnJob func(done, total int) error
	// OnRow is forwarded to the kernel-matrix stage
	// (wl.MatrixOptions.OnRow): serial per-row progress with cooperative
	// cancellation. Like OnJob and Workers it does not affect artifacts,
	// so it stays out of the cache fingerprints.
	OnRow func(done, total int) error
	// Arena, when non-nil, is the task-name interning arena the trace
	// was read with (trace.ReadOptions.Arena): the sampling filter
	// resolves the records' symbols to cached parses instead of
	// re-decoding each name. Pure execution configuration — symbols
	// never change which jobs survive or what the graphs contain, so
	// like Workers it stays out of the cache fingerprints.
	Arena *taskname.Arena
	// CacheDir, when non-empty, enables the engine's content-addressed
	// artifact store rooted at that directory: completed stage artifacts
	// are persisted as the run progresses and re-loaded on later runs
	// whose upstream configuration matches. Empty disables caching.
	CacheDir string
	// Ingest carries the trace reader's health stats when the jobs came
	// from a lenient read. A partial or lossy ingest is surfaced as
	// warnings on the Analysis (and Partial when the table was
	// truncated) so consumers know the sample universe was incomplete.
	Ingest *trace.ReadStats
	// ANN appends the approximate-similarity stages (wl.sketch,
	// wl.annindex) to the plan: the sampled DAGs are feature-hashed,
	// MinHash-sketched, and assembled into a persistent LSH index
	// exposed as Analysis.ANNIndex. Off by default — the exact kernel
	// path is the reference and its stage list is unchanged.
	ANN bool
	// Sketch configures the ANN sketch geometry; zero fields resolve to
	// wl.DefaultSketchOptions. Ignored unless ANN is set.
	Sketch wl.SketchOptions
	// SlowJobK bounds the slow-job exemplars retained from the dag.jobs
	// stage (Analysis.SlowJobs): 0 keeps DefaultSlowJobK, negative
	// disables capture. Like Workers and the progress hooks it is pure
	// measurement configuration — it never affects artifacts or
	// fingerprints.
	SlowJobK int
}

// DefaultConfig mirrors the paper's experimental setup for a trace
// window of the given length (seconds).
func DefaultConfig(window int64, seed int64) Config {
	return Config{
		Criteria:   sampling.PaperCriteria(window),
		SampleSize: 100,
		Seed:       seed,
		Conflate:   false,
		WL:         wl.DefaultOptions(),
		Groups:     5,
		Workers:    0,
	}
}

func (c Config) validate() error {
	if c.SampleSize < 1 {
		return fmt.Errorf("core: SampleSize %d < 1", c.SampleSize)
	}
	if c.Groups < 1 {
		return fmt.Errorf("core: Groups %d < 1", c.Groups)
	}
	return nil
}

// GroupProfile is the per-cluster statistics of Figure 9.
type GroupProfile struct {
	// Name is the population-rank label: "A" is the largest group.
	Name  string
	Count int
	// Population is Count / sample size.
	Population float64

	Sizes  stats.Summary // job size distribution
	Depths stats.Summary // critical-path distribution
	Widths stats.Summary // max-parallelism distribution

	// Resource profile of the group — the direction the paper's
	// conclusion points to ("combining resource analysis techniques for
	// job scheduling optimization"): knowing a new job's group predicts
	// its demand.
	MeanInstances float64 // mean total instances per job
	MeanPlanCPU   float64 // mean summed CPU request per job
	MeanDuration  float64 // mean summed task duration per job (s)

	// ChainFraction is the share of straight-chain jobs in the group
	// (91% in the paper's group A).
	ChainFraction float64
	// ShortFraction is the share of jobs with fewer than three tasks
	// (90.6% in the paper's group A).
	ShortFraction float64
	// Representative is the job id closest to the group's similarity
	// centroid — the paper's Figure 8 exemplar.
	Representative string

	// Members are sample indices belonging to the group.
	Members []int
}

// JobStat is the per-sampled-job structural and resource summary
// computed by the dag.jobs stage, index-aligned with Analysis.Sample.
type JobStat struct {
	// Size/Depth/MaxWidth describe the (possibly conflated) DAG: node
	// count, critical-path length, and maximum antichain width.
	Size, Depth, MaxWidth int
	// Chain reports a straight-chain topology (pattern.Chain).
	Chain bool
	// Merged is the number of nodes removed by conflation (0 when
	// conflation is disabled).
	Merged int
	// Instances/PlanCPU/Duration are the job's summed resource demand
	// across its DAG nodes.
	Instances, PlanCPU, Duration float64
}

// Analysis is the full pipeline output.
type Analysis struct {
	// Sample is the analyzed candidate set (post-filter, post-sample).
	Sample []sampling.Candidate
	// Graphs are the DAGs the kernel ran on (conflated when configured).
	Graphs []*dag.Graph
	// JobStats are the per-job structural summaries, aligned with
	// Sample/Graphs.
	JobStats []JobStat
	// FilterStats reports the §IV-B selection outcome.
	FilterStats sampling.FilterStats
	// Similarity is the n×n normalized WL kernel matrix (Figure 7).
	Similarity *linalg.Matrix
	// Labels are raw spectral cluster ids per sample index.
	Labels []int
	// Groups are population-ranked profiles (Figure 9); Groups[0] is
	// group "A".
	Groups []GroupProfile
	// Silhouette is the clustering quality in kernel-distance space.
	Silhouette float64

	// Warnings lists every non-fatal degradation the run absorbed:
	// lossy or partial ingest, eigensolver retries, degenerate k-means,
	// or the size-quantile clustering fallback. Empty on a clean run.
	Warnings []string
	// Partial reports that the input trace was truncated mid-table and
	// the analysis covers only the rows read before the cut.
	Partial bool

	// ANNIndex is the approximate-similarity index over the sampled
	// jobs, present only when Config.ANN was set. Like the kernel state
	// it is operational output, not part of the paper-comparable payload,
	// so it stays out of Fingerprint.
	ANNIndex *wl.ANNIndex
	// HashedVectors are the feature-hashed WL embeddings backing
	// ANNIndex, index-aligned with Sample/Graphs (nil without
	// Config.ANN).
	HashedVectors []wl.Vector

	// SlowJobs are the top-k slowest jobs measured inside the dag.jobs
	// worker pool, slowest first (see Config.SlowJobK). Wall-clock
	// measurement, not analysis output: excluded from Fingerprint, and
	// empty when the stage was served from the artifact cache (a cached
	// stage computes nothing per job).
	SlowJobs []SlowJob

	// Stages records each executed pipeline stage's wall time in
	// execution order — the per-run view of the durations the obs span
	// tree aggregates across runs. Stages satisfied from the artifact
	// cache do not appear here; they are listed on CachedStages.
	Stages []StageTiming
	// CachedStages lists the stages loaded from the artifact store
	// instead of executing, in plan order. Empty on uncached runs.
	CachedStages []string

	// stageIdx backs StageDuration with O(1) lookups; built by
	// indexStages when Run assembles the analysis.
	stageIdx map[string]time.Duration

	// Kernel state retained for classifying new jobs (AssignGroup).
	wlOpts  wl.Options
	dict    *wl.Dictionary
	vectors []wl.Vector
}

// StageTiming is one pipeline stage's measured wall time.
type StageTiming = engine.StageTiming

// indexStages (re)builds the StageDuration lookup map from Stages.
func (an *Analysis) indexStages() {
	an.stageIdx = make(map[string]time.Duration, len(an.Stages))
	for _, s := range an.Stages {
		an.stageIdx[s.Name] = s.Duration
	}
}

// StageDuration returns the recorded wall time of the named stage and
// whether the stage executed (cached stages report false: they have no
// wall time of their own).
func (an *Analysis) StageDuration(name string) (time.Duration, bool) {
	if an.stageIdx != nil {
		d, ok := an.stageIdx[name]
		return d, ok
	}
	// Zero-value Analysis values (hand-built in tests, or decoded from
	// JSON) may not have the index; fall back to the scan.
	for _, s := range an.Stages {
		if s.Name == name {
			return s.Duration, true
		}
	}
	return 0, false
}

// Fingerprint is a SHA-256 over the analysis payload — every field a
// consumer can observe except the run-dependent ones (stage timings and
// cache provenance). Two runs over the same jobs and semantically equal
// configuration must fingerprint identically whether their artifacts
// were computed, cache-loaded, or resumed mid-pipeline; the
// cache-equivalence tests and the CI gate rely on exactly that.
func (an *Analysis) Fingerprint() (string, error) {
	payload := struct {
		Sample      []sampling.Candidate
		Graphs      []*dag.Graph
		JobStats    []JobStat
		FilterStats sampling.FilterStats
		Similarity  *linalg.Matrix
		Labels      []int
		Groups      []GroupProfile
		Silhouette  float64
		Warnings    []string
		Partial     bool
	}{an.Sample, an.Graphs, an.JobStats, an.FilterStats, an.Similarity,
		an.Labels, an.Groups, an.Silhouette, an.Warnings, an.Partial}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("core: fingerprinting analysis: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// AssignGroup classifies a job that was not part of the analysis into
// the most similar existing group: the job is embedded with the
// analysis's WL dictionary and assigned to the group with the highest
// mean kernel similarity to its members. This is the paper's intended
// application — predicting a new job's behaviour from the group of
// structurally similar historical jobs.
//
// If the analysis ran with Config.Conflate, pass a conflated graph here
// too (conflate.Conflate) so the query lives in the same representation
// as the indexed corpus.
func (an *Analysis) AssignGroup(g *dag.Graph) (GroupProfile, float64, error) {
	if an.dict == nil || len(an.vectors) != len(an.Graphs) {
		return GroupProfile{}, 0, fmt.Errorf("core: analysis lacks kernel state")
	}
	vec, err := an.dict.Embed(g, an.wlOpts)
	if err != nil {
		return GroupProfile{}, 0, err
	}
	bestIdx, bestScore := -1, -1.0
	for gi, gp := range an.Groups {
		var sum float64
		for _, m := range gp.Members {
			sum += wl.Similarity(vec, an.vectors[m])
		}
		score := sum / float64(len(gp.Members))
		if score > bestScore {
			bestIdx, bestScore = gi, score
		}
	}
	return an.Groups[bestIdx], bestScore, nil
}

// sizeQuantileLabels groups graphs into k contiguous job-size quantile
// buckets — the documented fallback grouping when spectral clustering
// cannot run. Labels are assigned by size rank, so every bucket is
// non-empty whenever len(graphs) >= k.
func sizeQuantileLabels(graphs []*dag.Graph, k int) []int {
	n := len(graphs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := graphs[order[a]].Size(), graphs[order[b]].Size()
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	labels := make([]int, n)
	for rank, idx := range order {
		labels[idx] = rank * k / n
	}
	return labels
}

// profileGroups computes population-ranked group statistics from the
// per-job summaries the dag.jobs stage already produced.
func profileGroups(graphs []*dag.Graph, jstats []JobStat, sim *linalg.Matrix, labels []int) []GroupProfile {
	byLabel := make(map[int][]int)
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], i)
	}
	type entry struct {
		label   int
		members []int
	}
	entries := make([]entry, 0, len(byLabel))
	for l, m := range byLabel {
		entries = append(entries, entry{l, m})
	}
	sort.Slice(entries, func(i, j int) bool {
		if len(entries[i].members) != len(entries[j].members) {
			return len(entries[i].members) > len(entries[j].members)
		}
		return entries[i].label < entries[j].label
	})

	total := float64(len(labels))
	groups := make([]GroupProfile, 0, len(entries))
	for rank, e := range entries {
		gp := GroupProfile{
			Name:       groupName(rank),
			Count:      len(e.members),
			Population: float64(len(e.members)) / total,
			Members:    append([]int(nil), e.members...),
		}
		var sizes, depths, widths []float64
		chains, short := 0, 0
		var sumInst, sumCPU, sumDur float64
		for _, idx := range e.members {
			js := jstats[idx]
			sizes = append(sizes, float64(js.Size))
			depths = append(depths, float64(js.Depth))
			widths = append(widths, float64(js.MaxWidth))
			if js.Chain {
				chains++
			}
			if js.Size < 3 {
				short++
			}
			sumInst += js.Instances
			sumCPU += js.PlanCPU
			sumDur += js.Duration
		}
		gp.MeanInstances = sumInst / float64(len(e.members))
		gp.MeanPlanCPU = sumCPU / float64(len(e.members))
		gp.MeanDuration = sumDur / float64(len(e.members))
		gp.Sizes, _ = stats.Describe(sizes)
		gp.Depths, _ = stats.Describe(depths)
		gp.Widths, _ = stats.Describe(widths)
		gp.ChainFraction = float64(chains) / float64(len(e.members))
		gp.ShortFraction = float64(short) / float64(len(e.members))
		gp.Representative = graphs[medoid(sim, e.members)].JobID
		groups = append(groups, gp)
	}
	return groups
}

// medoid returns the member index with the highest total similarity to
// its group — the most central exemplar.
func medoid(sim *linalg.Matrix, members []int) int {
	best := members[0]
	bestScore := -1.0
	for _, i := range members {
		var s float64
		for _, j := range members {
			s += sim.At(i, j)
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// groupName converts a population rank to the paper's letter labels:
// A, B, C, ... then G26, G27 beyond Z.
func groupName(rank int) string {
	if rank < 26 {
		return string(rune('A' + rank))
	}
	return fmt.Sprintf("G%d", rank)
}
