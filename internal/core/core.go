// Package core assembles the paper's full analysis pipeline:
//
//	trace jobs → integrity/availability filtering → diverse sampling →
//	(optional) node conflation → WL kernel similarity matrix →
//	spectral clustering → per-group structural profiles.
//
// Each stage is implemented by its own substrate package; core wires
// them with one configuration and exposes the Analysis result the
// experiment runners and example programs consume.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"jobgraph/internal/cluster"
	"jobgraph/internal/conflate"
	"jobgraph/internal/dag"
	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
	"jobgraph/internal/pattern"
	"jobgraph/internal/sampling"
	"jobgraph/internal/stats"
	"jobgraph/internal/trace"
	"jobgraph/internal/wl"
)

// Degradation telemetry: runs that completed with warnings, and runs
// where spectral clustering failed outright and the size-quantile
// fallback produced the grouping.
var (
	obsDegradedRuns     = obs.Default().Counter("core.degraded_runs")
	obsSpectralFallback = obs.Default().Counter("core.spectral_fallbacks")
)

// spectralFn is the spectral-clustering entry point; a variable so
// degradation tests can inject failures without corrupting a real
// similarity matrix.
var spectralFn = cluster.Spectral

// Config drives one end-to-end analysis.
type Config struct {
	// Criteria filters jobs (integrity / availability / size bounds).
	Criteria sampling.Criteria
	// SampleSize is the number of jobs analyzed (the paper uses 100).
	SampleSize int
	// Seed controls sampling and clustering reproducibility.
	Seed int64
	// Conflate applies node conflation to every sampled DAG before the
	// kernel computation.
	Conflate bool
	// WL configures the graph kernel.
	WL wl.Options
	// Groups is the spectral cluster count (the paper finds 5).
	Groups int
	// Workers bounds the pipeline's parallel stages — candidate
	// filtering, the per-job DAG stage, and the kernel matrix (<=0:
	// GOMAXPROCS; 1: fully sequential). Every worker count produces the
	// same Analysis bit-for-bit.
	Workers int
	// OnJob, when non-nil, is invoked serially after each job finishes
	// the per-job DAG stage with (done, total) — the per-job counterpart
	// of wl.MatrixOptions.OnRow. Returning a non-nil error cancels the
	// run cooperatively.
	OnJob func(done, total int) error
	// Ingest carries the trace reader's health stats when the jobs came
	// from a lenient read. A partial or lossy ingest is surfaced as
	// warnings on the Analysis (and Partial when the table was
	// truncated) so consumers know the sample universe was incomplete.
	Ingest *trace.ReadStats
}

// DefaultConfig mirrors the paper's experimental setup for a trace
// window of the given length (seconds).
func DefaultConfig(window int64, seed int64) Config {
	return Config{
		Criteria:   sampling.PaperCriteria(window),
		SampleSize: 100,
		Seed:       seed,
		Conflate:   false,
		WL:         wl.DefaultOptions(),
		Groups:     5,
		Workers:    0,
	}
}

func (c Config) validate() error {
	if c.SampleSize < 1 {
		return fmt.Errorf("core: SampleSize %d < 1", c.SampleSize)
	}
	if c.Groups < 1 {
		return fmt.Errorf("core: Groups %d < 1", c.Groups)
	}
	return nil
}

// GroupProfile is the per-cluster statistics of Figure 9.
type GroupProfile struct {
	// Name is the population-rank label: "A" is the largest group.
	Name  string
	Count int
	// Population is Count / sample size.
	Population float64

	Sizes  stats.Summary // job size distribution
	Depths stats.Summary // critical-path distribution
	Widths stats.Summary // max-parallelism distribution

	// Resource profile of the group — the direction the paper's
	// conclusion points to ("combining resource analysis techniques for
	// job scheduling optimization"): knowing a new job's group predicts
	// its demand.
	MeanInstances float64 // mean total instances per job
	MeanPlanCPU   float64 // mean summed CPU request per job
	MeanDuration  float64 // mean summed task duration per job (s)

	// ChainFraction is the share of straight-chain jobs in the group
	// (91% in the paper's group A).
	ChainFraction float64
	// ShortFraction is the share of jobs with fewer than three tasks
	// (90.6% in the paper's group A).
	ShortFraction float64
	// Representative is the job id closest to the group's similarity
	// centroid — the paper's Figure 8 exemplar.
	Representative string

	// Members are sample indices belonging to the group.
	Members []int
}

// JobStat is the per-sampled-job structural and resource summary
// computed by the dag.jobs stage, index-aligned with Analysis.Sample.
type JobStat struct {
	// Size/Depth/MaxWidth describe the (possibly conflated) DAG: node
	// count, critical-path length, and maximum antichain width.
	Size, Depth, MaxWidth int
	// Chain reports a straight-chain topology (pattern.Chain).
	Chain bool
	// Merged is the number of nodes removed by conflation (0 when
	// conflation is disabled).
	Merged int
	// Instances/PlanCPU/Duration are the job's summed resource demand
	// across its DAG nodes.
	Instances, PlanCPU, Duration float64
}

// Analysis is the full pipeline output.
type Analysis struct {
	// Sample is the analyzed candidate set (post-filter, post-sample).
	Sample []sampling.Candidate
	// Graphs are the DAGs the kernel ran on (conflated when configured).
	Graphs []*dag.Graph
	// JobStats are the per-job structural summaries, aligned with
	// Sample/Graphs.
	JobStats []JobStat
	// FilterStats reports the §IV-B selection outcome.
	FilterStats sampling.FilterStats
	// Similarity is the n×n normalized WL kernel matrix (Figure 7).
	Similarity *linalg.Matrix
	// Labels are raw spectral cluster ids per sample index.
	Labels []int
	// Groups are population-ranked profiles (Figure 9); Groups[0] is
	// group "A".
	Groups []GroupProfile
	// Silhouette is the clustering quality in kernel-distance space.
	Silhouette float64

	// Warnings lists every non-fatal degradation the run absorbed:
	// lossy or partial ingest, eigensolver retries, degenerate k-means,
	// or the size-quantile clustering fallback. Empty on a clean run.
	Warnings []string
	// Partial reports that the input trace was truncated mid-table and
	// the analysis covers only the rows read before the cut.
	Partial bool

	// Stages records each pipeline stage's wall time in execution
	// order — the per-run view of the durations the obs span tree
	// aggregates across runs.
	Stages []StageTiming

	// Kernel state retained for classifying new jobs (AssignGroup).
	wlOpts  wl.Options
	dict    *wl.Dictionary
	vectors []wl.Vector
}

// StageTiming is one pipeline stage's measured wall time.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// StageDuration returns the recorded wall time of the named stage and
// whether the stage ran.
func (an *Analysis) StageDuration(name string) (time.Duration, bool) {
	for _, s := range an.Stages {
		if s.Name == name {
			return s.Duration, true
		}
	}
	return 0, false
}

// AssignGroup classifies a job that was not part of the analysis into
// the most similar existing group: the job is embedded with the
// analysis's WL dictionary and assigned to the group with the highest
// mean kernel similarity to its members. This is the paper's intended
// application — predicting a new job's behaviour from the group of
// structurally similar historical jobs.
//
// If the analysis ran with Config.Conflate, pass a conflated graph here
// too (conflate.Conflate) so the query lives in the same representation
// as the indexed corpus.
func (an *Analysis) AssignGroup(g *dag.Graph) (GroupProfile, float64, error) {
	if an.dict == nil || len(an.vectors) != len(an.Graphs) {
		return GroupProfile{}, 0, fmt.Errorf("core: analysis lacks kernel state")
	}
	vec, err := an.dict.Embed(g, an.wlOpts)
	if err != nil {
		return GroupProfile{}, 0, err
	}
	bestIdx, bestScore := -1, -1.0
	for gi, gp := range an.Groups {
		var sum float64
		for _, m := range gp.Members {
			sum += wl.Similarity(vec, an.vectors[m])
		}
		score := sum / float64(len(gp.Members))
		if score > bestScore {
			bestIdx, bestScore = gi, score
		}
	}
	return an.Groups[bestIdx], bestScore, nil
}

// Run executes the pipeline over the given trace jobs.
//
// Every stage is wrapped in an obs span (aggregated under "pipeline" in
// the Default registry's stage tree) and timed on Analysis.Stages; with
// a logger installed (obs.Default().SetLogger, the commands' -v flag)
// one structured record per stage carries the stage name, duration and
// key counts.
func Run(jobs []trace.Job, cfg Config) (*Analysis, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := obs.Default()
	lg := reg.Logger()
	an := &Analysis{}
	root := reg.StartSpan("pipeline")
	defer root.End()
	// stage runs fn inside a child span, records the wall time on the
	// analysis, and emits one structured record with the returned counts.
	stage := func(name string, fn func() (string, error)) error {
		sp := root.Child(name)
		detail, err := fn()
		d := sp.End()
		an.Stages = append(an.Stages, StageTiming{Name: name, Duration: d})
		if err != nil {
			lg.Error("stage failed", "stage", name, "duration", d.Round(time.Microsecond), "err", err)
			return err
		}
		lg.Info("stage complete", "stage", name, "duration", d.Round(time.Microsecond), "detail", detail)
		return nil
	}

	if cfg.Ingest != nil {
		if cfg.Ingest.Partial {
			an.Partial = true
			an.Warnings = append(an.Warnings, fmt.Sprintf(
				"ingest: trace truncated (%v); analysis covers the %d rows read before the cut",
				cfg.Ingest.PartialCause, cfg.Ingest.Rows))
		}
		if cfg.Ingest.BadRows > 0 {
			an.Warnings = append(an.Warnings, fmt.Sprintf(
				"ingest: %d malformed rows skipped (%s)", cfg.Ingest.BadRows, cfg.Ingest.Summary()))
		}
	}

	var cands, sample []sampling.Candidate
	var fstats sampling.FilterStats
	if err := stage("sampling.filter", func() (string, error) {
		var err error
		cands, fstats, err = sampling.FilterParallel(jobs, cfg.Criteria, cfg.Workers)
		if err != nil {
			return "", err
		}
		if len(cands) == 0 {
			return "", fmt.Errorf("core: no jobs survive filtering (stats %+v)", fstats)
		}
		return fmt.Sprintf("kept %d/%d (integrity %d, availability %d, non-DAG %d)",
			fstats.Kept, fstats.Input, fstats.NotTerminated, fstats.OutsideWindow, fstats.NonDAG), nil
	}); err != nil {
		return nil, err
	}

	if err := stage("sampling.sample", func() (string, error) {
		sample = sampling.SampleDiverse(cands, cfg.SampleSize, cfg.Seed)
		if len(sample) < cfg.Groups {
			return "", fmt.Errorf("core: sample of %d too small for %d groups", len(sample), cfg.Groups)
		}
		return fmt.Sprintf("%d jobs from pool of %d", len(sample), len(cands)), nil
	}); err != nil {
		return nil, err
	}

	// dag.jobs: the per-job structural stage — conflation (when
	// configured) plus size / critical path / max width / chain
	// classification / resource sums — run across the worker pool with
	// index-addressed writes, so collection is order-stable and the
	// result is identical at every worker count.
	graphs := make([]*dag.Graph, len(sample))
	jstats := make([]JobStat, len(sample))
	if err := stage("dag.jobs", func() (string, error) {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		err := runPool("dag.jobs", len(sample), workers, cfg.OnJob, func(i int) error {
			g := sample[i].Graph
			js := JobStat{}
			if cfg.Conflate {
				cg, cst, err := conflate.Conflate(g)
				if err != nil {
					return fmt.Errorf("core: conflating %s: %w", g.JobID, err)
				}
				js.Merged = cst.SizeBefore - cst.SizeAfter
				g = cg
			}
			depth, err := g.Depth()
			if err != nil {
				return fmt.Errorf("core: depth of %s: %w", g.JobID, err)
			}
			width, err := g.MaxWidth()
			if err != nil {
				return fmt.Errorf("core: width of %s: %w", g.JobID, err)
			}
			js.Size, js.Depth, js.MaxWidth = g.Size(), depth, width
			if s, err := pattern.Classify(g); err == nil && s == pattern.Chain {
				js.Chain = true
			}
			for _, id := range g.NodeIDs() {
				n := g.Node(id)
				js.Instances += float64(n.Instances)
				js.PlanCPU += n.PlanCPU
				js.Duration += n.Duration
			}
			graphs[i] = g
			jstats[i] = js
			return nil
		})
		if err != nil {
			return "", err
		}
		if !cfg.Conflate {
			return fmt.Sprintf("structural stats for %d graphs (conflation disabled)", len(graphs)), nil
		}
		merged := 0
		for i := range jstats {
			merged += jstats[i].Merged
		}
		return fmt.Sprintf("merged %d nodes across %d graphs", merged, len(graphs)), nil
	}); err != nil {
		return nil, err
	}

	var vectors []wl.Vector
	var dict *wl.Dictionary
	if err := stage("wl.features", func() (string, error) {
		var err error
		vectors, dict, err = wl.Features(graphs, cfg.WL)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d graphs embedded, %d distinct labels (h=%d)",
			len(vectors), dict.Len(), cfg.WL.Iterations), nil
	}); err != nil {
		return nil, err
	}

	var sim *linalg.Matrix
	if err := stage("wl.matrix", func() (string, error) {
		var err error
		sim, err = wl.MatrixFromVectors(vectors, cfg.Workers)
		if err != nil {
			return "", err
		}
		n := len(vectors)
		return fmt.Sprintf("%dx%d similarities (%d pairs)", n, n, n*(n+1)/2), nil
	}); err != nil {
		return nil, err
	}

	var spec *cluster.SpectralResult
	if err := stage("cluster.spectral", func() (string, error) {
		var err error
		spec, err = spectralFn(sim, cluster.SpectralOptions{
			K:      cfg.Groups,
			KMeans: cluster.KMeansOptions{Seed: cfg.Seed},
		})
		if err != nil {
			// Degrade rather than abort: group by job-size quantiles so
			// the run still yields profiles, flagged loudly. Size is the
			// strongest single structural signal the paper identifies,
			// so the fallback is coarse but not arbitrary.
			obsSpectralFallback.Add(1)
			an.Warnings = append(an.Warnings, fmt.Sprintf(
				"spectral clustering failed (%v); fell back to size-quantile grouping", err))
			lg.Warn("spectral clustering failed; using size-quantile fallback", "err", err)
			spec = &cluster.SpectralResult{Labels: sizeQuantileLabels(graphs, cfg.Groups)}
			return fmt.Sprintf("degraded: size-quantile fallback into %d groups", cfg.Groups), nil
		}
		an.Warnings = append(an.Warnings, spec.Warnings...)
		return fmt.Sprintf("%d groups over %d jobs", cfg.Groups, len(spec.Labels)), nil
	}); err != nil {
		return nil, err
	}

	an.Sample = sample
	an.Graphs = graphs
	an.JobStats = jstats
	an.FilterStats = fstats
	an.Similarity = sim
	an.Labels = spec.Labels
	an.wlOpts = cfg.WL
	an.dict = dict
	an.vectors = vectors

	if err := stage("profile.groups", func() (string, error) {
		an.Groups = profileGroups(graphs, jstats, sim, spec.Labels)
		if dist, err := cluster.DistanceFromSimilarity(sim); err == nil {
			if s, err := cluster.Silhouette(dist, spec.Labels); err == nil {
				an.Silhouette = s
			}
		}
		return fmt.Sprintf("%d groups, silhouette %.3f", len(an.Groups), an.Silhouette), nil
	}); err != nil {
		return nil, err
	}
	if len(an.Warnings) > 0 {
		obsDegradedRuns.Add(1)
		for _, w := range an.Warnings {
			lg.Warn("analysis degraded", "warning", w)
		}
	}
	return an, nil
}

// sizeQuantileLabels groups graphs into k contiguous job-size quantile
// buckets — the documented fallback grouping when spectral clustering
// cannot run. Labels are assigned by size rank, so every bucket is
// non-empty whenever len(graphs) >= k.
func sizeQuantileLabels(graphs []*dag.Graph, k int) []int {
	n := len(graphs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := graphs[order[a]].Size(), graphs[order[b]].Size()
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	labels := make([]int, n)
	for rank, idx := range order {
		labels[idx] = rank * k / n
	}
	return labels
}

// profileGroups computes population-ranked group statistics from the
// per-job summaries the dag.jobs stage already produced.
func profileGroups(graphs []*dag.Graph, jstats []JobStat, sim *linalg.Matrix, labels []int) []GroupProfile {
	byLabel := make(map[int][]int)
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], i)
	}
	type entry struct {
		label   int
		members []int
	}
	entries := make([]entry, 0, len(byLabel))
	for l, m := range byLabel {
		entries = append(entries, entry{l, m})
	}
	sort.Slice(entries, func(i, j int) bool {
		if len(entries[i].members) != len(entries[j].members) {
			return len(entries[i].members) > len(entries[j].members)
		}
		return entries[i].label < entries[j].label
	})

	total := float64(len(labels))
	groups := make([]GroupProfile, 0, len(entries))
	for rank, e := range entries {
		gp := GroupProfile{
			Name:       groupName(rank),
			Count:      len(e.members),
			Population: float64(len(e.members)) / total,
			Members:    append([]int(nil), e.members...),
		}
		var sizes, depths, widths []float64
		chains, short := 0, 0
		var sumInst, sumCPU, sumDur float64
		for _, idx := range e.members {
			js := jstats[idx]
			sizes = append(sizes, float64(js.Size))
			depths = append(depths, float64(js.Depth))
			widths = append(widths, float64(js.MaxWidth))
			if js.Chain {
				chains++
			}
			if js.Size < 3 {
				short++
			}
			sumInst += js.Instances
			sumCPU += js.PlanCPU
			sumDur += js.Duration
		}
		gp.MeanInstances = sumInst / float64(len(e.members))
		gp.MeanPlanCPU = sumCPU / float64(len(e.members))
		gp.MeanDuration = sumDur / float64(len(e.members))
		gp.Sizes, _ = stats.Describe(sizes)
		gp.Depths, _ = stats.Describe(depths)
		gp.Widths, _ = stats.Describe(widths)
		gp.ChainFraction = float64(chains) / float64(len(e.members))
		gp.ShortFraction = float64(short) / float64(len(e.members))
		gp.Representative = graphs[medoid(sim, e.members)].JobID
		groups = append(groups, gp)
	}
	return groups
}

// medoid returns the member index with the highest total similarity to
// its group — the most central exemplar.
func medoid(sim *linalg.Matrix, members []int) int {
	best := members[0]
	bestScore := -1.0
	for _, i := range members {
		var s float64
		for _, j := range members {
			s += sim.At(i, j)
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// groupName converts a population rank to the paper's letter labels:
// A, B, C, ... then G26, G27 beyond Z.
func groupName(rank int) string {
	if rank < 26 {
		return string(rune('A' + rank))
	}
	return fmt.Sprintf("G%d", rank)
}
