package core

import (
	"strings"
	"testing"

	"jobgraph/internal/pattern"
	"jobgraph/internal/sampling"
)

func TestFig2DOT(t *testing.T) {
	an := runPipeline(t, 2000, 21)
	dots := Fig2DOT(an, 5)
	if len(dots) != 5 {
		t.Fatalf("dots = %d", len(dots))
	}
	for _, d := range dots {
		if !strings.HasPrefix(d, "digraph") {
			t.Fatalf("not DOT:\n%s", d)
		}
	}
	if got := Fig2DOT(an, 1000); len(got) != len(an.Graphs) {
		t.Fatalf("over-request returned %d", len(got))
	}
}

func TestFig3ConflationShiftsMassDown(t *testing.T) {
	an := runPipeline(t, 5000, 22)
	tbl, err := Fig3Conflation(an.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("empty Fig3 table")
	}
	// The paper's observation: the ratio of smaller jobs increases
	// after conflation. Check mean size strictly decreases.
	rows, err := FigSizeGroupFeatures(an.Graphs, false)
	if err != nil {
		t.Fatal(err)
	}
	rowsC, err := FigSizeGroupFeatures(an.Graphs, true)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(rs []SizeGroupFeatures) float64 {
		var sum, n float64
		for _, r := range rs {
			sum += float64(r.Size * r.Count)
			n += float64(r.Count)
		}
		return sum / n
	}
	if mean(rowsC) >= mean(rows) {
		t.Fatalf("conflation did not reduce mean size: %.2f -> %.2f",
			mean(rows), mean(rowsC))
	}
}

func TestFigSizeGroupFeaturesShape(t *testing.T) {
	an := runPipeline(t, 8000, 23)
	rows, err := FigSizeGroupFeatures(an.Graphs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("size groups = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Size <= rows[i-1].Size {
			t.Fatal("rows not sorted by size")
		}
	}
	for _, r := range rows {
		// Critical path and width bounded by size; depth*width >= size.
		if r.MaxDepth < 1 || r.MaxDepth > r.Size {
			t.Fatalf("row %+v: bad depth", r)
		}
		if r.MaxWidth < 1 || r.MaxWidth > r.Size {
			t.Fatalf("row %+v: bad width", r)
		}
	}
	// Paper: depth grows sublinearly — the largest sizes should have
	// depth well below size (they have parallel structure).
	last := rows[len(rows)-1]
	if last.Size >= 20 && last.MaxDepth >= last.Size {
		t.Fatalf("size %d has chain-like max depth %d", last.Size, last.MaxDepth)
	}
	tbl := FigSizeGroupTable(rows, "Fig 4")
	if tbl.NumRows() != len(rows) {
		t.Fatal("table row mismatch")
	}
}

func TestPatternCensusTable(t *testing.T) {
	an := runPipeline(t, 8000, 24)
	tbl, census, err := PatternCensusTable(an.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if census.Total != len(an.Graphs) {
		t.Fatalf("census total %d", census.Total)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("empty census table")
	}
	// Chains must be the most common shape in the sample too.
	if census.Counts[pattern.Chain] == 0 {
		t.Fatal("no chains in sample")
	}
}

func TestFig6TaskTypes(t *testing.T) {
	an := runPipeline(t, 3000, 25)
	tbl := Fig6TaskTypes(an)
	if tbl.NumRows() != len(an.Graphs) {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), len(an.Graphs))
	}
	out := tbl.String()
	if !strings.Contains(out, "M") || !strings.Contains(out, "R") {
		t.Fatal("missing type columns")
	}
}

func TestFig7Heatmap(t *testing.T) {
	an := runPipeline(t, 3000, 26)
	hm := Fig7Heatmap(an)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 100 || len(lines[0]) != 100 {
		t.Fatalf("heatmap %dx%d", len(lines), len(lines[0]))
	}
	// Diagonal is all max-similarity.
	for i, l := range lines {
		if l[i] != '@' {
			t.Fatalf("diagonal (%d) = %q", i, l[i])
		}
	}
}

func TestFig8Representatives(t *testing.T) {
	an := runPipeline(t, 3000, 27)
	reps := Fig8Representatives(an)
	if len(reps) != len(an.Groups) {
		t.Fatalf("reps = %d, want %d", len(reps), len(an.Groups))
	}
	for name, dot := range reps {
		if !strings.HasPrefix(dot, "digraph") {
			t.Fatalf("group %s rep not DOT", name)
		}
	}
}

func TestFig9GroupTable(t *testing.T) {
	an := runPipeline(t, 5000, 28)
	tbl := Fig9GroupTable(an)
	if tbl.NumRows() != len(an.Groups) {
		t.Fatal("row count")
	}
	out := tbl.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "population") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestSizeWidthCorrelationPositive(t *testing.T) {
	an := runPipeline(t, 8000, 29)
	rho, err := SizeWidthCorrelation(an)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the parallelism of a job is quite positively correlated
	// to the size of jobs".
	if rho <= 0.2 {
		t.Fatalf("size-width Spearman = %.3f, want clearly positive", rho)
	}
}

func TestFig3OnEmptySliceIsEmptyTable(t *testing.T) {
	tbl, err := Fig3Conflation(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 {
		t.Fatal("non-empty table from no graphs")
	}
}

func TestDepthRange(t *testing.T) {
	// Paper: critical path lengths range 2..8 in its 2..31-task sample
	// (§V-A). The generator is calibrated to stay inside that band.
	an := runPipeline(t, 10000, 30)
	for _, g := range an.Graphs {
		d, err := g.Depth()
		if err != nil {
			t.Fatal(err)
		}
		if d < 2 || d > 8 {
			t.Fatalf("job %s depth %d outside the paper's 2-8 range", g.JobID, d)
		}
	}
	_ = sampling.Criteria{}
}

func TestGroupResourceTable(t *testing.T) {
	an := runPipeline(t, 3000, 31)
	tbl := GroupResourceTable(an)
	if tbl.NumRows() != len(an.Groups) {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, gp := range an.Groups {
		if gp.MeanInstances <= 0 || gp.MeanPlanCPU <= 0 || gp.MeanDuration <= 0 {
			t.Fatalf("group %s has zero resource profile: %+v", gp.Name, gp)
		}
	}
}

func TestModelCensusTable(t *testing.T) {
	an := runPipeline(t, 5000, 32)
	tbl, census, err := ModelCensusTable(an.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	if census.Total != len(an.Graphs) || tbl.NumRows() == 0 {
		t.Fatalf("census = %+v", census)
	}
	// Generated workloads are MapReduce-family: plain map-reduce
	// dominates and the join model appears (multi-input middles).
	if census.Fraction(pattern.ModelMapReduce) < 0.5 {
		t.Fatalf("map-reduce share = %.3f", census.Fraction(pattern.ModelMapReduce))
	}
	if census.Counts[pattern.ModelMapJoinReduce] == 0 {
		t.Fatal("no map-join-reduce jobs in sample")
	}
}

func TestFig9BoxPlots(t *testing.T) {
	an := runPipeline(t, 4000, 33)
	out, err := Fig9BoxPlots(an)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 9(b)", "Fig 9(c)", "Fig 9(d)", "A", "scale:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("box plots missing %q:\n%s", want, out)
		}
	}
	// One row per group per panel plus title and scale lines.
	lines := strings.Count(out, "\n")
	wantLines := 3 * (len(an.Groups) + 2 + 1) // title + groups + scale + blank
	if lines != wantLines {
		t.Fatalf("line count %d, want %d:\n%s", lines, wantLines, out)
	}
}
