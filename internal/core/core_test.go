package core

import (
	"strings"
	"testing"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

const testWindow = 2 * 8 * 24 * 3600

func genJobs(t testing.TB, n int, seed int64) []trace.Job {
	t.Helper()
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func runPipeline(t testing.TB, nJobs int, seed int64) *Analysis {
	t.Helper()
	an, err := Run(genJobs(t, nJobs, seed), DefaultConfig(testWindow, seed))
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestRunPaperScale(t *testing.T) {
	an := runPipeline(t, 5000, 1)
	if len(an.Sample) != 100 {
		t.Fatalf("sample = %d, want 100", len(an.Sample))
	}
	if an.Similarity.Rows != 100 || an.Similarity.Cols != 100 {
		t.Fatalf("similarity shape %dx%d", an.Similarity.Rows, an.Similarity.Cols)
	}
	if len(an.Labels) != 100 {
		t.Fatalf("labels = %d", len(an.Labels))
	}
	if len(an.Groups) != 5 {
		t.Fatalf("groups = %d, want 5", len(an.Groups))
	}
}

func TestRunGroupInvariants(t *testing.T) {
	an := runPipeline(t, 5000, 2)
	totalMembers := 0
	prevCount := 1 << 30
	for i, gp := range an.Groups {
		if gp.Count != len(gp.Members) {
			t.Fatalf("group %s count mismatch", gp.Name)
		}
		totalMembers += gp.Count
		if gp.Count > prevCount {
			t.Fatalf("groups not population-ranked at %d", i)
		}
		prevCount = gp.Count
		if gp.Name != string(rune('A'+i)) {
			t.Fatalf("group %d named %s", i, gp.Name)
		}
		if gp.Population < 0 || gp.Population > 1 {
			t.Fatalf("population %g", gp.Population)
		}
		if gp.Representative == "" {
			t.Fatalf("group %s has no representative", gp.Name)
		}
		// Representative must be a member's job id.
		found := false
		for _, m := range gp.Members {
			if an.Graphs[m].JobID == gp.Representative {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("representative %s not in group %s", gp.Representative, gp.Name)
		}
	}
	if totalMembers != len(an.Sample) {
		t.Fatalf("members total %d != sample %d", totalMembers, len(an.Sample))
	}
}

func TestRunDominantGroupIsSmallChains(t *testing.T) {
	// The paper's headline clustering outcome: the dominant group is
	// made of small, chain-heavy jobs. At minimum, group A must hold a
	// plurality and have smaller mean size than the overall mean.
	an := runPipeline(t, 8000, 3)
	// The dominant group must hold a meaningful plurality.
	if an.Groups[0].Population < 0.2 {
		t.Fatalf("group A population = %.3f, want dominant", an.Groups[0].Population)
	}
	// A major short-chain block — the paper's group A profile (91%
	// chains, 90.6% short) — must exist among the top groups. Its rank
	// varies with the k-means seed.
	var shortChains *GroupProfile
	for i := range an.Groups {
		gp := &an.Groups[i]
		if gp.ChainFraction >= 0.9 && gp.ShortFraction >= 0.9 && gp.Population >= 0.15 {
			shortChains = gp
			break
		}
	}
	if shortChains == nil {
		for _, gp := range an.Groups {
			t.Logf("%s pop=%.2f chain=%.2f short=%.2f size=%.1f",
				gp.Name, gp.Population, gp.ChainFraction, gp.ShortFraction, gp.Sizes.Mean)
		}
		t.Fatal("no major short-chain group")
	}
	// Some other group holds the big jobs (paper's group D has the
	// highest averages across metrics).
	maxMean := 0.0
	for _, gp := range an.Groups {
		if gp.Sizes.Mean > maxMean {
			maxMean = gp.Sizes.Mean
		}
	}
	if maxMean < 2*shortChains.Sizes.Mean {
		t.Fatalf("no large-job group: max mean %.2f vs short-chain %.2f",
			maxMean, shortChains.Sizes.Mean)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runPipeline(t, 3000, 7)
	b := runPipeline(t, 3000, 7)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different clustering")
		}
	}
}

func TestRunConflateOption(t *testing.T) {
	jobs := genJobs(t, 3000, 4)
	cfg := DefaultConfig(testWindow, 4)
	cfg.Conflate = true
	an, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Conflated graphs can only be at most as large as the originals.
	for i, g := range an.Graphs {
		if g.Size() > an.Sample[i].Graph.Size() {
			t.Fatalf("conflated graph grew: %d > %d", g.Size(), an.Sample[i].Graph.Size())
		}
	}
}

func TestRunValidation(t *testing.T) {
	jobs := genJobs(t, 100, 5)
	cfg := DefaultConfig(testWindow, 5)
	cfg.SampleSize = 0
	if _, err := Run(jobs, cfg); err == nil {
		t.Fatal("SampleSize=0 accepted")
	}
	cfg = DefaultConfig(testWindow, 5)
	cfg.Groups = 0
	if _, err := Run(jobs, cfg); err == nil {
		t.Fatal("Groups=0 accepted")
	}
	// Empty trace: nothing survives filtering.
	if _, err := Run(nil, DefaultConfig(testWindow, 5)); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunSampleSmallerThanGroups(t *testing.T) {
	jobs := genJobs(t, 30, 6)
	cfg := DefaultConfig(testWindow, 6)
	cfg.SampleSize = 3
	cfg.Groups = 5
	if _, err := Run(jobs, cfg); err == nil {
		t.Fatal("sample < groups accepted")
	}
}

func TestSimilarityDiagonalOnes(t *testing.T) {
	an := runPipeline(t, 2000, 8)
	for i := 0; i < an.Similarity.Rows; i++ {
		if an.Similarity.At(i, i) != 1 {
			t.Fatalf("diagonal (%d) = %g", i, an.Similarity.At(i, i))
		}
	}
}

func TestSilhouetteComputed(t *testing.T) {
	an := runPipeline(t, 5000, 9)
	if an.Silhouette < -1 || an.Silhouette > 1 {
		t.Fatalf("silhouette = %g", an.Silhouette)
	}
	// Small identical chains guarantee at least one coherent cluster;
	// the overall score should not be pathological.
	if an.Silhouette < 0 {
		t.Logf("warning: silhouette %g < 0", an.Silhouette)
	}
}

func TestGroupNameOverflow(t *testing.T) {
	if groupName(0) != "A" || groupName(25) != "Z" {
		t.Fatal("letter names")
	}
	if groupName(26) != "G26" {
		t.Fatalf("overflow name = %s", groupName(26))
	}
}

func TestSeventeenSizeTypesInSample(t *testing.T) {
	// The paper's sample covers 17 size groups; our diverse sampler at
	// n=100 over a big trace must cover nearly all of them.
	an := runPipeline(t, 20000, 10)
	sizes := make(map[int]bool)
	for _, g := range an.Graphs {
		sizes[g.Size()] = true
	}
	if len(sizes) < 15 {
		t.Fatalf("sample covers %d sizes, want >= 15", len(sizes))
	}
}

func TestFilterStatsExposed(t *testing.T) {
	an := runPipeline(t, 2000, 11)
	if an.FilterStats.Input != 2000 || an.FilterStats.Kept == 0 {
		t.Fatalf("filter stats: %+v", an.FilterStats)
	}
}

func TestRunWindowTooTight(t *testing.T) {
	jobs := genJobs(t, 500, 12)
	cfg := DefaultConfig(1, 12) // window [0,1]: availability rejects all
	if _, err := Run(jobs, cfg); err == nil ||
		!strings.Contains(err.Error(), "no jobs survive") {
		t.Fatalf("err = %v", err)
	}
}
