// Slow-job exemplar capture: the dag.jobs stage times every sampled
// job and the top-k slowest are retained with their graph shape and
// assigned group — Grandl et al.'s "do the hard stuff first"
// observation applied to telemetry: the slowest jobs carry the signal,
// so they are the ones worth drilling into. Exemplars surface on
// Analysis.SlowJobs, the obs exemplar store (metrics.json and
// /progress), and as synthetic pipeline/dag.jobs/slow/<job> spans in
// the stage tree.
//
// Per-job wall times are measurement, not analysis output: they never
// enter the cached dag.jobs artifact or the Analysis fingerprint, so
// cold and warm runs stay bit-identical. A run satisfied from the
// cache computes nothing per job and therefore reports no exemplars.
package core

import (
	"fmt"
	"sort"
	"time"

	"jobgraph/internal/obs"
	"jobgraph/internal/stages"
)

// DefaultSlowJobK is the exemplar count retained when Config.SlowJobK
// is zero.
const DefaultSlowJobK = 8

// SlowJob is one retained slowest-job exemplar from the dag.jobs stage.
type SlowJob struct {
	// JobID identifies the job; Index is its position in
	// Analysis.Sample/Graphs/JobStats.
	JobID string
	Index int
	// Duration is the job's wall time in the dag.jobs worker pool
	// (conflation + structural statistics).
	Duration time.Duration
	// Nodes/Edges/Depth/MaxWidth describe the (possibly conflated) DAG.
	Nodes, Edges, Depth, MaxWidth int
	// Group is the population-rank label ("A", "B", ...) the job was
	// assigned by clustering.
	Group string
}

// slowJobK resolves the configured exemplar count: 0 means
// DefaultSlowJobK, negative disables capture.
func (c Config) slowJobK() int {
	if c.SlowJobK == 0 {
		return DefaultSlowJobK
	}
	if c.SlowJobK < 0 {
		return 0
	}
	return c.SlowJobK
}

// jobTimes receives the per-job wall times measured inside the
// dag.jobs stage. It is plan-scoped, not artifact-scoped: the stage
// fills it only when it actually executes, so a cache-served stage
// leaves it empty.
type jobTimes struct {
	durs []time.Duration // index-aligned with the sample; filled by runPool workers
}

// slowJobs assembles the top-k exemplars from the measured times. The
// sort is deterministic for fixed durations (ties break on job id),
// though the durations themselves are wall-clock measurements.
func slowJobs(times *jobTimes, an *Analysis, k int) []SlowJob {
	if times == nil || len(times.durs) == 0 || k <= 0 {
		return nil
	}
	group := make(map[int]string)
	for _, gp := range an.Groups {
		for _, idx := range gp.Members {
			group[idx] = gp.Name
		}
	}
	out := make([]SlowJob, 0, len(times.durs))
	for i, d := range times.durs {
		if i >= len(an.Graphs) {
			break
		}
		g := an.Graphs[i]
		js := an.JobStats[i]
		out = append(out, SlowJob{
			JobID:    g.JobID,
			Index:    i,
			Duration: d,
			Nodes:    js.Size,
			Edges:    g.NumEdges(),
			Depth:    js.Depth,
			MaxWidth: js.MaxWidth,
			Group:    group[i],
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].JobID < out[j].JobID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// publishSlowJobs surfaces the exemplars on the obs registry: the
// exemplar store (picked up by metrics.json, /progress, the ledger and
// the run report) and one synthetic span per exemplar under
// pipeline/dag.jobs/slow/<job>, giving the stage tree a drill-down
// subtree for exactly the jobs that dominated the stage.
func publishSlowJobs(reg *obs.Registry, slow []SlowJob, k int) {
	for _, sj := range slow {
		reg.RecordExemplar(stages.DAGJobs, k, obs.Exemplar{
			ID:         sj.JobID,
			DurationMs: float64(sj.Duration) / float64(time.Millisecond),
			Nodes:      sj.Nodes,
			Edges:      sj.Edges,
			Group:      sj.Group,
			Detail:     fmt.Sprintf("depth=%d width=%d", sj.Depth, sj.MaxWidth),
		})
		reg.RecordSpan([]string{stages.Pipeline, stages.DAGJobs, "slow", sj.JobID}, sj.Duration, 0)
	}
}
