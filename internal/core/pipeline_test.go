package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jobgraph/internal/stages"
)

// genCacheBlocker returns a path where a cache directory cannot be
// created: a regular file already occupies it.
func genCacheBlocker(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fingerprint runs Run and returns the analysis plus its payload
// fingerprint.
func runFingerprint(t *testing.T, nJobs int, cfg Config) (*Analysis, string) {
	t.Helper()
	an, err := Run(genJobs(t, nJobs, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := an.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return an, fp
}

func executedNames(an *Analysis) []string {
	out := make([]string, len(an.Stages))
	for i, s := range an.Stages {
		out[i] = s.Name
	}
	return out
}

// TestCacheEquivalence is the tentpole guarantee: cold, warm, and
// uncached runs produce bit-identical analyses, at the default worker
// count and sequentially.
func TestCacheEquivalence(t *testing.T) {
	const n = 2000
	base := DefaultConfig(testWindow, 1)
	base.SampleSize = 40
	base.Groups = 4

	uncached := base
	_, refFP := runFingerprint(t, n, uncached)

	cached := base
	cached.CacheDir = t.TempDir()
	cold, coldFP := runFingerprint(t, n, cached)
	if len(cold.CachedStages) != 0 {
		t.Fatalf("cold run loaded from cache: %v", cold.CachedStages)
	}
	if got := executedNames(cold); strings.Join(got, ",") != strings.Join(stages.Core, ",") {
		t.Fatalf("cold run executed %v, want %v", got, stages.Core)
	}
	if coldFP != refFP {
		t.Fatalf("cold cached run differs from uncached run")
	}

	warm, warmFP := runFingerprint(t, n, cached)
	if len(warm.Stages) != 0 {
		t.Fatalf("warm run executed %v", executedNames(warm))
	}
	if got := strings.Join(warm.CachedStages, ","); got != strings.Join(stages.Core, ",") {
		t.Fatalf("warm run cached %v, want all of %v", warm.CachedStages, stages.Core)
	}
	if warmFP != refFP {
		t.Fatalf("warm run differs from uncached run")
	}

	// Worker-invariance: a cache populated at the default worker count
	// must serve a sequential run — and produce the identical analysis.
	seq := cached
	seq.Workers = 1
	seqWarm, seqFP := runFingerprint(t, n, seq)
	if len(seqWarm.Stages) != 0 {
		t.Fatalf("workers=1 warm run executed %v", executedNames(seqWarm))
	}
	if seqFP != refFP {
		t.Fatalf("workers=1 warm run differs from uncached run")
	}
}

// TestWarmRunWithChangedGroupsReusesMatrix: changing only the
// downstream cluster count must reuse the cached WL kernel matrix —
// wl.matrix absent from the executed stages — while producing exactly
// the analysis an uncached run at the new count produces.
func TestWarmRunWithChangedGroupsReusesMatrix(t *testing.T) {
	const n = 2000
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 40
	cfg.Groups = 5
	cfg.CacheDir = t.TempDir()
	if _, err := Run(genJobs(t, n, 1), cfg); err != nil {
		t.Fatal(err)
	}

	regrouped := cfg
	regrouped.Groups = 4
	warm, warmFP := runFingerprint(t, n, regrouped)
	for _, s := range warm.Stages {
		if s.Name == stages.WLMatrix {
			t.Fatalf("warm run recomputed %s; executed %v", stages.WLMatrix, executedNames(warm))
		}
	}
	want := []string{stages.ClusterSpectral, stages.ProfileGroups}
	if got := executedNames(warm); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("warm run executed %v, want %v", got, want)
	}
	found := false
	for _, s := range warm.CachedStages {
		if s == stages.WLMatrix {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s not among cached stages %v", stages.WLMatrix, warm.CachedStages)
	}

	ref := regrouped
	ref.CacheDir = ""
	_, refFP := runFingerprint(t, n, ref)
	if warmFP != refFP {
		t.Fatalf("warm regrouped run differs from uncached run")
	}
}

// TestResumeAfterCancelMidMatrix: a run cancelled inside wl.matrix (via
// OnRow) leaves the upstream artifacts persisted; the retry resumes
// from them — dag.jobs and everything before it load from cache — and
// the finished analysis is identical to an uncached run.
func TestResumeAfterCancelMidMatrix(t *testing.T) {
	const n = 2000
	boom := errors.New("deadline")
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 40
	cfg.Groups = 4
	cfg.CacheDir = t.TempDir()
	cfg.OnRow = func(done, total int) error {
		if done >= total/2 {
			return boom
		}
		return nil
	}
	if _, err := Run(genJobs(t, n, 1), cfg); !errors.Is(err, boom) {
		t.Fatalf("cancelled run error = %v, want %v", err, boom)
	}

	cfg.OnRow = nil
	resumed, resumedFP := runFingerprint(t, n, cfg)
	upstream := []string{stages.SamplingFilter, stages.SamplingSample, stages.DAGJobs, stages.WLFeatures}
	if got := strings.Join(resumed.CachedStages, ","); got != strings.Join(upstream, ",") {
		t.Fatalf("resumed run cached %v, want %v", resumed.CachedStages, upstream)
	}
	want := []string{stages.WLMatrix, stages.ClusterSpectral, stages.ProfileGroups}
	if got := executedNames(resumed); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("resumed run executed %v, want %v", got, want)
	}

	ref := cfg
	ref.CacheDir = ""
	_, refFP := runFingerprint(t, n, ref)
	if resumedFP != refFP {
		t.Fatalf("resumed run differs from uncached run")
	}
}

// TestCacheDirUnusableDegradesToUncached: an unopenable cache directory
// must warn, not abort.
func TestCacheDirUnusableDegradesToUncached(t *testing.T) {
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 20
	cfg.Groups = 3
	// A file where the cache directory should be: MkdirAll fails.
	cfg.CacheDir = genCacheBlocker(t)
	an, err := Run(genJobs(t, 1500, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range an.Warnings {
		if strings.Contains(w, "artifact cache disabled") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cache-disabled warning in %v", an.Warnings)
	}
	if len(an.CachedStages) != 0 || len(an.Stages) != len(stages.Core) {
		t.Fatalf("degraded run: cached %v, executed %v", an.CachedStages, executedNames(an))
	}
}

func TestDefaultConfigMirrorsPaper(t *testing.T) {
	cfg := DefaultConfig(testWindow, 7)
	if cfg.SampleSize != 100 || cfg.Groups != 5 || cfg.Seed != 7 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if cfg.Conflate || cfg.Workers != 0 || cfg.CacheDir != "" {
		t.Fatalf("DefaultConfig enables non-default behavior: %+v", cfg)
	}
	if cfg.WL.Iterations != 3 || !cfg.WL.UseTypeLabels {
		t.Fatalf("DefaultConfig WL = %+v", cfg.WL)
	}
}

func TestConfigValidateEdgeCases(t *testing.T) {
	jobs := genJobs(t, 300, 1)
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero sample", func(c *Config) { c.SampleSize = 0 }, "SampleSize"},
		{"negative sample", func(c *Config) { c.SampleSize = -5 }, "SampleSize"},
		{"zero groups", func(c *Config) { c.Groups = 0 }, "Groups"},
		{"negative groups", func(c *Config) { c.Groups = -1 }, "Groups"},
	} {
		cfg := DefaultConfig(testWindow, 1)
		tc.mutate(&cfg)
		_, err := Run(jobs, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}

	// Negative workers are not an error: the pool treats <=0 as
	// GOMAXPROCS, so the run completes normally.
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 20
	cfg.Groups = 3
	cfg.Workers = -3
	if _, err := Run(genJobs(t, 1500, 1), cfg); err != nil {
		t.Errorf("negative workers: %v", err)
	}
}

// TestStageDurationLookup covers both the indexed and the fallback
// (hand-built Analysis) paths of StageDuration.
func TestStageDurationLookup(t *testing.T) {
	cfg := DefaultConfig(testWindow, 1)
	cfg.SampleSize = 20
	cfg.Groups = 3
	an, err := Run(genJobs(t, 1500, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range stages.Core {
		if _, ok := an.StageDuration(name); !ok {
			t.Errorf("executed stage %s not found", name)
		}
	}
	if _, ok := an.StageDuration("no.such.stage"); ok {
		t.Error("unknown stage reported as present")
	}

	manual := &Analysis{Stages: []StageTiming{{Name: "x", Duration: 42}}}
	if d, ok := manual.StageDuration("x"); !ok || d != 42 {
		t.Errorf("fallback lookup = %v, %v", d, ok)
	}
	if _, ok := manual.StageDuration("y"); ok {
		t.Error("fallback reported missing stage as present")
	}
}
