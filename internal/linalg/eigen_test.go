package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
	// (1,1)/√2 and (1,-1)/√2.
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	res, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Values[0], 3, 1e-10) || !almost(res.Values[1], 1, 1e-10) {
		t.Fatalf("values = %v, want [3 1]", res.Values)
	}
	v0 := res.Vectors[0]
	if !almost(math.Abs(v0[0]), 1/math.Sqrt2, 1e-10) ||
		!almost(math.Abs(v0[1]), 1/math.Sqrt2, 1e-10) {
		t.Fatalf("vector 0 = %v", v0)
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m, _ := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	res, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i, w := range want {
		if !almost(res.Values[i], w, 1e-12) {
			t.Fatalf("values = %v, want %v", res.Values, want)
		}
	}
}

func TestSymmetricEigenZeroMatrix(t *testing.T) {
	res, err := SymmetricEigen(NewMatrix(3, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", res.Values)
		}
	}
}

func TestSymmetricEigenRejects(t *testing.T) {
	if _, err := SymmetricEigen(NewMatrix(2, 3), 0); err == nil {
		t.Fatal("non-square accepted")
	}
	asym, _ := FromRows([][]float64{{1, 2}, {5, 1}})
	if _, err := SymmetricEigen(asym, 0); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

// reconstruct builds V diag(λ) Vᵀ from an eigen result.
func reconstruct(res *EigenResult) *Matrix {
	n := len(res.Values)
	out := NewMatrix(n, n)
	for k := 0; k < n; k++ {
		lam := res.Values[k]
		vec := res.Vectors[k]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += lam * vec[i] * vec[j]
			}
		}
	}
	return out
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := randomSymmetric(rng, n)
		res, err := SymmetricEigen(m, 0)
		if err != nil {
			return false
		}
		rec := reconstruct(res)
		scale := 1 + m.FrobeniusNorm()
		for i := range m.Data {
			if math.Abs(rec.Data[i]-m.Data[i]) > 1e-8*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvectorsOrthonormalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		res, err := SymmetricEigen(randomSymmetric(rng, n), 0)
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				d, _ := Dot(res.Vectors[a], res.Vectors[b])
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvalueEquationProperty(t *testing.T) {
	// A v = λ v for every returned pair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := randomSymmetric(rng, n)
		res, err := SymmetricEigen(m, 0)
		if err != nil {
			return false
		}
		scale := 1 + m.FrobeniusNorm()
		for k := 0; k < n; k++ {
			av, err := m.MulVec(res.Vectors[k])
			if err != nil {
				return false
			}
			for i := range av {
				if math.Abs(av[i]-res.Values[k]*res.Vectors[k][i]) > 1e-7*scale {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenLargeWellConditioned(t *testing.T) {
	// A Gram matrix XXᵀ is symmetric PSD; check values are non-negative
	// and the trace is preserved, at the pipeline's typical n=100.
	rng := rand.New(rand.NewSource(7))
	n := 100
	x := NewMatrix(n, 20)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	g, err := x.Mul(x.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SymmetricEigen(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trace, sum float64
	for i := 0; i < n; i++ {
		trace += g.At(i, i)
	}
	for _, v := range res.Values {
		if v < -1e-6*trace {
			t.Fatalf("PSD matrix produced negative eigenvalue %g", v)
		}
		sum += v
	}
	if !almost(trace, sum, 1e-6*trace) {
		t.Fatalf("trace %g != eigenvalue sum %g", trace, sum)
	}
}

func TestTopKEigenvectors(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	res, _ := SymmetricEigen(m, 0)
	top, err := TopKEigenvectors(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top.Rows != 2 || top.Cols != 1 {
		t.Fatalf("shape = %dx%d", top.Rows, top.Cols)
	}
	if !almost(math.Abs(top.At(0, 0)), 1/math.Sqrt2, 1e-10) {
		t.Fatalf("top vector = %v", top.Data)
	}
	if _, err := TopKEigenvectors(res, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopKEigenvectors(res, 3); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestPowerIterationDominantPair(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	val, vec, err := PowerIteration(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(val, 3, 1e-8) {
		t.Fatalf("dominant eigenvalue = %g, want 3", val)
	}
	// Eigenvector error converges as the square root of the eigenvalue
	// error; allow a correspondingly looser tolerance.
	if !almost(math.Abs(vec[0]), 1/math.Sqrt2, 1e-4) {
		t.Fatalf("dominant vector = %v", vec)
	}
}

func TestPowerIterationMatchesJacobiProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// PSD Gram matrix: dominant eigenvalue is the largest one and
		// power iteration converges cleanly.
		x := NewMatrix(n, n+2)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		g, err := x.Mul(x.Transpose())
		if err != nil {
			return false
		}
		full, err := SymmetricEigen(g, 0)
		if err != nil {
			return false
		}
		val, _, err := PowerIteration(g, 1e-12, 5000)
		if err != nil {
			return false
		}
		scale := 1 + math.Abs(full.Values[0])
		return math.Abs(val-full.Values[0]) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerIterationValidation(t *testing.T) {
	if _, _, err := PowerIteration(NewMatrix(2, 3), 0, 0); err == nil {
		t.Fatal("non-square accepted")
	}
	// Zero matrix: eigenvalue 0.
	val, _, err := PowerIteration(NewMatrix(3, 3), 0, 0)
	if err != nil || val != 0 {
		t.Fatalf("zero matrix: %g, %v", val, err)
	}
}

func TestEigenConvergenceReported(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 12
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	res, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("well-conditioned matrix reported non-converged after %d sweeps", res.Sweeps)
	}
	if res.Sweeps < 1 || res.Sweeps > jacobiMaxSweeps {
		t.Fatalf("sweeps = %d out of (0,%d]", res.Sweeps, jacobiMaxSweeps)
	}
}

func TestEigenDiagonalConvergesInZeroSweeps(t *testing.T) {
	m, _ := FromRows([][]float64{{4, 0}, {0, 1}})
	res, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 0 {
		t.Fatalf("diagonal input: converged=%v sweeps=%d, want true/0", res.Converged, res.Sweeps)
	}
}
