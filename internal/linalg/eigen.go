package linalg

import (
	"fmt"
	"math"
	"sort"

	"jobgraph/internal/obs"
)

// Eigensolver convergence telemetry: Jacobi sweeps to convergence per
// decomposition. A sweep count creeping toward jacobiMaxSweeps means
// the affinity matrix is ill-conditioned and results are suspect.
var (
	obsEigenRuns         = obs.Default().Counter("linalg.eigen.runs")
	obsEigenSweeps       = obs.Default().Histogram("linalg.eigen.sweeps")
	obsEigenNonConverged = obs.Default().Counter("linalg.eigen.nonconverged")
)

// EigenResult holds the eigendecomposition of a real symmetric matrix:
// A = V · diag(Values) · Vᵀ, with Values sorted in descending order and
// Vectors[k] the unit eigenvector for Values[k].
type EigenResult struct {
	Values  []float64
	Vectors [][]float64 // Vectors[k][i] = i-th component of eigenvector k

	// Sweeps is the number of full Jacobi sweeps executed. Converged
	// reports whether the off-diagonal mass actually dropped below the
	// tolerance, or the solver stopped at the sweep cap with the best
	// approximation it had. A non-converged result is still a usable
	// (approximate) decomposition; callers decide whether to retry with
	// a relaxed tolerance or degrade.
	Sweeps    int
	Converged bool
}

// jacobiMaxSweeps bounds the number of full Jacobi sweeps. Cyclic Jacobi
// converges quadratically; well-conditioned similarity matrices finish in
// well under 20 sweeps even at n in the thousands.
const jacobiMaxSweeps = 64

// SymmetricEigen computes all eigenvalues and eigenvectors of the real
// symmetric matrix a using the cyclic Jacobi rotation method. The input
// is not modified. tol is the convergence threshold on the largest
// absolute off-diagonal element relative to the Frobenius norm; pass 0
// for the default (1e-12).
//
// Jacobi is chosen over Householder-QR because (a) it is simple enough to
// verify from first principles, (b) it delivers small, uniformly accurate
// eigenpairs, and (c) the spectral-clustering matrices here are at most a
// few thousand square, where Jacobi's O(n³) per sweep is immaterial.
func SymmetricEigen(a *Matrix, tol float64) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: eigen needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9 * (1 + a.FrobeniusNorm())) {
		return nil, fmt.Errorf("linalg: eigen needs symmetric matrix")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	scale := m.FrobeniusNorm()
	if scale == 0 {
		scale = 1 // zero matrix: eigenvalues all zero, identity vectors
	}

	sweeps := 0
	for ; sweeps < jacobiMaxSweeps; sweeps++ {
		off := m.MaxAbsOffDiag()
		if off <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= tol*scale/float64(n*n) {
					continue
				}
				rotate(m, v, p, q)
			}
		}
	}
	converged := m.MaxAbsOffDiag() <= tol*scale
	obsEigenRuns.Add(1)
	obsEigenSweeps.Observe(float64(sweeps))
	if !converged {
		obsEigenNonConverged.Add(1)
	}

	res := &EigenResult{
		Values:    make([]float64, n),
		Vectors:   make([][]float64, n),
		Sweeps:    sweeps,
		Converged: converged,
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
		res.Values[i] = m.At(i, i)
	}
	sort.Slice(order, func(x, y int) bool {
		return res.Values[order[x]] > res.Values[order[y]]
	})
	sortedVals := make([]float64, n)
	for k, idx := range order {
		sortedVals[k] = res.Values[idx]
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v.At(i, idx) // columns of V are eigenvectors
		}
		res.Vectors[k] = vec
	}
	res.Values = sortedVals
	return res, nil
}

// rotate applies one two-sided Jacobi rotation zeroing m[p][q], updating
// the accumulated eigenvector matrix v.
func rotate(m, v *Matrix, p, q int) {
	app := m.At(p, p)
	aqq := m.At(q, q)
	apq := m.At(p, q)

	// Rotation angle via the numerically stable t = sign(θ)/(|θ|+√(θ²+1)).
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(theta*theta+1))
	} else {
		t = -1 / (-theta + math.Sqrt(theta*theta+1))
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	tau := s / (1 + c)

	n := m.Rows
	m.Set(p, p, app-t*apq)
	m.Set(q, q, aqq+t*apq)
	m.Set(p, q, 0)
	m.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := m.At(i, p)
		aiq := m.At(i, q)
		m.Set(i, p, aip-s*(aiq+tau*aip))
		m.Set(p, i, m.At(i, p))
		m.Set(i, q, aiq+s*(aip-tau*aiq))
		m.Set(q, i, m.At(i, q))
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, vip-s*(viq+tau*vip))
		v.Set(i, q, viq+s*(vip-tau*viq))
	}
}

// TopKEigenvectors returns the eigenvectors for the k largest eigenvalues
// as the columns of an n×k matrix — the spectral-embedding step of
// Ng–Jordan–Weiss clustering.
func TopKEigenvectors(res *EigenResult, k int) (*Matrix, error) {
	n := len(res.Values)
	if k < 1 || k > n {
		return nil, fmt.Errorf("linalg: k=%d out of range [1,%d]", k, n)
	}
	m := NewMatrix(n, k)
	for col := 0; col < k; col++ {
		for i := 0; i < n; i++ {
			m.Set(i, col, res.Vectors[col][i])
		}
	}
	return m, nil
}
