// Package linalg implements the small dense linear-algebra kernel needed
// by spectral clustering: row-major float64 matrices, vector operations
// and a cyclic Jacobi eigendecomposition for real symmetric matrices.
//
// The matrices in this pipeline are similarity matrices over job samples
// (typically 100×100, occasionally a few thousand square), so a dense,
// cache-friendly, allocation-conscious implementation on the standard
// library is the right tool; there is no need for sparse formats or
// BLAS-style blocking.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
// It panics when either dimension is non-positive: matrix shapes in this
// pipeline are derived from sample sizes that are validated upstream, so
// a bad shape is a programming error, not an input error.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: FromRows needs non-empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows
	// of b and out, which matters for the O(n³) product.
	for i := 0; i < m.Rows; i++ {
		outRow := out.Row(i)
		aRow := m.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := aRow[k]
			if a == 0 {
				continue
			}
			bRow := b.Row(k)
			for j, bv := range bRow {
				outRow[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d · %d-vector",
			m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsOffDiag returns the largest |m[i][j]|, i≠j, for a square matrix.
// Zero for 1×1 matrices.
func (m *Matrix) MaxAbsOffDiag() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(Σ m[i][j]²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging, with %.4g elements.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
