package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("linalg: dot length mismatch %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Normalize scales x in place to unit Euclidean norm and returns the
// original norm. A zero vector is left unchanged (returned norm 0).
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("linalg: dist length mismatch %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// AXPY computes y ← a·x + y in place.
func AXPY(a float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("linalg: axpy length mismatch %d vs %d", len(x), len(y))
	}
	for i := range x {
		y[i] += a * x[i]
	}
	return nil
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
