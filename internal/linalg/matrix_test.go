package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("bad layout: %v", m.Data)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestIdentityMul(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	p, err := Identity(2).Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatalf("I·M != M: %v", p.Data)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product = %v", p.Data)
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("bad vec length accepted")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !m.IsSymmetric(0) {
		t.Fatal("symmetric matrix rejected")
	}
	m.Set(0, 1, 3)
	if m.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix accepted")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square matrix accepted as symmetric")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
}

func TestMaxAbsOffDiag(t *testing.T) {
	m, _ := FromRows([][]float64{{5, -3}, {2, 7}})
	if got := m.MaxAbsOffDiag(); got != 3 {
		t.Fatalf("MaxAbsOffDiag = %g, want 3", got)
	}
	one := NewMatrix(1, 1)
	one.Set(0, 0, 42)
	if got := one.MaxAbsOffDiag(); got != 0 {
		t.Fatalf("1x1 off-diag = %g, want 0", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); got != 5 {
		t.Fatalf("Frobenius = %g, want 5", got)
	}
}

func TestStringRendering(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	s := m.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatalf("render: %q", s)
	}
}

func TestVectorOps(t *testing.T) {
	d, err := Dot([]float64{1, 2}, []float64{3, 4})
	if err != nil || d != 11 {
		t.Fatalf("Dot = %g, %v", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("dot length mismatch accepted")
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %g", got)
	}
	x := []float64{3, 4}
	if n := Normalize(x); n != 5 || !almost(Norm2(x), 1, 1e-12) {
		t.Fatalf("Normalize: n=%g x=%v", n, x)
	}
	zero := []float64{0, 0}
	if n := Normalize(zero); n != 0 || zero[0] != 0 {
		t.Fatal("zero vector normalization changed data")
	}
	dist, err := Dist2([]float64{0, 0}, []float64{3, 4})
	if err != nil || dist != 5 {
		t.Fatalf("Dist2 = %g, %v", dist, err)
	}
	y := []float64{1, 1}
	if err := AXPY(2, []float64{1, 2}, y); err != nil || y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v, %v", y, err)
	}
	if err := AXPY(1, []float64{1}, y); err == nil {
		t.Fatal("AXPY length mismatch accepted")
	}
	Scale(2, y)
	if y[0] != 6 || y[1] != 10 {
		t.Fatalf("Scale = %v", y)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
