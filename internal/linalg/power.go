package linalg

import (
	"fmt"
	"math"
)

// PowerIteration approximates the dominant eigenpair (largest |λ|) of a
// square matrix by repeated multiplication. It is the cheap diagnostic
// used to sanity-check similarity matrices (dominant eigenvalue of a
// normalized affinity is ≈1) without paying for a full Jacobi sweep.
// tol is the convergence threshold on the eigenvalue estimate (default
// 1e-10), maxIter bounds the work (default 1000).
func PowerIteration(a *Matrix, tol float64, maxIter int) (value float64, vector []float64, err error) {
	if a.Rows != a.Cols {
		return 0, nil, fmt.Errorf("linalg: power iteration needs square matrix")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	n := a.Rows
	v := make([]float64, n)
	// Deterministic start: uniform vector plus a small ramp so we don't
	// begin orthogonal to the dominant eigenvector of sign-alternating
	// matrices.
	for i := range v {
		v[i] = 1 + float64(i)/float64(n)
	}
	Normalize(v)

	lambda := 0.0
	for it := 0; it < maxIter; it++ {
		w, err := a.MulVec(v)
		if err != nil {
			return 0, nil, err
		}
		norm := Normalize(w)
		if norm == 0 {
			return 0, v, nil // a·v = 0: eigenvalue 0 along v
		}
		// Rayleigh quotient for a signed estimate.
		av, err := a.MulVec(w)
		if err != nil {
			return 0, nil, err
		}
		next, err := Dot(w, av)
		if err != nil {
			return 0, nil, err
		}
		v = w
		if math.Abs(next-lambda) <= tol*(1+math.Abs(next)) {
			return next, v, nil
		}
		lambda = next
	}
	return lambda, v, nil
}
