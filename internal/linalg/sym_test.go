package linalg

import (
	"math/rand"
	"testing"
)

func TestSymMatrixDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 17} {
		s := NewSymMatrix(n)
		want := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				s.Set(i, j, v)
				want.Set(i, j, v)
				want.Set(j, i, v)
			}
		}
		// At answers both triangles from the packed storage.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := s.At(i, j); got != want.At(i, j) {
					t.Fatalf("n=%d At(%d,%d)=%v, want %v", n, i, j, got, want.At(i, j))
				}
			}
		}
		d := s.Dense()
		if d.Rows != n || d.Cols != n {
			t.Fatalf("Dense shape %dx%d, want %dx%d", d.Rows, d.Cols, n, n)
		}
		for k := range want.Data {
			if d.Data[k] != want.Data[k] {
				t.Fatalf("n=%d Dense differs at flat index %d", n, k)
			}
		}
	}
}

func TestSymMatrixSetMirrors(t *testing.T) {
	s := NewSymMatrix(3)
	s.Set(2, 0, 7) // lower-triangle write lands in the same packed cell
	if s.At(0, 2) != 7 || s.At(2, 0) != 7 {
		t.Fatalf("mirror write lost: At(0,2)=%v At(2,0)=%v", s.At(0, 2), s.At(2, 0))
	}
	if len(s.Data) != 6 {
		t.Fatalf("packed length %d, want 6", len(s.Data))
	}
}
