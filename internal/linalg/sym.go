package linalg

import "fmt"

// SymMatrix is a symmetric matrix stored as its packed upper triangle:
// n(n+1)/2 float64s instead of n², row-major with row i starting at
// i*n - i*(i-1)/2. The similarity matrices this pipeline builds are
// symmetric by construction, so the packed form halves both the live
// heap cost of the kernel stage and the size of every cached artifact
// that embeds one. Expand with Dense where full-matrix algorithms
// (eigendecomposition, CSV rendering) need the n² layout.
type SymMatrix struct {
	N    int
	Data []float64 // len = N*(N+1)/2, packed upper triangle
}

// NewSymMatrix returns a zero symmetric matrix of order n. Like
// NewMatrix it panics on a non-positive order: shapes here derive from
// validated sample sizes, so a bad one is a programming error.
func NewSymMatrix(n int) *SymMatrix {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: invalid symmetric order %d", n))
	}
	return &SymMatrix{N: n, Data: make([]float64, n*(n+1)/2)}
}

// idx maps (i, j) with i <= j to the packed offset.
func (s *SymMatrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*s.N - i*(i-1)/2 + (j - i)
}

// At returns element (i, j) == (j, i).
func (s *SymMatrix) At(i, j int) float64 { return s.Data[s.idx(i, j)] }

// Set assigns element (i, j) and, implicitly, (j, i).
func (s *SymMatrix) Set(i, j int, v float64) { s.Data[s.idx(i, j)] = v }

// Dense expands the packed triangle into a full row-major Matrix. The
// mirrored cells are bitwise copies, so algorithms running on the dense
// form see exactly the matrix the packed writes described.
func (s *SymMatrix) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	k := 0
	for i := 0; i < s.N; i++ {
		for j := i; j < s.N; j++ {
			v := s.Data[k]
			k++
			m.Data[i*s.N+j] = v
			m.Data[j*s.N+i] = v
		}
	}
	return m
}
