package conflate_test

import (
	"fmt"

	"jobgraph/internal/conflate"
	"jobgraph/internal/dag"
)

func ExampleConflate() {
	// Thirty parallel Map shards feeding one Reduce collapse into a
	// two-stage job.
	specs := make([]dag.TaskSpec, 0, 31)
	deps := ""
	for i := 1; i <= 30; i++ {
		specs = append(specs, dag.TaskSpec{Name: fmt.Sprintf("M%d", i), Instances: 1})
		deps += fmt.Sprintf("_%d", i)
	}
	specs = append(specs, dag.TaskSpec{Name: "R31" + deps, Instances: 1})
	res, err := dag.FromTasks("wide", specs, dag.BuildOptions{})
	if err != nil {
		panic(err)
	}
	merged, st, err := conflate.Conflate(res.Graph)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d -> %d tasks (%d merge group)\n", st.SizeBefore, st.SizeAfter, st.Groups)
	fmt.Printf("merged map stage carries %d instances\n", merged.Node(1).Instances)
	// Output:
	// 31 -> 2 tasks (1 merge group)
	// merged map stage carries 30 instances
}
