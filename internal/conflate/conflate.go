// Package conflate implements the paper's node-conflation step (§IV-C):
// tasks that perform the same kind of operation and have no
// "sophisticated dependency" of their own are merged, shrinking large
// jobs before structural analysis.
//
// Concretely, two tasks are conflatable when they have the same task
// type, the same predecessor set and the same successor set — they are
// interchangeable shards of one logical stage (e.g. the 30 parallel Map
// tasks of one input scan). Merging such siblings cannot create a cycle:
// an edge between two members would put one in the other's predecessor
// set, contradicting set equality in a DAG.
package conflate

import (
	"fmt"
	"sort"
	"strings"

	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
)

// Conflation volume tallies: how much shard-level detail the merge
// removes across the whole run.
var (
	obsConflateRuns   = obs.Default().Counter("conflate.runs")
	obsNodesMerged    = obs.Default().Counter("conflate.nodes_merged")
	obsGroupsMerged   = obs.Default().Counter("conflate.merge_groups")
	obsEdgesCollapsed = obs.Default().Counter("conflate.edges_collapsed")
)

// Stats describes what one conflation pass did.
type Stats struct {
	SizeBefore  int
	SizeAfter   int
	EdgesBefore int
	EdgesAfter  int
	Groups      int // number of merged groups with ≥2 members
}

// Conflate returns a new graph with conflatable sibling tasks merged and
// the pass statistics. The input graph is not modified.
//
// The representative of each merge group is its smallest task id. Merged
// node attributes aggregate the group: instance counts and planned
// resources sum (the logical stage still needs all of them), durations
// take the maximum (shards run in parallel, the stage ends with the
// slowest).
func Conflate(g *dag.Graph) (*dag.Graph, Stats, error) {
	st := Stats{
		SizeBefore:  g.Size(),
		EdgesBefore: g.NumEdges(),
	}
	if err := g.Validate(); err != nil {
		return nil, st, fmt.Errorf("conflate: %w", err)
	}

	// Group vertices by (type, preds, succs).
	groups := make(map[string][]dag.NodeID)
	for _, id := range g.NodeIDs() {
		key := groupKey(g, id)
		groups[key] = append(groups[key], id)
	}

	// Representative mapping: every node → smallest id in its group.
	rep := make(map[dag.NodeID]dag.NodeID, g.Size())
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		r := members[0]
		for _, m := range members {
			rep[m] = r
		}
		if len(members) > 1 {
			st.Groups++
		}
	}

	out := dag.New(g.JobID)
	// Nodes: aggregate each group into its representative.
	for _, members := range groups {
		r := members[0]
		base := *g.Node(r)
		for _, m := range members[1:] {
			n := g.Node(m)
			base.Instances += n.Instances
			base.PlanCPU += n.PlanCPU
			base.PlanMem += n.PlanMem
			if n.Duration > base.Duration {
				base.Duration = n.Duration
			}
		}
		if err := out.AddNode(base); err != nil {
			return nil, st, fmt.Errorf("conflate: %w", err)
		}
	}
	// Edges: project through rep and deduplicate.
	seen := make(map[[2]dag.NodeID]bool)
	for _, from := range g.NodeIDs() {
		for _, to := range g.Succ(from) {
			e := [2]dag.NodeID{rep[from], rep[to]}
			if e[0] == e[1] || seen[e] {
				continue
			}
			seen[e] = true
			if err := out.AddEdge(e[0], e[1]); err != nil {
				return nil, st, fmt.Errorf("conflate: %w", err)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, st, fmt.Errorf("conflate: result invalid: %w", err)
	}
	st.SizeAfter = out.Size()
	st.EdgesAfter = out.NumEdges()
	obsConflateRuns.Add(1)
	obsNodesMerged.Add(int64(st.SizeBefore - st.SizeAfter))
	obsGroupsMerged.Add(int64(st.Groups))
	obsEdgesCollapsed.Add(int64(st.EdgesBefore - st.EdgesAfter))
	return out, st, nil
}

// groupKey canonically encodes (type, predecessor set, successor set).
func groupKey(g *dag.Graph, id dag.NodeID) string {
	var b strings.Builder
	b.WriteString(g.Node(id).Type.String())
	b.WriteString("|P:")
	for _, p := range g.Pred(id) {
		fmt.Fprintf(&b, "%d,", p)
	}
	b.WriteString("|S:")
	for _, s := range g.Succ(id) {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// FixedPoint applies Conflate repeatedly until the graph stops
// shrinking. With the exact neighbor-set merge rule a single pass is
// already idempotent (merging requires identical neighbor sets *before*
// projection), but the loop is kept as a cheap guarantee should the
// merge rule ever be relaxed; it terminates in at most Size() passes.
func FixedPoint(g *dag.Graph) (*dag.Graph, Stats, error) {
	total := Stats{SizeBefore: g.Size(), EdgesBefore: g.NumEdges()}
	cur := g
	for {
		next, st, err := Conflate(cur)
		if err != nil {
			return nil, total, err
		}
		total.Groups += st.Groups
		total.SizeAfter = st.SizeAfter
		total.EdgesAfter = st.EdgesAfter
		if next.Size() == cur.Size() {
			return next, total, nil
		}
		cur = next
	}
}
