// Package conflate implements the paper's node-conflation step (§IV-C):
// tasks that perform the same kind of operation and have no
// "sophisticated dependency" of their own are merged, shrinking large
// jobs before structural analysis.
//
// Concretely, two tasks are conflatable when they have the same task
// type, the same predecessor set and the same successor set — they are
// interchangeable shards of one logical stage (e.g. the 30 parallel Map
// tasks of one input scan). Merging such siblings cannot create a cycle:
// an edge between two members would put one in the other's predecessor
// set, contradicting set equality in a DAG.
package conflate

import (
	"encoding/binary"
	"fmt"

	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
)

// Conflation volume tallies: how much shard-level detail the merge
// removes across the whole run.
var (
	obsConflateRuns   = obs.Default().Counter("conflate.runs")
	obsNodesMerged    = obs.Default().Counter("conflate.nodes_merged")
	obsGroupsMerged   = obs.Default().Counter("conflate.merge_groups")
	obsEdgesCollapsed = obs.Default().Counter("conflate.edges_collapsed")
)

// Stats describes what one conflation pass did.
type Stats struct {
	SizeBefore  int
	SizeAfter   int
	EdgesBefore int
	EdgesAfter  int
	Groups      int // number of merged groups with ≥2 members
}

// Conflate returns a new graph with conflatable sibling tasks merged and
// the pass statistics. The input graph is not modified.
//
// The representative of each merge group is its smallest task id. Merged
// node attributes aggregate the group: instance counts and planned
// resources sum (the logical stage still needs all of them), durations
// take the maximum (shards run in parallel, the stage ends with the
// slowest).
func Conflate(g *dag.Graph) (*dag.Graph, Stats, error) {
	st := Stats{
		SizeBefore:  g.Size(),
		EdgesBefore: g.NumEdges(),
	}
	if err := g.Validate(); err != nil {
		return nil, st, fmt.Errorf("conflate: %w", err)
	}

	// Group vertices by (type, preds, succs), all in node-position
	// space: positions are canonical within a graph (ascending task id),
	// so a compact binary key over neighbor position lists identifies a
	// neighbor set without rendering ids to text. Walking positions in
	// ascending order keeps each group's member list sorted by id and
	// the group numbering deterministic.
	n := g.NumNodes()
	keyIdx := make(map[string]int32, n)
	members := make([][]int32, 0, n)
	memberOf := make([]int32, n)
	var buf []byte
	for p := 0; p < n; p++ {
		buf = appendGroupKey(buf[:0], g, p)
		gi, ok := keyIdx[string(buf)]
		if !ok {
			gi = int32(len(members))
			keyIdx[string(buf)] = gi
			members = append(members, nil)
		}
		members[gi] = append(members[gi], int32(p))
		memberOf[p] = gi
	}

	out := dag.New(g.JobID)
	// Nodes: aggregate each group into its representative — the
	// smallest task id, which is the first member since members arrive
	// in ascending position order.
	repPos := make([]int32, len(members))
	for gi, ms := range members {
		repPos[gi] = ms[0]
		if len(ms) > 1 {
			st.Groups++
		}
		base := *g.NodeAt(int(ms[0]))
		for _, m := range ms[1:] {
			nd := g.NodeAt(int(m))
			base.Instances += nd.Instances
			base.PlanCPU += nd.PlanCPU
			base.PlanMem += nd.PlanMem
			if nd.Duration > base.Duration {
				base.Duration = nd.Duration
			}
		}
		if err := out.AddNode(base); err != nil {
			return nil, st, fmt.Errorf("conflate: %w", err)
		}
	}
	// Edges: project through the representatives and deduplicate.
	seen := make(map[uint64]bool)
	for p := 0; p < n; p++ {
		from := repPos[memberOf[p]]
		for _, q := range g.SuccPos(p) {
			to := repPos[memberOf[q]]
			if from == to {
				continue
			}
			e := uint64(uint32(from))<<32 | uint64(uint32(to))
			if seen[e] {
				continue
			}
			seen[e] = true
			if err := out.AddEdge(g.IDAt(int(from)), g.IDAt(int(to))); err != nil {
				return nil, st, fmt.Errorf("conflate: %w", err)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, st, fmt.Errorf("conflate: result invalid: %w", err)
	}
	st.SizeAfter = out.Size()
	st.EdgesAfter = out.NumEdges()
	obsConflateRuns.Add(1)
	obsNodesMerged.Add(int64(st.SizeBefore - st.SizeAfter))
	obsGroupsMerged.Add(int64(st.Groups))
	obsEdgesCollapsed.Add(int64(st.EdgesBefore - st.EdgesAfter))
	return out, st, nil
}

// appendGroupKey appends a canonical binary encoding of node p's
// (type, predecessor set, successor set) to dst. Neighbor sets are
// position lists, already ascending in CSR order; a uvarint length
// prefix on the predecessors makes the encoding unambiguous.
func appendGroupKey(dst []byte, g *dag.Graph, p int) []byte {
	preds, succs := g.PredPos(p), g.SuccPos(p)
	dst = append(dst, byte(g.NodeAt(p).Type))
	dst = binary.AppendUvarint(dst, uint64(len(preds)))
	for _, q := range preds {
		dst = binary.AppendUvarint(dst, uint64(q))
	}
	for _, q := range succs {
		dst = binary.AppendUvarint(dst, uint64(q))
	}
	return dst
}

// FixedPoint applies Conflate repeatedly until the graph stops
// shrinking. With the exact neighbor-set merge rule a single pass is
// already idempotent (merging requires identical neighbor sets *before*
// projection), but the loop is kept as a cheap guarantee should the
// merge rule ever be relaxed; it terminates in at most Size() passes.
func FixedPoint(g *dag.Graph) (*dag.Graph, Stats, error) {
	total := Stats{SizeBefore: g.Size(), EdgesBefore: g.NumEdges()}
	cur := g
	for {
		next, st, err := Conflate(cur)
		if err != nil {
			return nil, total, err
		}
		total.Groups += st.Groups
		total.SizeAfter = st.SizeAfter
		total.EdgesAfter = st.EdgesAfter
		if next.Size() == cur.Size() {
			return next, total, nil
		}
		cur = next
	}
}
