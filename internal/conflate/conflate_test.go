package conflate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// mapReduce builds k parallel map tasks feeding a single reducer.
func mapReduce(t testing.TB, k int) *dag.Graph {
	t.Helper()
	g := dag.New("mr")
	sink := dag.NodeID(k + 1)
	if err := g.AddNode(dag.Node{ID: sink, Type: taskname.TypeReduce, Duration: 5, Instances: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		if err := g.AddNode(dag.Node{
			ID: dag.NodeID(i), Type: taskname.TypeMap,
			Duration: float64(i), Instances: 2, PlanCPU: 1, PlanMem: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(dag.NodeID(i), sink); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestConflateMapReduceShards(t *testing.T) {
	g := mapReduce(t, 30)
	out, st, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("size after = %d, want 2", out.Size())
	}
	if st.SizeBefore != 31 || st.SizeAfter != 2 || st.Groups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	merged := out.Node(1)
	if merged == nil {
		t.Fatal("representative should be the smallest id")
	}
	if merged.Instances != 60 { // 30 shards × 2 instances
		t.Fatalf("instances = %d, want 60", merged.Instances)
	}
	if merged.Duration != 30 { // max shard duration
		t.Fatalf("duration = %g, want 30", merged.Duration)
	}
	if merged.PlanCPU != 30 || merged.PlanMem != 15 {
		t.Fatalf("resources = %g/%g", merged.PlanCPU, merged.PlanMem)
	}
	if !out.HasEdge(1, 31) {
		t.Fatal("merged edge missing")
	}
}

func TestConflateChainUnchanged(t *testing.T) {
	g := dag.New("chain")
	for i := 1; i <= 5; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeReduce}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 5; i++ {
		if err := g.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	out, st, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 5 || st.Groups != 0 {
		t.Fatalf("chain was conflated: size=%d stats=%+v", out.Size(), st)
	}
}

func TestConflateTypeMatters(t *testing.T) {
	// Two sources with identical wiring but different types stay apart.
	g := dag.New("j")
	for _, n := range []dag.Node{
		{ID: 1, Type: taskname.TypeMap},
		{ID: 2, Type: taskname.TypeJoin},
		{ID: 3, Type: taskname.TypeReduce},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	out, _, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 {
		t.Fatalf("different types merged: size=%d", out.Size())
	}
}

func TestConflateDifferentNeighborhoodsKept(t *testing.T) {
	// Diamond: 1 -> {2,3} -> 4 plus extra edge 2 -> 5 -> 4 breaks the
	// symmetry between 2 and 3.
	g := dag.New("j")
	for i := 1; i <= 5; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]dag.NodeID{{1, 2}, {1, 3}, {2, 4}, {3, 4}, {2, 5}, {5, 4}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	out, _, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 5 {
		t.Fatalf("asymmetric siblings merged: size=%d", out.Size())
	}
}

func TestConflateSymmetricDiamondMerges(t *testing.T) {
	g := dag.New("j")
	for i := 1; i <= 4; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]dag.NodeID{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	out, st, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 || st.Groups != 1 {
		t.Fatalf("diamond middles not merged: size=%d stats=%+v", out.Size(), st)
	}
	d, _ := out.Depth()
	if d != 3 {
		t.Fatalf("conflation changed depth: %d", d)
	}
}

func TestConflateEmptyGraph(t *testing.T) {
	out, st, err := Conflate(dag.New("e"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 || st.SizeBefore != 0 || st.SizeAfter != 0 {
		t.Fatalf("empty conflation: %+v", st)
	}
}

// randomDAG mirrors the generator in the dag tests.
func randomDAG(rng *rand.Rand, n int) *dag.Graph {
	g := dag.New("rand")
	types := []taskname.Type{taskname.TypeMap, taskname.TypeReduce, taskname.TypeJoin}
	for i := 1; i <= n; i++ {
		_ = g.AddNode(dag.Node{ID: dag.NodeID(i), Type: types[rng.Intn(3)], Instances: 1})
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.25 {
				_ = g.AddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	return g
}

func TestConflatePreservesInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(25))
		out, st, err := Conflate(g)
		if err != nil {
			return false
		}
		if out.Size() > g.Size() || out.NumEdges() > g.NumEdges() {
			return false // conflation never grows the graph
		}
		if err := out.Validate(); err != nil {
			return false // stays a DAG
		}
		// Depth is preserved: merged siblings share levels.
		d0, _ := g.Depth()
		d1, _ := out.Depth()
		if d0 != d1 {
			return false
		}
		// Total instances preserved.
		sum := func(gr *dag.Graph) int {
			s := 0
			for _, id := range gr.NodeIDs() {
				s += gr.Node(id).Instances
			}
			return s
		}
		if sum(g) != sum(out) {
			return false
		}
		return st.SizeBefore == g.Size() && st.SizeAfter == out.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConflateIdempotentAtFixedPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(20))
		fp, _, err := FixedPoint(g)
		if err != nil {
			return false
		}
		again, st, err := Conflate(fp)
		if err != nil {
			return false
		}
		return again.Size() == fp.Size() && st.Groups == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointMatchesSinglePass(t *testing.T) {
	g := mapReduce(t, 10)
	fp, st, err := FixedPoint(g)
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := Conflate(g)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Size() != one.Size() || fp.Size() != 2 {
		t.Fatalf("fixed point %d vs single pass %d, want 2", fp.Size(), one.Size())
	}
	if st.SizeBefore != 11 || st.SizeAfter != 2 || st.Groups != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
