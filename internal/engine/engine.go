// Package engine executes a declarative pipeline of typed stages with
// content-addressed artifact caching.
//
// A Plan is an ordered list of stages; each stage declares its name,
// the upstream stages whose artifacts it consumes, a fingerprint of
// the configuration fields that affect its output, and (optionally) a
// codec that makes its artifact cacheable. The runner derives every
// stage's content key as a SHA-256 over its name, fingerprint and the
// keys of its dependencies, so a key matches exactly when the stage
// would recompute the same value. With a cache store attached, a stage
// whose key is present loads its artifact instead of running — a warm
// re-run with only downstream configuration changed skips the expensive
// upstream stages, and a run interrupted mid-stage resumes from the
// last completed artifact on the next invocation, because artifacts are
// persisted as each stage completes.
//
// The runner threads the repository's observability conventions through
// a single place: each executed stage runs inside an obs span (child of
// the caller's parent span), emits one structured log record, and lands
// on the Result's execution-ordered timing list; cache hits and misses
// are counted on the Default obs registry so they surface in
// metrics.json and the run ledger.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"time"

	"jobgraph/internal/engine/cache"
	"jobgraph/internal/obs"
)

// keySchema salts every content key; bump together with artifact or
// stage-semantics changes so stale caches miss instead of resurfacing
// wrong-shaped artifacts.
// v2: dag.Graph moved to a flat CSR core with a compact binary gob wire
// form (JGD2), so every cached artifact embedding a graph changed shape.
const keySchema = "jobgraph-engine/v2"

// Cache traffic counters — the warm/cold visibility in metrics.json.
var (
	obsCacheHits   = obs.Default().Counter("engine.cache.hits")
	obsCacheMisses = obs.Default().Counter("engine.cache.misses")
	obsCacheErrors = obs.Default().Counter("engine.cache.errors")
	obsStagesRun   = obs.Default().Counter("engine.stages_run")
	obsStagesCache = obs.Default().Counter("engine.stages_cached")
)

// StageCacheMetricPrefix namespaces the per-stage cache counters:
// <prefix><stage>.hits / .misses / .bytes_read / .bytes_written.
// Flat dotted names (rather than labels) keep them greppable in
// metrics.json and parseable by benchdiff.
const StageCacheMetricPrefix = "engine.cache.stage."

// stageCacheCounter returns the per-stage cache counter for one metric
// kind ("hits", "misses", "bytes_read", "bytes_written").
func stageCacheCounter(stage, kind string) *obs.Counter {
	return obs.Default().Counter(StageCacheMetricPrefix + stage + "." + kind)
}

// Inputs hands a stage the artifacts of its declared dependencies.
type Inputs struct {
	artifacts map[string]any
}

// Get returns a dependency's artifact by stage name.
func (in Inputs) Get(name string) (any, bool) {
	v, ok := in.artifacts[name]
	return v, ok
}

// In returns the named dependency artifact asserted to type T. It
// errors (rather than panics) on a missing dependency or a type
// mismatch so a mis-wired stage fails its run with a diagnosable
// message instead of crashing the process.
func In[T any](in Inputs, name string) (T, error) {
	var zero T
	v, ok := in.artifacts[name]
	if !ok {
		return zero, fmt.Errorf("engine: stage input %q not available (not a declared dependency?)", name)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("engine: stage input %q is %T, not %T", name, v, zero)
	}
	return t, nil
}

// Stage is one computed pipeline step.
type Stage struct {
	// Name identifies the stage; use the constants in internal/stages.
	Name string
	// Deps are the stages whose artifacts feed this one. Every dep must
	// be declared earlier in the plan.
	Deps []string
	// Fingerprint digests the configuration fields that affect this
	// stage's output — and nothing else. Fields that provably do not
	// change the artifact (worker counts, progress callbacks) must stay
	// out, so artifacts are shared across those settings.
	Fingerprint string
	// Codec serializes the artifact for the content-addressed store.
	// nil marks the artifact as not cacheable: the stage always runs.
	Codec cache.Codec
	// Run computes the artifact. detail is a one-line human summary for
	// the stage's structured log record.
	Run func(in Inputs) (artifact any, detail string, err error)
}

// source is a provided (not computed) artifact: the plan's input data.
type source struct {
	name string

	value any
	// fingerprint is lazy: digesting the input (e.g. hashing a 20k-job
	// trace) is only worth doing when a cache store is attached.
	fingerprint func() string
}

// Plan is an ordered stage graph. Build it with Source and Add, then
// Execute it.
type Plan struct {
	sources []source
	stages  []*Stage
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Source declares a provided artifact. fingerprint is invoked at most
// once, and only when content keys are needed (a cache store is
// attached).
func (p *Plan) Source(name string, value any, fingerprint func() string) *Plan {
	p.sources = append(p.sources, source{name: name, value: value, fingerprint: fingerprint})
	return p
}

// Add appends a computed stage. Stages execute in the order added;
// dependencies must already be declared.
func (p *Plan) Add(s *Stage) *Plan {
	p.stages = append(p.stages, s)
	return p
}

// validate checks the plan is executable: unique names, deps declared
// before use, stage bodies present.
func (p *Plan) validate() error {
	declared := make(map[string]bool, len(p.sources)+len(p.stages))
	for _, s := range p.sources {
		if s.name == "" {
			return fmt.Errorf("engine: source with empty name")
		}
		if declared[s.name] {
			return fmt.Errorf("engine: duplicate stage %q", s.name)
		}
		declared[s.name] = true
	}
	for _, st := range p.stages {
		if st.Name == "" {
			return fmt.Errorf("engine: stage with empty name")
		}
		if declared[st.Name] {
			return fmt.Errorf("engine: duplicate stage %q", st.Name)
		}
		if st.Run == nil {
			return fmt.Errorf("engine: stage %q has no Run func", st.Name)
		}
		for _, d := range st.Deps {
			if !declared[d] {
				return fmt.Errorf("engine: stage %q depends on %q, which is not declared before it", st.Name, d)
			}
		}
		declared[st.Name] = true
	}
	return nil
}

// Options configures one plan execution.
type Options struct {
	// Store enables artifact caching; nil runs every stage.
	Store *cache.Store
	// Parent is the span stage spans nest under (typically the
	// "pipeline" root). A nil parent starts root-level spans.
	Parent *obs.Span
	// Logger receives one structured record per stage outcome; nil uses
	// the Default registry's logger.
	Logger *slog.Logger
}

// StageTiming is one executed stage's measured wall time.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Result is the outcome of a plan execution.
type Result struct {
	// Executed lists the stages that actually ran, in execution order,
	// with their wall times — cache hits do not appear here.
	Executed []StageTiming
	// Cached lists the stages satisfied from the artifact store, in
	// plan order.
	Cached []string
	// Keys maps stage name → content key. Empty when no store was
	// attached (keys are only computed when caching is on).
	Keys map[string]string
	// Hits and Misses count this execution's cache traffic.
	Hits, Misses int

	artifacts map[string]any
}

// Artifact returns a stage's artifact (computed or cache-loaded).
func (r *Result) Artifact(name string) (any, bool) {
	v, ok := r.artifacts[name]
	return v, ok
}

// ArtifactAs returns a stage's artifact asserted to type T.
func ArtifactAs[T any](r *Result, name string) (T, error) {
	return In[T](Inputs{artifacts: r.artifacts}, name)
}

// Execute runs the plan. On a stage error the partially-filled Result
// is returned alongside the error; artifacts of completed stages have
// already been persisted to the store, which is what makes the next
// invocation resume from them.
func (p *Plan) Execute(opt Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	lg := opt.Logger
	if lg == nil {
		lg = obs.Default().Logger()
	}
	res := &Result{
		artifacts: make(map[string]any, len(p.sources)+len(p.stages)),
		Keys:      make(map[string]string),
	}
	caching := opt.Store != nil
	for _, s := range p.sources {
		res.artifacts[s.name] = s.value
		if caching {
			res.Keys[s.name] = contentKey(s.name, s.fingerprint(), nil, res.Keys)
		}
	}
	prog := obs.Default().Progress()
	stageWindow := obs.Default().WindowHistogram("engine.stage_ms", obs.DefaultWindow)
	// Plan-level liveness for the stall watchdog: one beat per stage
	// boundary. Stages that parallelize internally (runPool, the ingest
	// shards) carry their own finer-grained heartbeats; this one catches
	// a plan wedged between stages or inside a monolithic stage's setup.
	hb := obs.Default().Heartbeat("engine.stages")
	hb.Beat()
	defer hb.Done()
	for _, st := range p.stages {
		var key string
		if caching {
			key = contentKey(st.Name, st.Fingerprint, st.Deps, res.Keys)
			res.Keys[st.Name] = key
		}
		if caching && st.Codec != nil {
			v, n, ok, err := opt.Store.Load(st.Name, key, st.Codec)
			if err != nil {
				// A corrupt or stale artifact is a miss, not a failure:
				// recompute and overwrite.
				obsCacheErrors.Add(1)
				lg.Warn("stage artifact unusable; recomputing", "stage", st.Name, "err", err)
			}
			if ok {
				obsCacheHits.Add(1)
				obsStagesCache.Add(1)
				stageCacheCounter(st.Name, "hits").Add(1)
				stageCacheCounter(st.Name, "bytes_read").Add(n)
				res.Hits++
				res.Cached = append(res.Cached, st.Name)
				res.artifacts[st.Name] = v
				prog.StageFinished(st.Name, obs.StageCached, 0)
				lg.Info("stage cached", "stage", st.Name, "key", key[:12])
				continue
			}
			obsCacheMisses.Add(1)
			stageCacheCounter(st.Name, "misses").Add(1)
			res.Misses++
		}
		in := Inputs{artifacts: res.artifacts}
		hb.Beat()
		prog.StageStarted(st.Name)
		sp := opt.Parent.Child(st.Name)
		v, detail, err := st.Run(in)
		d := sp.End()
		res.Executed = append(res.Executed, StageTiming{Name: st.Name, Duration: d})
		obsStagesRun.Add(1)
		stageWindow.Observe(float64(d) / float64(time.Millisecond))
		if err != nil {
			prog.StageFinished(st.Name, obs.StageFailed, d)
			lg.Error("stage failed", "stage", st.Name, "duration", d.Round(time.Microsecond), "err", err)
			return res, err
		}
		prog.StageFinished(st.Name, obs.StageDone, d)
		lg.Info("stage complete", "stage", st.Name, "duration", d.Round(time.Microsecond), "detail", detail)
		res.artifacts[st.Name] = v
		if caching && st.Codec != nil {
			n, err := opt.Store.Save(st.Name, key, st.Codec, v)
			if err != nil {
				// Failing to persist must not fail the run; the next
				// invocation just recomputes.
				obsCacheErrors.Add(1)
				lg.Warn("stage artifact not persisted", "stage", st.Name, "err", err)
			} else {
				stageCacheCounter(st.Name, "bytes_written").Add(n)
			}
		}
	}
	return res, nil
}

// contentKey derives a stage's content key from its name, its config
// fingerprint and its dependencies' keys. Dependency order is the
// declared order, so the key is deterministic.
func contentKey(name, fingerprint string, deps []string, keys map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", keySchema, name, fingerprint)
	for _, d := range deps {
		fmt.Fprintf(h, "%s=%s\x00", d, keys[d])
	}
	return hex.EncodeToString(h.Sum(nil))
}
