package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jobgraph/internal/engine/cache"
)

// plan builds a three-stage chain a -> b -> c over an integer source:
// b doubles, c adds its fingerprint-controlled offset. runs records
// which stages executed.
func chainPlan(input int, offsetC int, runs *[]string) *Plan {
	p := NewPlan()
	p.Source("src", input, func() string { return fmt.Sprintf("src:%d", input) })
	p.Add(&Stage{
		Name:        "double",
		Deps:        []string{"src"},
		Fingerprint: "x2",
		Codec:       cache.Gob[int](),
		Run: func(in Inputs) (any, string, error) {
			*runs = append(*runs, "double")
			v, err := In[int](in, "src")
			if err != nil {
				return nil, "", err
			}
			return v * 2, "doubled", nil
		},
	})
	p.Add(&Stage{
		Name:        "offset",
		Deps:        []string{"double"},
		Fingerprint: fmt.Sprintf("off:%d", offsetC),
		Codec:       cache.Gob[int](),
		Run: func(in Inputs) (any, string, error) {
			*runs = append(*runs, "offset")
			v, err := In[int](in, "double")
			if err != nil {
				return nil, "", err
			}
			return v + offsetC, "offset applied", nil
		},
	})
	return p
}

func TestExecuteNoCacheRunsEverything(t *testing.T) {
	var runs []string
	res, err := chainPlan(21, 5, &runs).Execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ArtifactAs[int](res, "offset")
	if err != nil || v != 47 {
		t.Fatalf("offset artifact = %v, %v", v, err)
	}
	if len(runs) != 2 || len(res.Executed) != 2 || len(res.Cached) != 0 {
		t.Fatalf("runs=%v executed=%v cached=%v", runs, res.Executed, res.Cached)
	}
	if len(res.Keys) != 0 {
		t.Fatalf("keys computed without a store: %v", res.Keys)
	}
}

func TestExecuteWarmRunLoadsFromCache(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var cold []string
	cres, err := chainPlan(21, 5, &cold).Execute(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Misses != 2 || cres.Hits != 0 {
		t.Fatalf("cold run hits=%d misses=%d", cres.Hits, cres.Misses)
	}
	var warm []string
	wres, err := chainPlan(21, 5, &warm).Execute(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 0 {
		t.Fatalf("warm run executed %v", warm)
	}
	if wres.Hits != 2 || len(wres.Cached) != 2 {
		t.Fatalf("warm run hits=%d cached=%v", wres.Hits, wres.Cached)
	}
	cv, _ := ArtifactAs[int](cres, "offset")
	wv, _ := ArtifactAs[int](wres, "offset")
	if cv != wv {
		t.Fatalf("cold %d != warm %d", cv, wv)
	}
}

func TestDownstreamConfigChangeReusesUpstream(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	if _, err := chainPlan(21, 5, &first).Execute(Options{Store: store}); err != nil {
		t.Fatal(err)
	}
	// Change only the last stage's fingerprint: "double" must be a
	// cache hit, "offset" must recompute.
	var second []string
	res, err := chainPlan(21, 9, &second).Execute(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"offset"}; strings.Join(second, ",") != strings.Join(want, ",") {
		t.Fatalf("second run executed %v, want %v", second, want)
	}
	if len(res.Cached) != 1 || res.Cached[0] != "double" {
		t.Fatalf("cached = %v", res.Cached)
	}
	if v, _ := ArtifactAs[int](res, "offset"); v != 51 {
		t.Fatalf("offset artifact = %d", v)
	}
}

func TestInputChangeInvalidatesEverything(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var first, second []string
	if _, err := chainPlan(21, 5, &first).Execute(Options{Store: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := chainPlan(22, 5, &second).Execute(Options{Store: store}); err != nil {
		t.Fatal(err)
	}
	if len(second) != 2 {
		t.Fatalf("changed input executed only %v", second)
	}
}

func TestFailedStageResumesFromPersistedArtifacts(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cancelled")
	fail := true
	mk := func(runs *[]string) *Plan {
		p := NewPlan()
		p.Source("src", 1, func() string { return "src:1" })
		p.Add(&Stage{
			Name: "a", Deps: []string{"src"}, Fingerprint: "a", Codec: cache.Gob[int](),
			Run: func(in Inputs) (any, string, error) {
				*runs = append(*runs, "a")
				return 10, "", nil
			},
		})
		p.Add(&Stage{
			Name: "b", Deps: []string{"a"}, Fingerprint: "b", Codec: cache.Gob[int](),
			Run: func(in Inputs) (any, string, error) {
				*runs = append(*runs, "b")
				if fail {
					return nil, "", boom
				}
				return 20, "", nil
			},
		})
		return p
	}
	var r1 []string
	if _, err := mk(&r1).Execute(Options{Store: store}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	fail = false
	var r2 []string
	res, err := mk(&r2).Execute(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// "a" resumes from its persisted artifact; only "b" re-runs.
	if strings.Join(r2, ",") != "b" {
		t.Fatalf("resumed run executed %v", r2)
	}
	if len(res.Cached) != 1 || res.Cached[0] != "a" {
		t.Fatalf("resumed cached = %v", res.Cached)
	}
}

func TestCorruptArtifactIsAMissNotAFailure(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var r1 []string
	if _, err := chainPlan(3, 1, &r1).Execute(Options{Store: store}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "double-*"))
	if len(files) != 1 {
		t.Fatalf("double artifacts: %v", files)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var r2 []string
	res, err := chainPlan(3, 1, &r2).Execute(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r2, ",") != "double" {
		t.Fatalf("after corruption executed %v, want just double", r2)
	}
	if v, _ := ArtifactAs[int](res, "offset"); v != 7 {
		t.Fatalf("offset = %d", v)
	}
	// The corrupt file must have been overwritten with a good artifact.
	var r3 []string
	if _, err := chainPlan(3, 1, &r3).Execute(Options{Store: store}); err != nil || len(r3) != 0 {
		t.Fatalf("third run executed %v err %v", r3, err)
	}
}

func TestPlanValidation(t *testing.T) {
	noop := func(in Inputs) (any, string, error) { return nil, "", nil }
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"duplicate", NewPlan().
			Add(&Stage{Name: "a", Run: noop}).
			Add(&Stage{Name: "a", Run: noop}), "duplicate"},
		{"unknown dep", NewPlan().
			Add(&Stage{Name: "a", Deps: []string{"ghost"}, Run: noop}), "not declared"},
		{"forward dep", NewPlan().
			Add(&Stage{Name: "a", Deps: []string{"b"}, Run: noop}).
			Add(&Stage{Name: "b", Run: noop}), "not declared"},
		{"missing run", NewPlan().Add(&Stage{Name: "a"}), "no Run func"},
	}
	for _, tc := range cases {
		if _, err := tc.plan.Execute(Options{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestInTypeMismatch(t *testing.T) {
	in := Inputs{artifacts: map[string]any{"a": "text"}}
	if _, err := In[int](in, "a"); err == nil {
		t.Fatal("type mismatch not reported")
	}
	if _, err := In[string](in, "missing"); err == nil {
		t.Fatal("missing input not reported")
	}
}
