// Package cache is a content-addressed artifact store for pipeline
// stage outputs. Each artifact is stored under its stage name plus the
// stage's content key (a digest over the configuration fields and
// upstream artifact digests that determine the output), so a lookup
// either returns exactly the bytes a previous run computed for the same
// effective inputs or misses. Files are written atomically (temp file +
// rename), so a run cancelled mid-stage never leaves a partial artifact
// behind — the property that makes interrupted runs resumable.
package cache

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Schema identifies the artifact file layout; bump on breaking changes
// so stale caches read as misses instead of decode errors.
const Schema = "jobgraph-artifact/v1"

// header is the first JSON line of every artifact file. The full
// content key is repeated inside the file so a truncated filename or a
// renamed file can never satisfy the wrong lookup.
type header struct {
	Schema string `json:"schema"`
	Stage  string `json:"stage"`
	Key    string `json:"key"`
	Codec  string `json:"codec"`
}

// Codec serializes one artifact type. Encode must accept exactly the
// values Decode returns; Ext names the payload format in the artifact
// header and filename.
type Codec interface {
	Ext() string
	Encode(w io.Writer, v any) error
	Decode(r io.Reader) (any, error)
}

// Gob returns a Codec that stores values of type T in gob encoding —
// the compact binary default for pure-Go artifact structs. Types with
// unexported fields participate through GobEncoder/GobDecoder.
func Gob[T any]() Codec { return gobCodec[T]{} }

type gobCodec[T any] struct{}

func (gobCodec[T]) Ext() string { return "gob" }

func (gobCodec[T]) Encode(w io.Writer, v any) error {
	t, ok := v.(T)
	if !ok {
		return fmt.Errorf("cache: gob codec for %T got %T", t, v)
	}
	return gob.NewEncoder(w).Encode(&t)
}

func (gobCodec[T]) Decode(r io.Reader) (any, error) {
	var t T
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return t, nil
}

// JSON returns a Codec that stores values of type T as JSON — for
// artifacts that benefit from being inspectable with standard tooling.
func JSON[T any]() Codec { return jsonCodec[T]{} }

type jsonCodec[T any] struct{}

func (jsonCodec[T]) Ext() string { return "json" }

func (jsonCodec[T]) Encode(w io.Writer, v any) error {
	t, ok := v.(T)
	if !ok {
		return fmt.Errorf("cache: json codec for %T got %T", t, v)
	}
	return json.NewEncoder(w).Encode(&t)
}

func (jsonCodec[T]) Decode(r io.Reader) (any, error) {
	var t T
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return t, nil
}

// Store is a directory of content-addressed artifacts.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory as needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path places an artifact: <stage>-<key prefix>.<ext>. The filename
// carries a 128-bit key prefix for addressing; the header inside the
// file holds the full key and is always verified on load.
func (s *Store) path(stage, key, ext string) string {
	short := key
	if len(short) > 32 {
		short = short[:32]
	}
	name := fmt.Sprintf("%s-%s.%s", sanitize(stage), short, ext)
	return filepath.Join(s.dir, name)
}

// sanitize keeps stage names filesystem-safe without losing identity
// (stage names are dotted lowercase words; this is belt and braces).
func sanitize(stage string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, stage)
}

// Load returns the artifact stored for (stage, key), decoding it with
// c, along with the artifact file's size in bytes (the cache-read
// traffic the caller accounts). ok is false on a clean miss; a non-nil
// error means the file exists but could not be used (corrupt, wrong
// schema, key collision) — the caller should treat it as a miss and
// overwrite.
func (s *Store) Load(stage, key string, c Codec) (v any, n int64, ok bool, err error) {
	f, err := os.Open(s.path(stage, key, c.Ext()))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("cache: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		n = fi.Size()
	}
	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, n, false, fmt.Errorf("cache: %s/%s: reading header: %w", stage, key[:8], err)
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, n, false, fmt.Errorf("cache: %s/%s: bad header: %w", stage, key[:8], err)
	}
	if h.Schema != Schema {
		return nil, n, false, fmt.Errorf("cache: %s: schema %q, want %q", stage, h.Schema, Schema)
	}
	if h.Stage != stage || h.Key != key || h.Codec != c.Ext() {
		return nil, n, false, fmt.Errorf("cache: %s: header identifies %s/%s (%s)", stage, h.Stage, h.Key, h.Codec)
	}
	v, err = c.Decode(r)
	if err != nil {
		return nil, n, false, fmt.Errorf("cache: %s/%s: decode: %w", stage, key[:8], err)
	}
	return v, n, true, nil
}

// countingWriter tallies the bytes passing through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Save stores the artifact for (stage, key) atomically — the bytes land
// in a temp file first and are renamed into place, so concurrent or
// interrupted writers can never expose a partial artifact — and returns
// the number of bytes written (header plus payload).
func (s *Store) Save(stage, key string, c Codec, v any) (int64, error) {
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+sanitize(stage)+"-*")
	if err != nil {
		return 0, fmt.Errorf("cache: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op after a successful rename
	}()
	cw := &countingWriter{w: tmp}
	w := bufio.NewWriter(cw)
	hb, err := json.Marshal(header{Schema: Schema, Stage: stage, Key: key, Codec: c.Ext()})
	if err != nil {
		return 0, fmt.Errorf("cache: header: %w", err)
	}
	if _, err := w.Write(append(hb, '\n')); err != nil {
		return cw.n, fmt.Errorf("cache: %w", err)
	}
	if err := c.Encode(w, v); err != nil {
		return cw.n, fmt.Errorf("cache: %s: encode: %w", stage, err)
	}
	if err := w.Flush(); err != nil {
		return cw.n, fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return cw.n, fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(stage, key, c.Ext())); err != nil {
		return cw.n, fmt.Errorf("cache: %w", err)
	}
	return cw.n, nil
}
