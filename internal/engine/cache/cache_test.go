package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type artifact struct {
	Name   string
	Values []float64
	Table  map[int]float64
}

const key = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func sample() artifact {
	return artifact{
		Name:   "wl.matrix",
		Values: []float64{0.1, 1, 0.25},
		Table:  map[int]float64{3: 0.5, 9: 1},
	}
}

func TestRoundTripGobAndJSON(t *testing.T) {
	for _, c := range []Codec{Gob[artifact](), JSON[artifact]()} {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := s.Load("stage", key, c); ok || err != nil {
			t.Fatalf("%s: fresh store: ok=%v err=%v", c.Ext(), ok, err)
		}
		want := sample()
		wrote, err := s.Save("stage", key, c, want)
		if err != nil {
			t.Fatalf("%s: %v", c.Ext(), err)
		}
		got, read, ok, err := s.Load("stage", key, c)
		if err != nil || !ok {
			t.Fatalf("%s: load: ok=%v err=%v", c.Ext(), ok, err)
		}
		if !reflect.DeepEqual(got.(artifact), want) {
			t.Fatalf("%s: round trip: got %+v want %+v", c.Ext(), got, want)
		}
		if wrote <= 0 || read != wrote {
			t.Fatalf("%s: byte accounting: wrote %d, read %d", c.Ext(), wrote, read)
		}
	}
}

func TestLoadRejectsWrongKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := Gob[artifact]()
	if _, err := s.Save("stage", key, c, sample()); err != nil {
		t.Fatal(err)
	}
	// Same 128-bit filename prefix, different full key: the header
	// check must refuse it.
	other := key[:32] + strings.Repeat("f", 32)
	if _, _, ok, err := s.Load("stage", other, c); ok || err == nil {
		t.Fatalf("collision load: ok=%v err=%v", ok, err)
	}
}

func TestLoadCorruptFileErrorsNotPanics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := Gob[artifact]()
	if _, err := s.Save("stage", key, c, sample()); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "stage-*"))
	if len(files) != 1 {
		t.Fatalf("artifact files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Load("stage", key, c); ok || err == nil {
		t.Fatalf("truncated artifact: ok=%v err=%v", ok, err)
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save("a.b", key, JSON[artifact](), sample()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly one artifact, got %d", len(entries))
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
