// Package report renders the pipeline's experiment outputs as aligned
// ASCII tables, CSV, and terminal heat maps — the textual equivalents of
// the paper's figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"jobgraph/internal/linalg"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered
// with %v except floats, which use %.3f... use AddRow with Sprintf for
// full control.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// WriteCSV emits the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// heatRamp maps [0,1] to a character ramp, dark to bright — the ASCII
// rendering of the paper's Figure 7 blue-to-red colormap.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a matrix with entries in [0,1] as an ASCII density
// map, one character per cell. Values outside [0,1] are clamped.
func Heatmap(m *linalg.Matrix) string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteMatrixCSV emits a matrix as CSV with %.6f cells.
func WriteMatrixCSV(w io.Writer, m *linalg.Matrix) error {
	cw := csv.NewWriter(w)
	row := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			row[j] = fmt.Sprintf("%.6f", m.At(i, j))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bar renders a labeled horizontal bar chart row: label, value and a
// bar proportional to value/max, width characters at full scale.
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		f := value / max
		if f > 1 {
			f = 1
		}
		if f > 0 {
			n = int(f * float64(width))
			if n == 0 {
				n = 1 // visible trace for tiny non-zero values
			}
		}
	}
	return fmt.Sprintf("%-20s %10.2f |%s", label, value, strings.Repeat("#", n))
}
