package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
)

// Run-report HTML: renders one run's metrics snapshot (plus its ledger
// entry, when available) as a single self-contained HTML document —
// inline CSS, inline SVG sparklines, zero external assets — so the file
// can be archived as a CI artifact or mailed around and still open
// years later, offline.

// RunHTMLData is the assembled view model for the run report template.
type RunHTMLData struct {
	Title      string
	Generated  string
	Entry      *ledger.Entry // nil when only a metrics.json is available
	Warnings   []string
	FlightDump string // path of the stall watchdog's flight dump, when one was captured
	Ingest     string // trace ingest throughput line, when the run read a trace
	Stages     []stageRow
	Exemplars  []exemplarRow
	CacheRows  []cacheRow
	Counters   []kvRow
	Gauges     []kvRow
	Histograms []histRow
	Rates      []rateRow
	Windows    []histRow
}

type stageRow struct {
	Path    string
	Count   int64
	TotalMs float64
	MinMs   float64
	MaxMs   float64
	AllocMB float64
	Bar     template.HTML // inline SVG duration bar
}

// exemplarRow is one slow-job exemplar, bar-scaled against the slowest
// job of the same stage.
type exemplarRow struct {
	Stage      string
	ID         string
	DurationMs float64
	Nodes      int
	Edges      int
	Group      string
	Detail     string
	Bar        template.HTML
}

type cacheRow struct {
	Stage        string
	Hits, Misses int64
	BytesRead    int64
	BytesWritten int64
}

type kvRow struct {
	Name  string
	Value int64
}

type histRow struct {
	Name  string
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P99   float64
	Spark template.HTML // inline SVG min/p50/p90/p99/max sparkline
}

type rateRow struct {
	Name        string
	Total       int64
	WindowCount int64
	WindowSec   float64
	PerSec      float64
}

// stageCachePrefix mirrors engine.StageCacheMetricPrefix without
// importing the engine package (report is a leaf formatting layer).
const stageCachePrefix = "engine.cache.stage."

// BuildRunHTMLData assembles the view model from a snapshot and an
// optional ledger entry.
func BuildRunHTMLData(snap obs.Snapshot, entry *ledger.Entry, now time.Time) RunHTMLData {
	d := RunHTMLData{
		Title:     "jobgraph run report",
		Generated: now.UTC().Format("2006-01-02 15:04:05 UTC"),
		Entry:     entry,
	}
	if entry != nil {
		d.Title = "jobgraph run " + entry.RunID
		d.Warnings = entry.Warnings
		d.FlightDump = entry.FlightDump
	}

	// Flatten the span tree into slash paths and scale bars against the
	// longest stage.
	type flat struct {
		path string
		s    obs.SpanSnapshot
	}
	var spans []flat
	var walk func(prefix string, s obs.SpanSnapshot)
	walk = func(prefix string, s obs.SpanSnapshot) {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		spans = append(spans, flat{path, s})
		for _, c := range s.Children {
			walk(path, c)
		}
	}
	for _, s := range snap.Spans {
		walk("", s)
	}
	var maxMs float64
	for _, f := range spans {
		if f.s.TotalMs > maxMs {
			maxMs = f.s.TotalMs
		}
	}
	for _, f := range spans {
		d.Stages = append(d.Stages, stageRow{
			Path:    f.path,
			Count:   f.s.Count,
			TotalMs: f.s.TotalMs,
			MinMs:   f.s.MinMs,
			MaxMs:   f.s.MaxMs,
			AllocMB: float64(f.s.AllocBytes) / (1 << 20),
			Bar:     barSVG(f.s.TotalMs, maxMs),
		})
	}

	// Slow-job exemplars, slowest first (the store keeps them sorted);
	// bars scale against each stage's slowest job.
	for _, stage := range sortedNames(snap.Exemplars) {
		exs := snap.Exemplars[stage]
		var exMax float64
		for _, e := range exs {
			if e.DurationMs > exMax {
				exMax = e.DurationMs
			}
		}
		for _, e := range exs {
			d.Exemplars = append(d.Exemplars, exemplarRow{
				Stage:      stage,
				ID:         e.ID,
				DurationMs: e.DurationMs,
				Nodes:      e.Nodes,
				Edges:      e.Edges,
				Group:      e.Group,
				Detail:     e.Detail,
				Bar:        barSVG(e.DurationMs, exMax),
			})
		}
	}

	cache := map[string]*cacheRow{}
	for name, v := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, stageCachePrefix); ok {
			i := strings.LastIndex(rest, ".")
			if i <= 0 {
				continue
			}
			stage, kind := rest[:i], rest[i+1:]
			cr := cache[stage]
			if cr == nil {
				cr = &cacheRow{Stage: stage}
				cache[stage] = cr
			}
			switch kind {
			case "hits":
				cr.Hits = v
			case "misses":
				cr.Misses = v
			case "bytes_read":
				cr.BytesRead = v
			case "bytes_written":
				cr.BytesWritten = v
			}
			continue
		}
		d.Counters = append(d.Counters, kvRow{Name: name, Value: v})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
	for _, cr := range cache {
		d.CacheRows = append(d.CacheRows, *cr)
	}
	sort.Slice(d.CacheRows, func(i, j int) bool { return d.CacheRows[i].Stage < d.CacheRows[j].Stage })

	for name, v := range snap.Gauges {
		d.Gauges = append(d.Gauges, kvRow{Name: name, Value: v})
	}
	sort.Slice(d.Gauges, func(i, j int) bool { return d.Gauges[i].Name < d.Gauges[j].Name })
	if rps, ok := snap.Gauges["trace.ingest.rows_per_sec"]; ok && rps > 0 {
		d.Ingest = fmt.Sprintf("%d rows/s · %d MiB/s", rps, snap.Gauges["trace.ingest.mb_per_sec"])
	}

	for _, name := range sortedNames(snap.Histograms) {
		h := snap.Histograms[name]
		d.Histograms = append(d.Histograms, histRow{
			Name: name, Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
			P50: h.P50, P90: h.P90, P99: h.P99,
			Spark: sparkSVG(h.Min, h.P50, h.P90, h.P99, h.Max),
		})
	}
	for _, name := range sortedNames(snap.Windows) {
		h := snap.Windows[name]
		d.Windows = append(d.Windows, histRow{
			Name:  fmt.Sprintf("%s (last %gs)", name, h.WindowSec),
			Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
			P50: h.P50, P90: h.P90, P99: h.P99,
			Spark: sparkSVG(h.Min, h.P50, h.P90, h.P99, h.Max),
		})
	}
	for _, name := range sortedNames(snap.Rates) {
		r := snap.Rates[name]
		d.Rates = append(d.Rates, rateRow{
			Name: name, Total: r.Total, WindowCount: r.WindowCount,
			WindowSec: r.WindowSec, PerSec: r.PerSec,
		})
	}
	return d
}

func sortedNames[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// barSVG renders a horizontal duration bar scaled against the longest
// stage.
func barSVG(v, max float64) template.HTML {
	const w = 160.0
	frac := 0.0
	if max > 0 {
		frac = v / max
	}
	bw := frac * w
	if v > 0 && bw < 2 {
		bw = 2 // visible sliver for tiny-but-present stages
	}
	return template.HTML(fmt.Sprintf(
		`<svg width="%d" height="12" role="img"><rect width="%.1f" height="12" rx="2" fill="#4a7aa7"/></svg>`,
		int(w), bw))
}

// sparkSVG renders the five summary points of a histogram as a tiny
// bar strip — a shape cue (tight vs. long-tailed) rather than a chart.
func sparkSVG(vals ...float64) template.HTML {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	bw, gap, h := 9, 2, 24
	fmt.Fprintf(&b, `<svg width="%d" height="%d" role="img">`, len(vals)*(bw+gap), h)
	for i, v := range vals {
		bh := 1.0
		if max > 0 {
			bh = 1 + (v/max)*float64(h-1)
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="#769e6e"/>`,
			i*(bw+gap), float64(h)-bh, bw, bh)
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// WriteRunHTML renders the report document to w.
func WriteRunHTML(w io.Writer, snap obs.Snapshot, entry *ledger.Entry, now time.Time) error {
	return runHTMLTmpl.Execute(w, BuildRunHTMLData(snap, entry, now))
}

var runHTMLTmpl = template.Must(template.New("runreport").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; padding: 0 1rem; color: #1c2733; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid #d4dce4; padding-bottom: .25rem; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #e8edf2; }
th { background: #f3f6f9; font-weight: 600; }
td.num, th.num { text-align: right; }
code { background: #f3f6f9; padding: 0 .25rem; border-radius: 3px; }
.meta dt { font-weight: 600; display: inline-block; min-width: 8rem; }
.meta dd { display: inline; margin: 0; }
.meta div { margin: .15rem 0; }
.warn { background: #fff4e5; border-left: 4px solid #d97706; padding: .5rem .75rem; margin: .5rem 0; }
.muted { color: #61707f; }
footer { margin-top: 3rem; color: #61707f; font-size: .85rem; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{with .Entry}}
<dl class="meta">
<div><dt>command</dt><dd><code>{{.Command}}</code></dd></div>
<div><dt>run id</dt><dd><code>{{.RunID}}</code></dd></div>
<div><dt>started</dt><dd>{{.StartedAt.Format "2006-01-02 15:04:05 UTC"}}</dd></div>
<div><dt>wall time</dt><dd>{{printf "%.1f" .WallMs}} ms</dd></div>
{{if .GitSHA}}<div><dt>git</dt><dd><code>{{.GitSHA}}</code></dd></div>{{end}}
<div><dt>config hash</dt><dd><code>{{.ConfigHash}}</code></dd></div>
<div><dt>host</dt><dd>{{.Host.Hostname}} ({{.Host.OS}}/{{.Host.Arch}}, {{.Host.NumCPU}} cpus, {{.Host.GoVersion}})</dd></div>
</dl>
{{else}}<p class="muted">No ledger entry: stage and metric data only.</p>{{end}}

{{if .Warnings}}
<h2>Warnings</h2>
{{range .Warnings}}<div class="warn">{{.}}</div>{{end}}
{{end}}
{{if .FlightDump}}
<div class="warn">stall watchdog tripped during this run — flight dump at <code>{{.FlightDump}}</code>; timings below describe a stalled run</div>
{{end}}
{{if .Ingest}}
<p>Trace ingest throughput: <strong>{{.Ingest}}</strong></p>
{{end}}

{{if .Stages}}
<h2>Stages</h2>
<table>
<tr><th>stage</th><th class="num">runs</th><th class="num">total ms</th><th class="num">min ms</th><th class="num">max ms</th><th class="num">alloc MiB</th><th></th></tr>
{{range .Stages}}<tr><td><code>{{.Path}}</code></td><td class="num">{{.Count}}</td><td class="num">{{printf "%.2f" .TotalMs}}</td><td class="num">{{printf "%.2f" .MinMs}}</td><td class="num">{{printf "%.2f" .MaxMs}}</td><td class="num">{{printf "%.2f" .AllocMB}}</td><td>{{.Bar}}</td></tr>
{{end}}</table>
{{end}}

{{if .Exemplars}}
<h2>Slow-job exemplars</h2>
<table>
<tr><th>stage</th><th>job</th><th class="num">ms</th><th class="num">nodes</th><th class="num">edges</th><th>group</th><th>detail</th><th></th></tr>
{{range .Exemplars}}<tr><td><code>{{.Stage}}</code></td><td><code>{{.ID}}</code></td><td class="num">{{printf "%.2f" .DurationMs}}</td><td class="num">{{.Nodes}}</td><td class="num">{{.Edges}}</td><td>{{.Group}}</td><td class="muted">{{.Detail}}</td><td>{{.Bar}}</td></tr>
{{end}}</table>
{{end}}

{{if .CacheRows}}
<h2>Engine cache</h2>
<table>
<tr><th>stage</th><th class="num">hits</th><th class="num">misses</th><th class="num">bytes read</th><th class="num">bytes written</th></tr>
{{range .CacheRows}}<tr><td><code>{{.Stage}}</code></td><td class="num">{{.Hits}}</td><td class="num">{{.Misses}}</td><td class="num">{{.BytesRead}}</td><td class="num">{{.BytesWritten}}</td></tr>
{{end}}</table>
{{end}}

{{if .Histograms}}
<h2>Histograms</h2>
<table>
<tr><th>metric</th><th class="num">count</th><th class="num">mean</th><th class="num">min</th><th class="num">p50</th><th class="num">p90</th><th class="num">p99</th><th class="num">max</th><th>shape</th></tr>
{{range .Histograms}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Count}}</td><td class="num">{{printf "%.3g" .Mean}}</td><td class="num">{{printf "%.3g" .Min}}</td><td class="num">{{printf "%.3g" .P50}}</td><td class="num">{{printf "%.3g" .P90}}</td><td class="num">{{printf "%.3g" .P99}}</td><td class="num">{{printf "%.3g" .Max}}</td><td>{{.Spark}}</td></tr>
{{end}}</table>
{{end}}

{{if .Windows}}
<h2>Windowed histograms</h2>
<table>
<tr><th>metric</th><th class="num">count</th><th class="num">mean</th><th class="num">min</th><th class="num">p50</th><th class="num">p90</th><th class="num">p99</th><th class="num">max</th><th>shape</th></tr>
{{range .Windows}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Count}}</td><td class="num">{{printf "%.3g" .Mean}}</td><td class="num">{{printf "%.3g" .Min}}</td><td class="num">{{printf "%.3g" .P50}}</td><td class="num">{{printf "%.3g" .P90}}</td><td class="num">{{printf "%.3g" .P99}}</td><td class="num">{{printf "%.3g" .Max}}</td><td>{{.Spark}}</td></tr>
{{end}}</table>
{{end}}

{{if .Rates}}
<h2>Rates</h2>
<table>
<tr><th>metric</th><th class="num">total</th><th class="num">window count</th><th class="num">window s</th><th class="num">per second</th></tr>
{{range .Rates}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Total}}</td><td class="num">{{.WindowCount}}</td><td class="num">{{printf "%g" .WindowSec}}</td><td class="num">{{printf "%.3g" .PerSec}}</td></tr>
{{end}}</table>
{{end}}

{{if .Counters}}
<h2>Counters</h2>
<table>
<tr><th>metric</th><th class="num">value</th></tr>
{{range .Counters}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Value}}</td></tr>
{{end}}</table>
{{end}}

{{if .Gauges}}
<h2>Gauges</h2>
<table>
<tr><th>metric</th><th class="num">value</th></tr>
{{range .Gauges}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Value}}</td></tr>
{{end}}</table>
{{end}}

<footer>generated {{.Generated}} by jobgraph runreport — self-contained document, no external assets</footer>
</body>
</html>
`))
