package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jobgraph/internal/ledger"
	"jobgraph/internal/obs"
)

func reportSnapshot() obs.Snapshot {
	return obs.Snapshot{
		Schema: obs.SnapshotSchema,
		Counters: map[string]int64{
			"ingest.rows":                                12345,
			"engine.cache.stage.dag.jobs.hits":           1,
			"engine.cache.stage.dag.jobs.bytes_read":     4096,
			"engine.cache.stage.wl.matrix.misses":        1,
			"engine.cache.stage.wl.matrix.bytes_written": 8192,
		},
		Gauges: map[string]int64{"runtime.goroutines": 8},
		Histograms: map[string]obs.HistogramSnapshot{
			"dag.depth": {Count: 100, Mean: 4.2, Min: 1, Max: 17, P50: 4, P90: 9, P99: 15},
		},
		Rates: map[string]obs.RateSnapshot{
			"trace.jobs.rows": {Total: 9000, WindowCount: 600, WindowSec: 60, PerSec: 10},
		},
		Windows: map[string]obs.WindowHistogramSnapshot{
			"engine.stage_ms": {WindowSec: 60, Count: 5, Total: 5, Mean: 20, Min: 5, Max: 80, P50: 12, P90: 70, P99: 80},
		},
		Spans: []obs.SpanSnapshot{{
			Name: "pipeline", Count: 1, TotalMs: 1200, MinMs: 1200, MaxMs: 1200, AllocBytes: 64 << 20,
			Children: []obs.SpanSnapshot{
				{Name: "dag.jobs", Count: 1, TotalMs: 800, MinMs: 800, MaxMs: 800, AllocBytes: 32 << 20},
				{Name: "wl.matrix", Count: 1, TotalMs: 300, MinMs: 300, MaxMs: 300, AllocBytes: 8 << 20},
			},
		}},
	}
}

func reportEntry() *ledger.Entry {
	return &ledger.Entry{
		Schema:     ledger.Schema,
		RunID:      "cafe0123beef4567",
		Command:    "characterize",
		StartedAt:  time.Date(2026, 2, 3, 10, 30, 0, 0, time.UTC),
		WallMs:     1234.5,
		GitSHA:     "abc123",
		ConfigHash: "deadbeef00000000",
		Host:       ledger.Host{Hostname: "ci-runner", OS: "linux", Arch: "amd64", NumCPU: 8, GoVersion: "go1.22"},
		Warnings:   []string{"trace: 3 rows quarantined in jobs.csv"},
	}
}

func renderedReport(t *testing.T, entry *ledger.Entry) string {
	t.Helper()
	var buf bytes.Buffer
	now := time.Date(2026, 2, 3, 11, 0, 0, 0, time.UTC)
	if err := WriteRunHTML(&buf, reportSnapshot(), entry, now); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunHTMLSelfContained(t *testing.T) {
	// The acceptance bar for the report: one file, zero external assets.
	// No http(s) URLs, no <script>, no <link>, no <img src=...>.
	html := renderedReport(t, reportEntry())
	for _, banned := range []string{"http://", "https://", "<script", "<link", "<img"} {
		if strings.Contains(html, banned) {
			t.Errorf("report references external asset machinery: found %q", banned)
		}
	}
	if !strings.HasPrefix(html, "<!DOCTYPE html>") {
		t.Errorf("not an HTML document: %.60s", html)
	}
}

func TestRunHTMLContent(t *testing.T) {
	html := renderedReport(t, reportEntry())
	for _, want := range []string{
		"jobgraph run cafe0123beef4567", // title from ledger entry
		"characterize",                  // command
		"ci-runner",                     // host
		"pipeline/dag.jobs",             // flattened span path
		"pipeline/wl.matrix",            //
		"trace: 3 rows quarantined",     // warning surfaced
		"runtime.goroutines",            // gauge
		"ingest.rows",                   // plain counter kept
		"trace.jobs.rows",               // rate row
		"engine.stage_ms",               // windowed histogram
		"dag.depth",                     // histogram
		"<svg",                          // sparklines/bars inline
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunHTMLCacheTable(t *testing.T) {
	html := renderedReport(t, reportEntry())
	if !strings.Contains(html, "Engine cache") {
		t.Fatal("cache section missing")
	}
	for _, want := range []string{"dag.jobs", "wl.matrix", "4096", "8192"} {
		if !strings.Contains(html, want) {
			t.Errorf("cache table missing %q", want)
		}
	}
	// Cache counters are folded into the cache table, not repeated in the
	// flat counter list.
	if strings.Contains(html, "engine.cache.stage.") {
		t.Error("raw cache counter names leaked into the counters table")
	}
}

func TestRunHTMLWithoutLedgerEntry(t *testing.T) {
	html := renderedReport(t, nil)
	if !strings.Contains(html, "No ledger entry") {
		t.Error("missing metrics-only notice")
	}
	if !strings.Contains(html, "jobgraph run report") {
		t.Error("missing generic title")
	}
	if strings.Contains(html, "Warnings") {
		t.Error("warnings section rendered with no entry")
	}
}

func TestRunHTMLEscapesUntrustedStrings(t *testing.T) {
	entry := reportEntry()
	entry.Command = `characterize <script>alert(1)</script>`
	entry.Warnings = []string{`bad "row" & <tag>`}
	html := renderedReport(t, entry)
	if strings.Contains(html, "<script>") {
		t.Error("command not HTML-escaped")
	}
	if strings.Contains(html, "<tag>") {
		t.Error("warning not HTML-escaped")
	}
}

// TestRunHTMLEscapesMetricAndStageNames pushes hostile strings through
// every template slot fed from the metrics snapshot — span (stage)
// names, counter names, exemplar ids/groups/details, and the flight
// dump path — and asserts none of them reach the document unescaped.
// Metric names normally come from our own code, but the report must
// stay safe when rendering a snapshot file it did not produce.
func TestRunHTMLEscapesMetricAndStageNames(t *testing.T) {
	hostile := `<img src=x onerror=alert(1)> "quoted" & <b>`
	snap := obs.Snapshot{
		Schema:   obs.SnapshotSchema,
		Counters: map[string]int64{`evil.<b>.counter & "q"`: 1},
		Spans: []obs.SpanSnapshot{{
			Name: "pipeline", Count: 1, TotalMs: 10, MinMs: 10, MaxMs: 10,
			Children: []obs.SpanSnapshot{
				{Name: hostile, Count: 1, TotalMs: 5, MinMs: 5, MaxMs: 5},
			},
		}},
		Exemplars: map[string][]obs.Exemplar{
			hostile: {{ID: `job<&>"1"`, DurationMs: 3, Nodes: 2, Edges: 1, Group: `<A&>`, Detail: hostile}},
		},
	}
	entry := reportEntry()
	entry.FlightDump = `/tmp/<run>&"dump".flight.json`

	var buf bytes.Buffer
	if err := WriteRunHTML(&buf, snap, entry, time.Date(2026, 2, 3, 11, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, banned := range []string{"<img", "<b>", `job<&>`, "<A&>", `<run>&"dump"`} {
		if strings.Contains(html, banned) {
			t.Errorf("unescaped interpolation: %q reached the document", banned)
		}
	}
	// The escaped forms must still be present — escaping, not dropping.
	for _, want := range []string{"&lt;img", "&lt;A&amp;&gt;", "flight.json"} {
		if !strings.Contains(html, want) {
			t.Errorf("escaped form %q missing from the document", want)
		}
	}
}

// TestRunHTMLExemplarTable checks the slow-job exemplar section: rows
// in store order (slowest first), duration bars, and the watchdog
// banner when the entry carries a flight dump.
func TestRunHTMLExemplarTable(t *testing.T) {
	snap := reportSnapshot()
	snap.Exemplars = map[string][]obs.Exemplar{
		"dag.jobs": {
			{ID: "j_slowest", DurationMs: 40, Nodes: 90, Edges: 120, Group: "A", Detail: "depth=7 width=12"},
			{ID: "j_second", DurationMs: 15, Nodes: 30, Edges: 29, Group: "C"},
		},
	}
	entry := reportEntry()
	entry.FlightDump = "/tmp/run.flight.json"

	var buf bytes.Buffer
	if err := WriteRunHTML(&buf, snap, entry, time.Date(2026, 2, 3, 11, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"Slow-job exemplars", "j_slowest", "j_second", "depth=7 width=12",
		"stall watchdog tripped", "/tmp/run.flight.json",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Index(html, "j_slowest") > strings.Index(html, "j_second") {
		t.Error("exemplars not rendered slowest-first")
	}
	// No exemplars, no section.
	plain := renderedReport(t, reportEntry())
	if strings.Contains(plain, "Slow-job exemplars") {
		t.Error("exemplar section rendered without exemplars")
	}
}
