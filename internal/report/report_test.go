package report

import (
	"bytes"
	"strings"
	"testing"

	"jobgraph/internal/linalg"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Job sizes", "size", "count", "frac")
	tbl.AddRow("2", "120", "0.45")
	tbl.AddRowf(3, 70, 0.261)
	out := tbl.String()
	if !strings.Contains(out, "Job sizes") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "size") || !strings.Contains(out, "0.261") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and first data row share column start.
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1")           // missing cell
	tbl.AddRow("1", "2", "3") // extra cell dropped
	out := tbl.String()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell kept:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("T", "x", "y")
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	if !strings.Contains(md, "| x | y |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "**T**") {
		t.Fatalf("missing title:\n%s", md)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("T", "x", "y")
	tbl.AddRow("1", "a,b") // comma needing quoting
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "x,y") || !strings.Contains(got, `"a,b"`) {
		t.Fatalf("csv:\n%s", got)
	}
}

func TestHeatmap(t *testing.T) {
	m, _ := linalg.FromRows([][]float64{{0, 1}, {0.5, 2}})
	out := Heatmap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("heatmap shape:\n%q", out)
	}
	if lines[0][0] != ' ' {
		t.Fatalf("zero cell should be blank, got %q", lines[0][0])
	}
	if lines[0][1] != '@' || lines[1][1] != '@' {
		t.Fatalf("max and clamped cells should be '@': %q", out)
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	m, _ := linalg.FromRows([][]float64{{1, 0.5}})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "1.000000,0.500000" {
		t.Fatalf("csv = %q", got)
	}
}

func TestBar(t *testing.T) {
	out := Bar("chain", 58, 100, 10)
	if !strings.Contains(out, "chain") || !strings.Contains(out, "#####") {
		t.Fatalf("bar: %q", out)
	}
	if strings.Count(out, "#") != 5 {
		t.Fatalf("bar length: %q", out)
	}
	if strings.Count(Bar("x", 0, 100, 10), "#") != 0 {
		t.Fatal("zero bar should be empty")
	}
	if strings.Count(Bar("x", 1, 1000, 10), "#") != 1 {
		t.Fatal("tiny non-zero bar should show one mark")
	}
	if strings.Count(Bar("x", 5, 0, 10), "#") != 0 {
		t.Fatal("zero max should render empty bar")
	}
}
