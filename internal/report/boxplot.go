package report

import (
	"fmt"
	"math"
	"strings"

	"jobgraph/internal/stats"
)

// BoxPlot renders one horizontal box-and-whisker row scaled to the
// interval [lo, hi]:
//
//	label |   ·  |-----[===+===]--|      · |
//
// '[' and ']' mark the quartiles, '+' the median, '-' the whiskers and
// '·' any outliers. width is the number of plot columns (default 60).
func BoxPlot(label string, b stats.BoxStats, lo, hi float64, width int) string {
	if width < 10 {
		width = 60
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	col := func(v float64) int {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		c := int(math.Round(f * float64(width-1)))
		return c
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	// Whisker-to-box runs.
	for i := col(b.LowerWhisker); i <= col(b.Q1); i++ {
		row[i] = '-'
	}
	for i := col(b.Q3); i <= col(b.UpperWhisker); i++ {
		row[i] = '-'
	}
	// Box body.
	for i := col(b.Q1); i <= col(b.Q3); i++ {
		row[i] = '='
	}
	row[col(b.Q1)] = '['
	row[col(b.Q3)] = ']'
	row[col(b.Median)] = '+'
	for _, o := range b.Outliers {
		row[col(o)] = byte(0)
		row[col(o)] = '.'
	}
	return fmt.Sprintf("%-8s |%s|", label, string(row))
}

// BoxPlotGroup renders a labeled set of distributions on one shared
// scale, with an axis line giving the bounds — the textual equivalent
// of one panel of the paper's Figure 9 box plots.
func BoxPlotGroup(title string, labels []string, series [][]float64, width int) (string, error) {
	if len(labels) != len(series) {
		return "", fmt.Errorf("report: %d labels for %d series", len(labels), len(series))
	}
	if len(series) == 0 {
		return "", fmt.Errorf("report: no series")
	}
	lo, hi := math.MaxFloat64, -math.MaxFloat64
	boxes := make([]stats.BoxStats, len(series))
	for i, xs := range series {
		b, err := stats.Box(xs)
		if err != nil {
			return "", fmt.Errorf("report: series %q: %w", labels[i], err)
		}
		boxes[i] = b
		for _, v := range xs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	var out strings.Builder
	if title != "" {
		out.WriteString(title)
		out.WriteByte('\n')
	}
	for i, b := range boxes {
		out.WriteString(BoxPlot(labels[i], b, lo, hi, width))
		out.WriteByte('\n')
	}
	if width < 10 {
		width = 60
	}
	fmt.Fprintf(&out, "%-8s  %-*.4g%*.4g\n", "scale:", width/2, lo, width-width/2, hi)
	return out.String(), nil
}
