package report

import (
	"strings"
	"testing"

	"jobgraph/internal/stats"
)

func TestBoxPlotMarkers(t *testing.T) {
	b, err := stats.Box([]float64{1, 2, 2, 3, 3, 3, 4, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	row := BoxPlot("grp", b, 0, 6, 60)
	for _, marker := range []string{"[", "]", "+", "grp"} {
		if !strings.Contains(row, marker) {
			t.Fatalf("missing %q in %q", marker, row)
		}
	}
	// Median column sits between the quartile columns.
	if strings.Index(row, "[") >= strings.Index(row, "+") ||
		strings.Index(row, "+") >= strings.Index(row, "]") {
		t.Fatalf("marker order wrong: %q", row)
	}
}

func TestBoxPlotOutliers(t *testing.T) {
	b, err := stats.Box([]float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100})
	if err != nil {
		t.Fatal(err)
	}
	row := BoxPlot("o", b, 0, 100, 60)
	if !strings.Contains(row, ".") {
		t.Fatalf("outlier marker missing: %q", row)
	}
}

func TestBoxPlotDegenerateScale(t *testing.T) {
	b, err := stats.Box([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	// lo == hi must not divide by zero.
	row := BoxPlot("c", b, 5, 5, 40)
	if !strings.Contains(row, "+") {
		t.Fatalf("constant distribution: %q", row)
	}
}

func TestBoxPlotGroupSharedScale(t *testing.T) {
	out, err := BoxPlotGroup("sizes by group",
		[]string{"A", "B"},
		[][]float64{{2, 2, 2, 3}, {10, 12, 14, 30}},
		60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + scale
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Group A (small values) must sit left of group B's box.
	aPlus := strings.Index(lines[1], "+")
	bPlus := strings.Index(lines[2], "+")
	if aPlus >= bPlus {
		t.Fatalf("scaling wrong:\n%s", out)
	}
	if !strings.Contains(lines[3], "2") || !strings.Contains(lines[3], "30") {
		t.Fatalf("scale line: %q", lines[3])
	}
}

func TestBoxPlotGroupValidation(t *testing.T) {
	if _, err := BoxPlotGroup("t", []string{"a"}, nil, 40); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, err := BoxPlotGroup("t", nil, nil, 40); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := BoxPlotGroup("t", []string{"a"}, [][]float64{{}}, 40); err == nil {
		t.Fatal("empty series data accepted")
	}
}
