package resource

import (
	"testing"

	"jobgraph/internal/trace"
	"jobgraph/internal/tracegen"
)

func TestSplitByDependencyManual(t *testing.T) {
	jobs := []trace.Job{
		{Name: "j_dag", Tasks: []trace.TaskRecord{
			{TaskName: "M1", JobName: "j_dag", InstanceNum: 2, StartTime: 0, EndTime: 10, PlanCPU: 100, PlanMem: 1},
			{TaskName: "R2_1", JobName: "j_dag", InstanceNum: 1, StartTime: 10, EndTime: 20, PlanCPU: 50, PlanMem: 0.5},
		}},
		{Name: "j_flat", Tasks: []trace.TaskRecord{
			{TaskName: "task_xyz", JobName: "j_flat", InstanceNum: 1, StartTime: 0, EndTime: 10, PlanCPU: 100, PlanMem: 1},
		}},
	}
	s, err := SplitByDependency(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.DAG.Jobs != 1 || s.Flat.Jobs != 1 {
		t.Fatalf("split jobs: %+v", s)
	}
	// DAG CPU-seconds: 100*10*2 + 50*10*1 = 2500; flat: 100*10 = 1000.
	if s.DAG.CPUSeconds != 2500 || s.Flat.CPUSeconds != 1000 {
		t.Fatalf("cpu seconds: dag=%g flat=%g", s.DAG.CPUSeconds, s.Flat.CPUSeconds)
	}
	if got := s.DAGCPUShare(); got != 2500.0/3500.0 {
		t.Fatalf("dag cpu share = %g", got)
	}
	if got := s.DAGJobShare(); got != 0.5 {
		t.Fatalf("dag job share = %g", got)
	}
	if s.DAG.Instances != 3 || s.DAG.Tasks != 2 {
		t.Fatalf("dag usage: %+v", s.DAG)
	}
	if s.DAGMemShare() <= 0.5 {
		t.Fatalf("mem share = %g", s.DAGMemShare())
	}
}

func TestSplitEmpty(t *testing.T) {
	s, err := SplitByDependency(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.DAGJobShare() != 0 || s.DAGCPUShare() != 0 || s.DAGMemShare() != 0 {
		t.Fatal("empty split should report zero shares")
	}
}

func TestPaperSharesOnGeneratedTrace(t *testing.T) {
	// §II-B: ~50% of jobs have dependencies and consume 70–80% of
	// batch resources. The generator is calibrated to reproduce both.
	jobs, err := tracegen.GenerateJobs(tracegen.DefaultConfig(8000, 1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SplitByDependency(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if share := s.DAGJobShare(); share < 0.45 || share > 0.55 {
		t.Fatalf("DAG job share = %.3f, want ~0.50", share)
	}
	if share := s.DAGCPUShare(); share < 0.70 || share > 0.85 {
		t.Fatalf("DAG CPU share = %.3f, want 0.70-0.80", share)
	}
}

func TestHourlyProfileDiurnal(t *testing.T) {
	recs, err := tracegen.Generate(tracegen.DefaultConfig(20000, 2))
	if err != nil {
		t.Fatal(err)
	}
	prof := HourlyProfile(recs)
	ratio := PeakTroughRatio(prof)
	if ratio < 1.5 {
		t.Fatalf("peak/trough = %.2f, want a visible diurnal pattern", ratio)
	}
}

func TestHourlyProfileSkipsUnfinished(t *testing.T) {
	prof := HourlyProfile([]trace.TaskRecord{
		{TaskName: "M1", JobName: "j", StartTime: 3600, EndTime: 0, PlanCPU: 100},
	})
	for _, v := range prof {
		if v != 0 {
			t.Fatal("unfinished task contributed load")
		}
	}
}

func TestPeakTroughRatioEdgeCases(t *testing.T) {
	var zero [24]float64
	if PeakTroughRatio(zero) != 0 {
		t.Fatal("all-zero profile")
	}
	var spike [24]float64
	spike[3] = 10
	if PeakTroughRatio(spike) != 10 {
		t.Fatal("zero-trough profile should return peak")
	}
	var flat [24]float64
	for i := range flat {
		flat[i] = 5
	}
	if PeakTroughRatio(flat) != 1 {
		t.Fatal("flat profile ratio should be 1")
	}
}

func TestMachineConcentration(t *testing.T) {
	inst := []trace.InstanceRecord{
		{MachineID: "m_1"}, {MachineID: "m_1"}, {MachineID: "m_1"},
		{MachineID: "m_2"}, {MachineID: "m_3"},
	}
	if got := MachineConcentration(inst, 1); got != 0.6 {
		t.Fatalf("top-1 = %g, want 0.6", got)
	}
	if got := MachineConcentration(inst, 10); got != 1 {
		t.Fatalf("top-10 = %g, want 1", got)
	}
	if MachineConcentration(nil, 1) != 0 || MachineConcentration(inst, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestLoadImbalance(t *testing.T) {
	balanced := []trace.InstanceRecord{
		{MachineID: "m_1"}, {MachineID: "m_2"}, {MachineID: "m_3"},
	}
	g, err := LoadImbalance(balanced)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Fatalf("balanced Gini = %g, want 0", g)
	}
	skewed := []trace.InstanceRecord{
		{MachineID: "m_1"}, {MachineID: "m_1"}, {MachineID: "m_1"},
		{MachineID: "m_1"}, {MachineID: "m_2"},
	}
	gs, err := LoadImbalance(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if gs <= g {
		t.Fatalf("skewed Gini %g not above balanced %g", gs, g)
	}
	if _, err := LoadImbalance(nil); err == nil {
		t.Fatal("empty instances accepted")
	}
}
