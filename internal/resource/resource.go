// Package resource quantifies workload resource consumption from trace
// records, reproducing the paper's §II-B observations: batch jobs with
// dependencies are ~50% of jobs but consume 70–80% of batch resources,
// and submissions follow a diurnal pattern.
//
// Consumption is measured in resource-time: CPU-seconds (plan_cpu ×
// duration × instances) and memory-seconds, computable from batch_task
// alone; the instance-level variant uses measured averages from
// batch_instance when available.
package resource

import (
	"fmt"
	"sort"

	"jobgraph/internal/stats"
	"jobgraph/internal/taskname"
	"jobgraph/internal/trace"
)

// Usage accumulates resource-time for a class of jobs.
type Usage struct {
	Jobs       int
	Tasks      int
	Instances  int
	CPUSeconds float64
	MemSeconds float64
}

func (u *Usage) addTask(t trace.TaskRecord) {
	inst := t.InstanceNum
	if inst < 1 {
		inst = 1
	}
	dur := t.Duration()
	u.Tasks++
	u.Instances += inst
	u.CPUSeconds += t.PlanCPU * dur * float64(inst)
	u.MemSeconds += t.PlanMem * dur * float64(inst)
}

// Split partitions usage between dependency-structured (DAG) jobs and
// flat jobs.
type Split struct {
	DAG  Usage
	Flat Usage
}

// DAGJobShare returns the fraction of jobs that are DAG-structured.
func (s Split) DAGJobShare() float64 {
	total := s.DAG.Jobs + s.Flat.Jobs
	if total == 0 {
		return 0
	}
	return float64(s.DAG.Jobs) / float64(total)
}

// DAGCPUShare returns the fraction of CPU-time consumed by DAG jobs —
// the paper's 70–80% figure.
func (s Split) DAGCPUShare() float64 {
	total := s.DAG.CPUSeconds + s.Flat.CPUSeconds
	if total == 0 {
		return 0
	}
	return s.DAG.CPUSeconds / total
}

// DAGMemShare returns the fraction of memory-time consumed by DAG jobs.
func (s Split) DAGMemShare() float64 {
	total := s.DAG.MemSeconds + s.Flat.MemSeconds
	if total == 0 {
		return 0
	}
	return s.DAG.MemSeconds / total
}

// SplitByDependency classifies each job by whether any of its task
// names decode as DAG-structured, and accumulates per-class usage.
func SplitByDependency(jobs []trace.Job) (Split, error) {
	var s Split
	for _, j := range jobs {
		isDAG := false
		for _, t := range j.Tasks {
			p, err := taskname.Parse(t.TaskName)
			if err != nil {
				return s, fmt.Errorf("resource: job %s: %w", j.Name, err)
			}
			if !p.Independent {
				isDAG = true
				break
			}
		}
		u := &s.Flat
		if isDAG {
			u = &s.DAG
		}
		u.Jobs++
		for _, t := range j.Tasks {
			u.addTask(t)
		}
	}
	return s, nil
}

// HourlyProfile aggregates CPU-seconds by submission hour-of-day,
// exposing the diurnal pattern. Records without a valid interval are
// skipped.
func HourlyProfile(records []trace.TaskRecord) [24]float64 {
	var prof [24]float64
	for _, t := range records {
		dur := t.Duration()
		if dur <= 0 {
			continue
		}
		hour := int(t.StartTime%86400) / 3600
		inst := t.InstanceNum
		if inst < 1 {
			inst = 1
		}
		prof[hour] += t.PlanCPU * dur * float64(inst)
	}
	return prof
}

// PeakTroughRatio summarizes a diurnal profile: max hourly load over
// min hourly load (∞-safe: returns 0 when the profile is empty, and
// the max when the trough is zero but the peak is not).
func PeakTroughRatio(prof [24]float64) float64 {
	peak, trough := prof[0], prof[0]
	for _, v := range prof[1:] {
		if v > peak {
			peak = v
		}
		if v < trough {
			trough = v
		}
	}
	if peak == 0 {
		return 0
	}
	if trough == 0 {
		return peak
	}
	return peak / trough
}

// LoadImbalance returns the Gini coefficient of per-machine instance
// counts — 0 when placement is perfectly balanced, approaching 1 when a
// few machines absorb most instances (cf. the "Imbalance in the cloud"
// line of analysis the paper cites).
func LoadImbalance(instances []trace.InstanceRecord) (float64, error) {
	if len(instances) == 0 {
		return 0, fmt.Errorf("resource: no instances")
	}
	counts := make(map[string]float64)
	for _, r := range instances {
		counts[r.MachineID]++
	}
	loads := make([]float64, 0, len(counts))
	for _, c := range counts {
		loads = append(loads, c)
	}
	return stats.Gini(loads)
}

// MachineConcentration reports, from instance records, the fraction of
// instances placed on the busiest k machines — a coarse placement-skew
// metric for the co-location analysis.
func MachineConcentration(instances []trace.InstanceRecord, k int) float64 {
	if len(instances) == 0 || k <= 0 {
		return 0
	}
	counts := make(map[string]int)
	for _, r := range instances {
		counts[r.MachineID]++
	}
	top := make([]int, 0, len(counts))
	for _, c := range counts {
		top = append(top, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(top)))
	if k > len(top) {
		k = len(top)
	}
	sum := 0
	for _, c := range top[:k] {
		sum += c
	}
	return float64(sum) / float64(len(instances))
}
