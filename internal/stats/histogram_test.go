package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1, 2, 3, 9, 10})
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	want := []int{2, 2, 0, 0, 2} // 10 falls into the closed last bin
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
}

func TestHistogramDrop(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.Add(-0.5)
	h.Add(1.5)
	h.Add(0.5)
	if h.Total() != 1 || h.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 1, 2", h.Total(), h.Dropped())
	}
}

func TestHistogramEdgeObservationOnBoundary(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	h.Add(2) // exactly on the boundary between bins 1 and 2 → bin 2
	if h.Counts[2] != 1 {
		t.Fatalf("boundary went to wrong bin: %v", h.Counts)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 0, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogramEdges([]float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewHistogramEdges([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges accepted")
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h, _ := NewHistogram(0, 100, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	var sum float64
	for _, f := range h.Fractions() {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("fractions sum = %g", sum)
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	// total + dropped == number of Add calls, regardless of input.
	f := func(xs []float64) bool {
		h, _ := NewHistogram(-10, 10, 7)
		n := 0
		for _, x := range xs {
			h.Add(x)
			n++
		}
		return h.Total()+h.Dropped() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.5, 0.6, 1.5})
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("fullest bin not at full width:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("expected 2 rows, got %d:\n%s", lines, out)
	}
}

func TestIntCounter(t *testing.T) {
	c := NewIntCounter()
	c.Add(2)
	c.Add(2)
	c.Add(31)
	c.AddN(5, 3)
	c.AddN(5, 0) // no-op
	c.AddN(5, -1)
	if c.Total() != 6 {
		t.Fatalf("total = %d, want 6", c.Total())
	}
	if c.Distinct() != 3 {
		t.Fatalf("distinct = %d, want 3", c.Distinct())
	}
	if got := c.Values(); len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 31 {
		t.Fatalf("values = %v", got)
	}
	if !almostEqual(c.Fraction(2), 2.0/6.0, 1e-12) {
		t.Fatalf("fraction = %g", c.Fraction(2))
	}
	if c.Count(99) != 0 {
		t.Fatal("unseen value should count 0")
	}
}

func TestIntCounterEmptyFraction(t *testing.T) {
	c := NewIntCounter()
	if c.Fraction(1) != 0 {
		t.Fatal("empty counter fraction should be 0")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFInverseRoundTripProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if x == x && x > -1e12 && x < 1e12 { // finite, non-NaN
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		pp := p - float64(int(p))
		if pp < 0 {
			pp = -pp
		}
		x := e.Inverse(pp)
		// CDF at the inverse must reach at least pp.
		return e.At(x) >= pp-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}
