package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson linear correlation coefficient between xs
// and ys. It returns 0 when either input is constant (correlation is then
// undefined; 0 is the conventional "no linear association" answer for the
// characterization tables).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient between xs
// and ys, used in the paper-style claim "parallelism is positively
// correlated with job size" (a monotone, not necessarily linear,
// relationship). Ties receive average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return Pearson(rx, ry)
}

// ranks assigns 1-based ranks with ties averaged.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
