package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %g, want 0", got)
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1e8 copies of 0.1 would drift badly under naive summation in
	// float32; in float64 Kahan keeps us within a tight bound.
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got, want := Sum(xs), 10000.0; !almostEqual(got, want, 1e-9) {
		t.Fatalf("Sum = %.15f, want %.1f", got, want)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestVariance(t *testing.T) {
	got, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n-1 denominator: 32/7.
	if want := 32.0 / 7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, want)
	}
}

func TestVarianceSingleton(t *testing.T) {
	got, err := Variance([]float64{42})
	if err != nil || got != 0 {
		t.Fatalf("Variance([42]) = %g, %v; want 0, nil", got, err)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sd, err := StdDev(clean)
		return err == nil && sd >= 0 && !math.IsNaN(sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Fatalf("Min = %g, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 7 {
		t.Fatalf("Max = %g, %v", hi, err)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileRejectsBadQ(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, q); err == nil {
			t.Errorf("Quantile(q=%g) accepted, want error", q)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := Quantile(xs, qa)
		vb, err2 := Quantile(xs, qb)
		return err1 == nil && err2 == nil && va <= vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Describe = %+v", s)
	}
	if !almostEqual(s.StdDev, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("StdDev = %g", s.StdDev)
	}
}

func TestDescribeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Describe(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxWhiskersWithinData(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	b, err := Box(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", b.Outliers)
	}
	if b.LowerWhisker != 1 || b.UpperWhisker != 5 {
		t.Fatalf("whiskers = [%g, %g], want [1, 5]", b.LowerWhisker, b.UpperWhisker)
	}
	if b.Q1 > b.Median || b.Median > b.Q3 {
		t.Fatalf("quartiles out of order: %+v", b)
	}
}

func TestBoxConstantInput(t *testing.T) {
	b, err := Box([]float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if b.LowerWhisker != 7 || b.UpperWhisker != 7 || len(b.Outliers) != 0 {
		t.Fatalf("Box constant = %+v", b)
	}
}

func TestBoxEmpty(t *testing.T) {
	if _, err := Box(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}
