package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var a Accumulator
	a.AddAll(xs)
	if a.N() != 8 {
		t.Fatalf("n = %d", a.N())
	}
	mean, _ := Mean(xs)
	if !almostEqual(a.Mean(), mean, 1e-12) {
		t.Fatalf("mean %g vs %g", a.Mean(), mean)
	}
	v, _ := Variance(xs)
	if !almostEqual(a.Variance(), v, 1e-12) {
		t.Fatalf("variance %g vs %g", a.Variance(), v)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %g/%g", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingleton(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator not zeroed")
	}
	a.Add(7)
	if a.Mean() != 7 || a.Variance() != 0 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("singleton: %+v", a)
	}
}

func TestAccumulatorMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var a Accumulator
		a.AddAll(xs)
		mean, _ := Mean(xs)
		v, _ := Variance(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		scale := 1 + math.Abs(mean)
		return almostEqual(a.Mean(), mean, 1e-9*scale) &&
			almostEqual(a.Variance(), v, 1e-6*(1+v)) &&
			a.Min() == lo && a.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEqualsSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		cut := 0
		if n > 0 {
			cut = rng.Intn(n + 1)
		}
		var whole, left, right Accumulator
		whole.AddAll(xs)
		left.AddAll(xs[:cut])
		right.AddAll(xs[cut:])
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEqual(whole.Mean(), left.Mean(), 1e-9*(1+math.Abs(whole.Mean()))) &&
			almostEqual(whole.Variance(), left.Variance(), 1e-6*(1+whole.Variance())) &&
			whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestP2QuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Fatalf("p=%v accepted", p)
		}
	}
}

func TestP2QuantileSmallStreamsExact(t *testing.T) {
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Fatalf("empty estimator value %g", e.Value())
	}
	xs := []float64{9, 1, 5, 3}
	for _, x := range xs {
		e.Add(x)
	}
	want, _ := Quantile(xs, 0.5)
	if !almostEqual(e.Value(), want, 1e-12) {
		t.Fatalf("median of %v: got %g want %g", xs, e.Value(), want)
	}
}

func TestP2QuantileBelowFiveIsExactOrderStatistic(t *testing.T) {
	// With fewer than five observations P² has no markers yet; Value
	// must fall back to the exact type-7 order statistic for every p,
	// not just the median.
	vals := []float64{42, -3, 17, 8}
	for n := 1; n <= len(vals); n++ {
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
			e, err := NewP2Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range vals[:n] {
				e.Add(x)
			}
			if e.N() != n {
				t.Fatalf("N = %d, want %d", e.N(), n)
			}
			want, _ := Quantile(vals[:n], p)
			if !almostEqual(e.Value(), want, 1e-12) {
				t.Errorf("n=%d p=%g: got %g want %g", n, p, e.Value(), want)
			}
		}
	}
}

func TestP2QuantileBelowFiveOrderInvariant(t *testing.T) {
	// The exact fallback sorts internally, so insertion order must not
	// matter below the marker threshold.
	perms := [][]float64{
		{1, 2, 3, 4},
		{4, 3, 2, 1},
		{2, 4, 1, 3},
	}
	var want float64
	for i, xs := range perms {
		e, err := NewP2Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			e.Add(x)
		}
		if i == 0 {
			want = e.Value()
			continue
		}
		if e.Value() != want {
			t.Errorf("perm %v: got %g want %g", xs, e.Value(), want)
		}
	}
}

func TestP2QuantileFifthObservationSeedsMarkers(t *testing.T) {
	// At exactly five observations the markers are the five sorted
	// values and the median marker is the exact sample median.
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{50, 10, 40, 20, 30} {
		e.Add(x)
	}
	if e.Value() != 30 {
		t.Fatalf("median of 5 = %g, want 30", e.Value())
	}
	// Duplicate-heavy and single-value streams stay finite and exact.
	d, _ := NewP2Quantile(0.9)
	for i := 0; i < 4; i++ {
		d.Add(7)
	}
	if d.Value() != 7 {
		t.Fatalf("constant stream quantile = %g, want 7", d.Value())
	}
}

func TestP2QuantileTracksSortedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		for _, gen := range []struct {
			name string
			draw func() float64
		}{
			{"uniform", rng.Float64},
			{"normal", rng.NormFloat64},
			{"exponential", rng.ExpFloat64},
		} {
			e, err := NewP2Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = gen.draw()
				e.Add(xs[i])
			}
			exact, _ := Quantile(xs, p)
			// Tolerance relative to the distribution's spread: P² is an
			// estimate, but on 20k stationary samples it sits close.
			lo, _ := Min(xs)
			hi, _ := Max(xs)
			tol := 0.05 * (hi - lo)
			if math.Abs(e.Value()-exact) > tol {
				t.Fatalf("%s p=%g: estimate %g vs exact %g (tol %g)",
					gen.name, p, e.Value(), exact, tol)
			}
		}
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	a.Add(5)
	a.Merge(&b) // empty right
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge empty right: %+v", a)
	}
	var c Accumulator
	c.Merge(&a) // empty left
	if c.N() != 1 || c.Mean() != 5 || c.Min() != 5 {
		t.Fatalf("merge empty left: %+v", c)
	}
}
