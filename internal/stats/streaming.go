package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes count, mean, variance, min and max of a stream
// in O(1) memory using Welford's algorithm — the tool for full-trace
// aggregations (millions of task rows) where buffering a slice for
// Describe would be wasteful.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// P2Quantile estimates a single quantile of a stream in O(1) memory
// with the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track the minimum, the target quantile, the two mid-quantiles and
// the maximum, and are nudged toward their desired positions with a
// piecewise-parabolic height update as observations arrive. The first
// five observations are exact; afterwards the estimate converges to
// the true quantile for stationary streams. This is the quantile
// companion to Accumulator for full-trace aggregations where sorting
// a buffered slice (Quantile) would be wasteful.
type P2Quantile struct {
	p   float64
	n   int
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("stats: p2 quantile p=%v outside (0,1)", p)
	}
	e := &P2Quantile{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// Add folds one observation into the estimator.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
				e.des[i] = 1 + 4*e.inc[i]
			}
		}
		return
	}
	e.n++

	// Locate the cell k with q[k] <= x < q[k+1], widening the extreme
	// markers when x falls outside the current span.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.des[i] += e.inc[i]
	}

	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height update when the parabola overshoots a
// neighboring marker.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate. For fewer than five
// observations it falls back to the exact order statistic.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(s)
		return quantileSorted(s, e.p)
	}
	return e.q[2]
}

// Merge folds another accumulator into a (parallel aggregation:
// accumulate per shard, then merge). Chan's parallel variance formula
// keeps the result exact.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	n := float64(a.n + b.n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.mean += delta * float64(b.n) / n
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}
