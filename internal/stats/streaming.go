package stats

import "math"

// Accumulator computes count, mean, variance, min and max of a stream
// in O(1) memory using Welford's algorithm — the tool for full-trace
// aggregations (millions of task rows) where buffering a slice for
// Describe would be wasteful.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into a (parallel aggregation:
// accumulate per shard, then merge). Chan's parallel variance formula
// keeps the result exact.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	n := float64(a.n + b.n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.mean += delta * float64(b.n) / n
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}
