package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("r = %g, want 1", r)
	}
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, _ = Pearson(xs, ys)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant input: r=%g err=%v, want 0, nil", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		var xs, ys []float64
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.IsInf(p[0], 0) || math.IsInf(p[1], 0) ||
				math.Abs(p[0]) > 1e8 || math.Abs(p[1]) > 1e8 {
				continue
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		if len(xs) == 0 {
			return true
		}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone but nonlinear relationship: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rs, 1, 1e-12) {
		t.Fatalf("spearman = %g, want 1", rs)
	}
	rp, _ := Pearson(xs, ys)
	if rp >= 1-1e-9 {
		t.Fatalf("pearson = %g, expected < 1 for cubic", rp)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties averaged, ranks of {1,1,2} are {1.5,1.5,3}.
	r := ranks([]float64{1, 1, 2})
	if r[0] != 1.5 || r[1] != 1.5 || r[2] != 3 {
		t.Fatalf("ranks = %v", r)
	}
}

func TestSpearmanSymmetryProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		var xs, ys []float64
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				continue
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		if len(xs) == 0 {
			return true
		}
		a, err1 := Spearman(xs, ys)
		b, err2 := Spearman(ys, xs)
		return err1 == nil && err2 == nil && almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
