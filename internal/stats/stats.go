// Package stats provides the descriptive statistics used throughout the
// workload characterization pipeline: summaries, quantiles, histograms,
// empirical CDFs, box-plot statistics and rank/linear correlation.
//
// The package is deliberately dependency-free and operates on float64
// slices. All functions treat NaN inputs as programmer error and never
// produce NaN for non-empty, finite input.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// ErrLengthMismatch is returned by bivariate functions when the two input
// slices differ in length.
var ErrLengthMismatch = errors.New("stats: input length mismatch")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	// Kahan summation: the pipeline aggregates millions of per-task
	// durations, where naive summation loses precision.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// A single observation has variance 0.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the R and
// NumPy default). xs does not need to be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Summary bundles the descriptive statistics reported for each
// distribution in the paper's figures (job size, critical path,
// parallelism per cluster group).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64
	Max    float64
}

// Describe computes a Summary of xs.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mean, _ := Mean(s)
	sd, _ := StdDev(s)
	return Summary{
		N:      len(s),
		Mean:   mean,
		StdDev: sd,
		Min:    s[0],
		P25:    quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		P75:    quantileSorted(s, 0.75),
		P90:    quantileSorted(s, 0.90),
		P99:    quantileSorted(s, 0.99),
		Max:    s[len(s)-1],
	}, nil
}

// BoxStats holds the five-number summary drawn as one box in the paper's
// Figure 9 box plots, plus the observations flagged as outliers under the
// 1.5×IQR rule.
type BoxStats struct {
	LowerWhisker float64
	Q1           float64
	Median       float64
	Q3           float64
	UpperWhisker float64
	Outliers     []float64
}

// Box computes box-plot statistics for xs using Tukey's 1.5×IQR whiskers:
// whiskers extend to the most extreme observation within 1.5×IQR of the
// nearer quartile; observations beyond are reported as outliers.
func Box(xs []float64) (BoxStats, error) {
	if len(xs) == 0 {
		return BoxStats{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := BoxStats{
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowerWhisker = b.Q3 // will be lowered below
	b.UpperWhisker = b.Q1
	for _, x := range s {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.LowerWhisker {
			b.LowerWhisker = x
		}
		if x > b.UpperWhisker {
			b.UpperWhisker = x
		}
	}
	// All points can be outliers only when IQR is 0 and values differ;
	// degenerate but keep whiskers at the quartiles in that case.
	if len(b.Outliers) == len(s) {
		b.LowerWhisker, b.UpperWhisker = b.Q1, b.Q3
	}
	return b, nil
}
