package stats

import (
	"math"
	"sort"
)

// Gini returns the Gini coefficient of the non-negative values xs: 0
// for perfect equality, approaching 1 as mass concentrates on a single
// element. Used to characterize load imbalance across machines and
// resource-demand skew across job groups (cf. the "Imbalance in the
// cloud" analyses the paper cites). Negative inputs are an error.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if s[0] < 0 {
		return 0, ErrNegative
	}
	var cum, weighted float64
	for i, v := range s {
		cum += v
		weighted += float64(i+1) * v
	}
	if cum == 0 {
		return 0, nil // all zeros: perfectly equal
	}
	n := float64(len(s))
	return (2*weighted - (n+1)*cum) / (n * cum), nil
}

// ErrNegative is returned when an input that must be non-negative is not.
var ErrNegative = negErr{}

type negErr struct{}

func (negErr) Error() string { return "stats: negative value" }

// Entropy returns the Shannon entropy (nats) of a discrete distribution
// given as non-negative weights; weights are normalized internally.
// Empty input is ErrEmpty; an all-zero weight vector has entropy 0.
func Entropy(weights []float64) (float64, error) {
	if len(weights) == 0 {
		return 0, ErrEmpty
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return 0, ErrNegative
		}
		total += w
	}
	if total == 0 {
		return 0, nil
	}
	var h float64
	for _, w := range weights {
		if w == 0 {
			continue
		}
		p := w / total
		h -= p * math.Log(p)
	}
	return h, nil
}

// NormalizedEntropy returns Entropy divided by log(n) so the result
// lies in [0, 1]; n == 1 returns 1 by the convention that a single
// outcome is maximally concentrated yet trivially uniform — callers
// comparing distributions should use n > 1.
func NormalizedEntropy(weights []float64) (float64, error) {
	h, err := Entropy(weights)
	if err != nil {
		return 0, err
	}
	if len(weights) == 1 {
		return 1, nil
	}
	return h / math.Log(float64(len(weights))), nil
}
