package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGiniEquality(t *testing.T) {
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Fatalf("equal values Gini = %g, want 0", g)
	}
}

func TestGiniConcentration(t *testing.T) {
	// One element owns everything among n: Gini = (n-1)/n.
	g, err := Gini([]float64{0, 0, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 0.75, 1e-12) {
		t.Fatalf("concentrated Gini = %g, want 0.75", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1,3}: mean 2, mean abs diff = (0+2+2+0)/4 = 1, G = 1/(2·2) = 0.25.
	g, err := Gini([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 0.25, 1e-12) {
		t.Fatalf("Gini = %g, want 0.25", g)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if _, err := Gini(nil); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
	if _, err := Gini([]float64{1, -1}); err != ErrNegative {
		t.Fatal("negative accepted")
	}
	if g, err := Gini([]float64{0, 0}); err != nil || g != 0 {
		t.Fatalf("all-zero Gini = %g, %v", g, err)
	}
	if g, err := Gini([]float64{7}); err != nil || g != 0 {
		t.Fatalf("singleton Gini = %g, %v", g, err)
	}
}

func TestGiniBoundedScaleInvariantProperty(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			// Bound magnitudes: sums of values near MaxFloat64 overflow
			// to Inf, which is the caller's problem, not Gini's.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, math.Abs(x))
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := Gini(xs)
		if err != nil || g < 0 || g >= 1 {
			return false
		}
		// Scale invariance.
		k := 1 + math.Abs(math.Mod(scale, 100))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * k
		}
		g2, err := Gini(scaled)
		return err == nil && almostEqual(g, g2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyUniform(t *testing.T) {
	h, err := Entropy([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy = %g, want ln 4", h)
	}
	nh, err := NormalizedEntropy([]float64{1, 1, 1, 1})
	if err != nil || !almostEqual(nh, 1, 1e-12) {
		t.Fatalf("normalized uniform = %g, %v", nh, err)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	h, err := Entropy([]float64{1, 0, 0})
	if err != nil || h != 0 {
		t.Fatalf("point mass entropy = %g, %v", h, err)
	}
	if _, err := Entropy(nil); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
	if _, err := Entropy([]float64{-1}); err != ErrNegative {
		t.Fatal("negative accepted")
	}
	if h, err := Entropy([]float64{0, 0}); err != nil || h != 0 {
		t.Fatalf("all-zero entropy = %g, %v", h, err)
	}
	if nh, err := NormalizedEntropy([]float64{3}); err != nil || nh != 1 {
		t.Fatalf("singleton normalized = %g, %v", nh, err)
	}
}

func TestNormalizedEntropyBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		ws := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				ws = append(ws, math.Abs(x))
			}
		}
		if len(ws) < 2 {
			return true
		}
		nh, err := NormalizedEntropy(ws)
		return err == nil && nh >= -1e-12 && nh <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
