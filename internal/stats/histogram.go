package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over float64 observations.
// Bins are half-open [Edges[i], Edges[i+1]), except the last bin which is
// closed on both sides so that the maximum observation is counted.
type Histogram struct {
	Edges   []float64 // len = len(Counts)+1, strictly increasing
	Counts  []int
	total   int
	dropped int
}

// NewHistogram builds a histogram with n equal-width bins spanning
// [lo, hi]. It returns an error when n < 1 or hi <= lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%g,%g] is empty", lo, hi)
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		edges[i] = lo + float64(i)*w
	}
	edges[n] = hi // avoid accumulation error on the last edge
	return &Histogram{Edges: edges, Counts: make([]int, n)}, nil
}

// NewHistogramEdges builds a histogram from explicit, strictly increasing
// bin edges.
func NewHistogramEdges(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need >=2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stats: edges not strictly increasing at %d", i)
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)-1),
	}, nil
}

// Add records one observation. Observations outside the histogram range
// are silently dropped and reported via Dropped (callers working with the
// trace want totals to still add up, so we count them).
func (h *Histogram) Add(x float64) {
	i := h.binOf(x)
	if i < 0 {
		h.dropped++
		return
	}
	h.Counts[i]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// binOf returns the bin index for x, or -1 when out of range.
func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	if x < h.Edges[0] || x > h.Edges[n] {
		return -1
	}
	if x == h.Edges[n] {
		return n - 1
	}
	// Binary search for the right-most edge <= x.
	i := sort.SearchFloat64s(h.Edges, x)
	if i < len(h.Edges) && h.Edges[i] == x {
		return min(i, n-1)
	}
	return i - 1
}

// Total returns the number of observations recorded (excluding dropped).
func (h *Histogram) Total() int { return h.total }

// Dropped returns the number of observations outside the histogram range.
func (h *Histogram) Dropped() int { return h.dropped }

// Fractions returns the per-bin fraction of total observations.
// All zeros when the histogram is empty.
func (h *Histogram) Fractions() []float64 {
	fs := make([]float64, len(h.Counts))
	if h.total == 0 {
		return fs
	}
	for i, c := range h.Counts {
		fs[i] = float64(c) / float64(h.total)
	}
	return fs
}

// Render draws an ASCII bar chart of the histogram, one row per bin, with
// bars scaled so the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = int(math.Round(float64(c) / float64(maxC) * float64(width)))
		}
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d |%s\n",
			h.Edges[i], h.Edges[i+1], c, strings.Repeat("#", bar))
	}
	return b.String()
}

// IntCounter counts occurrences of integer-valued observations (job sizes,
// critical-path lengths). It is the natural representation for the paper's
// "17 size groups" style figures where bins are exact values, not ranges.
type IntCounter struct {
	counts map[int]int
	total  int
}

// NewIntCounter returns an empty counter.
func NewIntCounter() *IntCounter {
	return &IntCounter{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (c *IntCounter) Add(v int) {
	c.counts[v]++
	c.total++
}

// AddN records n observations of value v.
func (c *IntCounter) AddN(v, n int) {
	if n <= 0 {
		return
	}
	c.counts[v] += n
	c.total += n
}

// Count returns the number of observations with value v.
func (c *IntCounter) Count(v int) int { return c.counts[v] }

// Total returns the number of observations recorded.
func (c *IntCounter) Total() int { return c.total }

// Distinct returns the number of distinct observed values — the paper's
// "17 different size types".
func (c *IntCounter) Distinct() int { return len(c.counts) }

// Values returns the distinct observed values in increasing order.
func (c *IntCounter) Values() []int {
	vs := make([]int, 0, len(c.counts))
	for v := range c.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Fraction returns the share of observations with value v (0 when empty).
func (c *IntCounter) Fraction(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[v]) / float64(c.total)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from observations xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	// Index of the first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Inverse returns the smallest observation x with P(X <= x) >= p.
func (e *ECDF) Inverse(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}
