package ged

import "math"

// hungarian solves the square linear-sum assignment problem: given an
// n×n cost matrix it returns, for each row, the column assigned to it
// so that the total cost is minimal. Implementation is the O(n³)
// shortest-augmenting-path (Jonker–Volgenant style) algorithm with
// potentials; costs may be +Inf to forbid pairs (at least one finite
// perfect matching must exist).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	// Potentials for rows (u) and columns (v); p[j] = row matched to
	// column j (0 = none; rows are 1-based internally).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	assignment := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	return assignment
}
