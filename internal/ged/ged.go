// Package ged implements graph edit distance between job DAGs — the
// conventional similarity measure the paper rejects for its exponential
// cost (§V-C: "the computational cost is exponential depending on the
// number of nodes, which is less effective"). It exists as a measured
// baseline: the ablation benchmarks compare its cost and its agreement
// with the WL kernel on small jobs.
//
// Two solvers are provided: an exact A* search over node assignments
// (feasible for jobs up to roughly ten tasks) and a beam-search
// approximation with bounded frontier for anything larger.
package ged

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"jobgraph/internal/dag"
)

// Costs is the edit cost model. Node substitution applies only when the
// two tasks' types differ; matching same-type tasks is free.
type Costs struct {
	NodeSub float64 // relabel a task's type
	NodeDel float64 // delete a task from A
	NodeIns float64 // insert a task from B
	EdgeDel float64 // delete a dependency edge of A
	EdgeIns float64 // insert a dependency edge of B
}

// DefaultCosts returns the unit-cost model used in the experiments.
func DefaultCosts() Costs {
	return Costs{NodeSub: 1, NodeDel: 1, NodeIns: 1, EdgeDel: 1, EdgeIns: 1}
}

func (c Costs) validate() error {
	for _, v := range []float64{c.NodeSub, c.NodeDel, c.NodeIns, c.EdgeDel, c.EdgeIns} {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("ged: negative or NaN edit cost")
		}
	}
	return nil
}

// MaxCost returns the edit distance of the trivial script that deletes
// all of a and inserts all of b — an upper bound used to normalize
// distances into similarities.
func MaxCost(a, b *dag.Graph, c Costs) float64 {
	return float64(a.Size())*c.NodeDel + float64(a.NumEdges())*c.EdgeDel +
		float64(b.Size())*c.NodeIns + float64(b.NumEdges())*c.EdgeIns
}

// Similarity converts a distance into [0,1]: 1 − d/MaxCost. Two empty
// graphs have similarity 1.
func Similarity(d float64, a, b *dag.Graph, c Costs) float64 {
	mx := MaxCost(a, b, c)
	if mx == 0 {
		return 1
	}
	s := 1 - d/mx
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// graphView is a flattened adjacency representation for the search.
type graphView struct {
	n     int
	types []byte
	adj   [][]bool // adj[i][j]: edge i -> j
	edges int
}

func view(g *dag.Graph) *graphView {
	ids := g.NodeIDs()
	idx := make(map[dag.NodeID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	v := &graphView{n: len(ids), types: make([]byte, len(ids)), edges: g.NumEdges()}
	v.adj = make([][]bool, len(ids))
	for i, id := range ids {
		v.types[i] = byte(g.Node(id).Type)
		v.adj[i] = make([]bool, len(ids))
	}
	for _, from := range ids {
		for _, to := range g.Succ(from) {
			v.adj[idx[from]][idx[to]] = true
		}
	}
	return v
}

// state is a partial assignment of A's first `depth` nodes; map entries
// are B indices or -1 for deletion.
type state struct {
	assign []int8 // len == depth; B has < 128 nodes within solver limits
	g      float64
	f      float64 // g + admissible heuristic
}

// pq is a min-heap on f.
type pq []*state

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(*state)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	s := old[n-1]
	*p = old[:n-1]
	return s
}

// ExactLimit is the largest graph size Exact accepts by default; beyond
// it the factorial search space makes exact GED impractical — which is
// precisely the paper's argument for graph kernels.
const ExactLimit = 10

// Exact computes the exact graph edit distance between a and b with an
// A* search. It refuses graphs larger than limit nodes (limit <= 0
// selects ExactLimit) rather than running for hours.
func Exact(a, b *dag.Graph, c Costs, limit int) (float64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	if limit <= 0 {
		limit = ExactLimit
	}
	if a.Size() > limit || b.Size() > limit {
		return 0, fmt.Errorf("ged: exact solver limited to %d nodes, got %d and %d",
			limit, a.Size(), b.Size())
	}
	va, vb := view(a), view(b)
	if vb.n > 127 {
		return 0, fmt.Errorf("ged: graph B too large for solver encoding")
	}

	if va.n == 0 {
		return completionCost(va, vb, nil, c), nil
	}
	open := &pq{{assign: nil, g: 0, f: 0}}
	heap.Init(open)
	for open.Len() > 0 {
		cur := heap.Pop(open).(*state)
		if len(cur.assign) == va.n {
			// Completed states carry their full cost (completionCost
			// folded in by child), so the first one popped is optimal.
			return cur.g, nil
		}
		for _, next := range expand(va, vb, cur, c) {
			heap.Push(open, next)
		}
	}
	// Unreachable: deleting everything is always a complete assignment.
	return 0, fmt.Errorf("ged: search exhausted without a solution")
}

// Beam computes an upper-bound approximation of the edit distance using
// beam search with the given frontier width (width <= 0 selects 100).
func Beam(a, b *dag.Graph, c Costs, width int) (float64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	if width <= 0 {
		width = 100
	}
	va, vb := view(a), view(b)
	if vb.n > 127 {
		return 0, fmt.Errorf("ged: graph B too large for solver encoding")
	}
	if va.n == 0 {
		return completionCost(va, vb, nil, c), nil
	}
	frontier := []*state{{assign: nil, g: 0, f: 0}}
	for depth := 0; depth < va.n; depth++ {
		var next []*state
		for _, s := range frontier {
			next = append(next, expand(va, vb, s, c)...)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].f < next[j].f })
		if len(next) > width {
			next = next[:width]
		}
		frontier = next
	}
	// Terminal states carry their completion cost in g already.
	best := math.MaxFloat64
	for _, s := range frontier {
		if s.g < best {
			best = s.g
		}
	}
	return best, nil
}

// expand generates all child states of cur: assign A-node `depth` to
// every unused B node, or delete it.
func expand(va, vb *graphView, cur *state, c Costs) []*state {
	used := make([]bool, vb.n)
	for _, m := range cur.assign {
		if m >= 0 {
			used[m] = true
		}
	}
	out := make([]*state, 0, vb.n+1)
	for j := 0; j < vb.n; j++ {
		if used[j] {
			continue
		}
		out = append(out, child(va, vb, cur, int8(j), c))
	}
	out = append(out, child(va, vb, cur, -1, c)) // deletion
	return out
}

// child extends cur by one decision and computes incremental cost.
func child(va, vb *graphView, cur *state, choice int8, c Costs) *state {
	depth := len(cur.assign)
	g := cur.g
	if choice < 0 {
		g += c.NodeDel
		// All A-edges between node `depth` and earlier nodes are
		// deleted edges if the earlier endpoint exists (mapped or not:
		// the edge is gone from A either way).
		for i := 0; i < depth; i++ {
			if va.adj[i][depth] {
				g += c.EdgeDel
			}
			if va.adj[depth][i] {
				g += c.EdgeDel
			}
		}
	} else {
		if va.types[depth] != vb.types[choice] {
			g += c.NodeSub
		}
		for i := 0; i < depth; i++ {
			mi := cur.assign[i]
			// Edge i -> depth in A vs mapped edge in B.
			g += edgePairCost(va.adj[i][depth], mi >= 0 && vb.adj[mi][choice], c)
			g += edgePairCost(va.adj[depth][i], mi >= 0 && vb.adj[choice][mi], c)
		}
	}
	assign := make([]int8, depth+1)
	copy(assign, cur.assign)
	assign[depth] = choice
	if len(assign) == va.n {
		// Terminal: fold the completion cost (insert unmatched B nodes
		// and their incident edges) into g so f is the true total.
		g += completionCost(va, vb, assign, c)
		return &state{assign: assign, g: g, f: g}
	}
	h := heuristic(va, vb, assign, c)
	return &state{assign: assign, g: g, f: g + h}
}

// edgePairCost charges for one (A-edge?, B-edge?) combination between a
// decided pair of nodes.
func edgePairCost(inA, inB bool, c Costs) float64 {
	switch {
	case inA && !inB:
		return c.EdgeDel
	case !inA && inB:
		return c.EdgeIns
	default:
		return 0
	}
}

// completionCost closes a full assignment of A: every unmatched B node
// is inserted, and every B edge with at least one unmatched endpoint is
// inserted.
func completionCost(va, vb *graphView, assign []int8, c Costs) float64 {
	matched := make([]bool, vb.n)
	for _, m := range assign {
		if m >= 0 {
			matched[m] = true
		}
	}
	var cost float64
	for j := 0; j < vb.n; j++ {
		if !matched[j] {
			cost += c.NodeIns
		}
	}
	for x := 0; x < vb.n; x++ {
		for y := 0; y < vb.n; y++ {
			if vb.adj[x][y] && (!matched[x] || !matched[y]) {
				cost += c.EdgeIns
			}
		}
	}
	return cost
}

// heuristic is an admissible lower bound on the remaining cost: the
// unavoidable node insertions/deletions implied by the size imbalance.
func heuristic(va, vb *graphView, assign []int8, c Costs) float64 {
	remainingA := va.n - len(assign)
	matchedB := 0
	for _, m := range assign {
		if m >= 0 {
			matchedB++
		}
	}
	remainingB := vb.n - matchedB
	if remainingA >= remainingB {
		// At least remainingA-remainingB A-nodes must be deleted.
		return float64(remainingA-remainingB) * min64(c.NodeDel, c.NodeSub+c.NodeIns)
	}
	return float64(remainingB-remainingA) * c.NodeIns
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
