package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
)

func TestHungarianKnown(t *testing.T) {
	// Classic 3x3 with unique optimum 5: (0,1)=1, (1,0)=2, (2,2)=2.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got := hungarian(cost)
	total := 0.0
	for i, j := range got {
		total += cost[i][j]
	}
	if total != 5 {
		t.Fatalf("assignment %v cost %g, want 5", got, total)
	}
}

func TestHungarianIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		got := hungarian(cost)
		if len(got) != n {
			return false
		}
		seen := make([]bool, n)
		for _, j := range got {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHungarianOptimalBruteForceProperty(t *testing.T) {
	// Compare against brute force for n <= 5.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		got := hungarian(cost)
		var gotCost float64
		for i, j := range got {
			gotCost += cost[i][j]
		}
		best := math.MaxFloat64
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int, used []bool, acc float64)
		rec = func(k int, used []bool, acc float64) {
			if acc >= best {
				return
			}
			if k == n {
				best = acc
				return
			}
			for j := 0; j < n; j++ {
				if !used[j] {
					used[j] = true
					rec(k+1, used, acc+cost[k][j])
					used[j] = false
				}
			}
		}
		rec(0, make([]bool, n), 0)
		return math.Abs(gotCost-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteIdenticalGraphsZero(t *testing.T) {
	a := mustChain(t, "a", tM, tR, tR)
	b := mustChain(t, "b", tM, tR, tR)
	d, err := Bipartite(a, b, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("bipartite(identical) = %g, want 0", d)
	}
}

func TestBipartiteEmptyGraphs(t *testing.T) {
	e := dag.New("e")
	b := mustChain(t, "b", tM, tR)
	d, err := Bipartite(e, b, DefaultCosts())
	if err != nil || d != 3 {
		t.Fatalf("bipartite(empty, chain2) = %g, %v; want 3", d, err)
	}
	d, err = Bipartite(b, e, DefaultCosts())
	if err != nil || d != 3 {
		t.Fatalf("bipartite(chain2, empty) = %g, %v; want 3", d, err)
	}
}

func TestBipartiteSandwichedProperty(t *testing.T) {
	// Exact <= Bipartite <= MaxCost for every small random pair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmallDAG(rng, "a", 1+rng.Intn(6))
		b := randomSmallDAG(rng, "b", 1+rng.Intn(6))
		exact, err1 := Exact(a, b, DefaultCosts(), 0)
		bp, err2 := Bipartite(a, b, DefaultCosts())
		if err1 != nil || err2 != nil {
			return false
		}
		return bp >= exact-1e-9 && bp <= MaxCost(a, b, DefaultCosts())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteScalesToLargeGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSmallDAG(rng, "a", 60)
	b := randomSmallDAG(rng, "b", 55)
	d, err := Bipartite(a, b, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > MaxCost(a, b, DefaultCosts()) {
		t.Fatalf("bipartite distance %g out of range", d)
	}
}

func TestBipartiteCostValidation(t *testing.T) {
	a := dag.New("a")
	if _, err := Bipartite(a, a, Costs{NodeSub: -1}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestBipartiteCloseToExactOnJobShapes(t *testing.T) {
	// On typical job shapes (chains, triangles) the approximation
	// should usually hit the optimum; assert the mean gap stays small.
	rng := rand.New(rand.NewSource(9))
	var gap, total float64
	for i := 0; i < 30; i++ {
		a := randomSmallDAG(rng, "a", 2+rng.Intn(5))
		b := randomSmallDAG(rng, "b", 2+rng.Intn(5))
		exact, err := Exact(a, b, DefaultCosts(), 0)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := Bipartite(a, b, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		gap += bp - exact
		total += exact
	}
	if total > 0 && gap/total > 0.35 {
		t.Fatalf("mean relative gap %.2f too large", gap/total)
	}
}
