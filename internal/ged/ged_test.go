package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

func mustChain(t testing.TB, id string, types ...taskname.Type) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	for i, typ := range types {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(types); i++ {
		if err := g.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

const (
	tM = taskname.TypeMap
	tR = taskname.TypeReduce
	tJ = taskname.TypeJoin
)

func TestExactIdenticalGraphsZero(t *testing.T) {
	a := mustChain(t, "a", tM, tR, tR)
	b := mustChain(t, "b", tM, tR, tR)
	d, err := Exact(a, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("GED(identical) = %g, want 0", d)
	}
}

func TestExactSingleRelabel(t *testing.T) {
	a := mustChain(t, "a", tM, tR)
	b := mustChain(t, "b", tM, tJ)
	d, err := Exact(a, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("GED = %g, want 1 (one relabel)", d)
	}
}

func TestExactNodeInsertion(t *testing.T) {
	a := mustChain(t, "a", tM, tR)
	b := mustChain(t, "b", tM, tR, tR)
	// Extend chain by one: insert node (1) + insert edge (1).
	d, err := Exact(a, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("GED = %g, want 2", d)
	}
}

func TestExactEmptyGraphs(t *testing.T) {
	e := dag.New("e")
	b := mustChain(t, "b", tM, tR)
	d, err := Exact(e, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 { // 2 node insertions + 1 edge insertion
		t.Fatalf("GED(empty, chain2) = %g, want 3", d)
	}
	d, err = Exact(b, e, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("GED(chain2, empty) = %g, want 3", d)
	}
	d, err = Exact(e, dag.New("e2"), DefaultCosts(), 0)
	if err != nil || d != 0 {
		t.Fatalf("GED(empty, empty) = %g, %v", d, err)
	}
}

func TestExactEdgeOnlyDifference(t *testing.T) {
	// Same nodes, chain vs triangle wiring.
	a := mustChain(t, "a", tM, tM, tR) // edges 1->2, 2->3
	b := dag.New("b")
	for i, typ := range []taskname.Type{tM, tM, tR} {
		if err := b.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	d, err := Exact(a, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Map M1->M1, M2->M2, R3->R3: delete 1->2, insert 1->3 ⇒ 2. No
	// cheaper script exists with unit costs.
	if d != 2 {
		t.Fatalf("GED = %g, want 2", d)
	}
}

func TestExactRefusesLargeGraphs(t *testing.T) {
	big := dag.New("big")
	for i := 1; i <= ExactLimit+1; i++ {
		if err := big.AddNode(dag.Node{ID: dag.NodeID(i), Type: tM}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Exact(big, dag.New("e"), DefaultCosts(), 0); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestCostValidation(t *testing.T) {
	a := dag.New("a")
	bad := Costs{NodeSub: -1}
	if _, err := Exact(a, a, bad, 0); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := Beam(a, a, Costs{NodeDel: math.NaN()}, 0); err == nil {
		t.Fatal("NaN cost accepted")
	}
}

func randomSmallDAG(rng *rand.Rand, id string, n int) *dag.Graph {
	g := dag.New(id)
	types := []taskname.Type{tM, tR, tJ}
	for i := 1; i <= n; i++ {
		_ = g.AddNode(dag.Node{ID: dag.NodeID(i), Type: types[rng.Intn(3)]})
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.35 {
				_ = g.AddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	return g
}

func TestExactSymmetricProperty(t *testing.T) {
	// With symmetric costs, GED(a,b) == GED(b,a).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmallDAG(rng, "a", 1+rng.Intn(5))
		b := randomSmallDAG(rng, "b", 1+rng.Intn(5))
		d1, err1 := Exact(a, b, DefaultCosts(), 0)
		d2, err2 := Exact(b, a, DefaultCosts(), 0)
		return err1 == nil && err2 == nil && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExactTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmallDAG(rng, "a", 1+rng.Intn(4))
		b := randomSmallDAG(rng, "b", 1+rng.Intn(4))
		c := randomSmallDAG(rng, "c", 1+rng.Intn(4))
		dab, e1 := Exact(a, b, DefaultCosts(), 0)
		dbc, e2 := Exact(b, c, DefaultCosts(), 0)
		dac, e3 := Exact(a, c, DefaultCosts(), 0)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBeamUpperBoundsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSmallDAG(rng, "a", 1+rng.Intn(6))
		b := randomSmallDAG(rng, "b", 1+rng.Intn(6))
		exact, err1 := Exact(a, b, DefaultCosts(), 0)
		beam, err2 := Beam(a, b, DefaultCosts(), 20)
		if err1 != nil || err2 != nil {
			return false
		}
		// Beam is an upper bound; never below exact.
		return beam >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBeamWideEqualsExactOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		a := randomSmallDAG(rng, "a", 1+rng.Intn(4))
		b := randomSmallDAG(rng, "b", 1+rng.Intn(4))
		exact, err := Exact(a, b, DefaultCosts(), 0)
		if err != nil {
			t.Fatal(err)
		}
		beam, err := Beam(a, b, DefaultCosts(), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-beam) > 1e-9 {
			t.Fatalf("unbounded beam %g != exact %g", beam, exact)
		}
	}
}

func TestBeamHandlesLargerGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSmallDAG(rng, "a", 20)
	b := randomSmallDAG(rng, "b", 22)
	d, err := Beam(a, b, DefaultCosts(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > MaxCost(a, b, DefaultCosts()) {
		t.Fatalf("beam distance %g outside [0, max]", d)
	}
}

func TestSimilarityBounds(t *testing.T) {
	a := mustChain(t, "a", tM, tR)
	b := mustChain(t, "b", tM, tR)
	d, err := Exact(a, b, DefaultCosts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := Similarity(d, a, b, DefaultCosts()); s != 1 {
		t.Fatalf("similarity(identical) = %g", s)
	}
	e := dag.New("e")
	if s := Similarity(0, e, e, DefaultCosts()); s != 1 {
		t.Fatalf("similarity(empty,empty) = %g", s)
	}
	d2, _ := Exact(a, e, DefaultCosts(), 0)
	if s := Similarity(d2, a, e, DefaultCosts()); s != 0 {
		t.Fatalf("similarity(a, empty) = %g, want 0", s)
	}
}
