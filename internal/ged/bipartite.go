package ged

import (
	"fmt"

	"jobgraph/internal/dag"
)

// Bipartite computes the Riesen–Bunke style bipartite approximation of
// the graph edit distance: node correspondences are chosen by solving a
// linear-sum assignment over node-level costs (substitution cost plus a
// local degree-difference estimate; deletions and insertions on the
// expanded diagonal), and the returned value is the *exact* cost of the
// edit script induced by that mapping. It is therefore always an upper
// bound on Exact, runs in polynomial time (O((n+m)³)), and in practice
// tracks the optimum closely on job-DAG shapes.
func Bipartite(a, b *dag.Graph, c Costs) (float64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	va, vb := view(a), view(b)
	if vb.n > 127 {
		return 0, fmt.Errorf("ged: graph B too large for solver encoding")
	}
	if va.n == 0 {
		return completionCost(va, vb, nil, c), nil
	}

	n, m := va.n, vb.n
	size := n + m
	big := 0.0 // forbidden-cell cost: strictly dominate any real script
	big = MaxCost(a, b, c) + 1

	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
	}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			switch {
			case i < n && j < m:
				// Substitute A[i] with B[j]: label cost + local edge
				// mismatch estimate (half degree difference per
				// direction, each mismatched edge needing one edit).
				v := 0.0
				if va.types[i] != vb.types[j] {
					v = c.NodeSub
				}
				v += degreeCostEstimate(va, vb, i, j, c)
				cost[i][j] = v
			case i < n && j == m+i:
				// Delete A[i] together with its incident edges.
				cost[i][j] = c.NodeDel + float64(degA(va, i))*c.EdgeDel
			case i >= n && j < m && i == n+j:
				// Insert B[j] together with its incident edges.
				cost[i][j] = c.NodeIns + float64(degB(vb, j))*c.EdgeIns
			case i >= n && j >= m:
				cost[i][j] = 0 // dummy-to-dummy
			default:
				cost[i][j] = big
			}
		}
	}

	assignment := hungarian(cost)
	// Decode the A-side mapping and price the induced edit script
	// exactly (the assignment objective is only a heuristic guide).
	mapping := make([]int8, n)
	for i := 0; i < n; i++ {
		if j := assignment[i]; j < m {
			mapping[i] = int8(j)
		} else {
			mapping[i] = -1
		}
	}
	return costOfMapping(va, vb, mapping, c), nil
}

// degreeCostEstimate lower-bounds the edge edits implied by matching
// A[i] to B[j] from their in/out degrees.
func degreeCostEstimate(va, vb *graphView, i, j int, c Costs) float64 {
	var inA, outA, inB, outB int
	for k := 0; k < va.n; k++ {
		if va.adj[k][i] {
			inA++
		}
		if va.adj[i][k] {
			outA++
		}
	}
	for k := 0; k < vb.n; k++ {
		if vb.adj[k][j] {
			inB++
		}
		if vb.adj[j][k] {
			outB++
		}
	}
	// Each excess edge on one side needs at least half an edit charged
	// here (the other endpoint's row charges the other half).
	cost := 0.0
	cost += 0.5 * edgeGap(inA, inB, c)
	cost += 0.5 * edgeGap(outA, outB, c)
	return cost
}

func edgeGap(a, b int, c Costs) float64 {
	if a > b {
		return float64(a-b) * c.EdgeDel
	}
	return float64(b-a) * c.EdgeIns
}

func degA(v *graphView, i int) int {
	d := 0
	for k := 0; k < v.n; k++ {
		if v.adj[i][k] {
			d++
		}
		if v.adj[k][i] {
			d++
		}
	}
	return d
}

func degB(v *graphView, j int) int { return degA(v, j) }

// costOfMapping prices the complete edit script induced by a full
// assignment of A's nodes (B-index or -1 per A node): node costs, edge
// costs among decided pairs, plus insertion of unmatched B structure.
func costOfMapping(va, vb *graphView, mapping []int8, c Costs) float64 {
	var cost float64
	for i, mi := range mapping {
		if mi < 0 {
			cost += c.NodeDel
			continue
		}
		if va.types[i] != vb.types[mi] {
			cost += c.NodeSub
		}
	}
	for i := 0; i < va.n; i++ {
		for j := 0; j < va.n; j++ {
			if i == j {
				continue
			}
			mi, mj := mapping[i], mapping[j]
			inA := va.adj[i][j]
			inB := mi >= 0 && mj >= 0 && vb.adj[mi][mj]
			switch {
			case inA && !inB:
				cost += c.EdgeDel
			case !inA && inB:
				cost += c.EdgeIns
			}
		}
	}
	return cost + completionCost(va, vb, mapping, c)
}
