package wl

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"jobgraph/internal/dag"
)

// annCorpus builds n sample graphs with unique job ids and an ANNIndex
// over them.
func annCorpus(t testing.TB, n int, opt SketchOptions) (*ANNIndex, []*dag.Graph) {
	t.Helper()
	graphs := sampleGraphs(t, n, 11)
	for i, g := range graphs {
		g.JobID = fmt.Sprintf("job%03d", i)
	}
	ix, err := NewANNIndex(DefaultOptions(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range graphs {
		if err := ix.AddGraph(g); err != nil {
			t.Fatal(err)
		}
	}
	return ix, graphs
}

func TestANNIndexRejectsDuplicates(t *testing.T) {
	ix, graphs := annCorpus(t, 5, SketchOptions{})
	err := ix.AddGraph(graphs[0])
	if err == nil {
		t.Fatal("duplicate job id accepted")
	}
	if want := "wl: job job000 already indexed"; err.Error() != want {
		t.Fatalf("error %q, want %q", err, want)
	}
}

func TestANNIndexRejectsNonSubtreeBase(t *testing.T) {
	opts := DefaultOptions()
	opts.Base = BaseShortestPath
	if _, err := NewANNIndex(opts, SketchOptions{}); err == nil {
		t.Fatal("non-subtree base accepted")
	}
}

func TestANNQueryJob(t *testing.T) {
	ix, _ := annCorpus(t, 40, SketchOptions{Hashes: 64, Bands: 64, Buckets: 1 << 16, Seed: 5})
	hits, err := ix.QueryJob("job007", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.JobID == "job007" {
			t.Fatal("query job returned itself")
		}
		if h.Similarity < 0 || h.Similarity > 1 {
			t.Fatalf("similarity %v out of range", h.Similarity)
		}
	}
	if _, err := ix.QueryJob("nope", 5); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := ix.QueryJob("job007", 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// At bands = hashes (1-row bands) a pair becomes a candidate when any
// single MinHash position agrees — probability 1-(1-J)^64, which is
// 1-5e-21 at J=0.5. So every sufficiently similar exact neighbour must
// appear in the candidate set: exact top-k ⊆ LSH candidates.
func TestANNCandidatesCoverExactTopK(t *testing.T) {
	const n, k = 60, 5
	opt := SketchOptions{Hashes: 64, Bands: 64, Buckets: 1 << 16, Seed: 9}
	ix, graphs := annCorpus(t, n, opt)
	vectors := make([]Vector, n)
	for i, g := range graphs {
		vectors[i] = hashedEmbed(g, ix.WLOptions(), opt.Buckets)
	}
	sigs, err := Sketches(vectors, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < n; q++ {
		// Exact top-k by cosine over the same hashed vectors.
		type pair struct {
			id  int
			sim float64
		}
		exact := make([]pair, 0, n-1)
		for j := 0; j < n; j++ {
			if j == q {
				continue
			}
			exact = append(exact, pair{j, Similarity(vectors[q], vectors[j])})
		}
		sort.Slice(exact, func(a, b int) bool {
			if exact[a].sim != exact[b].sim {
				return exact[a].sim > exact[b].sim
			}
			return exact[a].id < exact[b].id
		})
		cands := make(map[string]bool)
		for _, id := range ix.Candidates(vectors[q]) {
			cands[id] = true
		}
		for _, p := range exact[:k] {
			j, err := SketchJaccard(sigs[q], sigs[p.id])
			if err != nil {
				t.Fatal(err)
			}
			if j < 0.5 {
				continue // below the deterministic-coverage regime
			}
			if !cands[graphs[p.id].JobID] {
				t.Errorf("query %d: exact neighbour %s (sim %.3f, J %.2f) missing from candidates",
					q, graphs[p.id].JobID, p.sim, j)
			}
		}
	}
}

// Within its candidate set the re-rank is exact: at full-coverage
// settings ANN top-k must equal brute-force cosine top-k.
func TestANNRerankMatchesBruteForce(t *testing.T) {
	const n, k = 50, 3
	opt := SketchOptions{Hashes: 64, Bands: 64, Buckets: 1 << 16, Seed: 13}
	ix, graphs := annCorpus(t, n, opt)
	for q := 0; q < n; q += 7 {
		qv := hashedEmbed(graphs[q], ix.WLOptions(), opt.Buckets)
		hits, err := ix.Query(qv, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 {
			t.Fatalf("query %d: no hits", q)
		}
		// The query graph itself is indexed: top hit must be it at 1.0.
		if hits[0].Similarity < 1-1e-12 {
			t.Fatalf("query %d: top similarity %v", q, hits[0].Similarity)
		}
		for j := range hits {
			want := Similarity(qv, hashedEmbed(graphs[ixOf(t, ix, hits[j].JobID)], ix.WLOptions(), opt.Buckets))
			if math.Abs(hits[j].Similarity-want) > 1e-9 {
				t.Fatalf("query %d hit %s: sim %v, brute force %v", q, hits[j].JobID, hits[j].Similarity, want)
			}
		}
		_ = k
	}
}

func ixOf(t testing.TB, ix *ANNIndex, jobID string) int {
	t.Helper()
	i, ok := ix.byID[jobID]
	if !ok {
		t.Fatalf("job %s not indexed", jobID)
	}
	return int(i)
}

func TestANNIndexGobRoundTrip(t *testing.T) {
	ix, graphs := annCorpus(t, 30, SketchOptions{Hashes: 32, Bands: 8, Buckets: 1 << 14, Seed: 21})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadANNIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, ix, got, graphs)

	// Alien bytes fail fast with the schema error, not a gob panic.
	if _, err := LoadANNIndex(strings.NewReader("not an index file at all\n")); err == nil ||
		!strings.Contains(err.Error(), ANNIndexSchema) {
		t.Fatalf("alien file error = %v", err)
	}
}

func TestANNIndexJSONRoundTrip(t *testing.T) {
	ix, graphs := annCorpus(t, 30, SketchOptions{Hashes: 32, Bands: 8, Buckets: 1 << 14, Seed: 21})
	var buf bytes.Buffer
	if err := ix.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadANNIndexJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, ix, got, graphs)
}

func TestANNIndexGobCodec(t *testing.T) {
	ix, graphs := annCorpus(t, 12, SketchOptions{Hashes: 16, Bands: 4, Buckets: 1 << 12, Seed: 2})
	blob, err := ix.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got ANNIndex
	if err := got.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	assertSameIndex(t, ix, &got, graphs)
}

// assertSameIndex checks a reloaded index answers queries identically.
func assertSameIndex(t *testing.T, want, got *ANNIndex, graphs []*dag.Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len %d, want %d", got.Len(), want.Len())
	}
	if got.Options() != want.Options() {
		t.Fatalf("sketch options %+v, want %+v", got.Options(), want.Options())
	}
	for q := 0; q < len(graphs); q += 5 {
		a, err := want.QueryGraph(graphs[q], 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.QueryGraph(graphs[q], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d hits vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].JobID != b[i].JobID || math.Abs(a[i].Similarity-b[i].Similarity) > 1e-12 {
				t.Fatalf("query %d hit %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestANNBulkLoadValidation(t *testing.T) {
	opt := SketchOptions{Hashes: 16, Bands: 4, Buckets: 1 << 12, Seed: 2}
	sig, err := SketchVector(Vector{1: 1}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewANNIndexFromSketches(DefaultOptions(), opt,
		[]string{"a", "b"}, []Vector{{1: 1}}, []Sketch{sig, sig}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewANNIndexFromSketches(DefaultOptions(), opt,
		[]string{"a"}, []Vector{{1: 1}}, []Sketch{make(Sketch, 8)}); err == nil {
		t.Fatal("wrong sketch width accepted")
	}
	ix, err := NewANNIndexFromSketches(DefaultOptions(), opt,
		[]string{"a", "b"}, []Vector{{1: 1}, {2: 1}}, []Sketch{sig, sig})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestANNCandidateNeighbors(t *testing.T) {
	ix, _ := annCorpus(t, 25, SketchOptions{Hashes: 32, Bands: 32, Buckets: 1 << 14, Seed: 4})
	nbr := ix.CandidateNeighbors(3)
	if len(nbr) != ix.Len() {
		t.Fatalf("neighbour lists %d, want %d", len(nbr), ix.Len())
	}
	for i, ns := range nbr {
		if len(ns) > 3 {
			t.Fatalf("job %d has %d neighbours, cap 3", i, len(ns))
		}
		for _, j := range ns {
			if int(j) == i {
				t.Fatalf("job %d is its own neighbour", i)
			}
		}
	}
}

func TestANNEmptyIndexQuery(t *testing.T) {
	ix, err := NewANNIndex(DefaultOptions(), SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.Query(Vector{1: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits on empty index: %v", hits)
	}
}
