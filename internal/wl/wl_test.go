package wl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// chainGraph builds M1 -> R2 -> ... -> Rn.
func chainGraph(t testing.TB, id string, n int) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	for i := 1; i <= n; i++ {
		typ := taskname.TypeReduce
		if i == 1 {
			typ = taskname.TypeMap
		}
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// triangleGraph builds k maps feeding one reduce.
func triangleGraph(t testing.TB, id string, k int) *dag.Graph {
	t.Helper()
	g := dag.New(id)
	sink := dag.NodeID(k + 1)
	if err := g.AddNode(dag.Node{ID: sink, Type: taskname.TypeReduce}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		if err := g.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(dag.NodeID(i), sink); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func randomDAG(rng *rand.Rand, id string, n int) *dag.Graph {
	g := dag.New(id)
	types := []taskname.Type{taskname.TypeMap, taskname.TypeReduce, taskname.TypeJoin}
	for i := 1; i <= n; i++ {
		_ = g.AddNode(dag.Node{ID: dag.NodeID(i), Type: types[rng.Intn(3)]})
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < 0.3 {
				_ = g.AddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	return g
}

func TestSelfSimilarityIsOne(t *testing.T) {
	g := chainGraph(t, "a", 5)
	s, err := GraphSimilarity(g, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self similarity = %g, want 1", s)
	}
}

func TestIsomorphicGraphsSimilarityOne(t *testing.T) {
	// Same structure, different vertex ids.
	a := dag.New("a")
	b := dag.New("b")
	for _, id := range []dag.NodeID{1, 2, 3} {
		if err := a.AddNode(dag.Node{ID: id, Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []dag.NodeID{7, 8, 9} {
		if err := b.AddNode(dag.Node{ID: id, Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(9, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(8, 7); err != nil {
		t.Fatal(err)
	}
	s, err := GraphSimilarity(a, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("isomorphic similarity = %g, want 1", s)
	}
}

func TestDifferentShapesLessSimilar(t *testing.T) {
	chain := chainGraph(t, "c", 4)
	tri := triangleGraph(t, "t", 3)
	s, err := GraphSimilarity(chain, tri, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Fatalf("chain vs triangle = %g, want < 1", s)
	}
	// Two chains differing in length should still be more alike than a
	// chain and a triangle (shared subtree patterns).
	c5 := chainGraph(t, "c5", 5)
	sc, _ := GraphSimilarity(chain, c5, DefaultOptions())
	if sc <= s {
		t.Fatalf("chain4-chain5 (%g) should exceed chain-triangle (%g)", sc, s)
	}
}

func TestDirectionMatters(t *testing.T) {
	// Convergent (2 maps -> 1 reduce) vs divergent (1 map -> 2 reduces):
	// direction-aware WL must separate them even with uniform labels.
	conv := dag.New("conv")
	div := dag.New("div")
	for i := 1; i <= 3; i++ {
		if err := conv.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := div.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
	}
	if err := conv.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := conv.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := div.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := div.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	opt := Options{Iterations: 2, UseTypeLabels: false}
	s, err := GraphSimilarity(conv, div, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Fatalf("directed WL failed to separate convergent/divergent: %g", s)
	}
	// Undirected WL cannot tell them apart: the shapes are identical as
	// undirected trees with uniform labels.
	opt.Undirected = true
	s, err = GraphSimilarity(conv, div, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("undirected WL should conflate the star shapes: %g", s)
	}
}

func TestTypeLabelsMatter(t *testing.T) {
	allMap := dag.New("m")
	allReduce := dag.New("r")
	for i := 1; i <= 3; i++ {
		if err := allMap.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeMap}); err != nil {
			t.Fatal(err)
		}
		if err := allReduce.AddNode(dag.Node{ID: dag.NodeID(i), Type: taskname.TypeReduce}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 3; i++ {
		if err := allMap.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := allReduce.AddEdge(dag.NodeID(i), dag.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	withTypes, err := GraphSimilarity(allMap, allReduce, Options{Iterations: 2, UseTypeLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if withTypes != 0 {
		t.Fatalf("type-seeded similarity of disjoint-label chains = %g, want 0", withTypes)
	}
	without, err := GraphSimilarity(allMap, allReduce, Options{Iterations: 2, UseTypeLabels: false})
	if err != nil {
		t.Fatal(err)
	}
	if without != 1 {
		t.Fatalf("unlabeled similarity of same-shape chains = %g, want 1", without)
	}
}

func TestEmptyGraphConventions(t *testing.T) {
	e1, e2 := dag.New("e1"), dag.New("e2")
	s, err := GraphSimilarity(e1, e2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("empty-empty = %g, want 1", s)
	}
	s, err = GraphSimilarity(e1, chainGraph(t, "c", 3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("empty-chain = %g, want 0", s)
	}
}

func TestNegativeIterationsRejected(t *testing.T) {
	_, err := GraphSimilarity(dag.New("a"), dag.New("b"), Options{Iterations: -1})
	if err == nil {
		t.Fatal("negative iterations accepted")
	}
}

func TestZeroIterationsCountsLabelsOnly(t *testing.T) {
	// h=0: vectors are just type histograms; chain and triangle with the
	// same type multiset are identical.
	chain := chainGraph(t, "c", 3)     // M,R,R
	tri := triangleGraph(t, "t", 1)    // M,R — different multiset
	mixed := triangleGraph(t, "t2", 2) // M,M,R
	_ = tri
	opt := Options{Iterations: 0, UseTypeLabels: true}
	s, err := GraphSimilarity(chain, mixed, opt)
	if err != nil {
		t.Fatal(err)
	}
	// M,R,R vs M,M,R: cos = (1·2 + 2·1)/√5·√5 = 4/5.
	if math.Abs(s-0.8) > 1e-12 {
		t.Fatalf("h=0 similarity = %g, want 0.8", s)
	}
}

func TestVectorTotalMassProperty(t *testing.T) {
	// The feature vector counts each node once per recorded iteration:
	// Σ counts == n·(h+1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		h := rng.Intn(5)
		g := randomDAG(rng, "g", n)
		vecs, _, err := Features([]*dag.Graph{g}, Options{Iterations: h, UseTypeLabels: true})
		if err != nil {
			return false
		}
		var mass float64
		for _, c := range vecs[0] {
			mass += c
		}
		return mass == float64(n*(h+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilaritySymmetricBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDAG(rng, "a", 1+rng.Intn(12))
		b := randomDAG(rng, "b", 1+rng.Intn(12))
		opt := Options{Iterations: 1 + rng.Intn(3), UseTypeLabels: rng.Intn(2) == 0}
		s1, err1 := GraphSimilarity(a, b, opt)
		s2, err2 := GraphSimilarity(b, a, opt)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1 >= 0 && s1 <= 1 && math.Abs(s1-s2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	g := chainGraph(t, "c", 6)
	d := NewDictionary()
	v1, err := d.Embed(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.Embed(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != len(v2) {
		t.Fatalf("vectors differ in support: %d vs %d", len(v1), len(v2))
	}
	for k, c := range v1 {
		if v2[k] != c {
			t.Fatalf("vectors differ at label %d: %g vs %g", k, c, v2[k])
		}
	}
}

func TestDictionaryGrowth(t *testing.T) {
	d := NewDictionary()
	if d.Len() != 0 {
		t.Fatal("fresh dictionary not empty")
	}
	if _, err := d.Embed(chainGraph(t, "c", 4), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	n := d.Len()
	if n == 0 {
		t.Fatal("dictionary did not intern labels")
	}
	// Re-embedding the same graph must not add labels.
	if _, err := d.Embed(chainGraph(t, "c2", 4), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if d.Len() != n {
		t.Fatalf("re-embedding grew dictionary %d -> %d", n, d.Len())
	}
}

func TestDotOrderIndependent(t *testing.T) {
	a := Vector{1: 2, 2: 3}
	b := Vector{2: 5, 9: 1}
	if Dot(a, b) != 15 || Dot(b, a) != 15 {
		t.Fatalf("dot = %g / %g", Dot(a, b), Dot(b, a))
	}
}
