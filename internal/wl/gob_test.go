package wl

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"jobgraph/internal/dag"
)

// TestDictionaryGobRoundTrip is the kernel-state cache guarantee: a
// dictionary that went through gob embeds a new graph to the identical
// feature vector the original would have produced.
func TestDictionaryGobRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	corpus := []*dag.Graph{chainGraph(t, "a", 3), chainGraph(t, "b", 5)}
	vecs, dict, err := Features(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dict); err != nil {
		t.Fatal(err)
	}
	var restored Dictionary
	if err := gob.NewDecoder(&buf).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != dict.Len() {
		t.Fatalf("restored %d labels, want %d", restored.Len(), dict.Len())
	}

	query := chainGraph(t, "q", 4)
	want, err := dict.Embed(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Embed(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored dictionary embeds differently:\n%v\nvs\n%v", want, got)
	}
	// Existing corpus vectors stay comparable against the restored
	// dictionary's embeddings.
	if s := Similarity(got, vecs[1]); s <= 0 {
		t.Fatalf("similarity against corpus vector = %v", s)
	}
}
