// ANNIndex: sublinear top-k similarity over millions of job DAGs.
//
// The exact Index (index.go) answers a query by scoring every indexed
// vector — O(n) per query, O(n²) for a kernel matrix — which is why the
// paper samples 100 jobs. ANNIndex breaks that ceiling with the
// standard sketch-and-hash construction: each job is embedded as a
// hashed WL feature vector (hashed.go, no shared dictionary), sketched
// into a MinHash signature (sketch.go), and inserted into banded LSH
// tables. A query probes one LSH bucket per band, unions the posting
// lists into a candidate set whose size tracks the corpus's local
// density rather than n, and re-ranks the candidates by exact cosine
// over the stored sparse vectors. Recall against the exact kernel is
// tunable through SketchOptions (more bands, shorter rows → more
// candidates → higher recall) and measured by the accuracy-vs-speed
// gate in CI.
//
// The index is immutable-after-Build in spirit: Add appends, the first
// Query (or an explicit Build) freezes the LSH tables into sorted
// arrays — compact, cache-friendly, and binary-searchable — and later
// Adds invalidate them for rebuild. All query paths are safe for
// concurrent use once built (the daemon hot-swaps whole indexes, never
// mutates a live one).
package wl

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
)

// ANN workload instruments. Candidate-set size and re-rank latency are
// windowed (last-minute) so a serving process exposes current behaviour
// on /metrics, not a lifetime average.
var (
	obsANNQueries    = obs.Default().Counter("wl.ann.queries")
	obsANNIndexed    = obs.Default().Gauge("wl.ann.indexed_jobs")
	obsANNCandidates = obs.Default().WindowHistogram("wl.ann.candidates", obs.DefaultWindow)
	obsANNRerankMs   = obs.Default().WindowHistogram("wl.ann.rerank_ms", obs.DefaultWindow)
)

// ANNIndexSchema identifies the serialized index layout; bump on
// breaking changes so loaders refuse stale files instead of
// mis-ranking.
const ANNIndexSchema = "jobgraph-annindex/v1"

// ANNIndex is the persistent approximate-nearest-neighbour structure:
// MinHash signatures in banded LSH tables plus the hashed sparse
// vectors for the exact-cosine re-rank.
type ANNIndex struct {
	wlOpts Options
	opt    SketchOptions
	seeds  []uint64

	jobIDs []string
	byID   map[string]int32

	// Sparse vectors in compact sorted-pair form: keys[i] ascending,
	// vals[i] the counts. float32 loses nothing on WL label counts
	// (integral, far below 2^24) and halves the re-rank working set.
	keys    [][]int32
	vals    [][]float32
	selfDot []float64
	sigs    []Sketch

	// LSH tables, one per band: (bandKeys[b], bandIDs[b]) sorted by
	// key, ids ascending within equal keys. Valid only while built.
	built    bool
	bandKeys [][]uint64
	bandIDs  [][]int32
}

// NewANNIndex returns an empty index. wlOpts are the embedding options
// queries are hashed under (subtree base only, matching HashedFeatures)
// and opt the sketch/LSH geometry.
func NewANNIndex(wlOpts Options, opt SketchOptions) (*ANNIndex, error) {
	if err := wlOpts.validate(); err != nil {
		return nil, err
	}
	if wlOpts.Base != BaseSubtree {
		return nil, fmt.Errorf("wl: ann index supports the subtree base only, got %s", wlOpts.Base)
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &ANNIndex{
		wlOpts: wlOpts,
		opt:    opt,
		seeds:  hashSeeds(opt),
		byID:   make(map[string]int32),
	}, nil
}

// NewANNIndexFromSketches bulk-loads an index from presketched jobs —
// the engine's wl.annindex stage path, where vectors and signatures are
// separately cached artifacts. Signatures must have been produced by
// Sketches under the same opt.
func NewANNIndexFromSketches(wlOpts Options, opt SketchOptions, jobIDs []string, vectors []Vector, sigs []Sketch) (*ANNIndex, error) {
	ix, err := NewANNIndex(wlOpts, opt)
	if err != nil {
		return nil, err
	}
	if len(jobIDs) != len(vectors) || len(jobIDs) != len(sigs) {
		return nil, fmt.Errorf("wl: ann bulk load: %d jobs, %d vectors, %d sketches",
			len(jobIDs), len(vectors), len(sigs))
	}
	for i := range jobIDs {
		if len(sigs[i]) != ix.opt.Hashes {
			return nil, fmt.Errorf("wl: ann bulk load: sketch %d has width %d, want %d",
				i, len(sigs[i]), ix.opt.Hashes)
		}
		if err := ix.add(jobIDs[i], vectors[i], sigs[i]); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Options returns the sketch/LSH geometry the index was built under.
func (ix *ANNIndex) Options() SketchOptions { return ix.opt }

// WLOptions returns the embedding options queries must hash under.
func (ix *ANNIndex) WLOptions() Options { return ix.wlOpts }

// Len returns the number of indexed jobs.
func (ix *ANNIndex) Len() int { return len(ix.jobIDs) }

// JobIDs returns the indexed job ids in insertion order (shared slice;
// do not mutate).
func (ix *ANNIndex) JobIDs() []string { return ix.jobIDs }

// Add hashes, sketches and inserts one job's feature vector. Duplicate
// job ids are rejected: an index is a registry, not a multiset.
func (ix *ANNIndex) Add(jobID string, v Vector) error {
	return ix.add(jobID, v, sketchWithSeeds(v, ix.seeds))
}

// AddGraph embeds a graph with the index's hashed WL options and adds
// the result under the graph's JobID.
func (ix *ANNIndex) AddGraph(g *dag.Graph) error {
	return ix.Add(g.JobID, hashedEmbed(g, ix.wlOpts, ix.opt.Buckets))
}

func (ix *ANNIndex) add(jobID string, v Vector, sig Sketch) error {
	if _, dup := ix.byID[jobID]; dup {
		return fmt.Errorf("wl: job %s already indexed", jobID)
	}
	ks, vs, self := compactVector(v)
	ix.byID[jobID] = int32(len(ix.jobIDs))
	ix.jobIDs = append(ix.jobIDs, jobID)
	ix.keys = append(ix.keys, ks)
	ix.vals = append(ix.vals, vs)
	ix.selfDot = append(ix.selfDot, self)
	ix.sigs = append(ix.sigs, sig)
	ix.built = false
	return nil
}

// compactVector converts a sparse map vector into sorted (key, value)
// arrays and its self dot product.
func compactVector(v Vector) ([]int32, []float32, float64) {
	ks := make([]int32, 0, len(v))
	for k, c := range v {
		if c != 0 {
			ks = append(ks, int32(k))
		}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
	vs := make([]float32, len(ks))
	var self float64
	for i, k := range ks {
		c := v[int(k)]
		vs[i] = float32(c)
		self += c * c
	}
	return ks, vs, self
}

// Build freezes the LSH tables: one sorted (bandKey, id) array pair per
// band. Idempotent; Query calls it lazily on an unbuilt index. Sorted
// arrays instead of hash maps keep a million-job index's table overhead
// at 12 bytes per job per band and make posting-list lookup two binary
// searches.
func (ix *ANNIndex) Build() {
	if ix.built {
		return
	}
	n := len(ix.jobIDs)
	rows := ix.opt.rows()
	ix.bandKeys = make([][]uint64, ix.opt.Bands)
	ix.bandIDs = make([][]int32, ix.opt.Bands)
	for b := 0; b < ix.opt.Bands; b++ {
		bk := make([]uint64, n)
		ids := make([]int32, n)
		for i := 0; i < n; i++ {
			bk[i] = bandKey(ix.sigs[i], b, rows)
			ids[i] = int32(i)
		}
		sort.Sort(&bandTable{keys: bk, ids: ids})
		ix.bandKeys[b] = bk
		ix.bandIDs[b] = ids
	}
	ix.built = true
	obsANNIndexed.Set(int64(n))
}

// bandTable sorts a band's (key, id) pairs by key then id, so posting
// lists come out in deterministic ascending-id order.
type bandTable struct {
	keys []uint64
	ids  []int32
}

func (t *bandTable) Len() int { return len(t.keys) }
func (t *bandTable) Less(a, b int) bool {
	if t.keys[a] != t.keys[b] {
		return t.keys[a] < t.keys[b]
	}
	return t.ids[a] < t.ids[b]
}
func (t *bandTable) Swap(a, b int) {
	t.keys[a], t.keys[b] = t.keys[b], t.keys[a]
	t.ids[a], t.ids[b] = t.ids[b], t.ids[a]
}

// candidates unions the posting lists the query signature hits, one
// LSH bucket per band, returning ascending unique indexes. exclude
// drops one index (the query job itself on QueryJob; -1 keeps all).
func (ix *ANNIndex) candidates(sig Sketch, exclude int32) []int32 {
	rows := ix.opt.rows()
	var out []int32
	seen := make(map[int32]struct{}, 64)
	for b := 0; b < ix.opt.Bands; b++ {
		key := bandKey(sig, b, rows)
		bk := ix.bandKeys[b]
		lo := sort.Search(len(bk), func(i int) bool { return bk[i] >= key })
		for i := lo; i < len(bk) && bk[i] == key; i++ {
			id := ix.bandIDs[b][i]
			if id == exclude {
				continue
			}
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Candidates returns the job ids the LSH tables propose for a query
// vector, before any re-ranking — the recall ceiling of a query. The
// exact-subset property test pins that at high band settings this set
// contains every sufficiently similar exact neighbour.
func (ix *ANNIndex) Candidates(v Vector) []string {
	ix.Build()
	cands := ix.candidates(sketchWithSeeds(v, ix.seeds), -1)
	out := make([]string, len(cands))
	for i, id := range cands {
		out[i] = ix.jobIDs[id]
	}
	return out
}

// CandidateNeighbors returns, for every indexed job, the indexes of its
// LSH candidates (its neighbourhood in the candidate graph), excluding
// itself, capped at maxPerJob (<=0: uncapped, ascending-id order). This
// is the adjacency the sketch-space k-medoids consumes in place of a
// dense distance matrix.
func (ix *ANNIndex) CandidateNeighbors(maxPerJob int) [][]int32 {
	ix.Build()
	out := make([][]int32, len(ix.jobIDs))
	for i := range ix.jobIDs {
		nbr := ix.candidates(ix.sigs[i], int32(i))
		if maxPerJob > 0 && len(nbr) > maxPerJob {
			nbr = nbr[:maxPerJob]
		}
		out[i] = nbr
	}
	return out
}

// SparseVectors reconstructs the indexed hashed feature vectors — the
// clustering substrate. Intended for corpus-scale batch consumers; the
// maps are freshly allocated on every call.
func (ix *ANNIndex) SparseVectors() []map[int]float64 {
	out := make([]map[int]float64, len(ix.jobIDs))
	for i := range out {
		m := make(map[int]float64, len(ix.keys[i]))
		for j, k := range ix.keys[i] {
			m[int(k)] = float64(ix.vals[i][j])
		}
		out[i] = m
	}
	return out
}

// dotCompact is ⟨query, indexed[i]⟩ with the query in compact form — a
// merge join over two sorted key arrays.
func (ix *ANNIndex) dotCompact(qk []int32, qv []float32, i int) float64 {
	ik, iv := ix.keys[i], ix.vals[i]
	var s float64
	a, b := 0, 0
	for a < len(qk) && b < len(ik) {
		switch {
		case qk[a] == ik[b]:
			s += float64(qv[a]) * float64(iv[b])
			a++
			b++
		case qk[a] < ik[b]:
			a++
		default:
			b++
		}
	}
	return s
}

// Query returns the k most cosine-similar indexed jobs to the hashed
// feature vector v among the LSH candidates, descending by similarity
// (ties by job id). Fewer than k results means the candidate set was
// smaller than k — the approximate regime's honest answer, not an
// error. k must be positive.
func (ix *ANNIndex) Query(v Vector, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("wl: query k=%d", k)
	}
	ix.Build()
	qk, qv, qSelf := compactVector(v)
	sig := sketchWithSeeds(v, ix.seeds)
	return ix.rerank(qk, qv, qSelf, ix.candidates(sig, -1), k), nil
}

// QueryGraph embeds g with the index's hashed WL options and queries.
func (ix *ANNIndex) QueryGraph(g *dag.Graph, k int) ([]Hit, error) {
	return ix.Query(hashedEmbed(g, ix.wlOpts, ix.opt.Buckets), k)
}

// QueryJob queries by an already-indexed job's id, excluding the job
// itself from the results — the serving plane's "jobs like this one".
func (ix *ANNIndex) QueryJob(jobID string, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("wl: query k=%d", k)
	}
	i, ok := ix.byID[jobID]
	if !ok {
		return nil, fmt.Errorf("wl: job %s not indexed", jobID)
	}
	ix.Build()
	cands := ix.candidates(ix.sigs[i], i)
	return ix.rerank(ix.keys[i], ix.vals[i], ix.selfDot[i], cands, k), nil
}

// rerank scores candidates by exact cosine over the stored vectors and
// returns the top k. Candidate-set size and re-rank wall time feed the
// windowed ANN instruments.
func (ix *ANNIndex) rerank(qk []int32, qv []float32, qSelf float64, cands []int32, k int) []Hit {
	start := time.Now()
	hits := make([]Hit, 0, len(cands))
	for _, id := range cands {
		i := int(id)
		var sim float64
		switch {
		case qSelf == 0 && ix.selfDot[i] == 0:
			sim = 1 // two empty vectors: same convention as Similarity
		case qSelf == 0 || ix.selfDot[i] == 0:
			sim = 0
		default:
			dot := ix.dotCompact(qk, qv, i)
			if dot*dot >= qSelf*ix.selfDot[i] {
				sim = 1
			} else {
				sim = dot / (math.Sqrt(qSelf) * math.Sqrt(ix.selfDot[i]))
				if sim < 0 {
					sim = 0
				}
			}
		}
		hits = append(hits, Hit{JobID: ix.jobIDs[i], Similarity: sim})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Similarity != hits[b].Similarity {
			return hits[a].Similarity > hits[b].Similarity
		}
		return hits[a].JobID < hits[b].JobID
	})
	if k > len(hits) {
		k = len(hits)
	}
	hits = hits[:k]
	obsANNQueries.Add(1)
	obsANNCandidates.Observe(float64(len(cands)))
	obsANNRerankMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return hits
}

// annWire is the serialized form shared by the gob and JSON codecs.
// LSH tables are not serialized: they rebuild deterministically from
// the signatures, and posting lists would dominate the file.
type annWire struct {
	Schema  string        `json:"schema"`
	WL      Options       `json:"wl"`
	Sketch  SketchOptions `json:"sketch"`
	Jobs    []string      `json:"jobs"`
	Keys    [][]int32     `json:"keys"`
	Vals    [][]float32   `json:"vals"`
	Sigs    []Sketch      `json:"sigs"`
	Version int           `json:"version"`
}

func (ix *ANNIndex) wire() annWire {
	return annWire{
		Schema: ANNIndexSchema,
		WL:     ix.wlOpts,
		Sketch: ix.opt,
		Jobs:   ix.jobIDs,
		Keys:   ix.keys,
		Vals:   ix.vals,
		Sigs:   ix.sigs,
	}
}

// fromWire validates and reconstitutes an index from its wire form.
func fromWire(w annWire) (*ANNIndex, error) {
	if w.Schema != ANNIndexSchema {
		return nil, fmt.Errorf("wl: ann index has schema %q, want %q", w.Schema, ANNIndexSchema)
	}
	ix, err := NewANNIndex(w.WL, w.Sketch)
	if err != nil {
		return nil, err
	}
	if len(w.Jobs) != len(w.Keys) || len(w.Jobs) != len(w.Vals) || len(w.Jobs) != len(w.Sigs) {
		return nil, fmt.Errorf("wl: ann index wire arrays disagree: %d jobs, %d keys, %d vals, %d sigs",
			len(w.Jobs), len(w.Keys), len(w.Vals), len(w.Sigs))
	}
	for i := range w.Jobs {
		if _, dup := ix.byID[w.Jobs[i]]; dup {
			return nil, fmt.Errorf("wl: ann index wire: duplicate job %s", w.Jobs[i])
		}
		if len(w.Keys[i]) != len(w.Vals[i]) {
			return nil, fmt.Errorf("wl: ann index wire: vector %d has %d keys, %d vals",
				i, len(w.Keys[i]), len(w.Vals[i]))
		}
		if len(w.Sigs[i]) != ix.opt.Hashes {
			return nil, fmt.Errorf("wl: ann index wire: sketch %d has width %d, want %d",
				i, len(w.Sigs[i]), ix.opt.Hashes)
		}
		var self float64
		for j, k := range w.Keys[i] {
			if j > 0 && w.Keys[i][j-1] >= k {
				return nil, fmt.Errorf("wl: ann index wire: vector %d keys not ascending", i)
			}
			c := float64(w.Vals[i][j])
			if c < 0 {
				return nil, fmt.Errorf("wl: ann index wire: negative count in vector %d", i)
			}
			self += c * c
		}
		ix.byID[w.Jobs[i]] = int32(i)
		ix.selfDot = append(ix.selfDot, self)
	}
	ix.jobIDs = w.Jobs
	ix.keys = w.Keys
	ix.vals = w.Vals
	ix.sigs = w.Sigs
	return ix, nil
}

// annHeader precedes the gob payload so a truncated or alien file fails
// fast with a named error instead of a gob decode panic.
var annHeader = []byte(ANNIndexSchema + "\n")

// Save writes the index in its binary (gob) form, preceded by the
// schema header.
func (ix *ANNIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(annHeader); err != nil {
		return fmt.Errorf("wl: save ann index: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(ix.wire()); err != nil {
		return fmt.Errorf("wl: save ann index: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wl: save ann index: %w", err)
	}
	return nil
}

// LoadANNIndex reads an index written by Save.
func LoadANNIndex(r io.Reader) (*ANNIndex, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(annHeader))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("wl: load ann index: %w", err)
	}
	if !bytes.Equal(head, annHeader) {
		return nil, fmt.Errorf("wl: not a %s file", ANNIndexSchema)
	}
	var w annWire
	if err := gob.NewDecoder(br).Decode(&w); err != nil {
		return nil, fmt.Errorf("wl: load ann index: %w", err)
	}
	return fromWire(w)
}

// SaveJSON writes the index as JSON — the interoperable form (and the
// engine's inspectable artifact codec).
func (ix *ANNIndex) SaveJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(ix.wire()); err != nil {
		return fmt.Errorf("wl: save ann index json: %w", err)
	}
	return nil
}

// LoadANNIndexJSON reads an index written by SaveJSON.
func LoadANNIndexJSON(r io.Reader) (*ANNIndex, error) {
	var w annWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("wl: load ann index json: %w", err)
	}
	return fromWire(w)
}

// GobEncode implements gob.GobEncoder so index-bearing engine artifacts
// cache under the standard gob codec.
func (ix *ANNIndex) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ix.wire()); err != nil {
		return nil, fmt.Errorf("wl: encoding ann index: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder; the receiver is reset.
func (ix *ANNIndex) GobDecode(data []byte) error {
	var w annWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("wl: decoding ann index: %w", err)
	}
	nx, err := fromWire(w)
	if err != nil {
		return err
	}
	*ix = *nx
	return nil
}
