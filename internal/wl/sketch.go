// MinHash sketches over hashed WL feature vectors: the fixed-cost
// per-job summary the ANN layer (annindex.go) hashes into its LSH
// tables. A sketch depends only on the job's own hashed vector and the
// sketch options — never on the rest of the corpus — so sketching is
// embarrassingly parallel and bit-identical at every worker count,
// which keeps sketch artifacts content-addressable by configuration
// alone.
package wl

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// SketchOptions parameterizes MinHash signatures and their banded LSH
// layout. Two sketches are only comparable when produced under equal
// options (same hash family, same width); ANNIndex enforces that.
type SketchOptions struct {
	// Buckets is the hashed-feature space width the sketched vectors
	// live in (HashedFeatures' bucket count). <=0 selects 1<<20.
	Buckets int
	// Hashes is the MinHash signature width H. More hashes estimate
	// Jaccard similarity more tightly and cost proportionally more to
	// sketch. <=0 selects 64.
	Hashes int
	// Bands divides the signature into Bands groups of Hashes/Bands
	// rows for LSH: two jobs become query candidates when any band of
	// their signatures matches exactly. More bands (shorter rows) catch
	// fainter similarities at the cost of bigger candidate sets; Bands
	// must divide Hashes. <=0 selects 16.
	Bands int
	// Seed derives the hash family. Indexes and queries must share it.
	Seed uint64
}

// DefaultSketchOptions is the configuration the similarity-at-scale
// experiments use: 64 hashes in 16 bands of 4 rows over the default
// 1<<20-bucket hashed feature space.
func DefaultSketchOptions() SketchOptions {
	return SketchOptions{Buckets: 1 << 20, Hashes: 64, Bands: 16, Seed: 0x6a6f6267}
}

// withDefaults resolves zero fields to the defaults.
func (o SketchOptions) withDefaults() SketchOptions {
	d := DefaultSketchOptions()
	if o.Buckets <= 0 {
		o.Buckets = d.Buckets
	}
	if o.Hashes <= 0 {
		o.Hashes = d.Hashes
	}
	if o.Bands <= 0 {
		o.Bands = d.Bands
		if o.Bands > o.Hashes {
			o.Bands = o.Hashes
		}
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Resolved returns the options with zero fields filled in — the form
// the sketching functions actually run under. Cache fingerprints hash
// this form so a zero-value configuration and an explicitly-spelled
// default share artifacts.
func (o SketchOptions) Resolved() SketchOptions { return o.withDefaults() }

func (o SketchOptions) validate() error {
	if o.Hashes < 1 {
		return fmt.Errorf("wl: sketch hashes %d < 1", o.Hashes)
	}
	if o.Bands < 1 || o.Bands > o.Hashes {
		return fmt.Errorf("wl: sketch bands %d out of range [1,%d]", o.Bands, o.Hashes)
	}
	if o.Hashes%o.Bands != 0 {
		return fmt.Errorf("wl: sketch bands %d must divide hashes %d", o.Bands, o.Hashes)
	}
	if o.Buckets < 1 {
		return fmt.Errorf("wl: sketch buckets %d < 1", o.Buckets)
	}
	return nil
}

// rows is the band height R = H/B.
func (o SketchOptions) rows() int { return o.Hashes / o.Bands }

// Sketch is one job's MinHash signature: Hashes minima of a seeded hash
// family over the job's non-zero feature buckets. An empty vector
// sketches to all-sentinel (math.MaxUint64), which never collides with
// a non-empty sketch in any band.
type Sketch []uint64

// emptySlot marks a signature position with no contributing feature.
const emptySlot = math.MaxUint64

// mix64 is the 64-bit finalizer of MurmurHash3: a cheap, statistically
// strong bijection used to derive the MinHash family.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashSeeds derives the per-position seeds of the MinHash family.
func hashSeeds(opt SketchOptions) []uint64 {
	seeds := make([]uint64, opt.Hashes)
	for i := range seeds {
		// Golden-ratio stepping keeps consecutive seeds decorrelated
		// before the mix even sees them.
		seeds[i] = mix64(opt.Seed + uint64(i+1)*0x9e3779b97f4a7c15)
	}
	return seeds
}

// SketchVector computes the MinHash signature of one hashed feature
// vector. Only the support set (non-zero buckets) participates: MinHash
// estimates the Jaccard similarity of supports, and the cosine re-rank
// over the full vectors restores count sensitivity afterwards.
func SketchVector(v Vector, opt SketchOptions) (Sketch, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return sketchWithSeeds(v, hashSeeds(opt)), nil
}

// sketchWithSeeds is SketchVector with the hash family precomputed —
// the bulk path used by Sketches and the index.
func sketchWithSeeds(v Vector, seeds []uint64) Sketch {
	sig := make(Sketch, len(seeds))
	for i := range sig {
		sig[i] = emptySlot
	}
	for key := range v {
		if v[key] == 0 {
			continue
		}
		k := uint64(uint32(key)) // buckets fit 32 bits; normalize sign
		for i, s := range seeds {
			if h := mix64(k ^ s); h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// Sketches computes MinHash signatures for a batch of vectors across a
// worker pool. Each signature depends only on its own vector, so the
// result is bit-identical at every worker count (pinned by test).
// workers <= 0 selects GOMAXPROCS.
func Sketches(vectors []Vector, opt SketchOptions, workers int) ([]Sketch, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	seeds := hashSeeds(opt)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(vectors) {
		workers = len(vectors)
	}
	out := make([]Sketch, len(vectors))
	if len(vectors) == 0 {
		return out, nil
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Each index is owned by exactly one worker; no locks.
				out[i] = sketchWithSeeds(vectors[i], seeds)
			}
		}()
	}
	for i := range vectors {
		work <- i
	}
	close(work)
	wg.Wait()
	return out, nil
}

// bandKey folds one band of a signature into a single 64-bit LSH key
// (FNV-1a over the band's minima). Two signatures land in the same
// LSH bucket of band b exactly when their band-b rows are all equal,
// up to a 2^-64 fold collision.
func bandKey(sig Sketch, band, rows int) uint64 {
	h := uint64(1469598103934665603)
	for r := band * rows; r < (band+1)*rows; r++ {
		x := sig[r]
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return h
}

// SketchJaccard estimates the Jaccard similarity of two jobs' feature
// supports from their signatures: the fraction of agreeing positions.
// Signatures must come from the same options/hash family.
func SketchJaccard(a, b Sketch) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("wl: sketch widths differ (%d vs %d)", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("wl: empty sketches")
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a)), nil
}
