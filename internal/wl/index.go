package wl

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"jobgraph/internal/dag"
)

// Index is a persistent similarity-search structure over a job corpus:
// the WL label dictionary, the embedding options and one feature vector
// per indexed job. It supports nearest-neighbour queries for new jobs —
// the "predict a new job's behaviour from similar historical jobs" use
// case — and JSON round-tripping so a corpus embedded once can be
// queried by later processes.
type Index struct {
	opts    Options
	dict    *Dictionary
	jobIDs  []string
	byID    map[string]int
	vectors []Vector
	selfDot []float64
}

// NewIndex returns an empty index with the given embedding options.
func NewIndex(opts Options) (*Index, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Index{opts: opts, dict: NewDictionary(), byID: make(map[string]int)}, nil
}

// Add embeds a graph and stores it under its JobID. Duplicate job ids
// are rejected: an index is a registry, not a multiset.
func (ix *Index) Add(g *dag.Graph) error {
	if _, dup := ix.byID[g.JobID]; dup {
		return fmt.Errorf("wl: job %s already indexed", g.JobID)
	}
	v, err := ix.dict.Embed(g, ix.opts)
	if err != nil {
		return err
	}
	ix.byID[g.JobID] = len(ix.jobIDs)
	ix.jobIDs = append(ix.jobIDs, g.JobID)
	ix.vectors = append(ix.vectors, v)
	ix.selfDot = append(ix.selfDot, Dot(v, v))
	return nil
}

// Len returns the number of indexed jobs.
func (ix *Index) Len() int { return len(ix.jobIDs) }

// Hit is one nearest-neighbour result.
type Hit struct {
	JobID      string
	Similarity float64
}

// Query returns the k most similar indexed jobs to g, descending by
// similarity (ties broken by job id for determinism). k exceeding the
// index size returns everything.
func (ix *Index) Query(g *dag.Graph, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("wl: query k=%d", k)
	}
	qv, err := ix.dict.Embed(g, ix.opts)
	if err != nil {
		return nil, err
	}
	qSelf := Dot(qv, qv)
	hits := make([]Hit, len(ix.jobIDs))
	for i := range ix.jobIDs {
		hits[i] = Hit{
			JobID:      ix.jobIDs[i],
			Similarity: similarityWithSelf(qv, ix.vectors[i], qSelf, ix.selfDot[i]),
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Similarity != hits[b].Similarity {
			return hits[a].Similarity > hits[b].Similarity
		}
		return hits[a].JobID < hits[b].JobID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k], nil
}

// indexWire is the JSON form of an Index.
type indexWire struct {
	Options Options              `json:"options"`
	Labels  map[string]int       `json:"labels"`
	Jobs    []string             `json:"jobs"`
	Vectors []map[string]float64 `json:"vectors"` // label-id (as string) -> count
}

// Save serializes the index as JSON.
func (ix *Index) Save(w io.Writer) error {
	wire := indexWire{
		Options: ix.opts,
		Labels:  ix.dict.ids,
		Jobs:    ix.jobIDs,
	}
	for _, v := range ix.vectors {
		m := make(map[string]float64, len(v))
		for k, c := range v {
			m[fmt.Sprintf("%d", k)] = c
		}
		wire.Vectors = append(wire.Vectors, m)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("wl: save index: %w", err)
	}
	return nil
}

// LoadIndex reads an index previously written by Save.
func LoadIndex(r io.Reader) (*Index, error) {
	var wire indexWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("wl: load index: %w", err)
	}
	if err := wire.Options.validate(); err != nil {
		return nil, err
	}
	if len(wire.Jobs) != len(wire.Vectors) {
		return nil, fmt.Errorf("wl: index has %d jobs but %d vectors",
			len(wire.Jobs), len(wire.Vectors))
	}
	ix := &Index{opts: wire.Options, dict: &Dictionary{ids: wire.Labels}, byID: make(map[string]int, len(wire.Jobs))}
	if ix.dict.ids == nil {
		ix.dict.ids = make(map[string]int)
	}
	// Validate dictionary ids are a dense 0..n-1 assignment so future
	// interning cannot collide.
	seen := make(map[int]bool, len(ix.dict.ids))
	for _, id := range ix.dict.ids {
		if id < 0 || id >= len(ix.dict.ids) || seen[id] {
			return nil, fmt.Errorf("wl: corrupt dictionary id %d", id)
		}
		seen[id] = true
	}
	for i, m := range wire.Vectors {
		v := make(Vector, len(m))
		for k, c := range m {
			var id int
			if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
				return nil, fmt.Errorf("wl: corrupt vector key %q", k)
			}
			if c < 0 {
				return nil, fmt.Errorf("wl: negative count in vector %d", i)
			}
			v[id] = c
		}
		if _, dup := ix.byID[wire.Jobs[i]]; dup {
			return nil, fmt.Errorf("wl: index file has duplicate job %s", wire.Jobs[i])
		}
		ix.byID[wire.Jobs[i]] = len(ix.jobIDs)
		ix.jobIDs = append(ix.jobIDs, wire.Jobs[i])
		ix.vectors = append(ix.vectors, v)
		ix.selfDot = append(ix.selfDot, Dot(v, v))
	}
	return ix, nil
}
