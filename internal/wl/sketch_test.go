package wl

import (
	"fmt"
	"math/rand"
	"testing"
)

// randVector builds a sparse vector with n features drawn from [0, space).
func randVector(rng *rand.Rand, n, space int) Vector {
	v := make(Vector)
	for len(v) < n {
		v[rng.Intn(space)] = float64(1 + rng.Intn(5))
	}
	return v
}

func TestSketchOptionsValidate(t *testing.T) {
	cases := []struct {
		opt SketchOptions
		ok  bool
	}{
		{SketchOptions{}, true}, // defaults resolve
		{SketchOptions{Hashes: 64, Bands: 16, Buckets: 1 << 10, Seed: 1}, true},
		{SketchOptions{Hashes: 64, Bands: 64, Buckets: 1 << 10, Seed: 1}, true},
		{SketchOptions{Hashes: 64, Bands: 48, Buckets: 1 << 10, Seed: 1}, false}, // 48 ∤ 64
		{SketchOptions{Hashes: 8, Bands: 16, Buckets: 1 << 10, Seed: 1}, false},  // bands > hashes
	}
	for i, c := range cases {
		_, err := SketchVector(Vector{1: 1}, c.opt)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestSketchEmptyVector(t *testing.T) {
	sig, err := SketchVector(Vector{}, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range sig {
		if x != emptySlot {
			t.Fatalf("position %d of empty sketch is %d, want sentinel", i, x)
		}
	}
	// A zero-count key is not support.
	sig2, err := SketchVector(Vector{7: 0}, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sig2[0] != emptySlot {
		t.Fatal("zero-count feature contributed to sketch")
	}
}

// Equal supports must sketch identically regardless of counts — MinHash
// sees the support set only.
func TestSketchIgnoresCounts(t *testing.T) {
	a := Vector{3: 1, 9: 2, 100: 7}
	b := Vector{3: 5, 9: 1, 100: 2}
	sa, err := SketchVector(a, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SketchVector(b, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("position %d differs for equal supports", i)
		}
	}
}

// Sketches must be bit-identical at every worker count: each signature
// depends only on its own vector, and the cache keys rely on it.
func TestSketchesDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vectors := make([]Vector, 300)
	for i := range vectors {
		vectors[i] = randVector(rng, 1+rng.Intn(40), 1<<16)
	}
	opt := SketchOptions{Hashes: 32, Bands: 8, Buckets: 1 << 16, Seed: 7}
	ref, err := Sketches(vectors, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, err := Sketches(vectors, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: sketch %d position %d differs", workers, i, j)
				}
			}
		}
	}
}

// The MinHash estimate should track true Jaccard similarity: on pairs of
// known overlap, the 256-hash estimate must land within a loose bound.
func TestSketchJaccardEstimates(t *testing.T) {
	opt := SketchOptions{Hashes: 256, Bands: 16, Buckets: 1 << 20, Seed: 3}
	for _, tc := range []struct {
		shared, onlyA, onlyB int
	}{
		{100, 0, 0},   // identical: J=1
		{50, 50, 50},  // J=1/3
		{0, 100, 100}, // disjoint: J=0
	} {
		a, b := make(Vector), make(Vector)
		for i := 0; i < tc.shared; i++ {
			a[i] = 1
			b[i] = 1
		}
		for i := 0; i < tc.onlyA; i++ {
			a[1000+i] = 1
		}
		for i := 0; i < tc.onlyB; i++ {
			b[2000+i] = 1
		}
		sa, _ := SketchVector(a, opt)
		sb, _ := SketchVector(b, opt)
		got, err := SketchJaccard(sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(tc.shared) / float64(tc.shared+tc.onlyA+tc.onlyB)
		if tc.shared+tc.onlyA+tc.onlyB == 0 {
			truth = 1
		}
		if diff := got - truth; diff > 0.12 || diff < -0.12 {
			t.Errorf("J estimate %.3f, truth %.3f (shared=%d a=%d b=%d)",
				got, truth, tc.shared, tc.onlyA, tc.onlyB)
		}
	}
}

func TestSketchJaccardWidthMismatch(t *testing.T) {
	if _, err := SketchJaccard(make(Sketch, 8), make(Sketch, 16)); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := SketchJaccard(Sketch{}, Sketch{}); err == nil {
		t.Fatal("empty sketches accepted")
	}
}

// bandKey must separate bands: equal rows in band 0 with different rows
// in band 1 must produce equal keys for band 0 and different for band 1.
func TestBandKey(t *testing.T) {
	a := Sketch{1, 2, 3, 4}
	b := Sketch{1, 2, 9, 9}
	if bandKey(a, 0, 2) != bandKey(b, 0, 2) {
		t.Fatal("equal band hashed unequally")
	}
	if bandKey(a, 1, 2) == bandKey(b, 1, 2) {
		t.Fatal("unequal band hashed equally")
	}
}

func ExampleSketchVector() {
	sig, _ := SketchVector(Vector{1: 2, 5: 1}, SketchOptions{Hashes: 4, Bands: 2, Buckets: 64, Seed: 1})
	fmt.Println(len(sig))
	// Output: 4
}
