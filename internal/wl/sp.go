package wl

import (
	"fmt"

	"jobgraph/internal/dag"
)

// BaseKernel selects the substructure counted at every WL iteration.
// The paper's kernel definition admits "a base kernel function, such as
// subtree or shortest path kernel" (§V-D); both are provided.
type BaseKernel int

const (
	// BaseSubtree counts refined node labels (the classic WL subtree
	// kernel) — the default and the paper's primary instrument.
	BaseSubtree BaseKernel = iota
	// BaseShortestPath counts (label_u, label_v, d(u, v)) triples over
	// directed shortest paths, recomputed under each iteration's
	// refined labels (the WL shortest-path kernel of Shervashidze et
	// al.). Distance-0 self pairs are included so single-task jobs
	// retain a non-empty feature vector.
	BaseShortestPath
	// BaseEdge counts (label_u, label_v) pairs over direct edges plus
	// plain node labels — the WL edge kernel, a middle ground between
	// subtree (nodes only) and shortest-path (all pairs). Node labels
	// are included so edge-free graphs keep non-empty vectors.
	BaseEdge
)

// String names the base kernel.
func (b BaseKernel) String() string {
	switch b {
	case BaseSubtree:
		return "subtree"
	case BaseShortestPath:
		return "shortest-path"
	case BaseEdge:
		return "edge"
	default:
		return fmt.Sprintf("base(%d)", int(b))
	}
}

// shortestPaths computes directed unit-weight shortest-path distances
// from every vertex via BFS. dist[u][v] is absent when v is unreachable
// from u.
func shortestPaths(g *dag.Graph) map[dag.NodeID]map[dag.NodeID]int {
	ids := g.NodeIDs()
	all := make(map[dag.NodeID]map[dag.NodeID]int, len(ids))
	for _, src := range ids {
		dist := map[dag.NodeID]int{src: 0}
		queue := []dag.NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Succ(u) {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		all[src] = dist
	}
	return all
}

// recordEdge interns one iteration's edge pairs and node labels into
// the vector (labels unknown to a frozen view are skipped).
func recordEdge(ld labeler, vec Vector, g *dag.Graph, labels map[dag.NodeID]string) {
	for _, u := range g.NodeIDs() {
		if id, ok := ld.labelID("N|" + labels[u]); ok {
			vec[id]++
		}
		for _, v := range g.Succ(u) {
			if id, ok := ld.labelID(fmt.Sprintf("E|%s|%s", labels[u], labels[v])); ok {
				vec[id]++
			}
		}
	}
}

// recordShortestPath interns one iteration's shortest-path triples into
// the vector (labels unknown to a frozen view are skipped).
func recordShortestPath(ld labeler, vec Vector,
	labels map[dag.NodeID]string, dists map[dag.NodeID]map[dag.NodeID]int) {
	for u, row := range dists {
		lu := labels[u]
		for v, dist := range row {
			if id, ok := ld.labelID(fmt.Sprintf("SP|%s|%s|%d", lu, labels[v], dist)); ok {
				vec[id]++
			}
		}
	}
}
