// Package wl implements the Weisfeiler–Lehman subtree kernel of
// Shervashidze et al. (JMLR 2011) specialized to job DAGs, the graph
// learning method the paper uses to compare batch-job topologies (§V-D).
//
// For each graph, node labels are iteratively refined: a node's label at
// iteration i+1 is its label at iteration i augmented with the sorted
// multiset of its neighbors' iteration-i labels. The subtree kernel
// between two graphs is the inner product of their label-count vectors
// accumulated over iterations 0..h; normalizing by the self-similarities
// yields the paper's similarity score in [0,1], where 1 means the two
// job graphs are indistinguishable by h rounds of refinement (and in
// practice isomorphic).
package wl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"jobgraph/internal/dag"
	"jobgraph/internal/obs"
)

// Kernel workload tallies. Incremented once per graph/matrix (never
// per node) so the refinement inner loops stay unperturbed.
var (
	obsEmbeds       = obs.Default().Counter("wl.graphs_embedded")
	obsRefineRounds = obs.Default().Counter("wl.refine_rounds")
	obsDictLabels   = obs.Default().Gauge("wl.dict_labels")
	obsVectorSize   = obs.Default().Histogram("wl.vector_size")
)

// Options configures the kernel.
type Options struct {
	// Iterations is the number of refinement rounds h. The label-count
	// vector includes iteration 0 (initial labels) through h.
	// Values 2–4 are standard; the paper-scale experiments use 3.
	Iterations int

	// UseTypeLabels seeds refinement with the task type (M/R/J) so that
	// an all-Map chain and an all-Reduce chain differ. When false all
	// nodes start with a uniform label and only topology matters.
	UseTypeLabels bool

	// Undirected treats dependency edges as undirected during
	// refinement. The default (false) keeps direction: a node's
	// predecessors and successors contribute separate multisets, which
	// distinguishes convergent from divergent shapes — essential for
	// separating the paper's inverted-triangle and trapezium classes.
	Undirected bool

	// Base selects the substructure counted per iteration: the WL
	// subtree kernel (default) or the WL shortest-path kernel.
	Base BaseKernel
}

// DefaultOptions returns the configuration used for the paper-scale
// experiments: h=3, type-seeded, direction-aware.
func DefaultOptions() Options {
	return Options{Iterations: 3, UseTypeLabels: true}
}

func (o Options) validate() error {
	if o.Iterations < 0 {
		return fmt.Errorf("wl: negative iterations %d", o.Iterations)
	}
	switch o.Base {
	case BaseSubtree, BaseShortestPath, BaseEdge:
	default:
		return fmt.Errorf("wl: unknown base kernel %d", int(o.Base))
	}
	return nil
}

// Vector is a sparse label-count feature vector φ(G). Keys are
// dictionary-compressed label ids, values are occurrence counts.
type Vector map[int]float64

// Dot returns ⟨a, b⟩ — the un-normalized WL subtree kernel value.
func Dot(a, b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for k, va := range a {
		if vb, ok := b[k]; ok {
			s += va * vb
		}
	}
	return s
}

// Similarity returns the normalized kernel k(a,b)/√(k(a,a)·k(b,b)) in
// [0, 1]. Two empty vectors (empty graphs) are defined as similarity 1;
// an empty vector against a non-empty one is 0.
func Similarity(a, b Vector) float64 {
	return similarityWithSelf(a, b, Dot(a, a), Dot(b, b))
}

// similarityWithSelf is Similarity with the self-kernels precomputed,
// shared with the kernel-matrix fast path.
func similarityWithSelf(a, b Vector, ka, kb float64) float64 {
	if ka == 0 && kb == 0 {
		return 1
	}
	if ka == 0 || kb == 0 {
		return 0
	}
	return normalizeKernel(Dot(a, b), ka, kb)
}

// normalizeKernel maps a raw kernel value kab and the two self-kernels
// to the normalized similarity in [0, 1]. ka and kb must be non-zero.
func normalizeKernel(kab, ka, kb float64) float64 {
	// By Cauchy–Schwarz kab² ≤ ka·kb with equality iff the vectors are
	// parallel; identical graphs must report exactly 1.0 (the paper's
	// Figure 7 relies on exact-1 blocks), so catch equality before the
	// square roots introduce rounding.
	if kab*kab >= ka*kb {
		return 1
	}
	// √(ka)·√(kb) instead of √(ka·kb): label counts can be large enough
	// that the product overflows before the square root tames it.
	s := kab / (math.Sqrt(ka) * math.Sqrt(kb))
	// Clamp tiny float excursions so callers can rely on [0,1].
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Dictionary compresses refined label strings into dense integer ids so
// feature vectors stay small and dot products stay cheap. A Dictionary
// must be shared by every graph participating in one kernel computation:
// ids are only comparable within a dictionary.
type Dictionary struct {
	ids map[string]int

	// fe is the dictionary's reusable refinement state for the subtree
	// fast path (see embed_fast.go), created on first Embed. Embed
	// mutates the dictionary, so callers already serialize; reusing one
	// embedder adds no new concurrency constraint.
	fe *fastEmbedder
}

// NewDictionary returns an empty label dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// id interns a label.
func (d *Dictionary) id(label string) int {
	if v, ok := d.ids[label]; ok {
		return v
	}
	v := len(d.ids)
	d.ids[label] = v
	return v
}

// Len returns the number of distinct labels interned so far.
func (d *Dictionary) Len() int { return len(d.ids) }

// labeler abstracts label-to-id resolution for embed: the mutable
// Dictionary interns unseen labels, a Frozen view reports them absent.
type labeler interface {
	labelID(label string) (int, bool)
}

func (d *Dictionary) labelID(label string) (int, bool) { return d.id(label), true }

// Frozen is an immutable snapshot of a Dictionary for concurrent
// serving: Embed on a Frozen never mutates shared state, so any number
// of goroutines may classify against one snapshot while another
// goroutine swaps in a replacement. Labels unseen at freeze time
// contribute nothing to the feature vector — exactly the weight they
// would carry against any vector built from the frozen label space.
type Frozen struct {
	ids map[string]int

	// pool recycles fastEmbedder scratch across concurrent Embed calls;
	// every pooled embedder is bound to this frozen view, so cached
	// label keys never leak across label spaces.
	pool sync.Pool
}

// Freeze copies the dictionary into an immutable view.
func (d *Dictionary) Freeze() *Frozen {
	ids := make(map[string]int, len(d.ids))
	for k, v := range d.ids {
		ids[k] = v
	}
	return &Frozen{ids: ids}
}

func (f *Frozen) labelID(label string) (int, bool) {
	v, ok := f.ids[label]
	return v, ok
}

// Len returns the number of labels in the frozen view.
func (f *Frozen) Len() int { return len(f.ids) }

// Embed computes the WL feature vector of g against the frozen label
// space without mutating it. See Dictionary.Embed for semantics.
func (f *Frozen) Embed(g *dag.Graph, opt Options) (Vector, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Base == BaseSubtree {
		e, _ := f.pool.Get().(*fastEmbedder)
		if e == nil {
			e = newFastEmbedder(nil, f)
		}
		vec := make(Vector)
		e.embedInto(vec, g, opt)
		f.pool.Put(e)
		return vec, nil
	}
	return embed(f, g, opt)
}

// GobEncode implements gob.GobEncoder so analyses cached by the engine
// retain their kernel state: a restored dictionary embeds new graphs
// (Analysis.AssignGroup) with exactly the ids the original interned.
func (d *Dictionary) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d.ids); err != nil {
		return nil, fmt.Errorf("wl: encoding dictionary: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder; the receiver is reset.
func (d *Dictionary) GobDecode(data []byte) error {
	ids := make(map[string]int)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ids); err != nil {
		return fmt.Errorf("wl: decoding dictionary: %w", err)
	}
	d.ids = ids
	// Any embedder cached keys against the previous label space.
	d.fe = nil
	return nil
}

// Embed computes the WL feature vector of g against the dictionary,
// interning any new labels. Embedding is deterministic given the
// dictionary state, and embedding the same graph twice yields the same
// vector.
func (d *Dictionary) Embed(g *dag.Graph, opt Options) (Vector, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Base == BaseSubtree {
		if d.fe == nil {
			d.fe = newFastEmbedder(d, nil)
		}
		vec := make(Vector)
		d.fe.embedInto(vec, g, opt)
		return vec, nil
	}
	return embed(d, g, opt)
}

// embed is the shared refinement loop behind Dictionary.Embed (interning)
// and Frozen.Embed (read-only). Under a Dictionary the two behave
// identically to the historical Embed; under a Frozen view, labels the
// dictionary never saw are skipped when recording and compressed by
// content hash instead of by id.
func embed(ld labeler, g *dag.Graph, opt Options) (Vector, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	vec := make(Vector)
	ids := g.NodeIDs()
	if len(ids) == 0 {
		return vec, nil
	}

	labels := make(map[dag.NodeID]string, len(ids))
	for _, id := range ids {
		if opt.UseTypeLabels {
			labels[id] = g.Node(id).Type.String()
		} else {
			labels[id] = "·"
		}
	}
	var dists map[dag.NodeID]map[dag.NodeID]int
	if opt.Base == BaseShortestPath {
		// Distances are label-independent; compute once, reuse across
		// iterations with each round's refined labels.
		dists = shortestPaths(g)
	}
	record := func() {
		switch opt.Base {
		case BaseShortestPath:
			recordShortestPath(ld, vec, labels, dists)
		case BaseEdge:
			recordEdge(ld, vec, g, labels)
		default:
			for _, id := range ids {
				if v, ok := ld.labelID(labels[id]); ok {
					vec[v]++
				}
			}
		}
	}
	record() // iteration 0

	for it := 0; it < opt.Iterations; it++ {
		next := make(map[dag.NodeID]string, len(ids))
		for _, id := range ids {
			next[id] = refineLabel(g, id, labels, opt.Undirected)
		}
		// Compress through the dictionary so label strings don't grow
		// exponentially across iterations. Unseen labels under a frozen
		// view compress by content hash: still deterministic and
		// fixed-width, just outside the learned id space.
		for id, l := range next {
			if v, ok := ld.labelID(l); ok {
				next[id] = fmt.Sprintf("#%d", v)
			} else {
				next[id] = hashLabel(l)
			}
		}
		labels = next
		record()
	}
	obsEmbeds.Add(1)
	obsRefineRounds.Add(int64(opt.Iterations))
	obsVectorSize.Observe(float64(len(vec)))
	if d, ok := ld.(*Dictionary); ok {
		obsDictLabels.Set(int64(d.Len()))
	}
	return vec, nil
}

// hashLabel compresses a refined label absent from a frozen dictionary:
// deterministic and fixed-width so refinement stays bounded, and
// prefixed so it can never collide with a "#id" compression.
func hashLabel(l string) string {
	h := fnv.New64a()
	h.Write([]byte(l))
	return fmt.Sprintf("?%016x", h.Sum64())
}

// refineLabel builds the iteration-(i+1) label string for one node.
func refineLabel(g *dag.Graph, id dag.NodeID, labels map[dag.NodeID]string, undirected bool) string {
	var b strings.Builder
	b.WriteString(labels[id])
	if undirected {
		nbr := make([]string, 0, g.InDegree(id)+g.OutDegree(id))
		for _, p := range g.Pred(id) {
			nbr = append(nbr, labels[p])
		}
		for _, s := range g.Succ(id) {
			nbr = append(nbr, labels[s])
		}
		sort.Strings(nbr)
		b.WriteString("(")
		b.WriteString(strings.Join(nbr, ","))
		b.WriteString(")")
		return b.String()
	}
	preds := make([]string, 0, g.InDegree(id))
	for _, p := range g.Pred(id) {
		preds = append(preds, labels[p])
	}
	succs := make([]string, 0, g.OutDegree(id))
	for _, s := range g.Succ(id) {
		succs = append(succs, labels[s])
	}
	sort.Strings(preds)
	sort.Strings(succs)
	b.WriteString("(P:")
	b.WriteString(strings.Join(preds, ","))
	b.WriteString("|S:")
	b.WriteString(strings.Join(succs, ","))
	b.WriteString(")")
	return b.String()
}

// Features embeds every graph with one shared dictionary and returns the
// vectors in input order.
func Features(graphs []*dag.Graph, opt Options) ([]Vector, *Dictionary, error) {
	d := NewDictionary()
	out := make([]Vector, len(graphs))
	for i, g := range graphs {
		v, err := d.Embed(g, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("wl: graph %d (%s): %w", i, g.JobID, err)
		}
		out[i] = v
	}
	return out, d, nil
}

// GraphSimilarity is a convenience for one-off pairs: it embeds both
// graphs in a fresh dictionary and returns their normalized similarity.
func GraphSimilarity(a, b *dag.Graph, opt Options) (float64, error) {
	vecs, _, err := Features([]*dag.Graph{a, b}, opt)
	if err != nil {
		return 0, err
	}
	return Similarity(vecs[0], vecs[1]), nil
}
