package wl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

func spOptions(h int) Options {
	return Options{Iterations: h, UseTypeLabels: true, Base: BaseShortestPath}
}

func TestSPSelfSimilarityOne(t *testing.T) {
	g := chainGraph(t, "c", 5)
	s, err := GraphSimilarity(g, g, spOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self similarity = %g", s)
	}
}

func TestSPDistancesChain(t *testing.T) {
	g := chainGraph(t, "c", 4)
	dists := shortestPaths(g)
	if dists[1][4] != 3 || dists[1][2] != 1 || dists[2][2] != 0 {
		t.Fatalf("chain distances: %v", dists)
	}
	if _, reachable := dists[4][1]; reachable {
		t.Fatal("directed SP should not go backwards")
	}
}

func TestSPSingleNodeNonEmpty(t *testing.T) {
	g := dag.New("one")
	if err := g.AddNode(dag.Node{ID: 1, Type: taskname.TypeMap}); err != nil {
		t.Fatal(err)
	}
	vecs, _, err := Features([]*dag.Graph{g}, spOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs[0]) == 0 {
		t.Fatal("single-node SP vector is empty")
	}
}

func TestSPDistinguishesPathLengths(t *testing.T) {
	// Subtree WL at h=0 sees only label multisets; the SP base sees
	// distances even at h=0. Two graphs with the same label multiset
	// but different wiring must differ under SP at h=0.
	a := chainGraph(t, "a", 3) // M->R->R: has a distance-2 pair
	b := dag.New("b")          // M->R, R isolated... keep connected:
	for i, typ := range []taskname.Type{taskname.TypeMap, taskname.TypeReduce, taskname.TypeReduce} {
		if err := b.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	// M feeds both R's directly: no distance-2 pair.
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	subtree, err := GraphSimilarity(a, b, Options{Iterations: 0, UseTypeLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if subtree != 1 {
		t.Fatalf("subtree h=0 should conflate same-label graphs: %g", subtree)
	}
	sp, err := GraphSimilarity(a, b, spOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if sp >= 1 {
		t.Fatalf("SP h=0 should separate different wirings: %g", sp)
	}
}

func TestSPIsomorphicGraphsOne(t *testing.T) {
	a := triangleGraph(t, "a", 3)
	b := triangleGraph(t, "b", 3)
	s, err := GraphSimilarity(a, b, spOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("isomorphic SP similarity = %g", s)
	}
}

func TestSPBoundedSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDAG(rng, "a", 1+rng.Intn(10))
		b := randomDAG(rng, "b", 1+rng.Intn(10))
		s1, err1 := GraphSimilarity(a, b, spOptions(rng.Intn(3)))
		s2, err2 := GraphSimilarity(b, a, spOptions(0))
		_ = s2
		if err1 != nil || err2 != nil {
			return false
		}
		return s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSPVectorMassProperty(t *testing.T) {
	// Each iteration contributes exactly one count per reachable
	// ordered pair (including self pairs): mass = (h+1) * Σ|reach(u)+1|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		h := rng.Intn(3)
		g := randomDAG(rng, "g", n)
		var pairs int
		for _, u := range g.NodeIDs() {
			pairs += len(g.Reachable(u)) + 1 // + self
		}
		vecs, _, err := Features([]*dag.Graph{g}, spOptions(h))
		if err != nil {
			return false
		}
		var mass float64
		for _, c := range vecs[0] {
			mass += c
		}
		return mass == float64((h+1)*pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSPKernelMatrix(t *testing.T) {
	graphs := sampleGraphs(t, 10, 5)
	m, err := KernelMatrix(graphs, spOptions(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m.At(i, i) != 1 {
			t.Fatalf("diagonal = %g", m.At(i, i))
		}
		for j := 0; j < 10; j++ {
			if v := m.At(i, j); v < 0 || v > 1 || math.Abs(v-m.At(j, i)) > 1e-15 {
				t.Fatalf("entry (%d,%d) = %g", i, j, v)
			}
		}
	}
}

func TestBaseKernelValidation(t *testing.T) {
	_, err := GraphSimilarity(dag.New("a"), dag.New("b"),
		Options{Iterations: 1, Base: BaseKernel(9)})
	if err == nil {
		t.Fatal("unknown base kernel accepted")
	}
}

func TestBaseKernelString(t *testing.T) {
	if BaseSubtree.String() != "subtree" || BaseShortestPath.String() != "shortest-path" {
		t.Fatal("base kernel names")
	}
	if BaseKernel(9).String() != "base(9)" {
		t.Fatal("unknown base name")
	}
}

func edgeOptions(h int) Options {
	return Options{Iterations: h, UseTypeLabels: true, Base: BaseEdge}
}

func TestEdgeKernelSelfSimilarityOne(t *testing.T) {
	g := triangleGraph(t, "t", 4)
	s, err := GraphSimilarity(g, g, edgeOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self similarity = %g", s)
	}
}

func TestEdgeKernelSeparatesWiring(t *testing.T) {
	// Same node-label multiset, different edges: edge kernel at h=0
	// must separate what subtree h=0 conflates.
	a := chainGraph(t, "a", 3) // M->R->R
	b := dag.New("b")
	for i, typ := range []taskname.Type{taskname.TypeMap, taskname.TypeReduce, taskname.TypeReduce} {
		if err := b.AddNode(dag.Node{ID: dag.NodeID(i + 1), Type: typ}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	s, err := GraphSimilarity(a, b, edgeOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Fatalf("edge kernel h=0 similarity = %g, want < 1", s)
	}
}

func TestEdgeKernelEdgeFreeGraphNonEmpty(t *testing.T) {
	g := dag.New("one")
	if err := g.AddNode(dag.Node{ID: 1, Type: taskname.TypeMap}); err != nil {
		t.Fatal(err)
	}
	vecs, _, err := Features([]*dag.Graph{g}, edgeOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs[0]) == 0 {
		t.Fatal("edge-kernel vector empty for single node")
	}
}

func TestEdgeKernelMassProperty(t *testing.T) {
	// Per iteration: one count per node + one per edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		h := rng.Intn(3)
		g := randomDAG(rng, "g", n)
		vecs, _, err := Features([]*dag.Graph{g}, edgeOptions(h))
		if err != nil {
			return false
		}
		var mass float64
		for _, c := range vecs[0] {
			mass += c
		}
		return mass == float64((h+1)*(n+g.NumEdges()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
