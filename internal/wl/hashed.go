package wl

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"jobgraph/internal/dag"
)

// HashedFeatures embeds every graph using feature hashing instead of a
// shared dictionary: each refined label is FNV-hashed into a bucket in
// [0, buckets). Because no mutable dictionary is shared, graphs embed
// fully in parallel — the scalable path for corpus sizes where the
// sequential dictionary walk dominates. The price is hash collisions,
// which only ever *increase* measured similarity; with buckets well
// above the true label count the distortion is negligible (quantified
// by the exact-vs-hashed agreement test and ablation).
//
// Vectors hashed with the same bucket count are mutually comparable;
// buckets <= 0 selects 1<<20. workers <= 0 selects GOMAXPROCS. Only the
// subtree base kernel is supported: the other bases exist for the
// comparison ablations, not the scale path.
func HashedFeatures(graphs []*dag.Graph, opt Options, buckets, workers int) ([]Vector, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Base != BaseSubtree {
		return nil, fmt.Errorf("wl: hashed features support the subtree base only, got %s", opt.Base)
	}
	if buckets <= 0 {
		buckets = 1 << 20
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(graphs) {
		workers = len(graphs)
	}

	out := make([]Vector, len(graphs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Each index is owned by exactly one worker; no locks.
				out[i] = hashedEmbed(graphs[i], opt, buckets)
			}
		}()
	}
	for i := range graphs {
		work <- i
	}
	close(work)
	wg.Wait()
	return out, nil
}

// hashedEmbed computes one graph's hashed WL subtree vector.
func hashedEmbed(g *dag.Graph, opt Options, buckets int) Vector {
	vec := make(Vector)
	ids := g.NodeIDs()
	if len(ids) == 0 {
		return vec
	}
	labels := make(map[dag.NodeID]string, len(ids))
	for _, id := range ids {
		if opt.UseTypeLabels {
			labels[id] = g.Node(id).Type.String()
		} else {
			labels[id] = "·"
		}
	}
	record := func() {
		for _, id := range ids {
			vec[bucketOf(labels[id], buckets)]++
		}
	}
	record()
	for it := 0; it < opt.Iterations; it++ {
		next := make(map[dag.NodeID]string, len(ids))
		for _, id := range ids {
			next[id] = refineLabel(g, id, labels, opt.Undirected)
		}
		// Compress via hashing (stable across graphs, no shared state).
		for id, l := range next {
			next[id] = hashedToken(l, buckets, it)
		}
		labels = next
		record()
	}
	return vec
}

// bucketOf hashes a label into [0, buckets).
func bucketOf(label string, buckets int) int {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int(h.Sum64() % uint64(buckets))
}

// hashedToken renames a refined label to a compact, iteration-tagged
// token so labels from different refinement depths never collide by
// construction (only within-iteration hash collisions remain).
func hashedToken(label string, buckets, iteration int) string {
	return fmt.Sprintf("#%d/%d", iteration, bucketOf(label, buckets))
}

// CollisionRate estimates the fraction of distinct exact labels that
// share a bucket with another label for the given corpus — a diagnostic
// for picking the bucket count.
func CollisionRate(graphs []*dag.Graph, opt Options, buckets int) (float64, error) {
	if err := opt.validate(); err != nil {
		return 0, err
	}
	if buckets <= 0 {
		buckets = 1 << 20
	}
	// Collect exact labels via a throwaway dictionary walk.
	d := NewDictionary()
	for _, g := range graphs {
		if _, err := d.Embed(g, opt); err != nil {
			return 0, err
		}
	}
	labels := make([]string, 0, len(d.ids))
	for l := range d.ids {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	byBucket := make(map[int]int, len(labels))
	for _, l := range labels {
		byBucket[bucketOf(l, buckets)]++
	}
	if len(labels) == 0 {
		return 0, nil
	}
	colliding := 0
	for _, l := range labels {
		if byBucket[bucketOf(l, buckets)] > 1 {
			colliding++
		}
	}
	return float64(colliding) / float64(len(labels)), nil
}
