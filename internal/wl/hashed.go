package wl

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"

	"jobgraph/internal/dag"
)

// HashedFeatures embeds every graph using feature hashing instead of a
// shared dictionary: each refined label is FNV-hashed into a bucket in
// [0, buckets). Because no mutable dictionary is shared, graphs embed
// fully in parallel — the scalable path for corpus sizes where the
// sequential dictionary walk dominates. The price is hash collisions,
// which only ever *increase* measured similarity; with buckets well
// above the true label count the distortion is negligible (quantified
// by the exact-vs-hashed agreement test and ablation).
//
// Vectors hashed with the same bucket count are mutually comparable;
// buckets <= 0 selects 1<<20. workers <= 0 selects GOMAXPROCS. Only the
// subtree base kernel is supported: the other bases exist for the
// comparison ablations, not the scale path.
func HashedFeatures(graphs []*dag.Graph, opt Options, buckets, workers int) ([]Vector, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Base != BaseSubtree {
		return nil, fmt.Errorf("wl: hashed features support the subtree base only, got %s", opt.Base)
	}
	if buckets <= 0 {
		buckets = 1 << 20
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(graphs) {
		workers = len(graphs)
	}

	out := make([]Vector, len(graphs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One embedder per worker: scratch buffers and the token
			// cache amortize across every graph the worker embeds.
			e := newHashedEmbedder(buckets)
			for i := range work {
				// Each index is owned by exactly one worker; no locks.
				out[i] = e.embed(graphs[i], opt)
			}
		}()
	}
	for i := range graphs {
		work <- i
	}
	close(work)
	wg.Wait()
	return out, nil
}

// hashedEmbed computes one graph's hashed WL subtree vector with a
// throwaway embedder — the one-off entry point for callers outside the
// batched HashedFeatures fan-out (e.g. ANNIndex.AddGraph).
func hashedEmbed(g *dag.Graph, opt Options, buckets int) Vector {
	return newHashedEmbedder(buckets).embed(g, opt)
}

// hashedEmbedder is the feature-hashing analogue of fastEmbedder (see
// embed_fast.go for the label-code scheme): node labels are int32 refs,
// compressed tokens "#<iteration>/<bucket>" live in a cache keyed by
// (iteration, bucket), and each token's record bucket — the FNV bucket
// of the token string itself, exactly what the legacy path computed by
// re-hashing per node — is resolved once. Vectors are byte-identical to
// the historical hashedEmbed: the composed refined labels, the FNV-1a
// hashes, and the bucket arithmetic all operate on the same bytes.
type hashedEmbedder struct {
	buckets int

	codes []int32
	next  []int32
	forms [][]byte
	buf   []byte

	// initBucket[i] is bucketOf(initLabels[i]), resolved on first use.
	initBucket [numInitLabels]int32

	toks   []hashedTok
	tokRef map[[2]int]int32 // (iteration, bucket) -> index into toks
}

// hashedTok is one distinct compressed token: its byte form (used when
// composing the next round's labels) and the vector bucket its
// occurrences count into.
type hashedTok struct {
	form []byte
	rec  int
}

func newHashedEmbedder(buckets int) *hashedEmbedder {
	e := &hashedEmbedder{buckets: buckets, tokRef: make(map[[2]int]int32)}
	for i := range e.initBucket {
		e.initBucket[i] = keyUnresolved
	}
	return e
}

// embed computes one graph's hashed WL subtree vector.
func (e *hashedEmbedder) embed(g *dag.Graph, opt Options) Vector {
	vec := make(Vector)
	n := g.NumNodes()
	if n == 0 {
		return vec
	}
	e.codes = resizeRefs(e.codes, n)
	e.next = resizeRefs(e.next, n)
	for p := 0; p < n; p++ {
		e.codes[p] = initRef(g.NodeAt(p).Type, opt.UseTypeLabels)
	}
	e.record(vec, n)
	for it := 0; it < opt.Iterations; it++ {
		for p := 0; p < n; p++ {
			e.compose(g, p, opt.Undirected)
			// Compress via hashing (stable across graphs, no shared state).
			e.next[p] = e.tokenRef(it, int(fnvSum(e.buf)%uint64(e.buckets)))
		}
		e.codes, e.next = e.next, e.codes
		e.record(vec, n)
	}
	return vec
}

func (e *hashedEmbedder) form(ref int32) []byte {
	if ref < tokenBase {
		return initForms[ref]
	}
	return e.toks[ref-tokenBase].form
}

// compose builds node p's refined label into e.buf; same byte format as
// fastEmbedder.compose (and the legacy refineLabel).
func (e *hashedEmbedder) compose(g *dag.Graph, p int, undirected bool) {
	preds, succs := g.PredPos(p), g.SuccPos(p)
	buf := append(e.buf[:0], e.form(e.codes[p])...)
	if undirected {
		f := e.gather(preds, nil)
		f = e.gather(succs, f)
		slices.SortFunc(f, bytes.Compare)
		buf = append(buf, '(')
		buf = joinForms(buf, f)
		e.buf = append(buf, ')')
		return
	}
	f := e.gather(preds, nil)
	slices.SortFunc(f, bytes.Compare)
	buf = append(buf, "(P:"...)
	buf = joinForms(buf, f)
	f = e.gather(succs, nil)
	slices.SortFunc(f, bytes.Compare)
	buf = append(buf, "|S:"...)
	buf = joinForms(buf, f)
	e.buf = append(buf, ')')
}

func (e *hashedEmbedder) gather(nbrs []int32, dst [][]byte) [][]byte {
	if dst == nil {
		dst = e.forms[:0]
	}
	for _, q := range nbrs {
		dst = append(dst, e.form(e.codes[q]))
	}
	e.forms = dst
	return dst
}

// tokenRef resolves the ref of token "#<it>/<bucket>", materializing
// its byte form and record bucket on first sighting.
func (e *hashedEmbedder) tokenRef(it, bucket int) int32 {
	k := [2]int{it, bucket}
	if ref, ok := e.tokRef[k]; ok {
		return ref
	}
	form := strconv.AppendInt([]byte{'#'}, int64(it), 10)
	form = append(form, '/')
	form = strconv.AppendInt(form, int64(bucket), 10)
	ref := tokenBase + int32(len(e.toks))
	e.toks = append(e.toks, hashedTok{form: form, rec: int(fnvSum(form) % uint64(e.buckets))})
	e.tokRef[k] = ref
	return ref
}

func (e *hashedEmbedder) record(vec Vector, n int) {
	for p := 0; p < n; p++ {
		ref := e.codes[p]
		if ref < tokenBase {
			if e.initBucket[ref] == keyUnresolved {
				e.initBucket[ref] = int32(bucketOf(initLabels[ref], e.buckets))
			}
			vec[int(e.initBucket[ref])]++
			continue
		}
		vec[e.toks[ref-tokenBase].rec]++
	}
}

// bucketOf hashes a label into [0, buckets).
func bucketOf(label string, buckets int) int {
	h := fnv.New64a()
	h.Write([]byte(label))
	return int(h.Sum64() % uint64(buckets))
}

// hashedToken renames a refined label to a compact, iteration-tagged
// token so labels from different refinement depths never collide by
// construction (only within-iteration hash collisions remain).
func hashedToken(label string, buckets, iteration int) string {
	return fmt.Sprintf("#%d/%d", iteration, bucketOf(label, buckets))
}

// CollisionRate estimates the fraction of distinct exact labels that
// share a bucket with another label for the given corpus — a diagnostic
// for picking the bucket count.
func CollisionRate(graphs []*dag.Graph, opt Options, buckets int) (float64, error) {
	if err := opt.validate(); err != nil {
		return 0, err
	}
	if buckets <= 0 {
		buckets = 1 << 20
	}
	// Collect exact labels via a throwaway dictionary walk.
	d := NewDictionary()
	for _, g := range graphs {
		if _, err := d.Embed(g, opt); err != nil {
			return 0, err
		}
	}
	labels := make([]string, 0, len(d.ids))
	for l := range d.ids {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	byBucket := make(map[int]int, len(labels))
	for _, l := range labels {
		byBucket[bucketOf(l, buckets)]++
	}
	if len(labels) == 0 {
		return 0, nil
	}
	colliding := 0
	for _, l := range labels {
		if byBucket[bucketOf(l, buckets)] > 1 {
			colliding++
		}
	}
	return float64(colliding) / float64(len(labels)), nil
}
