package wl

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildIndex(t testing.TB, n int) *Index {
	t.Helper()
	ix, err := NewIndex(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range sampleGraphs(t, n, 9) {
		g.JobID = g.JobID + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := ix.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestIndexAddAndQuery(t *testing.T) {
	ix, err := NewIndex(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 4} {
		if err := ix.Add(chainGraph(t, "chain", n)); err == nil && n > 2 {
			t.Fatal("duplicate job id accepted")
		}
	}
	// Rebuild with distinct ids.
	ix, _ = NewIndex(DefaultOptions())
	for _, n := range []int{2, 3, 4} {
		g := chainGraph(t, "chain", n)
		g.JobID = g.JobID + string(rune('0'+n))
		if err := ix.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 3 {
		t.Fatalf("len = %d", ix.Len())
	}
	hits, err := ix.Query(chainGraph(t, "q", 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].JobID != "chain3" || hits[0].Similarity != 1 {
		t.Fatalf("top hit = %+v", hits[0])
	}
	if hits[1].Similarity >= 1 {
		t.Fatalf("second hit = %+v", hits[1])
	}
}

func TestIndexQueryValidation(t *testing.T) {
	ix := buildIndex(t, 5)
	if _, err := ix.Query(chainGraph(t, "q", 2), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	hits, err := ix.Query(chainGraph(t, "q", 2), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("over-request returned %d", len(hits))
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := buildIndex(t, 12)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded len = %d, want %d", loaded.Len(), ix.Len())
	}
	// Queries against the loaded index must match the original exactly.
	q := triangleGraph(t, "query", 3)
	a, err := ix.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].JobID != b[i].JobID || math.Abs(a[i].Similarity-b[i].Similarity) > 1e-15 {
			t.Fatalf("hit %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The loaded index must also accept new jobs (dictionary intact).
	g := chainGraph(t, "new-one", 6)
	if err := loaded.Add(g); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIndexRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":         "{{{",
		"job/vec miscount": `{"options":{"Iterations":1},"labels":{},"jobs":["a"],"vectors":[]}`,
		"bad option":       `{"options":{"Iterations":-1},"labels":{},"jobs":[],"vectors":[]}`,
		"bad dict id":      `{"options":{"Iterations":1},"labels":{"x":5},"jobs":[],"vectors":[]}`,
		"dup dict id":      `{"options":{"Iterations":1},"labels":{"x":0,"y":0},"jobs":[],"vectors":[]}`,
		"bad vector key":   `{"options":{"Iterations":1},"labels":{"x":0},"jobs":["a"],"vectors":[{"zz":1}]}`,
		"negative count":   `{"options":{"Iterations":1},"labels":{"x":0},"jobs":["a"],"vectors":[{"0":-1}]}`,
	}
	for name, data := range cases {
		if _, err := LoadIndex(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewIndexRejectsBadOptions(t *testing.T) {
	if _, err := NewIndex(Options{Iterations: -2}); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestIndexEmptyQuery(t *testing.T) {
	ix, err := NewIndex(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.Query(chainGraph(t, "q", 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("empty index returned hits: %+v", hits)
	}
}
