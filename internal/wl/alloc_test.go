package wl

import (
	"math/rand"
	"testing"
)

// TestEmbedIntoZeroAlloc pins the core refinement guarantee: once an
// embedder has seen a graph's label universe, re-embedding performs no
// heap allocations at all — every round runs over reused code arrays,
// the shared composition buffer, and no-alloc map lookups.
func TestEmbedIntoZeroAlloc(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(3)), "alloc", 40)
	opt := DefaultOptions()

	t.Run("dictionary", func(t *testing.T) {
		d := NewDictionary()
		e := newFastEmbedder(d, nil)
		vec := make(Vector)
		e.embedInto(vec, g, opt) // warm: interns every label this graph produces
		allocs := testing.AllocsPerRun(100, func() {
			clear(vec)
			e.embedInto(vec, g, opt)
		})
		if allocs != 0 {
			t.Fatalf("warm dictionary embedInto allocates %.1f objects/run, want 0", allocs)
		}
	})

	t.Run("frozen", func(t *testing.T) {
		d := NewDictionary()
		if _, err := d.Embed(g, opt); err != nil {
			t.Fatal(err)
		}
		fz := d.Freeze()
		e := newFastEmbedder(nil, fz)
		vec := make(Vector)
		e.embedInto(vec, g, opt)
		allocs := testing.AllocsPerRun(100, func() {
			clear(vec)
			e.embedInto(vec, g, opt)
		})
		if allocs != 0 {
			t.Fatalf("warm frozen embedInto allocates %.1f objects/run, want 0", allocs)
		}
	})

	t.Run("frozen-unseen-labels", func(t *testing.T) {
		// Serve-time worst case: the frozen label space was built from a
		// different graph, so refinement keeps hitting frozen-miss hashed
		// labels. After the first pass caches them, re-embedding is still
		// allocation-free.
		d := NewDictionary()
		if _, err := d.Embed(chainGraph(t, "other", 4), opt); err != nil {
			t.Fatal(err)
		}
		fz := d.Freeze()
		e := newFastEmbedder(nil, fz)
		vec := make(Vector)
		e.embedInto(vec, g, opt)
		allocs := testing.AllocsPerRun(100, func() {
			clear(vec)
			e.embedInto(vec, g, opt)
		})
		if allocs != 0 {
			t.Fatalf("warm frozen-miss embedInto allocates %.1f objects/run, want 0", allocs)
		}
	})
}

// TestHashedEmbedWarmAllocs pins the hashed-feature fast path: the
// embedder's scratch is reused across graphs, so a warm re-embed
// allocates only the result vector itself, nothing per node or per
// round.
func TestHashedEmbedWarmAllocs(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(5)), "hashed-alloc", 40)
	opt := DefaultOptions()
	e := newHashedEmbedder(64)
	e.embed(g, opt) // warm the token caches
	allocs := testing.AllocsPerRun(100, func() {
		vec := e.embed(g, opt)
		if len(vec) == 0 {
			t.Fatal("empty hashed vector")
		}
	})
	// The only remaining allocations are the returned Vector map and its
	// buckets; with 64 hash buckets that is a handful of objects, far
	// below one per node (40) let alone per node-round (160).
	if allocs > 10 {
		t.Fatalf("warm hashed embed allocates %.1f objects/run, want <= 10 (vector only)", allocs)
	}
}
