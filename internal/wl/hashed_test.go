package wl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashedFeaturesAgreeWithExact(t *testing.T) {
	graphs := sampleGraphs(t, 40, 11)
	opt := DefaultOptions()
	exact, _, err := Features(graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := HashedFeatures(graphs, opt, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise similarities must match to numerical precision when no
	// collisions occur (bucket space ≫ label count).
	for i := 0; i < len(graphs); i++ {
		for j := i; j < len(graphs); j++ {
			se := Similarity(exact[i], exact[j])
			sh := Similarity(hashed[i], hashed[j])
			if math.Abs(se-sh) > 1e-9 {
				t.Fatalf("(%d,%d): exact %g vs hashed %g", i, j, se, sh)
			}
		}
	}
}

func TestHashedFeaturesWorkerInvariance(t *testing.T) {
	graphs := sampleGraphs(t, 15, 12)
	ref, err := HashedFeatures(graphs, DefaultOptions(), 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0, 100} {
		got, err := HashedFeatures(graphs, DefaultOptions(), 1<<16, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if len(got[i]) != len(ref[i]) {
				t.Fatalf("workers=%d: vector %d support differs", w, i)
			}
			for k, c := range ref[i] {
				if got[i][k] != c {
					t.Fatalf("workers=%d: vector %d differs at %d", w, i, k)
				}
			}
		}
	}
}

func TestHashedFeaturesValidation(t *testing.T) {
	graphs := sampleGraphs(t, 3, 13)
	if _, err := HashedFeatures(graphs, Options{Iterations: -1}, 0, 0); err == nil {
		t.Fatal("bad options accepted")
	}
	opt := DefaultOptions()
	opt.Base = BaseShortestPath
	if _, err := HashedFeatures(graphs, opt, 0, 0); err == nil {
		t.Fatal("non-subtree base accepted")
	}
}

func TestHashedFeaturesMassProperty(t *testing.T) {
	// Hashing redistributes labels but conserves total count mass.
	f := func(seed int64) bool {
		graphs := sampleGraphs(t, 5, seed)
		opt := DefaultOptions()
		hashed, err := HashedFeatures(graphs, opt, 1<<12, 2)
		if err != nil {
			return false
		}
		for i, g := range graphs {
			var mass float64
			for _, c := range hashed[i] {
				mass += c
			}
			if mass != float64(g.Size()*(opt.Iterations+1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionRate(t *testing.T) {
	graphs := sampleGraphs(t, 30, 14)
	// Huge bucket space: essentially no collisions.
	low, err := CollisionRate(graphs, DefaultOptions(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if low > 0.01 {
		t.Fatalf("collision rate at 2^20 buckets = %g", low)
	}
	// Tiny bucket space: heavy collisions.
	high, err := CollisionRate(graphs, DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if high < 0.5 {
		t.Fatalf("collision rate at 4 buckets = %g", high)
	}
	if _, err := CollisionRate(graphs, Options{Iterations: -1}, 16); err == nil {
		t.Fatal("bad options accepted")
	}
	if got, err := CollisionRate(nil, DefaultOptions(), 16); err != nil || got != 0 {
		t.Fatalf("empty corpus collision rate = %g, %v", got, err)
	}
}

func TestHashedSmallBucketsStillValidSimilarity(t *testing.T) {
	// Even under heavy collisions, similarities stay in [0,1] and
	// self-similarity stays 1.
	graphs := sampleGraphs(t, 10, 15)
	hashed, err := HashedFeatures(graphs, DefaultOptions(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hashed {
		if s := Similarity(hashed[i], hashed[i]); s != 1 {
			t.Fatalf("self similarity = %g", s)
		}
		for j := range hashed {
			if s := Similarity(hashed[i], hashed[j]); s < 0 || s > 1 {
				t.Fatalf("similarity out of range: %g", s)
			}
		}
	}
}
