package wl

import (
	"fmt"
	"runtime"
	"sync"

	"jobgraph/internal/dag"
	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
)

// obsKernelPairs counts pairwise similarity evaluations (upper
// triangle including the diagonal) — the O(n²) term every scaling
// argument about the kernel matrix rests on. obsKernelAborts counts
// computations cancelled through MatrixOptions.OnRow.
var (
	obsKernelPairs  = obs.Default().Counter("wl.kernel_pairs")
	obsKernelAborts = obs.Default().Counter("wl.kernel_aborts")
)

// MatrixOptions configures the parallel kernel-matrix computation.
type MatrixOptions struct {
	// Workers bounds the row-band goroutines (<=0: GOMAXPROCS).
	Workers int
	// OnRow, when non-nil, is invoked serially after each completed row
	// with the number of rows finished so far and the total. Returning a
	// non-nil error cancels the computation: in-flight rows finish, all
	// workers drain, and MatrixFromVectorsOpts returns a nil matrix
	// wrapping the callback's error. This is the hook for progress
	// reporting, deadlines, and cooperative cancellation.
	OnRow func(done, total int) error
}

// KernelMatrix computes the full normalized similarity matrix over the
// given job graphs — the data behind the paper's Figure 7 heat map.
// Entry (i, j) is Similarity(φ(Gi), φ(Gj)); the matrix is symmetric with
// unit diagonal.
//
// Feature extraction runs once, sequentially, against a shared label
// dictionary (interning must be deterministic); the O(n²) pairwise dot
// products are then fanned out across `workers` goroutines, each owning
// a contiguous band of rows. workers <= 0 selects GOMAXPROCS.
func KernelMatrix(graphs []*dag.Graph, opt Options, workers int) (*linalg.Matrix, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero graphs")
	}
	vecs, _, err := Features(graphs, opt)
	if err != nil {
		return nil, err
	}
	return MatrixFromVectors(vecs, workers)
}

// MatrixFromVectors computes the normalized similarity matrix from
// pre-computed feature vectors (they must share one dictionary).
func MatrixFromVectors(vecs []Vector, workers int) (*linalg.Matrix, error) {
	return MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: workers})
}

// MatrixFromVectorsOpts is MatrixFromVectors with progress reporting and
// cooperative cancellation (see MatrixOptions.OnRow).
func MatrixFromVectorsOpts(vecs []Vector, opt MatrixOptions) (*linalg.Matrix, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero vectors")
	}
	m := linalg.NewMatrix(n, n)
	if err := kernelInto(vecs, opt, func(i, j int, s float64) {
		m.Set(i, j, s)
		m.Set(j, i, s)
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// SymMatrixFromVectorsOpts computes the same normalized kernel into a
// packed symmetric matrix — half the memory of the dense form, which is
// what the pipeline caches and ships between stages. Call Dense on the
// result where a full n² layout is required.
func SymMatrixFromVectorsOpts(vecs []Vector, opt MatrixOptions) (*linalg.SymMatrix, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero vectors")
	}
	m := linalg.NewSymMatrix(n)
	if err := kernelInto(vecs, opt, m.Set); err != nil {
		return nil, err
	}
	return m, nil
}

// SymMatrixFromCompactOpts computes the normalized kernel over compact
// vectors: every pairwise product is a linear merge-join over sorted
// key arrays instead of a hash-map walk, and the result is packed. The
// values are bit-identical to the map-vector paths — counts are exact
// integers, so summation order cannot change a kernel value.
func SymMatrixFromCompactOpts(vecs []CompactVector, opt MatrixOptions) (*linalg.SymMatrix, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero vectors")
	}
	self := make([]float64, n)
	for i := range vecs {
		self[i] = vecs[i].SelfDot()
	}
	m := linalg.NewSymMatrix(n)
	err := kernelPairs(n, opt, self, func(i, j int) float64 {
		return vecs[i].Dot(vecs[j])
	}, m.Set)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// kernelInto is the map-vector front end of kernelPairs.
func kernelInto(vecs []Vector, opt MatrixOptions, set func(i, j int, s float64)) error {
	n := len(vecs)
	// Pre-compute self-kernels once.
	self := make([]float64, n)
	for i, v := range vecs {
		self[i] = Dot(v, v)
	}
	return kernelPairs(n, opt, self, func(i, j int) float64 {
		return Dot(vecs[i], vecs[j])
	}, set)
}

// kernelPairs runs the parallel pairwise computation, delivering each
// normalized upper-triangle cell (i <= j) exactly once through set.
// dot supplies the raw kernel value for a pair; self holds the
// precomputed self-kernels. Workers own disjoint rows, so set never
// sees the same cell twice and needs no locking as long as distinct
// cells have distinct storage.
func kernelPairs(n int, opt MatrixOptions, self []float64, dot func(i, j int) float64, set func(i, j int, s float64)) error {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Row i owns columns j >= i (upper triangle). Rows are handed out
	// via a channel so long rows (small i) and short rows (large i)
	// balance across workers without precomputing a schedule. On abort
	// the feeder stops handing out rows and closes the channel, so every
	// worker — including ones mid-row — exits after its current row; a
	// worker never writes outside its own rows, so the dropped result
	// holds no torn cells (it is discarded regardless).
	rows := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var mu sync.Mutex // guards done + abortErr, serializes OnRow
	var abortErr error
	done := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i; j < n; j++ {
					var s float64
					switch {
					case i == j:
						s = 1
					case self[i] == 0 && self[j] == 0:
						s = 1 // two empty graphs coincide
					case self[i] == 0 || self[j] == 0:
						s = 0
					default:
						s = normalizeKernel(dot(i, j), self[i], self[j])
					}
					// Distinct cells per (i,j): no write conflicts.
					set(i, j, s)
				}
				if opt.OnRow == nil {
					continue
				}
				mu.Lock()
				done++
				err := opt.OnRow(done, n)
				if err != nil && abortErr == nil {
					abortErr = fmt.Errorf("wl: kernel matrix aborted after %d/%d rows: %w", done, n, err)
				}
				mu.Unlock()
				if err != nil {
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case rows <- i:
		case <-stop:
			break feed
		}
	}
	close(rows)
	wg.Wait()
	if abortErr != nil {
		obsKernelAborts.Add(1)
		return abortErr
	}
	obsKernelPairs.Add(int64(n) * int64(n+1) / 2)
	return nil
}
