package wl

import (
	"fmt"
	"runtime"
	"sync"

	"jobgraph/internal/dag"
	"jobgraph/internal/linalg"
	"jobgraph/internal/obs"
)

// obsKernelPairs counts pairwise similarity evaluations (upper
// triangle including the diagonal) — the O(n²) term every scaling
// argument about the kernel matrix rests on. obsKernelAborts counts
// computations cancelled through MatrixOptions.OnRow.
var (
	obsKernelPairs  = obs.Default().Counter("wl.kernel_pairs")
	obsKernelAborts = obs.Default().Counter("wl.kernel_aborts")
)

// MatrixOptions configures the parallel kernel-matrix computation.
type MatrixOptions struct {
	// Workers bounds the row-band goroutines (<=0: GOMAXPROCS).
	Workers int
	// OnRow, when non-nil, is invoked serially after each completed row
	// with the number of rows finished so far and the total. Returning a
	// non-nil error cancels the computation: in-flight rows finish, all
	// workers drain, and MatrixFromVectorsOpts returns a nil matrix
	// wrapping the callback's error. This is the hook for progress
	// reporting, deadlines, and cooperative cancellation.
	OnRow func(done, total int) error
}

// KernelMatrix computes the full normalized similarity matrix over the
// given job graphs — the data behind the paper's Figure 7 heat map.
// Entry (i, j) is Similarity(φ(Gi), φ(Gj)); the matrix is symmetric with
// unit diagonal.
//
// Feature extraction runs once, sequentially, against a shared label
// dictionary (interning must be deterministic); the O(n²) pairwise dot
// products are then fanned out across `workers` goroutines, each owning
// a contiguous band of rows. workers <= 0 selects GOMAXPROCS.
func KernelMatrix(graphs []*dag.Graph, opt Options, workers int) (*linalg.Matrix, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero graphs")
	}
	vecs, _, err := Features(graphs, opt)
	if err != nil {
		return nil, err
	}
	return MatrixFromVectors(vecs, workers)
}

// MatrixFromVectors computes the normalized similarity matrix from
// pre-computed feature vectors (they must share one dictionary).
func MatrixFromVectors(vecs []Vector, workers int) (*linalg.Matrix, error) {
	return MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: workers})
}

// MatrixFromVectorsOpts is MatrixFromVectors with progress reporting and
// cooperative cancellation (see MatrixOptions.OnRow).
func MatrixFromVectorsOpts(vecs []Vector, opt MatrixOptions) (*linalg.Matrix, error) {
	n := len(vecs)
	if n == 0 {
		return nil, fmt.Errorf("wl: kernel matrix over zero vectors")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Pre-compute self-kernels once.
	self := make([]float64, n)
	for i, v := range vecs {
		self[i] = Dot(v, v)
	}

	m := linalg.NewMatrix(n, n)
	// Row i owns columns j >= i (upper triangle). Rows are handed out
	// via a channel so long rows (small i) and short rows (large i)
	// balance across workers without precomputing a schedule. On abort
	// the feeder stops handing out rows and closes the channel, so every
	// worker — including ones mid-row — exits after its current row; a
	// worker never writes outside its own rows, so the dropped matrix
	// holds no torn cells (it is discarded regardless).
	rows := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var mu sync.Mutex // guards done + abortErr, serializes OnRow
	var abortErr error
	done := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				vi := vecs[i]
				for j := i; j < n; j++ {
					var s float64
					if i == j {
						s = 1
					} else {
						s = similarityWithSelf(vi, vecs[j], self[i], self[j])
					}
					// Distinct cells per (i,j): no write conflicts.
					m.Set(i, j, s)
					m.Set(j, i, s)
				}
				if opt.OnRow == nil {
					continue
				}
				mu.Lock()
				done++
				err := opt.OnRow(done, n)
				if err != nil && abortErr == nil {
					abortErr = fmt.Errorf("wl: kernel matrix aborted after %d/%d rows: %w", done, n, err)
				}
				mu.Unlock()
				if err != nil {
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case rows <- i:
		case <-stop:
			break feed
		}
	}
	close(rows)
	wg.Wait()
	if abortErr != nil {
		obsKernelAborts.Add(1)
		return nil, abortErr
	}
	obsKernelPairs.Add(int64(n) * int64(n+1) / 2)
	return m, nil
}
