package wl

import "slices"

// CompactVector is a feature vector in sorted parallel-array form:
// Keys ascending, Vals[i] the count for Keys[i], zero entries dropped.
// Pairwise kernels over compact vectors are linear merge-joins instead
// of map iterations with per-key hashing — the layout the kernel-matrix
// stage runs on. Values are label counts (exact small integers), so a
// merge-order sum is bit-identical to the map-order sum: every product
// and partial sum is an exactly-representable integer.
type CompactVector struct {
	Keys []int32
	Vals []float64
}

// CompactFromVector converts a sparse map vector to compact form.
func CompactFromVector(v Vector) CompactVector {
	ks := make([]int32, 0, len(v))
	for k, c := range v {
		if c != 0 {
			ks = append(ks, int32(k))
		}
	}
	slices.Sort(ks)
	vs := make([]float64, len(ks))
	for i, k := range ks {
		vs[i] = v[int(k)]
	}
	return CompactVector{Keys: ks, Vals: vs}
}

// CompactAll converts a vector slice; index i corresponds to vecs[i].
func CompactAll(vecs []Vector) []CompactVector {
	out := make([]CompactVector, len(vecs))
	for i, v := range vecs {
		out[i] = CompactFromVector(v)
	}
	return out
}

// Dot returns ⟨c, o⟩ by merging the two sorted key lists.
func (c CompactVector) Dot(o CompactVector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(c.Keys) && j < len(o.Keys) {
		switch {
		case c.Keys[i] < o.Keys[j]:
			i++
		case c.Keys[i] > o.Keys[j]:
			j++
		default:
			s += c.Vals[i] * o.Vals[j]
			i++
			j++
		}
	}
	return s
}

// SelfDot returns ⟨c, c⟩.
func (c CompactVector) SelfDot() float64 {
	var s float64
	for _, v := range c.Vals {
		s += v * v
	}
	return s
}
