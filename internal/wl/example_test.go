package wl_test

import (
	"fmt"

	"jobgraph/internal/dag"
	"jobgraph/internal/wl"
)

func mustJob(id string, names ...string) *dag.Graph {
	specs := make([]dag.TaskSpec, len(names))
	for i, n := range names {
		specs[i] = dag.TaskSpec{Name: n}
	}
	res, err := dag.FromTasks(id, specs, dag.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return res.Graph
}

func ExampleGraphSimilarity() {
	// Two structurally identical MapReduce jobs score exactly 1; a
	// chain scores lower against them.
	mr1 := mustJob("a", "M1", "M2", "R3_1_2")
	mr2 := mustJob("b", "M1", "M2", "R3_2_1")
	chain := mustJob("c", "M1", "R2_1", "R3_2")

	same, _ := wl.GraphSimilarity(mr1, mr2, wl.DefaultOptions())
	diff, _ := wl.GraphSimilarity(mr1, chain, wl.DefaultOptions())
	fmt.Printf("identical: %.2f\n", same)
	fmt.Printf("different shape below 1: %v\n", diff < 1)
	// Output:
	// identical: 1.00
	// different shape below 1: true
}
