package wl

import (
	"math/rand"
	"testing"

	"jobgraph/internal/dag"
)

// BenchmarkMatrixFromVectors measures the kernel-matrix stage in
// isolation: 100 feature vectors from realistic random DAGs, all
// pairwise normalized dot products. Run with -benchmem: the alloc
// budget here is the perf-gated wl.matrix stage cost.
func BenchmarkMatrixFromVectors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	graphs := make([]*dag.Graph, 100)
	for i := range graphs {
		graphs[i] = randomDAG(rng, "bench", 3+rng.Intn(12))
	}
	vecs, _, err := Features(graphs, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatrixFromVectors(vecs, 4); err != nil {
			b.Fatal(err)
		}
	}
}
