package wl

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"jobgraph/internal/dag"
)

func sampleGraphs(t testing.TB, n int, seed int64) []*dag.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*dag.Graph, n)
	for i := range graphs {
		switch rng.Intn(3) {
		case 0:
			graphs[i] = chainGraph(t, "c", 2+rng.Intn(6))
		case 1:
			graphs[i] = triangleGraph(t, "t", 1+rng.Intn(5))
		default:
			graphs[i] = randomDAG(rng, "r", 2+rng.Intn(10))
		}
	}
	return graphs
}

func TestKernelMatrixProperties(t *testing.T) {
	graphs := sampleGraphs(t, 20, 1)
	m, err := KernelMatrix(graphs, DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 20 || m.Cols != 20 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 20; i++ {
		if m.At(i, i) != 1 {
			t.Fatalf("diagonal (%d) = %g", i, m.At(i, i))
		}
		for j := 0; j < 20; j++ {
			v := m.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("entry (%d,%d) = %g out of [0,1]", i, j, v)
			}
			if m.At(j, i) != v {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestKernelMatrixMatchesPairwise(t *testing.T) {
	graphs := sampleGraphs(t, 8, 2)
	m, err := KernelMatrix(graphs, DefaultOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	vecs, _, err := Features(graphs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := Similarity(vecs[i], vecs[j])
			if math.Abs(m.At(i, j)-want) > 1e-12 {
				t.Fatalf("(%d,%d): matrix %g vs pairwise %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestKernelMatrixWorkerCountInvariantProperty(t *testing.T) {
	// Result must be identical regardless of parallel fan-out.
	graphs := sampleGraphs(t, 12, 3)
	ref, err := KernelMatrix(graphs, DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(w uint8) bool {
		workers := 1 + int(w%16)
		m, err := KernelMatrix(graphs, DefaultOptions(), workers)
		if err != nil {
			return false
		}
		for i := range ref.Data {
			if ref.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelMatrixDefaultWorkers(t *testing.T) {
	graphs := sampleGraphs(t, 5, 4)
	if _, err := KernelMatrix(graphs, DefaultOptions(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := KernelMatrix(graphs, DefaultOptions(), 100); err != nil {
		t.Fatal(err) // more workers than rows must still work
	}
}

func TestKernelMatrixEmptyInput(t *testing.T) {
	if _, err := KernelMatrix(nil, DefaultOptions(), 1); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := MatrixFromVectors(nil, 1); err == nil {
		t.Fatal("empty vectors accepted")
	}
}

func TestKernelMatrixWithEmptyGraphs(t *testing.T) {
	graphs := []*dag.Graph{dag.New("e1"), chainGraph(t, "c", 3), dag.New("e2")}
	m, err := KernelMatrix(graphs, DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 1 {
		t.Fatalf("empty-empty = %g, want 1", m.At(0, 2))
	}
	if m.At(0, 1) != 0 {
		t.Fatalf("empty-chain = %g, want 0", m.At(0, 1))
	}
	if m.At(0, 0) != 1 {
		t.Fatalf("empty diagonal = %g, want 1", m.At(0, 0))
	}
}

func TestIdenticalChainsClusterAtOne(t *testing.T) {
	// The paper observes small chain jobs produce blocks of exact 1.0
	// similarity in Figure 7.
	graphs := []*dag.Graph{
		chainGraph(t, "a", 3), chainGraph(t, "b", 3), chainGraph(t, "c", 3),
	}
	m, err := KernelMatrix(graphs, DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 1 {
				t.Fatalf("identical chains (%d,%d) = %g", i, j, m.At(i, j))
			}
		}
	}
}

func testVectors(t testing.TB, n int, seed int64) []Vector {
	t.Helper()
	vecs, _, err := Features(sampleGraphs(t, n, seed), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return vecs
}

func TestMatrixOnRowProgress(t *testing.T) {
	vecs := testVectors(t, 25, 5)
	var calls int
	last := 0
	m, err := MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: 1, OnRow: func(done, total int) error {
		calls++
		if total != 25 || done != last+1 {
			t.Fatalf("progress (%d,%d) after %d", done, total, last)
		}
		last = done
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 || m == nil {
		t.Fatalf("calls = %d, matrix nil = %v", calls, m == nil)
	}
}

// TestMatrixAbortMidRun cancels the parallel computation from the OnRow
// callback and checks the contract: nil matrix, the callback's error
// wrapped, no goroutine leak, and no worker stuck feeding. Run under
// -race this also proves the abort path has no unsynchronized state.
func TestMatrixAbortMidRun(t *testing.T) {
	vecs := testVectors(t, 60, 6)
	before := runtime.NumGoroutine()
	boom := errors.New("deadline blown")
	for trial := 0; trial < 20; trial++ {
		m, err := MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: 8, OnRow: func(done, total int) error {
			if done >= 3+trial {
				return boom
			}
			return nil
		}})
		if m != nil {
			t.Fatalf("trial %d: aborted run returned a matrix", trial)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("trial %d: err = %v, want wrapped boom", trial, err)
		}
		if !strings.Contains(err.Error(), "aborted after") {
			t.Fatalf("trial %d: err lacks progress context: %v", trial, err)
		}
	}
	// All workers and the feeder must have drained. Allow the runtime a
	// moment to reap finished goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestMatrixAbortFirstRow(t *testing.T) {
	vecs := testVectors(t, 10, 7)
	boom := errors.New("stop immediately")
	m, err := MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: 4, OnRow: func(done, total int) error {
		return boom
	}})
	if m != nil || !errors.Is(err, boom) {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestMatrixOptsMatchesPlain(t *testing.T) {
	vecs := testVectors(t, 15, 8)
	a, err := MatrixFromVectors(vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MatrixFromVectorsOpts(vecs, MatrixOptions{Workers: 4, OnRow: func(done, total int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("matrices differ at (%d,%d)", i, j)
			}
		}
	}
}
