package wl

import (
	"bytes"
	"slices"
	"strconv"

	"jobgraph/internal/dag"
	"jobgraph/internal/taskname"
)

// This file is the zero-allocation refinement path for the subtree base
// kernel. The legacy string-labelled loop in wl.go rebuilt every label
// map, label string, and neighbor slice on every round of every graph;
// here a node's label is an int32 code into small side tables, and all
// scratch (code arrays, neighbor form lists, the composition buffer) is
// owned by an embedder that lives as long as its dictionary, so a warm
// embedder refines an already-seen graph shape without allocating at
// all (asserted by TestEmbedIntoZeroAlloc).
//
// The observable outputs are unchanged: label strings interned into the
// dictionary are byte-identical to the legacy refineLabel format, the
// per-round phase order (compress all nodes, then record) is preserved,
// and node order is ascending NodeID exactly as g.NodeIDs() yields it.
// Only dictionary id *values* can differ from the historical
// implementation, which never promised them: its compression loop
// iterated a Go map, so id assignment was already run-to-run
// nondeterministic. This path interns in node-position order instead,
// making vectors deterministic — kernel values are invariant either way
// because every dot product is preserved under a consistent relabeling.

// Label code space. A node's current label is an int32 ref:
//
//	ref < 0          frozen-miss hashed label; index -(ref+1) into unseen tables
//	0 <= ref < 16    initial label; index into initForms/initLabels
//	ref >= 16        compressed token "#<id>" with id = ref-tokenBase
const tokenBase = 16

// Initial-label table indices (iteration-0 labels).
const (
	initMap = iota
	initReduce
	initJoin
	initOther
	initUniform // "·" when Options.UseTypeLabels is false
	numInitLabels
)

var (
	initForms  = [numInitLabels][]byte{[]byte("M"), []byte("R"), []byte("J"), []byte("?"), []byte("·")}
	initLabels = [numInitLabels]string{"M", "R", "J", "?", "·"}
)

// Sentinels for lazily resolved record keys.
const (
	keyAbsent     int32 = -1 // label not in the (frozen) label space
	keyUnresolved int32 = -2
)

// fastEmbedder owns the per-labeler refinement state. Exactly one of
// dict/froz is set; the embedder must only ever be used with that
// labeler because every cached key below is an id in its space.
type fastEmbedder struct {
	dict *Dictionary
	froz *Frozen

	codes []int32  // current label ref per node position
	next  []int32  // next round's refs (swapped, never reallocated)
	forms [][]byte // neighbor byte forms, sorted per multiset
	buf   []byte   // composition scratch for one refined label

	// initKey[i] is the record id of initLabels[i] under the labeler.
	initKey [numInitLabels]int32

	// tokForm[id] is the "#<id>" byte form; tokKey[id] its record id.
	// Forms depend only on the id value, keys on the labeler.
	tokForm [][]byte
	tokKey  []int32

	// Frozen-miss labels compress to "?%016x" of their FNV-1a hash.
	unseenForm [][]byte
	unseenKey  []int32
	unseenRef  map[uint64]int32
}

func newFastEmbedder(d *Dictionary, f *Frozen) *fastEmbedder {
	e := &fastEmbedder{dict: d, froz: f}
	for i := range e.initKey {
		e.initKey[i] = keyUnresolved
	}
	return e
}

// embedInto accumulates g's subtree feature counts into vec. opt must
// already be validated and opt.Base must be BaseSubtree. A warm
// embedder (same labeler, all labels seen before) performs no
// allocations beyond growth of vec itself.
func (e *fastEmbedder) embedInto(vec Vector, g *dag.Graph, opt Options) {
	n := g.NumNodes()
	if n == 0 {
		return
	}
	e.codes = resizeRefs(e.codes, n)
	e.next = resizeRefs(e.next, n)

	for p := 0; p < n; p++ {
		e.codes[p] = initRef(g.NodeAt(p).Type, opt.UseTypeLabels)
	}
	e.record(vec, n)

	for it := 0; it < opt.Iterations; it++ {
		for p := 0; p < n; p++ {
			e.compose(g, p, opt.Undirected)
			e.next[p] = e.compress()
		}
		e.codes, e.next = e.next, e.codes
		e.record(vec, n)
	}

	obsEmbeds.Add(1)
	obsRefineRounds.Add(int64(opt.Iterations))
	obsVectorSize.Observe(float64(len(vec)))
	if e.dict != nil {
		obsDictLabels.Set(int64(e.dict.Len()))
	}
}

func initRef(t taskname.Type, useTypes bool) int32 {
	if !useTypes {
		return initUniform
	}
	switch t {
	case taskname.TypeMap:
		return initMap
	case taskname.TypeReduce:
		return initReduce
	case taskname.TypeJoin:
		return initJoin
	default:
		return initOther
	}
}

// form returns the byte form of a label ref, as it appears inside a
// composed refined label.
func (e *fastEmbedder) form(ref int32) []byte {
	switch {
	case ref < 0:
		return e.unseenForm[-(ref + 1)]
	case ref < tokenBase:
		return initForms[ref]
	default:
		return e.tokForm[ref-tokenBase]
	}
}

// compose builds node p's refined label into e.buf, byte-identical to
// the legacy refineLabel: own label, then "(P:pred,…|S:succ,…)" with
// each multiset sorted lexicographically (bytes.Compare orders byte
// slices exactly as sort.Strings ordered the legacy label strings).
func (e *fastEmbedder) compose(g *dag.Graph, p int, undirected bool) {
	preds, succs := g.PredPos(p), g.SuccPos(p)
	buf := append(e.buf[:0], e.form(e.codes[p])...)
	if undirected {
		f := e.gather(preds, nil)
		f = e.gather(succs, f)
		slices.SortFunc(f, bytes.Compare)
		buf = append(buf, '(')
		buf = joinForms(buf, f)
		e.buf = append(buf, ')')
		return
	}
	f := e.gather(preds, nil)
	slices.SortFunc(f, bytes.Compare)
	buf = append(buf, "(P:"...)
	buf = joinForms(buf, f)
	f = e.gather(succs, nil)
	slices.SortFunc(f, bytes.Compare)
	buf = append(buf, "|S:"...)
	buf = joinForms(buf, f)
	e.buf = append(buf, ')')
}

// gather appends the byte forms of the given neighbor positions to dst
// (dst == nil restarts the shared scratch slice).
func (e *fastEmbedder) gather(nbrs []int32, dst [][]byte) [][]byte {
	if dst == nil {
		dst = e.forms[:0]
	}
	for _, q := range nbrs {
		dst = append(dst, e.form(e.codes[q]))
	}
	e.forms = dst
	return dst
}

func joinForms(buf []byte, forms [][]byte) []byte {
	for i, f := range forms {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, f...)
	}
	return buf
}

// compress resolves the composed label in e.buf to its next-round ref:
// a dictionary interns unseen labels, a frozen view hashes them.
func (e *fastEmbedder) compress() int32 {
	if e.dict != nil {
		v, ok := e.dict.ids[string(e.buf)]
		if !ok {
			v = len(e.dict.ids)
			e.dict.ids[string(e.buf)] = v
		}
		return e.tokenRef(v)
	}
	if v, ok := e.froz.ids[string(e.buf)]; ok {
		return e.tokenRef(v)
	}
	return e.hashedRef()
}

// tokenRef returns the ref for compressed token "#<v>", materializing
// its byte form on first use.
func (e *fastEmbedder) tokenRef(v int) int32 {
	if grow := v + 1 - len(e.tokForm); grow > 0 {
		e.tokForm = append(e.tokForm, make([][]byte, grow)...)
		for len(e.tokKey) < len(e.tokForm) {
			e.tokKey = append(e.tokKey, keyUnresolved)
		}
	}
	if e.tokForm[v] == nil {
		e.tokForm[v] = strconv.AppendInt([]byte{'#'}, int64(v), 10)
	}
	return tokenBase + int32(v)
}

// hashedRef compresses the frozen-miss label in e.buf to a "?%016x"
// form, deduplicated by content hash.
func (e *fastEmbedder) hashedRef() int32 {
	h := fnvSum(e.buf)
	if ref, ok := e.unseenRef[h]; ok {
		return ref
	}
	form := appendHashLabel(make([]byte, 0, 17), h)
	key := keyAbsent
	if v, ok := e.froz.ids[string(form)]; ok {
		key = int32(v)
	}
	ref := -int32(len(e.unseenForm)) - 1
	e.unseenForm = append(e.unseenForm, form)
	e.unseenKey = append(e.unseenKey, key)
	if e.unseenRef == nil {
		e.unseenRef = make(map[uint64]int32)
	}
	e.unseenRef[h] = ref
	return ref
}

// record adds the current round's label counts to vec, walking nodes in
// ascending position (= ascending NodeID) order so dictionary interning
// of compressed tokens stays deterministic.
func (e *fastEmbedder) record(vec Vector, n int) {
	for p := 0; p < n; p++ {
		ref := e.codes[p]
		var key int32
		switch {
		case ref < 0:
			key = e.unseenKey[-(ref + 1)]
		case ref < tokenBase:
			key = e.initKeyOf(ref)
		default:
			key = e.tokKeyOf(ref - tokenBase)
		}
		if key >= 0 {
			vec[int(key)]++
		}
	}
}

func (e *fastEmbedder) initKeyOf(i int32) int32 {
	if e.initKey[i] == keyUnresolved {
		e.initKey[i] = e.resolveKey(initLabels[i])
	}
	return e.initKey[i]
}

func (e *fastEmbedder) tokKeyOf(v int32) int32 {
	if e.tokKey[v] == keyUnresolved {
		e.tokKey[v] = e.resolveKey(string(e.tokForm[v]))
	}
	return e.tokKey[v]
}

// resolveKey interns (dictionary) or looks up (frozen) a record label,
// mirroring what the legacy loop's record() did with ld.labelID.
func (e *fastEmbedder) resolveKey(label string) int32 {
	if e.dict != nil {
		return int32(e.dict.id(label))
	}
	if v, ok := e.froz.ids[label]; ok {
		return int32(v)
	}
	return keyAbsent
}

func resizeRefs(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// fnvSum is FNV-1a over b, allocation-free (hash/fnv's New64a escapes).
func fnvSum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// appendHashLabel appends the legacy hashLabel form "?%016x" of h.
func appendHashLabel(dst []byte, h uint64) []byte {
	const hexdigits = "0123456789abcdef"
	dst = append(dst, '?')
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexdigits[(h>>uint(shift))&0xf])
	}
	return dst
}
